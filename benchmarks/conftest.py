"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one of the paper's evaluation artefacts
(Figure 1 or an in-text claim), asserts its qualitative shape, prints
the series, and appends it to ``benchmarks/results/`` so EXPERIMENTS.md
can quote the measured numbers.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.data.datasets import paper_dataset

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def paper_data():
    """The reproduction of the paper's 127-key Zipf(1.8) dataset."""
    return paper_dataset()


@pytest.fixture(scope="session")
def record_result():
    """Write one experiment's rendered table to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record
