"""Ablations of the design choices DESIGN.md calls out.

A1 — the cross term A0 ignores: how large is the gap between A0's DP
     objective and its true SSE, and how much optimality does ignoring
     it cost?  (This is the quantity OPT-A's pseudo-polynomial Lambda
     state exists to track.)
A2 — local-search refinement: how much of the A0-to-OPT-A gap does the
     cheap hill-climber recover?
A3 — wavelet selection domain: point top-B versus the AA-based
     range-optimal selection across budgets.
"""

import numpy as np
import pytest

from repro.core.a0 import build_a0
from repro.core.opt_a import opt_a_search
from repro.core.refine import refine_boundaries
from repro.data.distributions import zipf_frequencies
from repro.experiments.reporting import format_table
from repro.queries.evaluation import sse
from repro.wavelets.point_topb import PointTopBWavelet
from repro.wavelets.range_optimal import RangeOptimalWavelet


def _cross_term_rows(paper_data):
    rows = []
    for buckets in (4, 8, 12, 16):
        a0_true = sse(build_a0(paper_data, buckets), paper_data)
        optimal = opt_a_search(paper_data, buckets).objective
        rows.append([buckets, optimal, a0_true, a0_true / max(optimal, 1e-12)])
    return rows


def test_cross_term_ablation_and_record(benchmark, paper_data, record_result):
    rows = benchmark.pedantic(_cross_term_rows, args=(paper_data,), iterations=1, rounds=1)
    record_result(
        "ablation_cross_term",
        format_table(
            ["buckets", "OPT-A SSE", "A0 SSE", "A0/OPT-A"],
            rows,
            title="A1: cost of ignoring the inter-bucket cross term",
        ),
    )


class TestAblationA1CrossTerm:
    """How suboptimal is dropping the cross term?"""

    @pytest.fixture(scope="class")
    def gap_rows(self, paper_data):
        return _cross_term_rows(paper_data)

    def test_a0_is_suboptimal_somewhere(self, gap_rows):
        """If dropping the cross term were free, OPT-A's DP would be
        pointless; the gap should be visible at some budget."""
        assert any(row[3] > 1.001 for row in gap_rows)

    def test_a0_gap_is_modest(self, gap_rows):
        """...but Section 4's finding is that A0 remains a strong
        heuristic: the gap stays within a small constant."""
        assert all(row[3] < 3.0 for row in gap_rows)


def _refine_rows(paper_data):
    rows = []
    for buckets in (6, 10, 14):
        a0 = build_a0(paper_data, buckets)
        a0_sse = sse(a0, paper_data)
        _, _, refined_sse = refine_boundaries(paper_data, a0.lefts)
        optimal = opt_a_search(paper_data, buckets).objective
        rows.append([buckets, a0_sse, refined_sse, optimal])
    return rows


def test_refinement_ablation_and_record(benchmark, paper_data, record_result):
    rows = benchmark.pedantic(_refine_rows, args=(paper_data,), iterations=1, rounds=1)
    record_result(
        "ablation_refinement",
        format_table(
            ["buckets", "A0 SSE", "A0+local-search SSE", "OPT-A SSE"],
            rows,
            title="A2: local search on top of A0 boundaries",
        ),
    )


class TestAblationA2Refinement:
    @pytest.fixture(scope="class")
    def refine_rows(self, paper_data):
        return _refine_rows(paper_data)

    def test_refinement_never_hurts(self, refine_rows):
        assert all(row[2] <= row[1] + 1e-6 for row in refine_rows)

    def test_refinement_bounded_by_optimum(self, refine_rows):
        assert all(row[2] >= row[3] - 1e-6 for row in refine_rows)


def _wavelet_rows():
    data = zipf_frequencies(128, alpha=1.8, scale=1000, seed=23)
    rows = []
    for budget in (8, 16, 32, 64, 128):
        point = sse(PointTopBWavelet(data, budget // 2), data)
        aa = sse(RangeOptimalWavelet(data, budget // 2), data)
        rows.append([budget, point, aa])
    return rows


def test_wavelet_ablation_and_record(benchmark, record_result):
    rows = benchmark.pedantic(_wavelet_rows, iterations=1, rounds=1)
    record_result(
        "ablation_wavelet_selection",
        format_table(
            ["budget(words)", "TOPBB SSE", "AA-optimal SSE"],
            rows,
            title="A3: wavelet coefficient selection domain (range SSE)",
        ),
    )


class TestAblationA3WaveletSelection:
    @pytest.fixture(scope="class")
    def wavelet_rows(self):
        return _wavelet_rows()

    def test_both_converge_with_budget(self, wavelet_rows):
        assert wavelet_rows[-1][1] < wavelet_rows[0][1]
        assert wavelet_rows[-1][2] < wavelet_rows[0][2]

    def test_selections_differ(self, wavelet_rows):
        assert any(abs(row[1] - row[2]) > 1e-6 for row in wavelet_rows)


def test_refine_throughput(benchmark, paper_data):
    a0 = build_a0(paper_data, 8)
    benchmark.pedantic(
        refine_boundaries, args=(paper_data, a0.lefts), iterations=1, rounds=3
    )


def _two_dimensional_rows():
    from repro.multidim import (
        GridHistogram,
        PointTopBWavelet2D,
        RangeOptimalWavelet2D,
        build_grid_histogram,
        random_rectangles,
        sse_2d,
    )

    rng = np.random.default_rng(31)
    x = np.arange(32)[:, None]
    y = np.arange(32)[None, :]
    grid = np.round(
        60 * np.exp(-0.5 * ((x - y) / 6.0) ** 2) + rng.uniform(0, 5, (32, 32))
    )
    workload = random_rectangles(grid.shape, 3000, seed=7)
    rows = []
    for budget_words in (32, 64, 128):
        coefficients = budget_words // 2
        axis_buckets = max(2, int(np.sqrt(max(budget_words - 8, 4))))
        rows.append(
            [
                budget_words,
                sse_2d(PointTopBWavelet2D(grid, coefficients), grid, workload),
                sse_2d(RangeOptimalWavelet2D(grid, coefficients), grid, workload),
                sse_2d(
                    build_grid_histogram(grid, axis_buckets, axis_buckets, method="sap1"),
                    grid,
                    workload,
                ),
            ]
        )
    return rows


def test_two_dimensional_ablation_and_record(benchmark, record_result):
    """A4: the footnote-2 extension — 2-D synopses at equal budgets."""
    rows = benchmark.pedantic(_two_dimensional_rows, iterations=1, rounds=1)
    record_result(
        "ablation_two_dimensional",
        format_table(
            ["budget(words)", "TOPBB-2D SSE", "WAVE-RANGE-2D SSE", "GRID-HIST(sap1) SSE"],
            rows,
            title="A4: two-dimensional synopses (3000 random rectangles)",
        ),
    )
    # All methods improve with budget.
    assert rows[-1][1] <= rows[0][1]
    assert rows[-1][2] <= rows[0][2]


def _workload_aware_rows(paper_data):
    from repro.core.reopt import reoptimize_values
    from repro.core.workload_aware import build_workload_aware
    from repro.queries.workload import biased_ranges

    workload = biased_ranges(paper_data.size, 3000, seed=13, short_bias=1.5)
    rows = []
    for buckets in (6, 10, 14):
        generic = build_a0(paper_data, buckets, rounding="none")
        aware = build_workload_aware(paper_data, buckets, workload)
        aware_reopt = reoptimize_values(aware, paper_data, workload=workload)
        rows.append(
            [
                buckets,
                sse(generic, paper_data, workload),
                sse(aware, paper_data, workload),
                sse(aware_reopt, paper_data, workload),
            ]
        )
    return rows


def test_workload_aware_ablation_and_record(benchmark, paper_data, record_result):
    """A5: specialising boundaries and values to a biased query log."""
    rows = benchmark.pedantic(
        _workload_aware_rows, args=(paper_data,), iterations=1, rounds=1
    )
    record_result(
        "ablation_workload_aware",
        format_table(
            ["buckets", "A0 (generic)", "WORKLOAD-A0", "WORKLOAD-A0 + reopt"],
            rows,
            title="A5: workload-aware construction on a short-range-biased log",
        ),
    )
    for row in rows:
        # Value re-optimisation for the workload never hurts the
        # workload-aware boundaries.
        assert row[3] <= row[2] + 1e-6


def _sap_ladder_rows(paper_data):
    from repro.core.builders import build_by_name

    rows = []
    for budget in (30, 45, 60):
        rows.append(
            [
                budget,
                *(
                    sse(build_by_name(name, paper_data, budget), paper_data)
                    for name in ("opt-a", "sap0", "sap1", "sap2", "sap3")
                ),
            ]
        )
    return rows


def test_sap_degree_ladder_and_record(benchmark, paper_data, record_result):
    """A6: does richer per-bucket state ever beat more buckets?

    The paper's Section 4 conclusion — "using more buckets is better
    than incorporating more complex statistics within each bucket" —
    extended up the SAP degree ladder at equal storage.
    """
    rows = benchmark.pedantic(_sap_ladder_rows, args=(paper_data,), iterations=1, rounds=1)
    record_result(
        "ablation_sap_ladder",
        format_table(
            ["budget(words)", "opt-a (2B)", "sap0 (3B)", "sap1 (5B)", "sap2 (7B)", "sap3 (9B)"],
            rows,
            title="A6: SAP degree ladder at equal storage (all-ranges SSE)",
        ),
    )
    for row in rows:
        # The paper's conclusion: plain buckets (OPT-A) win per word.
        assert row[1] <= min(row[2:]) + 1e-6


def _sketch_rows(paper_data):
    from repro.core.builders import build_by_name

    rows = []
    for budget in (500, 1000, 2000, 4000):
        sketch = build_by_name("sketch-cm", paper_data, budget, seed=3)
        hist_budget = 60  # the best histogram at a fraction of the space
        hist = build_by_name("opt-a", paper_data, hist_budget)
        rows.append(
            [
                budget,
                sse(sketch, paper_data),
                hist_budget,
                sse(hist, paper_data),
            ]
        )
    return rows


def test_sketch_vs_histogram_and_record(benchmark, paper_data, record_result):
    """A8: the third synopsis family — sketches trade accuracy-per-word
    for streaming updatability and mergeability."""
    rows = benchmark.pedantic(_sketch_rows, args=(paper_data,), iterations=1, rounds=1)
    record_result(
        "ablation_sketch_vs_histogram",
        format_table(
            ["sketch words", "SKETCH-CM SSE", "hist words", "OPT-A SSE"],
            rows,
            title="A8: dyadic Count-Min vs the offline-optimal histogram",
        ),
    )
    # Sketch accuracy improves with budget...
    assert rows[-1][1] <= rows[0][1]
    # ...but the 60-word optimal histogram beats even the 4000-word sketch
    # or at least stays competitive (sketches pay for one-sidedness).
    assert rows[-1][3] <= rows[0][1]
