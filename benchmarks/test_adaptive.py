"""Adaptive-budget benchmark: the audit -> optimise -> rebuild loop pays.

The gate is the tentpole claim of the adaptivity work: on a skewed
query mix whose hot band is data-light, feeding the observed workload
back into the shard budget split must cut the observed-workload SSE by
at least 2x versus the uniform mass split — while conserving the total
budget word-for-word and rebuilding only through the dirty-shard path.
The measured run lands far above the gate (~85x at the default
configuration), so the 2x bar guards the mechanism, not a lucky seed.

The measured trajectory is written to ``BENCH_adaptive.json`` at the
repo root; CI validates it against the registered schema and uploads
it as an artifact.
"""

import json
import pathlib

from repro.experiments.adaptive import run_adaptive_benchmark
from repro.experiments.bench_schema import SCHEMAS, validate_payload
from repro.experiments.reporting import format_table

REPO_ROOT = pathlib.Path(__file__).parent.parent
IMPROVEMENT_GATE = 2.0


def test_workload_adaptive_reallocation_beats_mass_split(record_result):
    result = run_adaptive_benchmark()
    rows = [
        [
            "mass split (uniform prior)",
            f"{result.uniform_sse:.2f}",
            str(result.hot_budget_before),
            "-",
        ],
        [
            "workload-adaptive split",
            f"{result.optimized_sse:.2f}",
            str(result.hot_budget_after),
            f"{result.improvement:.1f}x",
        ],
    ]
    record_result(
        "adaptive",
        format_table(
            ["budget policy", "observed SSE", "hot-band words", "improvement"],
            rows,
            title=(
                f"Adaptive reallocation ({result.shards} shards, "
                f"{result.budget_words} words, {result.query_count} "
                f"hot-band queries)"
            ),
        ),
    )
    payload = result.to_dict()
    (REPO_ROOT / "BENCH_adaptive.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    problems = validate_payload(payload, SCHEMAS["BENCH_adaptive.json"])
    assert not problems, f"artifact violates its own schema: {problems}"
    assert result.budget_total_after == result.budget_total_before, (
        "optimiser must conserve the total budget: "
        f"{result.budget_total_before} -> {result.budget_total_after}"
    )
    assert result.shards_rebuilt > 0, (
        "the optimiser should have rebuilt at least the hot shards"
    )
    assert result.hot_budget_after > result.hot_budget_before, (
        "observed query mass should pull budget into the hot band "
        f"({result.hot_budget_before} -> {result.hot_budget_after})"
    )
    assert result.improvement >= IMPROVEMENT_GATE, (
        f"adaptive reallocation managed only {result.improvement:.2f}x "
        f"over the mass split (gate: {IMPROVEMENT_GATE}x)"
    )
