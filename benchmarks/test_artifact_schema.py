"""Schema validation of the committed ``BENCH_*.json`` artifacts.

Runs in the benchmark tier right after the jobs that (re)generate the
artifacts: every committed artifact must satisfy its registered schema
(``repro.experiments.bench_schema``), so a benchmark refactor cannot
silently drop or retype a field that CI dashboards consume.
"""

import json
import pathlib

import pytest

from repro.experiments.bench_schema import (
    SCHEMAS,
    validate_artifact,
    validate_bench_artifacts,
    validate_payload,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestCommittedArtifacts:
    def test_every_committed_artifact_validates(self):
        reports = validate_bench_artifacts(REPO_ROOT)
        assert reports, "expected committed BENCH_*.json artifacts at repo root"
        failures = {name: probs for name, probs in reports.items() if probs}
        assert failures == {}

    def test_every_committed_artifact_has_a_registered_schema(self):
        for path in REPO_ROOT.glob("BENCH_*.json"):
            assert path.name in SCHEMAS, (
                f"{path.name} has no schema in bench_schema.SCHEMAS"
            )


class TestValidatorRejections:
    """The validator must actually catch the regressions it exists for."""

    def _serve_payload(self):
        return json.loads((REPO_ROOT / "BENCH_serve.json").read_text())

    def test_missing_field_is_reported(self):
        payload = self._serve_payload()
        del payload["speedup"]
        problems = validate_payload(payload, SCHEMAS["BENCH_serve.json"])
        assert problems == ["speedup: missing required field"]

    def test_retyped_field_is_reported(self):
        payload = self._serve_payload()
        payload["batches"] = "ten"
        problems = validate_payload(payload, SCHEMAS["BENCH_serve.json"])
        assert problems == ["batches: expected int >= 0, got str"]

    def test_bool_does_not_satisfy_int(self):
        payload = self._serve_payload()
        payload["cache_hits"] = True
        problems = validate_payload(payload, SCHEMAS["BENCH_serve.json"])
        assert problems == ["cache_hits: expected int >= 0, got bool"]

    def test_out_of_range_and_unknown_fields_are_reported(self):
        payload = self._serve_payload()
        payload["row_count"] = 0
        payload["surprise"] = 1
        problems = validate_payload(payload, SCHEMAS["BENCH_serve.json"])
        assert "row_count: must be >= 1, got 0" in problems
        assert "surprise: unknown field" in problems

    def test_non_finite_number_is_reported(self):
        payload = self._serve_payload()
        payload["speedup"] = float("inf")
        problems = validate_payload(payload, SCHEMAS["BENCH_serve.json"])
        assert problems == ["speedup: must be finite, got inf"]

    def test_unknown_artifact_name_is_a_violation(self, tmp_path):
        path = tmp_path / "BENCH_mystery.json"
        path.write_text("{}")
        problems = validate_artifact(path)
        assert len(problems) == 1 and "no schema registered" in problems[0]

    def test_unreadable_artifact_is_a_violation(self, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        path.write_text("{not json")
        problems = validate_artifact(path)
        assert len(problems) == 1 and "unreadable artifact" in problems[0]


class TestCoverageArtifactSchema:
    @pytest.fixture()
    def study_dict(self):
        from repro.experiments.progressive import run_coverage_study

        return run_coverage_study(
            row_count=600, query_count=30, budget_words=160, seed=9
        ).as_dict()

    def test_real_study_round_trips(self, tmp_path, study_dict):
        path = tmp_path / "BENCH_coverage_intervals.json"
        path.write_text(json.dumps([study_dict]))
        assert validate_artifact(path) == []

    def test_empty_array_is_rejected(self, tmp_path):
        path = tmp_path / "BENCH_coverage_intervals.json"
        path.write_text("[]")
        assert validate_artifact(path) != []

    def test_bad_nested_stage_is_located(self, tmp_path, study_dict):
        study_dict["stages"][1]["covered"] = -3
        path = tmp_path / "BENCH_coverage_intervals.json"
        path.write_text(json.dumps([study_dict]))
        problems = validate_artifact(path)
        assert problems == ["study[0].stages[1].covered: must be >= 0, got -3"]
