"""Batched execution pipeline benchmark.

The engine's bulk path must earn its keep: on a 10k-query COUNT/SUM
workload, one ``execute_batch`` call (grouping + one vectorised synopsis
call per group) has to beat a scalar ``execute`` loop by at least 5x
while returning elementwise-identical estimates.
"""

from repro.experiments.batching import run_batch_benchmark
from repro.experiments.reporting import format_table


def test_batch_beats_scalar_loop_10k(record_result):
    result = run_batch_benchmark(
        row_count=100_000,
        domain=1024,
        query_count=10_000,
        method="sap1",
        budget_words=128,
        aggregates=("count", "sum"),
    )
    rows = [
        ["scalar execute() loop", result.scalar_seconds, result.scalar_qps],
        ["execute_batch()", result.batch_seconds, result.batch_qps],
        ["speedup", f"{result.speedup:.1f}x", "-"],
    ]
    record_result(
        "batch_pipeline",
        format_table(
            ["path", "seconds", "queries/sec"],
            rows,
            title=f"Batch pipeline ({result.query_count} queries, {result.row_count} rows)",
        ),
    )
    assert result.max_abs_difference == 0.0, "batch must reproduce scalar estimates"
    assert result.speedup >= 5.0, result.summary()
