"""Build-kernel benchmark: vectorised OPT-A precompute vs the scalar path.

The kernel layer's contract is "same bits, much faster".  This benchmark
pins both halves on a fixed instance:

* speed — the row-kernel precompute must beat the per-bucket scalar
  precompute by at least 5x at n = 512 (it is the O(n^3) wall the exact
  build used to hit);
* exactness — every term matrix must match the scalar path bitwise, and
  a full ``opt_a_search`` run under the scalar kernels must reproduce
  the fast build's boundaries and objective exactly.

The measured trajectory is written to ``BENCH_build_kernels.json`` at
the repo root so successive sessions can track the kernels' performance.
"""

import json
import pathlib
import time

import numpy as np
import pytest

import repro.core.opt_a as opt_a_module
import repro.internal.dp as dp_module
from repro.core.opt_a import _precompute_terms, _precompute_terms_scalar, opt_a_search
from repro.internal.dp import _fill_layer_scalar
from repro.internal.prefix import PrefixAlgebra

REPO_ROOT = pathlib.Path(__file__).parent.parent
SPEEDUP_GATE = 5.0
BENCH_N = 512


def _pinned_instance(n: int) -> np.ndarray:
    rng = np.random.default_rng(1999)
    return rng.integers(0, 100, n).astype(np.float64)


def test_vectorised_precompute_speed_and_exactness(record_result):
    data = _pinned_instance(BENCH_N)
    algebra = PrefixAlgebra(data)

    start = time.perf_counter()
    slow = _precompute_terms_scalar(algebra)
    scalar_seconds = time.perf_counter() - start

    vectorised_seconds = np.inf
    for _ in range(3):
        start = time.perf_counter()
        fast = _precompute_terms(algebra)
        vectorised_seconds = min(vectorised_seconds, time.perf_counter() - start)

    for field in ("s1", "s2", "p1", "p2", "intra"):
        np.testing.assert_array_equal(
            getattr(fast, field),
            getattr(slow, field),
            err_msg=f"term matrix {field} diverged from the scalar path",
        )

    speedup = scalar_seconds / vectorised_seconds
    payload = {
        "benchmark": "build_kernels",
        "n": BENCH_N,
        "seed": 1999,
        "scalar_precompute_seconds": round(scalar_seconds, 4),
        "vectorised_precompute_seconds": round(vectorised_seconds, 4),
        "speedup": round(speedup, 2),
        "gate": SPEEDUP_GATE,
        "bit_identical": True,
    }
    (REPO_ROOT / "BENCH_build_kernels.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    record_result(
        "build_kernels",
        "\n".join(
            [
                f"OPT-A bucket-term precompute, n={BENCH_N} (pinned seed 1999)",
                f"  scalar path      {scalar_seconds:8.3f} s",
                f"  row kernel       {vectorised_seconds:8.3f} s  (best of 3)",
                f"  speedup          {speedup:8.1f} x  (gate >= {SPEEDUP_GATE}x)",
            ]
        ),
    )
    assert speedup >= SPEEDUP_GATE, (
        f"vectorised precompute only {speedup:.1f}x faster than scalar "
        f"(gate {SPEEDUP_GATE}x): {scalar_seconds:.3f}s vs {vectorised_seconds:.3f}s"
    )


def test_full_build_bit_identical_under_scalar_kernels():
    """End-to-end: opt_a_search under the scalar kernels reproduces the
    fast build exactly (boundaries, objective, stored values)."""
    data = _pinned_instance(128) % 5  # small mass keeps the DP light
    fast = opt_a_search(data, 8)

    with pytest.MonkeyPatch.context() as scalar_kernels:
        scalar_kernels.setattr(
            opt_a_module, "_precompute_terms", _precompute_terms_scalar
        )
        scalar_kernels.setattr(dp_module, "_fill_layer", _fill_layer_scalar)
        slow = opt_a_search(data, 8)

    np.testing.assert_array_equal(fast.lefts, slow.lefts)
    assert fast.objective == slow.objective
    np.testing.assert_array_equal(fast.histogram.values, slow.histogram.values)
    assert fast.state_count == slow.state_count
    assert fast.pruned == slow.pruned
