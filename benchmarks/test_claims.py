"""The quantitative in-text claims of Sections 4 and 5.

Each test regenerates one reported comparison on the reproduced dataset,
prints the measured numbers next to the paper's band, and asserts the
qualitative direction (exact magnitudes depend on the unreported random
instance and scale; EXPERIMENTS.md records both).
"""

import pytest

from repro.experiments.claims import (
    claim_opta_vs_sap1,
    claim_pointopt_vs_opta,
    claim_reopt_gain,
    claim_sap0_inferior,
)
from repro.experiments.reporting import format_table


class TestClaimPointOptVsOptA:
    """C1 — "the point optimal histogram is up to 8 times worst than
    OPT-A with respect to SSE and, on average, OPT-A is more than three
    times better"."""

    @pytest.fixture(scope="class")
    def claim(self, paper_data):
        return claim_pointopt_vs_opta(paper_data)

    def test_record(self, benchmark, paper_data, record_result):
        claim = benchmark.pedantic(
            claim_pointopt_vs_opta, args=(paper_data,), iterations=1, rounds=1
        )
        rows = [[b, r] for b, r in zip(claim.budgets, claim.ratios)]
        rows.append(["max", claim.max_ratio])
        rows.append(["mean", claim.mean_ratio])
        record_result(
            "claim_pointopt_vs_opta",
            format_table(
                ["budget(words)", "POINT-OPT/OPT-A SSE ratio"],
                rows,
                title=f"C1: {claim.description}  (paper: {claim.paper_band})",
            ),
        )

    def test_pointopt_never_beats_opta(self, claim):
        assert min(claim.ratios) >= 1.0 - 1e-9

    def test_worst_case_in_paper_band(self, claim):
        """Up to ~8x worse: the worst budget should show a multi-x gap."""
        assert claim.max_ratio > 3.0

    def test_mean_ratio_meaningfully_above_one(self, claim):
        assert claim.mean_ratio > 1.5


class TestClaimOptAVsSap1:
    """C2 — "OPT-A is 2-4 times better than SAP1, with respect to SSE
    for a given space bound", i.e. more buckets beats richer per-bucket
    statistics."""

    @pytest.fixture(scope="class")
    def claim(self, paper_data):
        return claim_opta_vs_sap1(paper_data)

    def test_record(self, benchmark, paper_data, record_result):
        claim = benchmark.pedantic(
            claim_opta_vs_sap1, args=(paper_data,), iterations=1, rounds=1
        )
        rows = [[b, r] for b, r in zip(claim.budgets, claim.ratios)]
        record_result(
            "claim_opta_vs_sap1",
            format_table(
                ["budget(words)", "SAP1/OPT-A SSE ratio"],
                rows,
                title=f"C2: {claim.description}  (paper: {claim.paper_band})",
            ),
        )

    def test_opta_always_better_at_equal_storage(self, claim):
        assert min(claim.ratios) >= 1.0 - 1e-9

    def test_gap_is_multiples_not_percent(self, claim):
        assert claim.max_ratio >= 2.0


class TestClaimSap0Inferior:
    """C3 — SAP0 "was inferior (in terms of SSE per unit storage) to all
    other histograms that we tested"."""

    @pytest.fixture(scope="class")
    def claim(self, paper_data):
        return claim_sap0_inferior(paper_data)

    def test_record(self, benchmark, paper_data, record_result):
        claim = benchmark.pedantic(
            claim_sap0_inferior, args=(paper_data,), iterations=1, rounds=1
        )
        headers = ["budget(words)", "sap0", "sap1", "a0", "opt-a"]
        rows = [
            [budget, row["sap0"], row["sap1"], row["a0"], row["opt-a"]]
            for budget, row in claim["rows"].items()
        ]
        record_result(
            "claim_sap0_inferior",
            format_table(headers, rows, title=f"C3 (paper: {claim['paper_band']})"),
        )

    def test_sap0_worst_at_most_budgets(self, claim):
        assert claim["sap0_worst_at"] >= len(claim["budgets"]) - 1

    def test_sap0_never_best(self, claim):
        for row in claim["rows"].values():
            assert row["sap0"] >= min(row["sap1"], row["a0"], row["opt-a"])


class TestClaimReoptGain:
    """C4 — Section 5: "it was superior and up to 41% better than OPT-A,
    with respect to the SSE"."""

    @pytest.fixture(scope="class")
    def claim(self, paper_data):
        return claim_reopt_gain(paper_data)

    def test_record(self, benchmark, paper_data, record_result):
        claim = benchmark.pedantic(
            claim_reopt_gain, args=(paper_data,), iterations=1, rounds=1
        )
        rows = [
            [b, claim.base_sse[b], claim.reopt_sse[b], claim.improvements_pct[b]]
            for b in claim.budgets
        ]
        record_result(
            "claim_reopt_gain",
            format_table(
                ["budget(words)", "OPT-A SSE", "OPT-A-reopt SSE", "improvement %"],
                rows,
                title=f"C4 (paper: {claim.paper_band})",
            ),
        )

    def test_reopt_never_hurts(self, claim):
        for budget in claim.budgets:
            assert claim.reopt_sse[budget] <= claim.base_sse[budget] + 1e-6

    def test_peak_improvement_in_tens_of_percent(self, claim):
        """The paper reports up to 41%; the reproduction should land in
        the same tens-of-percent regime."""
        assert 10.0 <= claim.max_improvement_pct <= 70.0


def test_claims_end_to_end(benchmark, paper_data):
    """Time the full C1 measurement (the heaviest claim harness)."""
    benchmark.pedantic(
        claim_pointopt_vs_opta, args=(paper_data,), iterations=1, rounds=1
    )
