"""Construction-time study across domain sizes.

The paper omits runtimes but asserts two things: the wavelet selection
is near-linear (faster than the histogram DPs), and exact OPT-A is only
feasible at small scales.  This benchmark times every builder across a
size sweep and checks both statements, and separately benchmarks query
answering throughput (the other runtime that matters in an engine).
"""

import numpy as np
import pytest

from repro.core.builders import build_by_name
from repro.data.distributions import zipf_frequencies
from repro.experiments.reporting import format_table
from repro.experiments.runtimes import run_construction_timing
from repro.queries.workload import random_ranges


@pytest.fixture(scope="module")
def timing_points():
    return run_construction_timing(sizes=(64, 127, 256), include_opt_a_up_to=127)


def test_timing_sweep_and_record(benchmark, record_result):
    points = benchmark.pedantic(
        run_construction_timing,
        kwargs={"sizes": (64, 127, 256), "include_opt_a_up_to": 127},
        iterations=1,
        rounds=1,
    )
    rows = [[p.method, p.n, p.seconds] for p in points]
    record_result(
        "construction_time",
        format_table(["method", "n", "seconds"], rows, title="Construction time"),
    )


class TestConstructionTimes:
    def test_wavelets_faster_than_histogram_dps(self, timing_points):
        """Section 4: "our wavelet algorithms are quicker than methods
        for histograms"."""
        at_256 = {p.method: p.seconds for p in timing_points if p.n == 256}
        wavelet = max(at_256["wavelet-point"], at_256["wavelet-range"])
        slowest_dp = max(at_256["sap0"], at_256["sap1"], at_256["a0"])
        assert wavelet < slowest_dp

    def test_all_polynomial_methods_complete_quickly(self, timing_points):
        assert all(p.seconds < 30.0 for p in timing_points)


QUERY_METHODS = ("a0", "sap1", "wavelet-point", "wavelet-range")


@pytest.mark.parametrize("method", QUERY_METHODS)
def test_query_throughput(benchmark, paper_data, method):
    """Vectorised answering of 10k random ranges."""
    estimator = build_by_name(method, paper_data, 40)
    workload = random_ranges(paper_data.size, 10_000, seed=5)
    benchmark(estimator.estimate_many, workload.lows, workload.highs)


def test_sap1_scales_to_larger_domains(benchmark):
    """The O(n^2 B) DP at n=512 — comfortably interactive."""
    data = zipf_frequencies(512, alpha=1.8, scale=2000, seed=17)
    benchmark.pedantic(build_by_name, args=("sap1", data, 40), iterations=1, rounds=3)


def _scaling_rows():
    import time

    from repro.core.scale import build_scaled
    from repro.data.distributions import zipf_frequencies
    from repro.queries.evaluation import sse as sse_fn
    from repro.queries.workload import random_ranges

    rows = []
    for n in (1024, 4096):
        data = zipf_frequencies(n, alpha=1.6, scale=20_000, seed=11)
        workload = random_ranges(n, 3000, seed=2)
        start = time.perf_counter()
        scaled = build_scaled(data, 24, method="sap1")
        scaled_seconds = time.perf_counter() - start
        scaled_sse = sse_fn(scaled, data, workload)
        if n <= 1024:
            start = time.perf_counter()
            direct = build_by_name("sap1", data, 120)
            direct_seconds = time.perf_counter() - start
            direct_sse = sse_fn(direct, data, workload)
        else:
            direct_seconds = direct_sse = float("nan")
        rows.append([n, scaled_seconds, scaled_sse, direct_seconds, direct_sse])
    return rows


def test_large_domain_scaling_and_record(benchmark, record_result):
    """A7: the coarsen-solve-refine path vs the direct quadratic DP."""
    rows = benchmark.pedantic(_scaling_rows, iterations=1, rounds=1)
    record_result(
        "construction_scaling",
        format_table(
            ["n", "scaled sec", "scaled SSE", "direct sec", "direct SSE"],
            rows,
            title="A7: large-domain construction (sap1, 24 buckets)",
        ),
    )
    for row in rows:
        assert row[1] < 30.0  # scaled path stays interactive
