"""Figure 1: SSE against storage for every summary representation.

Regenerates the paper's only figure on the reproduced 127-key Zipf(1.8)
dataset: the all-ranges SSE of NAIVE, POINT-OPT, OPT-A, A0, SAP0, SAP1
and the TOPBB wavelet synopsis across a storage sweep (log-scale y in
the paper).  The assertions encode the figure's qualitative shape:

* NAIVE is orders of magnitude worse than everything else;
* OPT-A has the lowest SSE of all histograms at every budget;
* A0 tracks OPT-A closely (the paper's headline heuristic finding);
* SAP0 is the worst range-optimised histogram per word of storage;
* POINT-OPT trails the range-optimised methods.

``test_build_*`` benchmarks time the individual constructions at a
representative mid-sweep budget.
"""

import numpy as np
import pytest

from repro.core.builders import build_by_name
from repro.experiments.figure1 import DEFAULT_BUDGETS, figure1_table, run_figure1


@pytest.fixture(scope="module")
def figure1_points(paper_data):
    return run_figure1(paper_data)


def _series(points, method):
    return {p.budget_words: p.sse for p in points if p.method == method}


def test_figure1_generate_and_record(benchmark, paper_data, record_result):
    """Time the full Figure 1 sweep and persist the regenerated series."""
    points = benchmark.pedantic(run_figure1, args=(paper_data,), iterations=1, rounds=1)
    record_result("figure1", figure1_table(points))
    assert len(points) > 30


class TestFigureOneShape:

    def test_naive_is_upper_bound_for_histograms(self, figure1_points):
        """NAIVE dwarfs every histogram method at every budget.  (The
        TOPBB wavelet can exceed NAIVE at starvation budgets — visible
        in the paper's own Figure 1, where TOPBB starts far above the
        other curves — so the bound is asserted over the histograms.)"""
        naive = _series(figure1_points, "naive")
        histograms = [
            p.sse
            for p in figure1_points
            if p.method in ("point-opt", "opt-a", "a0", "sap0", "sap1")
        ]
        assert min(naive.values()) > 10 * max(histograms)

    def test_opt_a_is_best_histogram_everywhere(self, figure1_points):
        opt = _series(figure1_points, "opt-a")
        for method in ("a0", "sap0", "sap1", "point-opt"):
            series = _series(figure1_points, method)
            for budget, value in series.items():
                assert opt[budget] <= value + 1e-6, (method, budget)

    def test_a0_tracks_opt_a(self, figure1_points):
        """Section 4: the cheap A0 heuristic performs very well — within
        a small constant of exact OPT-A across the sweep."""
        opt = _series(figure1_points, "opt-a")
        a0 = _series(figure1_points, "a0")
        ratios = [a0[b] / max(opt[b], 1e-12) for b in opt]
        assert max(ratios) < 2.5
        assert np.mean(ratios) < 1.5

    def test_sap0_worst_range_histogram_per_word(self, figure1_points):
        sap0 = _series(figure1_points, "sap0")
        for method in ("opt-a", "a0", "sap1"):
            series = _series(figure1_points, method)
            worse_count = sum(sap0[b] >= series[b] for b in sap0)
            assert worse_count >= len(sap0) - 1, method

    def test_sse_decreases_with_budget(self, figure1_points):
        for method in ("opt-a", "sap0", "sap1"):
            series = _series(figure1_points, method)
            budgets = sorted(series)
            values = [series[b] for b in budgets]
            assert all(v1 >= v2 - 1e-6 for v1, v2 in zip(values, values[1:])), method


MID_BUDGET = DEFAULT_BUDGETS[len(DEFAULT_BUDGETS) // 2]


@pytest.mark.parametrize(
    "method",
    ["naive", "point-opt", "a0", "sap0", "sap1", "wavelet-point", "wavelet-range", "opt-a"],
)
def test_build_construction(benchmark, paper_data, method):
    """Construction time of each representation at a mid-sweep budget."""
    benchmark(build_by_name, method, paper_data, MID_BUDGET)


def _seed_sweep_rows(seeds=(1, 7, 42, 20010521)):
    """Figure 1's qualitative ordering across dataset instances."""
    from repro.data.datasets import paper_dataset
    from repro.queries.evaluation import sse

    rows = []
    for seed in seeds:
        data = paper_dataset(seed=seed)
        budget = 36
        values = {
            method: sse(build_by_name(method, data, budget), data)
            for method in ("point-opt", "opt-a", "a0", "sap0", "sap1")
        }
        rows.append([seed, *(values[m] for m in ("opt-a", "a0", "point-opt", "sap1", "sap0"))])
    return rows


def test_seed_robustness_and_record(benchmark, record_result):
    """The shape conclusions must not depend on the unreported random
    instance: across seeds, OPT-A <= A0 <= the rest, SAP0 worst."""
    from repro.experiments.reporting import format_table

    rows = benchmark.pedantic(_seed_sweep_rows, iterations=1, rounds=1)
    record_result(
        "figure1_seed_sweep",
        format_table(
            ["seed", "opt-a", "a0", "point-opt", "sap1", "sap0"],
            rows,
            title="Figure 1 ordering across dataset seeds (36-word budget)",
        ),
    )
    for row in rows:
        seed, opt_a, a0, point_opt, sap1, sap0 = row
        assert opt_a <= a0 + 1e-6, seed
        assert opt_a <= point_opt + 1e-6, seed
        assert opt_a <= sap1 + 1e-6, seed
        assert max(a0, point_opt, sap1) <= sap0, seed
