"""Pool benchmark: multi-process workers vs a single-worker pool.

The multi-process tier's pitch is horizontal scaling: one shared-memory
catalog snapshot, N worker processes answering against their own attach
of the same bytes.  This benchmark pins the three claims that justify
the extra moving parts:

* speed — with 4 workers on a heavily sharded synopsis the pool must
  at least double the 1-worker throughput (gated only on machines with
  enough cores for the fan-out to be physically possible);
* exactness — every pooled estimate must equal the in-process engine's
  answer bit-for-bit, at 1 worker and at 4;
* zero-copy — the engine is unpicklable by construction, so workers
  coming up at all certifies the snapshot path never pickles it.

The measured trajectory is written to ``BENCH_pool.json`` at the repo
root so successive sessions can track pool scaling.
"""

import json
import os
import pathlib

import pytest

from repro.experiments.pool import run_pool_benchmark
from repro.experiments.reporting import format_table

REPO_ROOT = pathlib.Path(__file__).parent.parent
SPEEDUP_GATE = 2.0
#: The gate needs real parallelism: 4 workers + the driving threads.
MIN_CPUS_FOR_GATE = 4


def test_worker_pool_scales_past_single_worker(record_result):
    result = run_pool_benchmark(
        row_count=200_000,
        domain=4096,
        shards=256,
        budget_words=4096,
        query_count=8_000,
        thread_count=4,
        single_workers=1,
        pool_workers=4,
    )
    rows = [
        [
            f"{result.single_workers}-worker pool",
            f"{result.single_seconds:.3f}",
            f"{result.single_qps:,.0f}",
        ],
        [
            f"{result.pool_workers}-worker pool",
            f"{result.pool_seconds:.3f}",
            f"{result.pool_qps:,.0f}",
        ],
        ["speedup", f"{result.speedup:.2f}x", "-"],
        [
            "shared snapshot",
            f"{result.segment_bytes / 1024:.0f} KiB",
            f"pickle-free={result.engine_pickle_free}",
        ],
    ]
    record_result(
        "pool",
        format_table(
            ["configuration", "seconds", "queries/sec"],
            rows,
            title=(
                f"Worker pool ({result.query_count} queries, "
                f"{result.shards} shards, {result.thread_count} threads)"
            ),
        ),
    )
    (REPO_ROOT / "BENCH_pool.json").write_text(
        json.dumps(result.as_dict(), indent=2) + "\n"
    )
    assert result.max_abs_difference == 0.0, (
        "pooled answers must reproduce the in-process engine's estimates "
        f"(max divergence {result.max_abs_difference})"
    )
    assert result.engine_pickle_free, (
        "the engine pickled cleanly — the zero-copy claim is vacuous; "
        "workers may be receiving a pickled engine instead of attaching "
        "the shared snapshot"
    )
    if (os.cpu_count() or 1) < MIN_CPUS_FOR_GATE:
        pytest.skip(
            f"speedup gate needs >= {MIN_CPUS_FOR_GATE} CPUs "
            f"(have {os.cpu_count()}): " + result.summary()
        )
    assert result.speedup >= SPEEDUP_GATE, result.summary()
