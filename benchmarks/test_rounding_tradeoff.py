"""Theorem 4 study: OPT-A-ROUNDED's quality/time trade-off.

Definition 3 rounds the input to multiples of ``x`` before running the
pseudo-polynomial DP, shrinking the Lambda state space by a factor ``x``
while degrading the histogram by a bounded amount.  This benchmark
sweeps ``x``, measuring construction effort (DP states explored) and
resulting quality relative to exact OPT-A — the trade the theorem
promises, plus the unbiased randomised-rounding variant.
"""

import time

import pytest

from repro.core.opt_a import opt_a_search
from repro.core.opt_a_rounded import build_opt_a_rounded, round_to_multiples
from repro.experiments.reporting import format_table
from repro.queries.evaluation import sse

BUCKETS = 10
X_SWEEP = (1, 2, 4, 8, 16)


def _run_sweep(paper_data):
    exact = opt_a_search(paper_data, BUCKETS)
    rows = []
    for x in X_SWEEP:
        start = time.perf_counter()
        reduced = round_to_multiples(paper_data, x) / x
        reduced_states = opt_a_search(reduced, BUCKETS).state_count
        hist = build_opt_a_rounded(paper_data, BUCKETS, x=x)
        seconds = time.perf_counter() - start
        quality = sse(hist, paper_data)
        scaled = sse(
            build_opt_a_rounded(paper_data, BUCKETS, x=x, rebuild="scaled"), paper_data
        )
        rows.append(
            {
                "x": x,
                "states": reduced_states,
                "seconds": seconds,
                "sse": quality,
                "vs_exact": quality / max(exact.objective, 1e-12),
                "scaled_sse": scaled,
            }
        )
    return exact, rows


@pytest.fixture(scope="module")
def sweep(paper_data):
    return _run_sweep(paper_data)


def test_rounding_sweep_and_record(benchmark, paper_data, record_result):
    exact, rows = benchmark.pedantic(
        _run_sweep, args=(paper_data,), iterations=1, rounds=1
    )
    table_rows = [
        [r["x"], r["states"], r["seconds"], r["sse"], r["vs_exact"], r["scaled_sse"]]
        for r in rows
    ]
    record_result(
        "rounding_tradeoff",
        format_table(
            ["x", "DP states", "seconds", "SSE", "SSE / exact OPT-A", "Def.3-verbatim SSE"],
            table_rows,
            title=(
                f"Theorem 4 trade-off (B={BUCKETS}, exact OPT-A SSE="
                f"{exact.objective:.0f})"
            ),
        ),
    )


class TestRoundingTradeoff:
    def test_shape_rows_complete(self, sweep):
        _, rows = sweep
        assert [r["x"] for r in rows] == list(X_SWEEP)

    def test_x_equal_one_is_exact(self, sweep):
        exact, rows = sweep
        assert rows[0]["x"] == 1
        assert rows[0]["sse"] == pytest.approx(exact.objective, abs=1e-6)

    def test_quality_loss_bounded(self, sweep):
        """With the original-averages rebuild, moderate rounding stays
        within a small multiple of exact OPT-A on this dataset."""
        _, rows = sweep
        assert all(r["vs_exact"] < 25.0 for r in rows if r["x"] <= 8)

    def test_original_rebuild_beats_verbatim_scaling(self, sweep):
        """The library default sidesteps the deterministic-rounding bias
        that dominates Definition 3's verbatim value scaling."""
        _, rows = sweep
        for r in rows:
            if r["x"] > 1:
                assert r["sse"] <= r["scaled_sse"] + 1e-6

    def test_states_shrink_with_x(self, sweep):
        """The point of Theorem 4: coarser rounding -> smaller DP."""
        _, rows = sweep
        assert rows[-1]["states"] < rows[0]["states"]

    def test_randomized_rounding_tames_scaled_bias(self, paper_data):
        """Unbiased randomised rounding (the paper's closing remark in
        2.1.3) removes the systematic inflation of the verbatim scaled
        rebuild."""
        deterministic = sse(
            build_opt_a_rounded(paper_data, BUCKETS, x=2, rebuild="scaled"), paper_data
        )
        randomized = sse(
            build_opt_a_rounded(
                paper_data, BUCKETS, x=2, mode="randomized", seed=0, rebuild="scaled"
            ),
            paper_data,
        )
        assert randomized < deterministic


def test_build_rounded_x8(benchmark, paper_data):
    benchmark(build_opt_a_rounded, paper_data, BUCKETS, x=8)
