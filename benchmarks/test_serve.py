"""Serve-path benchmark: coalesced QueryServer vs a naive per-query loop.

The serving tier's contract is that concurrent one-query-at-a-time
clients still get vectorised-batch throughput, because the coalescer
merges in-flight requests onto ``execute_batch``.  This benchmark pins
that:

* speed — on a 20k-query COUNT/SUM workload fanned in from 4 threads,
  the coalescing server must beat the per-query ``execute`` loop by at
  least 5x in queries/second;
* exactness — every served estimate must equal the naive path's
  bit-for-bit (the server may never silently shed to the fallback rung
  inside the benchmark).

The measured trajectory is written to ``BENCH_serve.json`` at the repo
root so successive sessions can track serve throughput.
"""

import json
import pathlib

from repro.experiments.reporting import format_table
from repro.experiments.serving import run_serve_benchmark

REPO_ROOT = pathlib.Path(__file__).parent.parent
SPEEDUP_GATE = 5.0


def test_coalesced_server_beats_naive_loop(record_result):
    result = run_serve_benchmark(
        row_count=100_000,
        domain=1024,
        query_count=20_000,
        thread_count=4,
        method="sap1",
        budget_words=128,
        aggregates=("count", "sum"),
    )
    rows = [
        ["naive execute() loop", result.naive_seconds, f"{result.naive_qps:,.0f}"],
        ["coalesced QueryServer", result.served_seconds, f"{result.served_qps:,.0f}"],
        ["speedup", f"{result.speedup:.1f}x", "-"],
        ["batches", result.batches, f"mean size {result.mean_batch_size:.0f}"],
    ]
    record_result(
        "serve",
        format_table(
            ["path", "seconds", "queries/sec"],
            rows,
            title=(
                f"Serve path ({result.query_count} queries, "
                f"{result.thread_count} threads)"
            ),
        ),
    )
    (REPO_ROOT / "BENCH_serve.json").write_text(
        json.dumps(result.as_dict(), indent=2) + "\n"
    )
    assert result.max_abs_difference == 0.0, (
        "served answers must reproduce the naive path's estimates "
        f"(max divergence {result.max_abs_difference})"
    )
    assert result.speedup >= SPEEDUP_GATE, result.summary()
