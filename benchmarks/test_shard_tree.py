"""Shard-tree benchmark: O(log S) dyadic answering vs the O(S) flat sum.

The dyadic shard tree's contract is twofold:

* speed — at S=4096 shards, batched tree answering must beat the
  pre-tree baseline (a python-level ``totals[f:l+1].sum()`` per query,
  O(S) each) by at least 5x on a 4096-range interior workload;
* exactness — over integer-valued totals the tree, the flat sum, and
  the cumulative-prefix difference must agree **bit-for-bit** (integer
  float64 sums are exact in any association order, and the differential
  suites pin the same identity engine-wide).

The measured trajectory is written to ``BENCH_shard_tree.json`` at the
repo root so successive sessions can track interior-answering speed;
CI uploads it as an artifact.
"""

import json
import pathlib

from repro.experiments.reporting import format_table
from repro.experiments.shard_tree import run_shard_tree_benchmark

REPO_ROOT = pathlib.Path(__file__).parent.parent
SPEEDUP_GATE = 5.0
SHARDS = 4096


def test_dyadic_tree_beats_flat_sum(record_result):
    result = run_shard_tree_benchmark(shards=SHARDS, queries=4096, repeats=5)
    rows = [
        ["flat sum (O(S)/query)", f"{result.flat_seconds:.4f}", "-"],
        [
            "dyadic tree (O(log S)/query)",
            f"{result.tree_seconds:.4f}",
            f"{result.speedup:.1f}x",
        ],
        [
            "prefix diff (O(1)/query, O(S) rebuild)",
            f"{result.prefix_seconds:.4f}",
            "-",
        ],
    ]
    record_result(
        "shard_tree",
        format_table(
            ["interior strategy", "seconds", "speedup"],
            rows,
            title=(
                f"Interior answering ({result.shards} shards, depth "
                f"{result.tree_depth}, {result.queries} ranges)"
            ),
        ),
    )
    (REPO_ROOT / "BENCH_shard_tree.json").write_text(
        json.dumps(result.to_dict(), indent=2) + "\n"
    )
    assert result.bit_identical, (
        "tree, flat, and prefix interior sums must agree bit-for-bit "
        "on integer-valued totals"
    )
    assert result.tree_depth == 12
    assert result.speedup >= SPEEDUP_GATE, (
        f"dyadic tree answering managed only {result.speedup:.1f}x over "
        f"the flat sum at S={SHARDS} (gate: {SPEEDUP_GATE}x)"
    )
