"""Sharded incremental-refresh benchmark.

Dirty-shard maintenance must earn its keep: when appends land in a
single shard of a 64-shard synopsis, ``refresh_stale`` has to rebuild
exactly that one shard and beat the monolithic full rebuild of the same
column by at least 5x — while keeping shard-aligned COUNT ranges exact.
"""

from repro.experiments.reporting import format_table
from repro.experiments.sharding import run_refresh_benchmark


def test_single_shard_refresh_beats_full_rebuild(record_result):
    result = run_refresh_benchmark(
        row_count=50_000,
        domain=1024,
        shards=64,
        append_count=1_000,
        method="sap1",
        budget_words=1024,
    )
    rows = [
        ["monolithic full rebuild", result.monolithic_seconds, "-"],
        ["dirty-shard refresh", result.incremental_seconds, result.shards_rebuilt],
        ["speedup", f"{result.speedup:.1f}x", "-"],
    ]
    record_result(
        "sharded_refresh",
        format_table(
            ["path", "seconds", "shards rebuilt"],
            rows,
            title=(
                f"Incremental refresh ({result.shards} shards, "
                f"{result.row_count} rows, {result.append_count} appended)"
            ),
        ),
    )
    assert result.shards_rebuilt == 1, (
        "appends confined to one shard must dirty exactly one shard, "
        f"rebuilt {result.shards_rebuilt}"
    )
    assert result.aligned_max_abs_error == 0.0, (
        "shard-aligned ranges must stay exact after an incremental refresh"
    )
    assert result.speedup >= 5.0, result.summary()
