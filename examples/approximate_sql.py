"""Approximate SQL over the mini query engine.

AQUA-style approximate query answering: register a table, build a
synopsis catalog under a global space budget, then answer COUNT / SUM /
AVG range aggregates from the synopses — thousands of times less state
than the base table — and compare every answer with an exact scan.

Run with:  python examples/approximate_sql.py
"""

import numpy as np

import repro
from repro.engine import ApproximateQueryEngine, Table


def build_sales(rows: int = 200_000, seed: int = 7) -> Table:
    rng = np.random.default_rng(seed)
    day = rng.integers(1, 366, rows)  # day of year
    store = rng.integers(1, 40, rows)
    # Seasonal price level with noise.
    price = (
        80
        + 40 * np.sin(day / 365 * 2 * np.pi)
        + rng.exponential(25, rows)
    ).astype(np.int64)
    return Table("sales", {"day": day, "store": store, "price": price})


QUERIES = [
    "SELECT COUNT(*) FROM sales WHERE price BETWEEN 60 AND 120",
    "SELECT COUNT(*) FROM sales WHERE day BETWEEN 150 AND 250",
    "SELECT SUM(price) FROM sales WHERE price >= 200",
    "SELECT AVG(price) FROM sales WHERE price BETWEEN 50 AND 300",
    "SELECT SUM(day) FROM sales WHERE day <= 31",
    "SELECT COUNT(*) FROM sales WHERE store = 17",
]


def main() -> None:
    table = build_sales()
    engine = ApproximateQueryEngine()
    engine.register_table(table)
    engine.build_all_synopses(method="sap1", total_budget_words=600)

    print("synopsis catalog:")
    total_words = 0
    for entry in engine.synopsis_catalog():
        words = entry["count_words"] + entry["sum_words"]
        total_words += words
        print(
            f"  {entry['table']}.{entry['column']:6s} method={entry['method']} "
            f"domain={entry['domain_size']:4d} words={words}"
        )
    print(
        f"  total {total_words} words vs {table.row_count * len(table.columns)} "
        f"values in the base table\n"
    )

    print(f"{'query':62s} {'estimate':>12s} {'exact':>12s} {'rel.err':>8s}")
    for statement in QUERIES:
        result = engine.execute_sql(statement, with_exact=True)
        print(
            f"{statement:62s} {result.estimate:12.1f} {result.exact:12.1f} "
            f"{result.relative_error:8.2%}"
        )

    # Two-column predicates answer from a joint (2-D) synopsis.
    engine.build_joint_synopsis(
        "sales", "day", "price", method="wavelet2d-point", budget_words=400
    )
    joint_sql = (
        "SELECT COUNT(*) FROM sales WHERE day BETWEEN 100 AND 200 "
        "AND price BETWEEN 60 AND 140"
    )
    joint = engine.execute_sql(joint_sql, with_exact=True)
    print(
        f"\njoint predicate: {joint_sql}\n"
        f"  estimate {joint.estimate:.1f} vs exact {joint.exact:.1f} "
        f"({joint.relative_error:.2%} error from a "
        f"{joint.synopsis_words}-word 2-D synopsis)"
    )

    # Synopses survive restarts: round-trip one through bytes.
    from repro.engine import deserialize_estimator, serialize_estimator

    synopsis = repro.build_by_name("sap1", np.bincount(table.column("day")), 60)
    blob = serialize_estimator(synopsis)
    restored = deserialize_estimator(blob)
    print(
        f"\nserialisation round-trip: {len(blob)} bytes, "
        f"answers match: {restored.estimate(10, 100) == synopsis.estimate(10, 100)}"
    )


if __name__ == "__main__":
    main()
