"""Online aggregation and join-size estimation.

Two more consumers of the same synopses:

* **online aggregation** (the paper's intro, reference [7]): answer a
  range sum instantly with a guaranteed interval, then refine it by
  scanning the base data — the user stops when the interval is tight
  enough;
* **join-size estimation**: a query optimiser prices candidate join
  orders with ``|R ⋈ S| = Σ_v f_R(v)·f_S(v)``, computed from two tiny
  histograms instead of two scans.

Run with:  python examples/online_aggregation.py
"""

import numpy as np

import repro
from repro.engine import ApproximateQueryEngine, Table
from repro.queries.joins import join_size_from_engine
from repro.queries.online import OnlineRangeEstimator


def online_section() -> None:
    data = repro.data.zipf_frequencies(512, alpha=1.3, scale=5000, seed=6, permute=True)
    histogram = repro.build_a0(data, 12, rounding="none")
    online = OnlineRangeEstimator(data, histogram, chunk=64)

    low, high = 40, 430
    truth = data[low : high + 1].sum()
    print(f"progressive COUNT over [{low}, {high}] (exact = {truth:.0f}):")
    print(f"{'scanned':>8s} {'estimate':>12s} {'guaranteed ±':>13s}")
    for step in online.refine(low, high):
        print(
            f"{step.fraction_scanned:8.0%} {step.estimate:12.1f} {step.bound:13.1f}"
        )
        if step.bound <= 0.01 * truth:
            print("  (interval within 1% of the answer — a user could stop here)")
            break


def join_section() -> None:
    rng = np.random.default_rng(11)
    engine = ApproximateQueryEngine()
    engine.register_table(
        Table("orders", {"cust": rng.zipf(1.7, 80_000).clip(1, 400)})
    )
    engine.register_table(
        Table("tickets", {"cust": rng.zipf(1.9, 30_000).clip(1, 400)})
    )
    engine.build_synopsis("orders", "cust", method="a0", budget_words=60)
    engine.build_synopsis("tickets", "cust", method="a0", budget_words=60)

    estimate, exact = join_size_from_engine(
        engine, "orders", "cust", "tickets", "cust", with_exact=True
    )
    print("\nequi-join size |orders ⋈ tickets| on cust:")
    print(f"  from 120 words of synopses: {estimate:12.0f}")
    print(f"  exact (two full scans):     {exact:12.0f}")
    print(f"  relative error:             {abs(estimate - exact) / exact:12.2%}")


if __name__ == "__main__":
    online_section()
    join_section()
