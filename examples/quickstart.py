"""Quickstart: build a range-optimal histogram and answer range sums.

Run with:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    # An attribute-value distribution: data[v] = number of records with
    # attribute value v.  Here, the paper's experimental dataset: 127
    # integer keys from a randomly-rounded Zipf(1.8) distribution.
    data = repro.data.paper_dataset()
    print(f"domain size: {data.size}, total records: {data.sum():.0f}")

    # Build a few synopses with ~40 words of storage each.
    budget_words = 40
    synopses = [
        repro.build_by_name("opt-a", data, budget_words),   # exact range-optimal
        repro.build_by_name("a0", data, budget_words),      # fast heuristic
        repro.build_by_name("sap1", data, budget_words),    # polynomial-time optimal
        repro.build_by_name("wavelet-point", data, budget_words),
    ]

    # Answer a range-sum query from each synopsis.
    low, high = 5, 90
    exact = repro.ExactRangeSum(data).estimate(low, high)
    print(f"\nHow many records have attribute value in [{low}, {high}]?")
    print(f"  exact answer: {exact:.0f}")
    for synopsis in synopses:
        estimate = synopsis.estimate(low, high)
        print(
            f"  {synopsis.name:14s} ({synopsis.storage_words():3d} words): "
            f"{estimate:10.1f}   (error {abs(estimate - exact):.1f})"
        )

    # Evaluate each synopsis over ALL possible range queries — the
    # paper's SSE objective — plus derived metrics.
    print("\nQuality over all 8128 range queries:")
    for synopsis in synopses:
        report = repro.evaluate(synopsis, data)
        print(
            f"  {report.estimator_name:14s} SSE={report.sse:12.1f} "
            f"RMSE={report.rmse:8.2f} max|err|={report.max_abs_error:8.1f}"
        )

    # Squeeze more accuracy out of fixed boundaries with Section 5's
    # value re-optimisation (helps average-value histograms).
    base = synopses[0]
    improved = repro.reoptimize_values(base, data)
    print(
        f"\nreopt: {base.name} SSE {repro.sse(base, data):.1f} -> "
        f"{improved.name} SSE {repro.sse(improved, data):.1f}"
    )


if __name__ == "__main__":
    main()
