"""Selectivity estimation for query optimisation.

The classical use of the paper's synopses: a cost-based optimiser must
order the predicates of a conjunctive query so the most selective one
runs first.  It cannot afford to scan the data to find out — it asks a
per-column synopsis instead.  This example builds a synthetic orders
table, estimates the selectivity of each predicate from small SAP1
histograms, and compares the plan chosen from estimates with the plan
an oracle (exact selectivities) would choose.

Run with:  python examples/selectivity_estimation.py
"""

import numpy as np

import repro
from repro.engine import ColumnStatistics


def build_orders(rows: int = 50_000, seed: int = 42) -> dict[str, np.ndarray]:
    """A synthetic orders table with differently-shaped columns."""
    rng = np.random.default_rng(seed)
    return {
        # Heavy-tailed prices: most orders cheap, a few huge.
        "price": np.minimum(
            (rng.pareto(1.6, rows) * 30 + 1).astype(np.int64), 2000
        ),
        # Quantities cluster at small values.
        "quantity": rng.poisson(4, rows) + 1,
        # Customer ages, roughly normal.
        "age": np.clip(rng.normal(40, 14, rows), 18, 95).astype(np.int64),
    }


def estimated_selectivity(column: np.ndarray, low, high, budget_words: int) -> float:
    """Fraction of rows matching ``low <= column <= high``, from a synopsis."""
    statistics = ColumnStatistics.from_values(column)
    synopsis = repro.build_by_name("sap1", statistics.count_frequencies, budget_words)
    clipped = statistics.clip_range(low, high)
    if clipped is None:
        return 0.0
    matched = max(synopsis.estimate(*clipped), 0.0)
    return matched / statistics.row_count


def exact_selectivity(column: np.ndarray, low, high) -> float:
    return float(((column >= low) & (column <= high)).mean())


def main() -> None:
    table = build_orders()
    rows = len(table["price"])
    predicates = [
        ("price", 100, 400),
        ("quantity", 2, 6),
        ("age", 30, 35),
    ]
    budget_words = 30

    print(f"orders table: {rows} rows; synopsis budget: {budget_words} words/column\n")
    print(f"{'predicate':28s} {'estimated':>10s} {'exact':>10s} {'rel.err':>8s}")
    results = []
    for column_name, low, high in predicates:
        est = estimated_selectivity(table[column_name], low, high, budget_words)
        act = exact_selectivity(table[column_name], low, high)
        rel = abs(est - act) / max(act, 1e-9)
        results.append((column_name, low, high, est, act))
        print(
            f"{column_name} BETWEEN {low} AND {high:<6} {est:10.4f} {act:10.4f} {rel:8.1%}"
        )

    by_estimate = sorted(results, key=lambda r: r[3])
    by_exact = sorted(results, key=lambda r: r[4])
    print("\npredicate order chosen from synopses :", [r[0] for r in by_estimate])
    print("predicate order an oracle would choose:", [r[0] for r in by_exact])
    if [r[0] for r in by_estimate] == [r[0] for r in by_exact]:
        print("-> the optimiser picks the oracle's plan from a few dozen words per column")
    else:
        print("-> orders differ; inspect the per-predicate errors above")


if __name__ == "__main__":
    main()
