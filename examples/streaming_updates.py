"""Dynamic synopsis maintenance under a stream of updates.

Two maintenance strategies side by side as records stream in:

* the O(log n)-per-update :class:`DynamicPointWavelet`, whose top-B view
  stays exact with respect to the current data;
* the engine's rebuild policy: synopses go *stale* on append and are
  rebuilt on demand (``on_stale="rebuild"``).

Run with:  python examples/streaming_updates.py
"""

import numpy as np

import repro
from repro.engine import AggregateQuery, ApproximateQueryEngine, Table
from repro.wavelets.dynamic import DynamicPointWavelet


def main() -> None:
    rng = np.random.default_rng(2)
    domain = 256
    data = repro.data.zipf_frequencies(domain, alpha=1.4, scale=400, seed=1)

    # --- strategy 1: incrementally-maintained wavelet ---------------
    synopsis = DynamicPointWavelet(data, n_coefficients=24)
    mirror = data.copy()
    print("streaming 5000 single-record inserts through the dynamic wavelet...")
    for _ in range(5000):
        value = int(rng.zipf(1.6))
        if value < domain:
            synopsis.update(value, 1.0)
            mirror[value] += 1.0

    exact = repro.ExactRangeSum(mirror)
    for low, high in [(0, 15), (10, 120), (100, 255)]:
        estimate = synopsis.estimate(low, high)
        truth = exact.estimate(low, high)
        print(
            f"  range [{low:3d},{high:3d}]: estimate {estimate:9.1f} "
            f"exact {truth:9.1f} (error {abs(estimate - truth):7.1f})"
        )
    print(
        f"  synopsis: {synopsis.storage_words()} words, "
        f"{synopsis.update_count} updates applied at O(log n) each"
    )

    # --- strategy 2: engine staleness + rebuild ----------------------
    print("\nengine rebuild policy:")
    engine = ApproximateQueryEngine()
    prices = rng.integers(1, 200, 10_000)
    engine.register_table(Table("orders", {"price": prices}))
    engine.build_synopsis("orders", "price", method="sap1", budget_words=100)

    # A burst of new orders concentrated at high prices.
    engine.append_rows("orders", {"price": rng.integers(150, 200, 5_000)})
    query = AggregateQuery("orders", "price", "count", 150, 199)

    stale = engine.execute(query, with_exact=True, on_stale="serve")
    print(
        f"  stale synopsis : estimate {stale.estimate:9.1f} "
        f"exact {stale.exact:9.1f} ({stale.relative_error:.1%} error)"
    )
    fresh = engine.execute(query, with_exact=True, on_stale="rebuild")
    print(
        f"  after rebuild  : estimate {fresh.estimate:9.1f} "
        f"exact {fresh.exact:9.1f} ({fresh.relative_error:.1%} error)"
    )


def sketch_section() -> None:
    """Appendix: the sketch alternative — mergeable across streams."""
    import numpy as np

    from repro.sketches import DyadicCountMin

    rng = np.random.default_rng(5)
    print("\ndyadic Count-Min: two update streams merged without raw data:")
    site_a = DyadicCountMin(np.zeros(256), total_budget_words=3000, seed=7)
    site_b = DyadicCountMin(np.zeros(256), total_budget_words=3000, seed=7)
    truth = np.zeros(256)
    for sketch, count in ((site_a, 4000), (site_b, 6000)):
        values = rng.zipf(1.5, count)
        values = values[values < 256]
        for value in values:
            sketch.update(int(value), 1.0)
        np.add.at(truth, values, 1.0)
    combined = site_a.merge(site_b)
    exact = truth[10:101].sum()
    estimate = combined.estimate(10, 100)
    print(
        f"  COUNT over [10, 100]: merged sketch {estimate:.0f} vs exact {exact:.0f} "
        f"(one-sided: never below)"
    )


if __name__ == "__main__":
    main()
    sketch_section()
