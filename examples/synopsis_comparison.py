"""Compare every summary representation on your own data (mini Figure 1).

Sweeps a storage budget over all builders in the registry and prints the
all-ranges SSE of each — the comparison the paper's Figure 1 plots —
followed by the Section 5 re-optimisation applied on top of each
average-value histogram.

Run with:  python examples/synopsis_comparison.py [domain_size]
"""

import sys

import numpy as np

import repro
from repro.experiments import format_table, run_figure1


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 127
    data = repro.data.gaussian_mixture_frequencies(n, modes=4, scale=800, seed=11)
    print(f"dataset: {n}-value Gaussian-mixture distribution, {data.sum():.0f} records\n")

    budgets = (16, 32, 48)
    methods = ("naive", "point-opt", "a0", "sap0", "sap1", "wavelet-point", "wavelet-range")
    if n <= 160:
        methods = (*methods[:2], "opt-a-auto", *methods[2:])
    points = run_figure1(data, budgets=budgets, methods=methods)

    headers = ["method", *[f"SSE @ {b}w" for b in budgets]]
    rows = []
    for method in methods:
        series = {p.budget_words: p.sse for p in points if p.method == method}
        if method == "naive":
            value = next(p.sse for p in points if p.method == "naive")
            rows.append([method, value, value, value])
        else:
            rows.append([method, *[series.get(b, float("nan")) for b in budgets]])
    print(format_table(headers, rows, title="All-ranges SSE by storage budget"))

    print("\nSection 5 re-optimisation on top of each average-value histogram @ 32 words:")
    for method in ("naive", "point-opt", "a0") + (("opt-a-auto",) if n <= 160 else ()):
        base = repro.build_by_name(method, data, 32)
        improved = repro.reoptimize_values(base, data)
        base_sse = repro.sse(base, data)
        new_sse = repro.sse(improved, data)
        gain = 100.0 * (base_sse - new_sse) / base_sse if base_sse else 0.0
        print(f"  {method:10s} {base_sse:14.1f} -> {new_sse:14.1f}  ({gain:+.1f}%)")


if __name__ == "__main__":
    main()
