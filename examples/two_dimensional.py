"""Two-dimensional range aggregates (the paper's footnote-2 extension).

A joint distribution of two attributes — say (day-of-year, price-band)
of sales — summarised three ways: the 2-D point top-B wavelet, the
Theorem-9-style range-optimal wavelet over the virtual rectangle-sum
tensor, and a product-grid histogram whose axis boundaries come from
1-D SAP1 builds on the marginals.

Run with:  python examples/two_dimensional.py
"""

import numpy as np

from repro.multidim import (
    ExactRangeSum2D,
    GridHistogram,
    PointTopBWavelet2D,
    RangeOptimalWavelet2D,
    build_grid_histogram,
    random_rectangles,
    sse_2d,
)


def build_joint_distribution(rows: int = 32, cols: int = 32, seed: int = 5) -> np.ndarray:
    """A correlated joint frequency grid: seasonal ridge + hot block."""
    rng = np.random.default_rng(seed)
    x = np.arange(rows)[:, None]
    y = np.arange(cols)[None, :]
    ridge = 60 * np.exp(-0.5 * ((x - y) / 6.0) ** 2)  # correlation ridge
    hot = np.zeros((rows, cols))
    hot[4:9, 20:27] = 90.0  # promotional block
    noise = rng.uniform(0, 5, (rows, cols))
    return np.round(ridge + hot + noise)


def main() -> None:
    grid = build_joint_distribution()
    exact = ExactRangeSum2D(grid)
    print(f"grid: {grid.shape}, total records {grid.sum():.0f}")

    budget_coefficients = 48
    synopses = [
        PointTopBWavelet2D(grid, budget_coefficients),
        RangeOptimalWavelet2D(grid, budget_coefficients),
        build_grid_histogram(grid, 8, 8, method="sap1"),
        GridHistogram(grid, np.arange(0, 32, 4), np.arange(0, 32, 4)),  # equi-width grid
    ]

    # One concrete query.
    rect = (4, 18, 10, 28)  # covers most of the hot block
    truth = exact.estimate(*rect)
    print(f"\nrectangle sum over {rect}: exact = {truth:.0f}")
    for synopsis in synopses:
        estimate = synopsis.estimate(*rect)
        print(
            f"  {synopsis.name:15s} ({synopsis.storage_words():4d} words): "
            f"{estimate:10.1f}  (error {abs(estimate - truth):8.1f})"
        )

    # Quality over a sampled rectangle workload.
    workload = random_rectangles(grid.shape, 4000, seed=9)
    print(f"\nSSE over {len(workload)} random rectangles:")
    for synopsis in synopses:
        print(
            f"  {synopsis.name:15s} words={synopsis.storage_words():4d} "
            f"SSE={sse_2d(synopsis, grid, workload):14.1f}"
        )

    # Section 5 in 2-D: re-optimise the grid histogram's cell values.
    from repro.multidim import reoptimize_grid_values

    base = synopses[2]
    improved = reoptimize_grid_values(base, grid, workload=workload)
    print(
        f"\n2-D reopt on {base.name}: "
        f"{sse_2d(base, grid, workload):,.0f} -> "
        f"{sse_2d(improved, grid, workload):,.0f}"
    )


if __name__ == "__main__":
    main()
