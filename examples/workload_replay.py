"""Replay a day of query traffic and compare staleness policies.

A system-level view: thousands of range aggregates interleaved with
inserts, replayed twice — once serving stale synopses, once rebuilding
them on demand — with the error profiles side by side, plus the
advisor's method choice for this column.

Run with:  python examples/workload_replay.py
"""

import numpy as np

from repro.engine import (
    ApproximateQueryEngine,
    Table,
    TrafficSpec,
    recommend,
    simulate_traffic,
)


def fresh_engine(seed: int = 17) -> ApproximateQueryEngine:
    rng = np.random.default_rng(seed)
    engine = ApproximateQueryEngine()
    # A skewed price column: most orders cheap, a heavy tail.
    prices = np.minimum((rng.pareto(1.8, 30_000) * 40 + 1).astype(int), 500)
    engine.register_table(Table("orders", {"price": prices}))
    engine.build_synopsis("orders", "price", method="sap1", budget_words=120)
    return engine


def main() -> None:
    probe = fresh_engine()
    values = probe.table("orders").column("price")
    frequencies = np.bincount(values).astype(float)
    print("advisor ranking for this column at 60 words:")
    for choice in recommend(frequencies, 60)[:4]:
        print(f"  {choice.method:12s} SSE={choice.sse:14.1f}")

    spec = TrafficSpec(
        table="orders",
        column="price",
        query_count=400,
        insert_every=20,      # a burst of new orders every 20 queries
        insert_batch=1500,
        seed=3,
    )
    print(f"\nreplaying {spec.query_count} aggregates with inserts every "
          f"{spec.insert_every} queries ({spec.insert_batch} rows each):")
    for policy in ("serve", "rebuild"):
        report = simulate_traffic(fresh_engine(), spec, on_stale=policy)
        print(f"  on_stale={policy:8s} -> {report.summary()}")


if __name__ == "__main__":
    main()
