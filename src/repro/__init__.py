"""repro: range-optimal summary statistics for range-sum aggregates.

A complete reproduction of Gilbert, Kotidis, Muthukrishnan & Strauss,
"Optimal and Approximate Computation of Summary Statistics for Range
Aggregates" (PODS 2001): provably range-optimal histograms (OPT-A,
OPT-A-ROUNDED, SAP0, SAP1), the A0 and POINT-OPT baselines, the
Section 5 value re-optimisation, and Haar wavelet synopses including the
near-linear range-optimal selection of Theorem 9 — plus the workload,
evaluation, and approximate-query-engine machinery around them.

Quickstart
----------
>>> import numpy as np, repro
>>> data = repro.data.zipf_frequencies(127, alpha=1.8, seed=7)
>>> hist = repro.build_sap1(data, n_buckets=8)
>>> hist.estimate(10, 90)  # ~ sum(data[10..91])  # doctest: +SKIP
>>> repro.evaluate(hist, data).sse  # doctest: +SKIP
"""

from repro import (
    core,
    data,
    engine,
    errors,
    multidim,
    observability,
    queries,
    sketches,
    wavelets,
)
from repro.core import (
    AverageHistogram,
    SapHistogram,
    build_a0,
    build_by_name,
    build_equi_depth,
    build_equi_width,
    build_naive,
    build_opt_a,
    build_opt_a_auto,
    build_opt_a_rounded,
    build_point_opt,
    build_minimax,
    build_prefix_opt,
    build_sap0,
    build_sap1,
    build_sap_poly,
    build_scaled,
    build_workload_aware,
    buckets_for_budget,
    describe,
    refine_boundaries,
    reoptimize_values,
)
from repro.queries import (
    ExactRangeSum,
    Workload,
    all_ranges,
    evaluate,
    point_queries,
    prefix_ranges,
    random_ranges,
    sse,
)
from repro.wavelets import build_wavelet_point, build_wavelet_range

__version__ = "1.0.0"

__all__ = [
    "core",
    "data",
    "engine",
    "multidim",
    "observability",
    "sketches",
    "errors",
    "queries",
    "wavelets",
    "AverageHistogram",
    "SapHistogram",
    "build_naive",
    "build_equi_width",
    "build_equi_depth",
    "build_prefix_opt",
    "build_minimax",
    "build_sap_poly",
    "build_scaled",
    "build_workload_aware",
    "build_point_opt",
    "build_a0",
    "build_opt_a",
    "build_opt_a_auto",
    "build_opt_a_rounded",
    "build_sap0",
    "build_sap1",
    "build_by_name",
    "buckets_for_budget",
    "describe",
    "reoptimize_values",
    "refine_boundaries",
    "build_wavelet_point",
    "build_wavelet_range",
    "ExactRangeSum",
    "Workload",
    "all_ranges",
    "random_ranges",
    "prefix_ranges",
    "point_queries",
    "evaluate",
    "sse",
    "__version__",
]
