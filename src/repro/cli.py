"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figure1``   regenerate the paper's Figure 1 sweep (synthetic or CSV data)
``compare``   compare every synopsis at one budget on a dataset
``estimate``  load a CSV table and answer an approximate SQL aggregate
``timing``    construction-time table across domain sizes

Datasets come either from a CSV column (``--csv file --column name``,
raw attribute values that get binned into a frequency vector) or from a
named generator (``--generate zipf --n 127 --seed 7``).
"""

from __future__ import annotations

import argparse
import csv
import sys

import numpy as np

from repro.core.builders import BUILDER_REGISTRY, build_by_name
from repro.data import (
    gaussian_mixture_frequencies,
    paper_dataset,
    uniform_frequencies,
    zipf_frequencies,
)
from repro.engine import ApproximateQueryEngine, Table
from repro.errors import BuildFailedError, BuildTimeoutError, ReproError

#: Distinct exit codes for the resilience failure modes, so callers can
#: tell a deadline expiry (retry with a cheaper method) from an
#: exhausted fallback ladder (investigate the builders).
EXIT_BUILD_TIMEOUT = 3
EXIT_BUILD_FAILED = 4
#: ``serve --workers N`` exits with this when the drain deadline passed
#: and surviving workers had to be force-killed — the shutdown was not
#: clean even though every submitted query was resolved one way or the
#: other.  A supervisor (systemd, k8s) keys restart policy off this.
EXIT_FORCED_SHUTDOWN = 5
from repro.experiments.figure1 import figure1_table, run_figure1
from repro.experiments.reporting import ascii_log_chart, format_table
from repro.experiments.runtimes import run_construction_timing
from repro.queries.evaluation import evaluate

GENERATORS = {
    "paper": lambda n, seed: paper_dataset(seed=seed) if seed is not None else paper_dataset(),
    "zipf": lambda n, seed: zipf_frequencies(n, alpha=1.8, seed=seed),
    "uniform": lambda n, seed: uniform_frequencies(n, seed=seed),
    "mixture": lambda n, seed: gaussian_mixture_frequencies(n, seed=seed),
}

#: Methods shown by ``compare`` (exact OPT-A included via the auto builder).
COMPARE_METHODS = (
    "naive",
    "equi-width",
    "equi-depth",
    "point-opt",
    "a0",
    "a0-reopt",
    "opt-a-auto",
    "sap0",
    "sap1",
    "wavelet-point",
    "wavelet-range",
)


def _read_csv_column(path: str, column: str) -> np.ndarray:
    """Raw integer attribute values from one CSV column."""
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or column not in reader.fieldnames:
            available = reader.fieldnames or []
            raise ReproError(
                f"column {column!r} not found in {path}; available: {available}"
            )
        values = [float(row[column]) for row in reader if row[column] != ""]
    if not values:
        raise ReproError(f"column {column!r} in {path} is empty")
    return np.asarray(values)


def _frequencies_from_args(args) -> np.ndarray:
    if args.csv:
        if not args.column:
            raise ReproError("--csv requires --column")
        raw = _read_csv_column(args.csv, args.column)
        from repro.engine.column import ColumnStatistics

        return ColumnStatistics.from_values(raw).count_frequencies
    generator = GENERATORS[args.generate]
    return generator(args.n, args.seed)


def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-build-attempt deadline in milliseconds; expiry raises "
        f"BuildTimeoutError (exit code {EXIT_BUILD_TIMEOUT}) unless a "
        "fallback chain catches it",
    )
    parser.add_argument(
        "--fallback-chain",
        default=None,
        help="builder rungs tried after the primary --method fails or "
        "times out, e.g. 'a0,naive' or 'a0 -> naive'; exhaustion exits "
        f"with code {EXIT_BUILD_FAILED}",
    )


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--csv", help="CSV file with raw attribute values")
    parser.add_argument("--column", help="column name inside --csv")
    parser.add_argument(
        "--generate",
        choices=sorted(GENERATORS),
        default="paper",
        help="synthetic dataset when no --csv is given (default: paper)",
    )
    parser.add_argument("--n", type=int, default=127, help="synthetic domain size")
    parser.add_argument("--seed", type=int, default=None, help="synthetic data seed")


def _cmd_figure1(args) -> int:
    data = _frequencies_from_args(args)
    methods = list(args.methods) if args.methods else None
    points = run_figure1(
        data,
        budgets=tuple(args.budgets),
        **({"methods": methods} if methods else {}),
    )
    print(figure1_table(points))
    if args.chart:
        series: dict[str, dict[int, float]] = {}
        for point in points:
            series.setdefault(point.method, {})[point.budget_words] = point.sse
        print()
        print(ascii_log_chart(series, title="Figure 1 (log10 SSE vs words)"))
    return 0


def _cmd_inspect(args) -> int:
    from repro.core.describe import describe

    data = _frequencies_from_args(args)
    estimator = build_by_name(args.method, data, args.budget)
    print(describe(estimator, data))
    return 0


def _cmd_advise(args) -> int:
    from repro.engine.advisor import recommend

    data = _frequencies_from_args(args)
    ranked = recommend(data, args.budget)
    rows = [
        [choice.method, choice.storage_words if not choice.error else "-",
         choice.sse if not choice.error else f"failed: {choice.error}"[:48]]
        for choice in ranked
    ]
    print(
        format_table(
            ["method", "words", "sampled-workload SSE"],
            rows,
            title=f"Advisor ranking (n={data.size}, budget={args.budget} words)",
        )
    )
    return 0


def _cmd_compare(args) -> int:
    data = _frequencies_from_args(args)
    rows = []
    for method in COMPARE_METHODS:
        try:
            estimator = build_by_name(method, data, args.budget)
        except ReproError as error:
            rows.append([method, "-", f"skipped: {error}"[:60], "-"])
            continue
        report = evaluate(estimator, data)
        rows.append(
            [method, report.storage_words, report.sse, report.max_abs_error]
        )
    print(
        format_table(
            ["method", "words", "all-ranges SSE", "max |error|"],
            rows,
            title=f"Synopsis comparison (n={data.size}, budget={args.budget} words)",
        )
    )
    return 0


def _print_engine_stats(engine: ApproximateQueryEngine) -> None:
    stats = engine.stats()
    hits = stats.pop("synopsis_hits")
    print("engine stats:")
    for key in sorted(stats):
        value = stats[key]
        rendered = f"{value:.6g}" if isinstance(value, float) else value
        print(f"  {key}: {rendered}")
    for column, count in sorted(hits.items()):
        print(f"  hits[{column}]: {count}")


def _print_query_result(result, prefix: str = "") -> None:
    if isinstance(result, list):  # GROUP BY → list[GroupResult]
        for row in result:
            line = f"{prefix}group {row.group:g}: estimate {row.estimate:.2f}"
            if row.exact is not None:
                line += f"  exact {row.exact:.2f}"
            print(line)
        return
    print(f"{prefix}estimate: {result.estimate:.2f}")
    if result.exact is not None:
        print(f"{prefix}exact:    {result.exact:.2f}")
        relative = getattr(result, "relative_error", None)
        if relative is not None:
            print(f"{prefix}rel.err:  {relative:.2%}")
    words = getattr(result, "synopsis_words", None)
    suffix = f" ({words} words)" if words is not None else ""
    print(f"{prefix}synopsis: {result.synopsis_name}{suffix}")
    level = getattr(result, "degradation", None)
    if level is not None:
        print(f"{prefix}served:   {level}")


def _cmd_estimate(args) -> int:
    from repro.engine.engine import AggregateQuery
    from repro.engine.sql import parse_query

    raw = _read_csv_column(args.csv, args.column)
    engine = ApproximateQueryEngine()
    engine.register_table(Table(args.table, {args.column: np.round(raw).astype(np.int64)}))
    engine.build_synopsis(
        args.table,
        args.column,
        method=args.method,
        budget_words=args.budget,
        shards=args.shards,
        fallback=args.fallback_chain,
        deadline_ms=args.deadline_ms,
    )
    statements = args.query
    if len(statements) == 1:
        result = engine.execute_sql(statements[0], with_exact=not args.no_exact)
        _print_query_result(result)
    else:
        parsed = [parse_query(statement) for statement in statements]
        if all(isinstance(query, AggregateQuery) for query in parsed):
            results = engine.execute_batch(parsed, with_exact=not args.no_exact)
        else:
            results = [
                engine.execute_sql(statement, with_exact=not args.no_exact)
                for statement in statements
            ]
        for statement, result in zip(statements, results):
            print(f"-- {statement}")
            _print_query_result(result, prefix="   ")
    if args.stats:
        _print_engine_stats(engine)
    return 0


def _cmd_bench_batch(args) -> int:
    from repro.experiments.batching import run_batch_benchmark

    result = run_batch_benchmark(
        row_count=args.rows,
        domain=args.domain,
        query_count=args.queries,
        method=args.method,
        budget_words=args.budget,
        shards=args.shards,
        fallback=args.fallback_chain,
        deadline_ms=args.deadline_ms,
    )
    rows = [
        ["scalar execute() loop", result.scalar_seconds, result.scalar_qps],
        ["execute_batch()", result.batch_seconds, result.batch_qps],
    ]
    print(
        format_table(
            ["path", "seconds", "queries/sec"],
            rows,
            title=(
                f"Batch pipeline ({result.query_count} queries, "
                f"{result.row_count} rows, {args.method})"
            ),
        )
    )
    print(
        f"speedup: {result.speedup:.1f}x   "
        f"max |estimate diff|: {result.max_abs_difference:.3g}"
    )
    return 0


def _cmd_bench_refresh(args) -> int:
    import json

    from repro.experiments.sharding import run_refresh_benchmark

    result = run_refresh_benchmark(
        row_count=args.rows,
        domain=args.domain,
        shards=args.shards,
        append_count=args.appends,
        method=args.method,
        budget_words=args.budget,
        fallback=args.fallback_chain,
        deadline_ms=args.deadline_ms,
    )
    rows = [
        ["monolithic full rebuild", result.monolithic_seconds, 1],
        ["dirty-shard refresh", result.incremental_seconds, result.shards_rebuilt],
    ]
    print(
        format_table(
            ["path", "seconds", "shards rebuilt"],
            rows,
            title=(
                f"Incremental refresh ({result.shards} shards, "
                f"{result.row_count} rows, {args.method})"
            ),
        )
    )
    print(
        f"speedup: {result.speedup:.1f}x   "
        f"aligned max |err|: {result.aligned_max_abs_error:.3g}"
    )
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2)
        print(f"result written to {args.output}")
    return 0


def _cmd_bench_shard_tree(args) -> int:
    import json

    from repro.experiments.shard_tree import run_shard_tree_benchmark

    result = run_shard_tree_benchmark(
        shards=args.shards,
        queries=args.queries,
        repeats=args.repeats,
    )
    rows = [
        ["flat sum (O(S)/query)", result.flat_seconds],
        ["dyadic tree (O(log S)/query)", result.tree_seconds],
        ["prefix diff (O(1)/query, O(S) rebuild)", result.prefix_seconds],
    ]
    print(
        format_table(
            ["interior strategy", "seconds"],
            rows,
            title=(
                f"Interior answering ({result.shards} shards, depth "
                f"{result.tree_depth}, {result.queries} ranges)"
            ),
        )
    )
    print(
        f"speedup: {result.speedup:.1f}x   "
        f"bit-identical: {result.bit_identical}"
    )
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2)
        print(f"result written to {args.output}")
    return 0


def _cmd_compact(args) -> int:
    import json

    from repro.experiments.shard_tree import run_compaction_demo

    result = run_compaction_demo(
        row_count=args.rows,
        domain=args.domain,
        shards=args.shards,
        append_count=args.appends,
        method=args.method,
        budget_words=args.budget,
        hot_tail_shards=args.hot_tail,
        max_run_length=args.max_run,
    )
    rows = [[str(first), str(last), last - first + 1] for first, last in result.runs]
    print(
        format_table(
            ["run first", "run last", "shards"],
            rows,
            title=(
                f"Compaction {result.shards_before} -> "
                f"{result.shards_after} shards (generation "
                f"{result.generation})"
            ),
        )
    )
    print(result.summary())
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2)
        print(f"result written to {args.output}")
    return 0


def _cmd_optimize(args) -> int:
    import json

    from repro.experiments.adaptive import run_adaptive_benchmark

    result = run_adaptive_benchmark(
        domain=args.domain,
        shards=args.shards,
        budget_words=args.budget,
        queries=args.queries,
        seed=args.seed,
        method=args.method,
    )
    rows = [
        [
            "mass split (uniform prior)",
            f"{result.uniform_sse:.2f}",
            str(result.hot_budget_before),
            "-",
        ],
        [
            "workload-adaptive split",
            f"{result.optimized_sse:.2f}",
            str(result.hot_budget_after),
            f"{result.improvement:.1f}x",
        ],
    ]
    print(
        format_table(
            ["budget policy", "observed SSE", "hot-band words", "improvement"],
            rows,
            title=(
                f"Adaptive reallocation ({result.shards} shards, "
                f"{result.budget_words} words, {result.query_count} "
                f"hot-band queries)"
            ),
        )
    )
    print(result.summary())
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2)
        print(f"result written to {args.output}")
    return 0


def _serve_with_pool(args) -> int:
    """``serve --workers N``: answer the workload from worker processes.

    Publishes one shared-memory catalog snapshot, brings up ``N``
    supervised workers, submits the whole workload, then drains within
    ``--drain-timeout-ms``.  Every submitted query resolves — answered
    fresh, explicitly degraded, or failed with the drain cut-off — and
    the exit code reports how the shutdown went: 0 when every worker
    left on request, :data:`EXIT_FORCED_SHUTDOWN` when the budget
    expired and survivors were force-killed.
    """
    import json
    import time

    from repro.engine.engine import AggregateQuery
    from repro.queries.workload import random_ranges
    from repro.serving import PoolServer

    rng = np.random.default_rng(0)
    engine = ApproximateQueryEngine()
    engine.register_table(
        Table("serve", {"v": rng.integers(0, args.domain, args.rows)})
    )
    engine.build_synopsis(
        "serve", "v", method=args.method, budget_words=args.budget,
        shards=args.shards,
    )
    workload = random_ranges(args.domain, args.queries, seed=1)
    queries = [
        AggregateQuery(
            "serve", "v", "sum" if i % 2 else "count", int(low), int(high)
        )
        for i, (low, high) in enumerate(zip(workload.lows, workload.highs))
    ]
    expected = [
        result.estimate
        for result in engine.execute_batch(queries, on_stale="serve")
    ]

    server = PoolServer(
        engine,
        workers=args.workers,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        max_pending=args.queries + 1,
        drain_timeout_ms=args.drain_timeout_ms,
        cache_capacity=1,
    )
    try:
        server.install_sigterm_handler()
    except ValueError:  # not the main thread (embedded use)
        pass
    started = time.perf_counter()
    server.start()
    attach_deadline = time.monotonic() + 30.0
    while time.monotonic() < attach_deadline:
        snapshot = server.supervisor.snapshot()
        live = sum(1 for slot in snapshot.values() if slot["heartbeats"] >= 1)
        if live >= args.workers:
            break
        time.sleep(0.01)
    futures = server.submit_many(queries)
    clean = server.drain(timeout_ms=args.drain_timeout_ms)
    elapsed = time.perf_counter() - started

    fresh = degraded = failed = 0
    divergence = 0.0
    for future, want in zip(futures, expected):
        error = future.exception(timeout=0.1)
        if error is not None:
            failed += 1
            continue
        result = future.result(timeout=0.1)
        if result.degradation in ("stale", "fallback", "progressive"):
            degraded += 1
        else:
            fresh += 1
            divergence = max(divergence, abs(result.estimate - want))

    stats = server.stats()["pool"]
    print(
        format_table(
            ["outcome", "queries"],
            [
                ["fresh (bit-identical)", fresh],
                ["explicitly degraded", degraded],
                ["failed (drain cut-off)", failed],
            ],
            title=(
                f"Pool serve ({args.queries} queries, "
                f"{args.workers} workers, {args.method})"
            ),
        )
    )
    qps = args.queries / elapsed if elapsed else 0.0
    print(
        f"elapsed: {elapsed:.3f}s ({qps:,.0f} q/s)   "
        f"batches: {stats['dispatched']}   retries: {stats['retries']}   "
        f"worker exits: {stats['worker_exits']}   "
        f"max |estimate diff|: {divergence:.3g}"
    )
    if clean:
        print("drain: clean")
    else:
        print(
            f"drain: FORCED after {args.drain_timeout_ms:.0f} ms "
            f"(exit code {EXIT_FORCED_SHUTDOWN})"
        )
    if args.output:
        record = {
            "workers": args.workers,
            "queries": args.queries,
            "fresh": fresh,
            "degraded": degraded,
            "failed": failed,
            "seconds": elapsed,
            "drain_clean": clean,
            "max_abs_difference": divergence,
            "pool": stats,
        }
        with open(args.output, "w") as handle:
            json.dump(record, handle, indent=2, default=str)
        print(f"result written to {args.output}")
    return 0 if clean else EXIT_FORCED_SHUTDOWN


def _cmd_serve(args) -> int:
    """Drive a workload through the coalescing QueryServer and report.

    Offline stand-in for a long-lived daemon: builds a synopsis, fans
    the workload in from ``--threads`` client threads through one
    :class:`~repro.serving.QueryServer`, and prints throughput for the
    coalesced path next to the naive per-query loop, plus the server's
    own counters (cache hits, batches, shed levels).  With
    ``--workers N`` the workload is served by a multi-process
    :class:`~repro.serving.PoolServer` instead (see
    :func:`_serve_with_pool`).
    """
    import json

    from repro.experiments.serving import run_serve_benchmark

    if args.workers:
        return _serve_with_pool(args)

    result = run_serve_benchmark(
        row_count=args.rows,
        domain=args.domain,
        query_count=args.queries,
        thread_count=args.threads,
        method=args.method,
        budget_words=args.budget,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
    )
    rows = [
        ["naive execute() loop", result.naive_seconds, f"{result.naive_qps:,.0f}"],
        ["coalesced QueryServer", result.served_seconds, f"{result.served_qps:,.0f}"],
    ]
    print(
        format_table(
            ["path", "seconds", "queries/sec"],
            rows,
            title=(
                f"Serve path ({result.query_count} queries, "
                f"{result.thread_count} threads, {args.method})"
            ),
        )
    )
    print(
        f"speedup: {result.speedup:.1f}x   "
        f"batches: {result.batches} (mean size {result.mean_batch_size:.0f})   "
        f"cache hits: {result.cache_hits}   "
        f"max |estimate diff|: {result.max_abs_difference:.3g}"
    )
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(result.as_dict(), handle, indent=2)
        print(f"result written to {args.output}")
    return 0


def _cmd_bench_pool(args) -> int:
    """Time an N-worker process pool against a 1-worker pool."""
    import json

    from repro.experiments.pool import run_pool_benchmark

    result = run_pool_benchmark(
        row_count=args.rows,
        domain=args.domain,
        shards=args.shards,
        budget_words=args.budget,
        query_count=args.queries,
        thread_count=args.threads,
        pool_workers=args.workers,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
    )
    rows = [
        [
            f"{result.single_workers}-worker pool",
            result.single_seconds,
            f"{result.single_qps:,.0f}",
        ],
        [
            f"{result.pool_workers}-worker pool",
            result.pool_seconds,
            f"{result.pool_qps:,.0f}",
        ],
    ]
    print(
        format_table(
            ["configuration", "seconds", "queries/sec"],
            rows,
            title=(
                f"Worker pool ({result.query_count} queries, "
                f"{result.shards} shards, {result.thread_count} threads)"
            ),
        )
    )
    print(
        f"speedup: {result.speedup:.2f}x   "
        f"pickle-free: {result.engine_pickle_free}   "
        f"snapshot: {result.segment_bytes / 1024:.0f} KiB shared   "
        f"max |estimate diff|: {result.max_abs_difference:.3g}"
    )
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(result.as_dict(), handle, indent=2)
        print(f"result written to {args.output}")
    return 0


def _cmd_coverage_intervals(args) -> int:
    """Run the progressive-answer coverage study over one or more seeds.

    Prints per-stage empirical coverage against the claimed confidence
    for each seed and gates on ``--min-coverage`` at every stage plus
    bitwise exactness of the final stage.  ``--output`` writes the list
    of per-seed study records as JSON — the CI interval-coverage
    artifact (validated by ``validate-bench``).
    """
    import json

    from repro.experiments.progressive import run_coverage_study

    studies = []
    failed = False
    for seed in args.seeds:
        study = run_coverage_study(
            row_count=args.rows,
            domain=args.domain,
            query_count=args.queries,
            shards=args.shards,
            method=args.method,
            budget_words=args.budget,
            confidence=args.confidence,
            seed=seed,
            append_rows=args.append_rows,
        )
        studies.append(study)
        ok = (
            study.min_stage_coverage >= args.min_coverage
            and study.final_stage_bitwise
        )
        failed = failed or not ok
        print(("PASS  " if ok else "FAIL  ") + study.summary())
    if args.output:
        with open(args.output, "w") as handle:
            json.dump([study.as_dict() for study in studies], handle, indent=2)
        print(f"coverage artifact written to {args.output}")
    if failed:
        print(
            f"error: coverage below {args.min_coverage} (or final stage "
            "not bitwise) on at least one seed",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_validate_bench(args) -> int:
    """Schema-check ``BENCH_*.json`` artifacts; non-zero on violations."""
    from repro.experiments.bench_schema import (
        validate_artifact,
        validate_bench_artifacts,
    )

    if args.paths:
        reports = {path: validate_artifact(path) for path in args.paths}
    else:
        reports = validate_bench_artifacts(args.root)
    if not reports:
        print(f"no BENCH_*.json artifacts found under {args.root}")
        return 1
    bad = 0
    for name in sorted(reports):
        problems = reports[name]
        if problems:
            bad += 1
            print(f"FAIL  {name}")
            for problem in problems:
                print(f"      - {problem}")
        else:
            print(f"ok    {name}")
    if bad:
        print(f"error: {bad} artifact(s) failed validation", file=sys.stderr)
        return 1
    return 0


def _cmd_dump_metrics(args) -> int:
    """Replay a workload against a fresh engine and emit its metrics.

    COUNT and SUM batches ride the batch pipeline with the requested
    ``--audit-rate``, so the dump contains populated error windows, an
    error report, and batch timings — the artifact the CI benchmark job
    uploads, and the JSON/Prometheus surface a scraper would poll on a
    long-lived engine.
    """
    from repro.queries.workload import random_ranges

    data = _frequencies_from_args(args)
    counts = np.maximum(np.round(np.asarray(data)).astype(np.int64), 0)
    values = np.repeat(np.arange(counts.size), counts)
    if values.size == 0:
        raise ReproError("dataset has no mass; nothing to register")
    engine = ApproximateQueryEngine()
    engine.register_table(Table(args.table, {args.column_name: values}))
    engine.build_synopsis(
        args.table, args.column_name, method=args.method, budget_words=args.budget
    )
    workload = random_ranges(counts.size, args.queries, seed=args.seed or 0)
    for aggregate in ("count", "sum"):
        engine.execute_batch(
            workload.as_batch(args.table, args.column_name, aggregate=aggregate),
            audit_rate=args.audit_rate,
        )
    text = engine.dump_metrics(format=args.format)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"metrics written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.report import generate_report

    text = generate_report()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_timing(args) -> int:
    points = run_construction_timing(
        sizes=tuple(args.sizes), include_opt_a_up_to=args.opt_a_up_to
    )
    rows = [[p.method, p.n, p.seconds] for p in points]
    print(format_table(["method", "n", "seconds"], rows, title="Construction time"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Range-aggregate summary statistics (PODS 2001 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    figure1 = commands.add_parser("figure1", help="regenerate the Figure 1 sweep")
    _add_dataset_arguments(figure1)
    figure1.add_argument(
        "--budgets", type=int, nargs="+", default=[12, 20, 28, 36, 44, 52, 60]
    )
    figure1.add_argument(
        "--methods", nargs="+", choices=sorted(BUILDER_REGISTRY), default=None
    )
    figure1.add_argument("--chart", action="store_true", help="also draw an ASCII chart")
    figure1.set_defaults(handler=_cmd_figure1)

    inspect = commands.add_parser("inspect", help="show a synopsis's structure")
    _add_dataset_arguments(inspect)
    inspect.add_argument("--method", default="opt-a-auto", choices=sorted(BUILDER_REGISTRY))
    inspect.add_argument("--budget", type=int, default=24)
    inspect.set_defaults(handler=_cmd_inspect)

    advise = commands.add_parser("advise", help="rank synopsis methods for a dataset")
    _add_dataset_arguments(advise)
    advise.add_argument("--budget", type=int, default=40)
    advise.set_defaults(handler=_cmd_advise)

    compare = commands.add_parser("compare", help="compare synopses at one budget")
    _add_dataset_arguments(compare)
    compare.add_argument("--budget", type=int, default=40, help="storage budget in words")
    compare.set_defaults(handler=_cmd_compare)

    estimate = commands.add_parser("estimate", help="approximate SQL over a CSV column")
    estimate.add_argument("--csv", required=True)
    estimate.add_argument("--column", required=True)
    estimate.add_argument("--table", default="t", help="table name used in the query")
    estimate.add_argument("--method", default="sap1", choices=sorted(BUILDER_REGISTRY))
    estimate.add_argument("--budget", type=int, default=64)
    estimate.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the domain into this many shards (aligned ranges exact)",
    )
    estimate.add_argument(
        "--query",
        required=True,
        action="append",
        help="e.g. 'SELECT COUNT(*) FROM t WHERE x BETWEEN 1 AND 9'; "
        "repeat to answer several (aggregates ride the batch pipeline)",
    )
    _add_resilience_arguments(estimate)
    estimate.add_argument("--no-exact", action="store_true", help="skip the exact scan")
    estimate.add_argument(
        "--stats", action="store_true", help="print the engine's execution counters"
    )
    estimate.set_defaults(handler=_cmd_estimate)

    bench_batch = commands.add_parser(
        "bench-batch", help="time scalar execute() against execute_batch()"
    )
    bench_batch.add_argument("--rows", type=int, default=100_000)
    bench_batch.add_argument("--domain", type=int, default=1024)
    bench_batch.add_argument("--queries", type=int, default=10_000)
    bench_batch.add_argument("--method", default="sap1", choices=sorted(BUILDER_REGISTRY))
    bench_batch.add_argument("--budget", type=int, default=128)
    bench_batch.add_argument(
        "--shards", type=int, default=1, help="shard the synopsis before benchmarking"
    )
    _add_resilience_arguments(bench_batch)
    bench_batch.set_defaults(handler=_cmd_bench_batch)

    bench_refresh = commands.add_parser(
        "bench-refresh",
        help="time dirty-shard incremental refresh against a full rebuild",
    )
    bench_refresh.add_argument("--rows", type=int, default=200_000)
    bench_refresh.add_argument("--domain", type=int, default=2048)
    bench_refresh.add_argument("--shards", type=int, default=64)
    bench_refresh.add_argument(
        "--appends", type=int, default=2_000, help="rows appended into one shard"
    )
    bench_refresh.add_argument(
        "--method", default="sap1", choices=sorted(BUILDER_REGISTRY)
    )
    bench_refresh.add_argument("--budget", type=int, default=1024)
    bench_refresh.add_argument(
        "--output", help="also write the result as JSON to this path"
    )
    _add_resilience_arguments(bench_refresh)
    bench_refresh.set_defaults(handler=_cmd_bench_refresh)

    bench_shard_tree = commands.add_parser(
        "bench-shard-tree",
        help="time O(log S) dyadic interior answering against the flat sum",
    )
    bench_shard_tree.add_argument("--shards", type=int, default=4096)
    bench_shard_tree.add_argument("--queries", type=int, default=4096)
    bench_shard_tree.add_argument("--repeats", type=int, default=3)
    bench_shard_tree.add_argument(
        "--output", help="also write the result as JSON to this path"
    )
    bench_shard_tree.set_defaults(handler=_cmd_bench_shard_tree)

    compact = commands.add_parser(
        "compact",
        help="merge cold shard runs of a hot-tail workload and report",
    )
    compact.add_argument("--rows", type=int, default=50_000)
    compact.add_argument("--domain", type=int, default=1024)
    compact.add_argument("--shards", type=int, default=32)
    compact.add_argument(
        "--appends", type=int, default=2_000, help="rows appended into the hot tail"
    )
    compact.add_argument("--method", default="a0", choices=sorted(BUILDER_REGISTRY))
    compact.add_argument("--budget", type=int, default=8192)
    compact.add_argument(
        "--hot-tail", type=int, default=4, help="trailing shards exempt from merging"
    )
    compact.add_argument(
        "--max-run", type=int, default=8, help="longest cold run merged at once"
    )
    compact.add_argument("--output", help="write the report as JSON")
    compact.set_defaults(handler=_cmd_compact)

    optimize = commands.add_parser(
        "optimize",
        help="demo the audit -> optimise -> rebuild loop on a skewed workload",
    )
    optimize.add_argument("--domain", type=int, default=1024)
    optimize.add_argument("--shards", type=int, default=16)
    optimize.add_argument("--budget", type=int, default=192)
    optimize.add_argument("--queries", type=int, default=400)
    optimize.add_argument("--seed", type=int, default=0)
    optimize.add_argument("--method", default="a0", choices=sorted(BUILDER_REGISTRY))
    optimize.add_argument("--output", help="write the report as JSON")
    optimize.set_defaults(handler=_cmd_optimize)

    serve = commands.add_parser(
        "serve",
        help="drive a workload through the coalescing QueryServer",
    )
    serve.add_argument("--rows", type=int, default=100_000)
    serve.add_argument("--domain", type=int, default=1024)
    serve.add_argument("--queries", type=int, default=20_000)
    serve.add_argument("--threads", type=int, default=4)
    serve.add_argument("--method", default="sap1", choices=sorted(BUILDER_REGISTRY))
    serve.add_argument("--budget", type=int, default=128)
    serve.add_argument("--max-batch", type=int, default=2048)
    serve.add_argument("--max-delay-ms", type=float, default=2.0)
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="serve from this many supervised worker processes attached "
        "to one shared-memory snapshot (default 0: in-process server)",
    )
    serve.add_argument(
        "--drain-timeout-ms",
        type=float,
        default=5000.0,
        help="graceful-drain budget on shutdown (--workers only); expiry "
        f"force-kills survivors and exits with code {EXIT_FORCED_SHUTDOWN}",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard the synopsis (--workers only; raises per-query work)",
    )
    serve.add_argument("--output", help="write the result record as JSON")
    serve.set_defaults(handler=_cmd_serve)

    bench_pool = commands.add_parser(
        "bench-pool",
        help="time an N-worker process pool against a 1-worker pool",
    )
    bench_pool.add_argument("--rows", type=int, default=200_000)
    bench_pool.add_argument("--domain", type=int, default=4096)
    bench_pool.add_argument("--shards", type=int, default=256)
    bench_pool.add_argument("--budget", type=int, default=4096)
    bench_pool.add_argument("--queries", type=int, default=8_000)
    bench_pool.add_argument("--threads", type=int, default=4)
    bench_pool.add_argument("--workers", type=int, default=4)
    bench_pool.add_argument("--max-batch", type=int, default=64)
    bench_pool.add_argument("--max-delay-ms", type=float, default=1.0)
    bench_pool.add_argument("--output", help="write the result record as JSON")
    bench_pool.set_defaults(handler=_cmd_bench_pool)

    coverage = commands.add_parser(
        "coverage-intervals",
        help="measure empirical coverage of progressive confidence intervals",
    )
    coverage.add_argument("--rows", type=int, default=20_000)
    coverage.add_argument("--domain", type=int, default=512)
    coverage.add_argument("--queries", type=int, default=2000)
    coverage.add_argument("--shards", type=int, default=8)
    coverage.add_argument("--method", default="sap1", choices=sorted(BUILDER_REGISTRY))
    coverage.add_argument("--budget", type=int, default=256)
    coverage.add_argument("--confidence", type=float, default=0.95)
    coverage.add_argument(
        "--seeds", type=int, nargs="+", default=[0], help="one study per seed"
    )
    coverage.add_argument(
        "--append-rows",
        type=int,
        default=0,
        help="rows appended post-build (exercises the stale/delta path)",
    )
    coverage.add_argument(
        "--min-coverage",
        type=float,
        default=0.93,
        help="per-stage empirical coverage gate (default: 0.93)",
    )
    coverage.add_argument("--output", help="write the per-seed studies as JSON")
    coverage.set_defaults(handler=_cmd_coverage_intervals)

    validate_bench = commands.add_parser(
        "validate-bench",
        help="schema-check BENCH_*.json benchmark artifacts",
    )
    validate_bench.add_argument(
        "paths", nargs="*", help="explicit artifact paths (default: scan --root)"
    )
    validate_bench.add_argument(
        "--root", default=".", help="directory scanned for BENCH_*.json"
    )
    validate_bench.set_defaults(handler=_cmd_validate_bench)

    dump = commands.add_parser(
        "dump-metrics",
        help="replay a workload and emit engine metrics (JSON or Prometheus text)",
    )
    _add_dataset_arguments(dump)
    dump.add_argument("--method", default="sap1", choices=sorted(BUILDER_REGISTRY))
    dump.add_argument("--budget", type=int, default=64)
    dump.add_argument("--queries", type=int, default=1000)
    dump.add_argument(
        "--audit-rate",
        type=float,
        default=1.0,
        help="fraction of queries audited against exact answers (default: 1.0)",
    )
    dump.add_argument("--format", choices=("json", "prometheus"), default="json")
    dump.add_argument("--table", default="t", help="table name used in the dump")
    dump.add_argument(
        "--column-name", default="value", help="column name used in the dump"
    )
    dump.add_argument("--output", help="write to a file instead of stdout")
    dump.set_defaults(handler=_cmd_dump_metrics)

    report = commands.add_parser("report", help="full reproduction report (markdown)")
    report.add_argument("--output", help="write to a file instead of stdout")
    report.set_defaults(handler=_cmd_report)

    timing = commands.add_parser("timing", help="construction-time table")
    timing.add_argument("--sizes", type=int, nargs="+", default=[64, 127, 256])
    timing.add_argument("--opt-a-up-to", type=int, default=127)
    timing.set_defaults(handler=_cmd_timing)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BuildTimeoutError as error:
        print(f"error: build deadline exceeded: {error}", file=sys.stderr)
        return EXIT_BUILD_TIMEOUT
    except BuildFailedError as error:
        print(f"error: build failed: {error}", file=sys.stderr)
        return EXIT_BUILD_FAILED
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # output piped into e.g. `head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
