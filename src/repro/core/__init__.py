"""Histogram synopses: the paper's primary contribution.

Builders
--------
``build_naive``           one global average (Figure 1's NAIVE line)
``build_point_opt``       V-optimal histogram for (weighted) point queries
``build_sap0``            range-optimal SAP0 histogram, ``O(n^2 B)``
``build_sap1``            range-optimal SAP1 histogram, ``O(n^2 B)``
``build_a0``              A0 heuristic (cross term ignored), ``O(n^2 B)``
``build_opt_a``           exact OPT-A via the pseudo-polynomial DP
``build_opt_a_rounded``   the ``(1+eps)``-approximate OPT-A
``reoptimize_values``     Section 5's quadratic value re-optimisation
``refine_boundaries``     local-search improvement of any bucketing

All builders accept a frequency vector and a bucket budget and return a
:class:`~repro.queries.estimators.RangeSumEstimator`.
"""

from repro.core.describe import describe
from repro.core.histogram import AverageHistogram, Histogram, SapHistogram
from repro.core.minimax import build_minimax, max_point_error
from repro.core.naive import build_naive
from repro.core.vopt import build_point_opt, range_participation_weights
from repro.core.sap import build_sap0, build_sap1
from repro.core.sap_poly import PolySapHistogram, build_sap_poly
from repro.core.a0 import build_a0
from repro.core.classic import build_equi_depth, build_equi_width, build_prefix_opt
from repro.core.workload_aware import WorkloadCosts, build_workload_aware
from repro.core.opt_a import build_opt_a, build_opt_a_warmup
from repro.core.opt_a_rounded import build_opt_a_auto, build_opt_a_rounded
from repro.core.reopt import reoptimize_values
from repro.core.scale import build_scaled
from repro.core.refine import refine_boundaries
from repro.core.builders import (
    BUILDER_REGISTRY,
    BuilderSpec,
    build_by_name,
    buckets_for_budget,
)

__all__ = [
    "Histogram",
    "describe",
    "AverageHistogram",
    "SapHistogram",
    "build_naive",
    "build_minimax",
    "max_point_error",
    "build_point_opt",
    "range_participation_weights",
    "build_sap0",
    "build_sap1",
    "build_sap_poly",
    "PolySapHistogram",
    "build_a0",
    "build_equi_width",
    "build_equi_depth",
    "build_prefix_opt",
    "build_workload_aware",
    "WorkloadCosts",
    "build_opt_a",
    "build_opt_a_warmup",
    "build_opt_a_rounded",
    "build_opt_a_auto",
    "reoptimize_values",
    "build_scaled",
    "refine_boundaries",
    "BUILDER_REGISTRY",
    "BuilderSpec",
    "build_by_name",
    "buckets_for_budget",
]
