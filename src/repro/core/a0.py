"""A0: the cross-term-ignoring heuristic variant of OPT-A (Section 4).

A0 uses OPT-A's representation and answering procedure — a single
average per bucket, equation (1) — but chooses boundaries with "the same
dynamic programming set-up that we used for computing SAP0", i.e. it
drops the inter-bucket cross term ``2 * S1(P) * P1(Q)`` that makes exact
OPT-A pseudo-polynomial.  The DP objective is therefore

    cost(a, b) = intra(a, b)
               + (n - 1 - b) * S2(a, b)    # suffix errors about the average
               + a * P2(a, b)              # prefix errors about the average

which differs from the histogram's true SSE exactly by the ignored cross
terms; the resulting histogram is *not* optimal (Section 4), but costs
only ``O(n^2 B)`` and stores 2B words (Theorem 10).  In the paper's
experiments it is nearly as good as OPT-A per word of storage.
"""

from __future__ import annotations

import numpy as np

from repro.core.histogram import AverageHistogram
from repro.internal.dp import interval_dp
from repro.internal.prefix import PrefixAlgebra
from repro.internal.validation import as_frequency_vector, check_bucket_count


def a0_objective_rows(algebra: PrefixAlgebra, a: int) -> np.ndarray:
    """A0's additive DP cost for buckets ``[a, b]``, ``b = a..n-1``."""
    n = algebra.n
    bs = np.arange(a, n)
    _, s2 = algebra.suffix_error_moments(a, bs)
    _, p2 = algebra.prefix_error_moments(a, bs)
    return algebra.intra_sse(a, bs) + (n - 1 - bs) * s2 + a * p2


def build_a0(
    data, n_buckets: int, rounding: str = "per_piece", *, pool=None
) -> AverageHistogram:
    """Build the A0 heuristic histogram with at most ``n_buckets`` buckets.

    ``pool`` fans the DP cost-row precompute out (threads only; see
    :func:`repro.internal.parallel.map_rows`) — bit-identical results.
    """
    data = as_frequency_vector(data)
    n = data.size
    n_buckets = check_bucket_count(n_buckets, n)
    algebra = PrefixAlgebra(data)
    lefts, _ = interval_dp(n, n_buckets, lambda a: a0_objective_rows(algebra, a), pool=pool)
    return AverageHistogram.from_boundaries(data, lefts, rounding=rounding, label="A0")
