"""Builder registry with the paper's storage accounting.

Figure 1's x-axis is storage in machine words: a bucket boundary, a
summary value, and a wavelet coefficient index or value are one word
each.  This module records the words-per-unit of every method (Theorems
7, 8, 10 and the wavelet convention) and converts a word budget into a
bucket/coefficient count, so experiments can sweep a single budget axis
across representations with different per-bucket footprints — the
comparison the paper's Section 4 is about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.a0 import build_a0
from repro.core.classic import build_equi_depth, build_equi_width, build_prefix_opt
from repro.core.workload_aware import build_workload_aware
from repro.core.minimax import build_minimax
from repro.core.naive import build_naive
from repro.core.opt_a import build_opt_a
from repro.core.opt_a_rounded import build_opt_a_auto, build_opt_a_rounded
from repro.core.sap import build_sap0, build_sap1
from repro.core.sap_poly import build_sap_poly
from repro.core.vopt import build_point_opt
from repro.errors import BudgetExceededError, InvalidParameterError
from repro.wavelets.point_topb import build_wavelet_point
from repro.wavelets.range_optimal import build_wavelet_range


@dataclass(frozen=True)
class BuilderSpec:
    """How to build one synopsis family and account for its storage."""

    name: str
    words_per_unit: int
    build: Callable
    description: str


def _build_naive_budgeted(data, units: int, **kwargs):
    # NAIVE ignores the budget beyond its fixed 2 words.
    del units
    return build_naive(data, **kwargs)


def _build_sketch_budgeted(data, units: int, **kwargs):
    from repro.sketches.dyadic import build_sketch

    return build_sketch(data, units, **kwargs)


BUILDER_REGISTRY: dict[str, BuilderSpec] = {
    spec.name: spec
    for spec in (
        BuilderSpec("naive", 2, _build_naive_budgeted, "single global average"),
        BuilderSpec("point-opt", 2, build_point_opt, "V-optimal for weighted point queries"),
        BuilderSpec("a0", 2, build_a0, "OPT-A answering, cross-term-free DP"),
        BuilderSpec("opt-a", 2, build_opt_a, "exact range-optimal average histogram"),
        BuilderSpec(
            "opt-a-rounded", 2, build_opt_a_rounded, "(1+eps)-approximate OPT-A"
        ),
        BuilderSpec(
            "opt-a-auto", 2, build_opt_a_auto, "exact OPT-A, auto-rounded when too heavy"
        ),
        BuilderSpec("minimax", 2, build_minimax, "minimises the maximum point error"),
        BuilderSpec("equi-width", 2, build_equi_width, "equal-length buckets (engine default)"),
        BuilderSpec("equi-depth", 2, build_equi_depth, "equal-mass buckets (engine default)"),
        BuilderSpec("prefix-opt", 2, build_prefix_opt, "optimal for prefix workloads [9]"),
        BuilderSpec(
            "workload-a0", 2, build_workload_aware, "workload-weighted boundary DP"
        ),
        BuilderSpec("sap0", 3, build_sap0, "range-optimal, constant suffix/prefix summaries"),
        BuilderSpec("sap1", 5, build_sap1, "range-optimal, linear suffix/prefix summaries"),
        BuilderSpec(
            "sap2",
            7,
            lambda data, units, **kw: build_sap_poly(data, units, degree=2, **kw),
            "range-optimal, quadratic suffix/prefix summaries",
        ),
        BuilderSpec(
            "sap3",
            9,
            lambda data, units, **kw: build_sap_poly(data, units, degree=3, **kw),
            "range-optimal, cubic suffix/prefix summaries",
        ),
        BuilderSpec("sketch-cm", 1, _build_sketch_budgeted, "dyadic Count-Min sketch (streaming)"),
        BuilderSpec("wavelet-point", 2, build_wavelet_point, "largest-B Haar coefficients"),
        BuilderSpec(
            "wavelet-range", 2, build_wavelet_range, "range-optimal Haar coefficients"
        ),
    )
}


#: Builders whose signatures accept the kernel-layer ``pool`` kwarg (the
#: row-precompute parallelism of :func:`repro.internal.parallel.map_rows`).
#: The sharded build path consults this set before injecting a shared
#: executor; reopt variants forward kwargs to their base builder and are
#: appended alongside them below.
POOL_AWARE_BUILDERS: set[str] = {
    "a0",
    "opt-a",
    "opt-a-rounded",
    "opt-a-auto",
    "sap0",
    "sap1",
    "sap2",
    "sap3",
}


def buckets_for_budget(name: str, budget_words: int) -> int:
    """Units (buckets or coefficients) affordable within ``budget_words``."""
    spec = BUILDER_REGISTRY.get(name)
    if spec is None:
        raise InvalidParameterError(
            f"unknown builder {name!r}; available: {sorted(BUILDER_REGISTRY)}"
        )
    units = budget_words // spec.words_per_unit
    if units < 1:
        raise BudgetExceededError(
            f"{name} needs at least {spec.words_per_unit} words, got {budget_words}"
        )
    return units


def build_by_name(name: str, data, budget_words: int, **kwargs):
    """Build the named synopsis within a word budget.

    ``kwargs`` are forwarded to the underlying builder (e.g. ``x=4`` for
    ``opt-a-rounded``).

    This is the chaos-testing choke point for synopsis construction:
    an active :class:`repro.internal.faults.FaultInjector` can fail or
    slow any build here by method name (site ``"builder"``).
    """
    import numpy as np

    from repro.internal.faults import fault_point

    fault_point("builder", method=name)
    spec = BUILDER_REGISTRY.get(name)
    if spec is None:
        raise InvalidParameterError(
            f"unknown builder {name!r}; available: {sorted(BUILDER_REGISTRY)}"
        )
    units = buckets_for_budget(name, budget_words)
    n = int(np.asarray(data).size)
    if name == "sketch-cm":
        cap = units  # sketch width is not bounded by the domain size
    elif name == "wavelet-range":
        cap = 2 * n
    else:
        cap = n
    return spec.build(data, min(units, cap), **kwargs)


@dataclass(frozen=True)
class ErrorPrediction:
    """A builder's error model for one synopsis, frozen at build time.

    ``sse_per_query`` is the mean squared error over the all-ranges
    workload — exactly the builder's optimisation objective divided by
    ``n(n+1)/2`` when ``exact`` is True, and an unbiased sampled
    estimate of it otherwise (large domains, where enumerating every
    range at build time would dominate construction).  The engine's
    online auditor compares live observed error against this number to
    detect synopses that have started lying (see
    :meth:`repro.engine.engine.ApproximateQueryEngine.error_report`).
    """

    sse_per_query: float
    query_count: int
    sampled_queries: int
    exact: bool


def confidence_multiplier(confidence: float) -> float:
    """Distribution-free half-width multiplier for one confidence level.

    Applying Markov's inequality to the squared error gives
    ``P(|error| >= k * sqrt(MSE)) <= 1 / k**2`` for *any* error
    distribution, so ``k = 1 / sqrt(1 - confidence)`` yields an interval
    whose coverage over the prediction's own workload is at least
    ``confidence`` whenever the frozen ``sse_per_query`` is the true
    MSE.  Deliberately conservative (no Gaussian assumption): the
    paper's builders produce error distributions with very different
    shapes, and the serving tier's coverage gate is one-sided.
    """
    if not 0.0 < confidence < 1.0:
        raise InvalidParameterError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    return 1.0 / ((1.0 - confidence) ** 0.5)


def interval_halfwidth(sse_per_query: float, confidence: float) -> float:
    """Chebyshev-style confidence half-width from a frozen error model.

    ``sse_per_query`` is the mean squared error of the unresolved part
    of an answer (an :class:`ErrorPrediction`'s model, or a sum of
    boundary-shard models — squared errors of independent shard
    partials add).  Returns the half-width of a two-sided interval with
    at-least-``confidence`` coverage; exactly zero when no estimated
    mass remains.
    """
    sse = float(sse_per_query)
    if sse < 0.0:
        raise InvalidParameterError(
            f"sse_per_query must be >= 0, got {sse_per_query}"
        )
    if sse == 0.0:
        return 0.0
    return confidence_multiplier(confidence) * sse**0.5


#: Largest all-ranges workload enumerated exactly by :func:`predict_sse_per_query`.
MAX_PREDICTION_QUERIES = 8192


def predict_sse_per_query(
    estimator,
    data,
    *,
    max_queries: int = MAX_PREDICTION_QUERIES,
    seed: int = 0,
) -> ErrorPrediction:
    """The builder-reported SSE-per-query of ``estimator`` on ``data``.

    Evaluates the paper's objective over all ``n(n+1)/2`` ranges when
    that population fits in ``max_queries``; otherwise over a seeded
    uniform sample of ``max_queries`` ranges (cheap and reproducible, so
    a drift check against it is stable across calls).
    """
    import numpy as np

    from repro.queries import evaluation
    from repro.queries.workload import all_ranges, random_ranges

    data = np.asarray(data, dtype=np.float64)
    n = int(estimator.n)
    query_count = n * (n + 1) // 2
    if query_count <= max_queries:
        workload = all_ranges(n)
        exact = True
    else:
        workload = random_ranges(n, max_queries, seed=seed)
        exact = False
    total = evaluation.sse(estimator, data, workload)
    return ErrorPrediction(
        sse_per_query=total / len(workload),
        query_count=query_count,
        sampled_queries=len(workload),
        exact=exact,
    )


def _budget_split_spec(name: str, data, starts, budget_words: int, *, context: str):
    """Shared validation for the budget-split family.

    Returns ``(spec, data, starts, shard_count, masses)`` with the
    per-shard absolute masses already checked finite — NaN/inf
    frequencies would otherwise flow through the proportional weights
    into ``np.floor`` garbage that silently violates the exact-total
    invariant.  ``context`` names the caller (column/shard provenance)
    in error messages.
    """
    import numpy as np

    spec = BUILDER_REGISTRY.get(name)
    if spec is None:
        raise InvalidParameterError(
            f"unknown builder {name!r}; available: {sorted(BUILDER_REGISTRY)}"
        )
    data = np.asarray(data, dtype=np.float64)
    starts = np.asarray(starts, dtype=np.int64)
    shard_count = int(starts.size - 1)
    floor = spec.words_per_unit
    if budget_words < shard_count * floor:
        raise BudgetExceededError(
            f"{name} over {shard_count} shards needs at least "
            f"{shard_count * floor} words ({floor} per shard), got {budget_words}"
        )
    masses = np.add.reduceat(np.abs(data), starts[:-1])
    # reduceat yields the element itself for empty slices at the end;
    # shard_boundaries guarantees non-empty shards, so no correction.
    if not np.all(np.isfinite(masses)):
        bad = np.nonzero(~np.isfinite(masses))[0].tolist()
        raise InvalidParameterError(
            f"{context}: non-finite frequency mass in shard(s) {bad} "
            f"(NaN/inf in the frequency vector); budgets would be garbage"
        )
    return spec, data, starts, shard_count, masses


def _apportion_budget(weights, budget_words: int, floor: int):
    """Floor-plus-largest-remainder apportionment of a word budget.

    ``weights`` are non-negative and sum to 1.  Every shard gets
    ``floor`` words, the spare is split proportionally, and the
    fractional leftovers go to the largest remainders (ties broken by
    shard id) so the result sums to exactly ``budget_words``.
    """
    import numpy as np

    weights = np.asarray(weights, dtype=np.float64)
    shard_count = int(weights.size)
    spare = budget_words - shard_count * floor
    raw = weights * spare
    budgets = np.full(shard_count, floor, dtype=np.int64) + np.floor(raw).astype(
        np.int64
    )
    leftover = int(budget_words - budgets.sum())
    if leftover > 0:
        remainders = raw - np.floor(raw)
        # Deterministic largest-remainder: ties broken by shard id.
        order = np.lexsort((np.arange(shard_count), -remainders))
        budgets[order[:leftover]] += 1
    return budgets


def split_budget_by_mass(name: str, data, starts, budget_words: int, *, context=None):
    """Split a word budget across contiguous shards proportionally to mass.

    ``starts`` is the shard-boundary array (length ``S + 1``) over
    ``data``'s index domain.  Each shard's share is proportional to its
    absolute mass (so SUM vectors with negative values still split
    sensibly), floored at the builder's ``words_per_unit`` so every
    shard can afford at least one unit; the remainder is distributed by
    largest remainder, keeping the total exactly ``budget_words``.
    Raises :class:`~repro.errors.BudgetExceededError` when the budget
    cannot cover the per-shard floor, and
    :class:`~repro.errors.InvalidParameterError` when the frequency
    vector carries NaN/inf mass (``context`` labels the column in the
    error).
    """
    spec, data, starts, shard_count, masses = _budget_split_spec(
        name, data, starts, budget_words, context=context or name
    )
    import numpy as np

    total_mass = float(masses.sum())
    if total_mass <= 0.0:
        weights = np.full(shard_count, 1.0 / shard_count)
    else:
        weights = masses / total_mass
    return _apportion_budget(weights, budget_words, spec.words_per_unit)


def split_budget_by_workload(
    name: str, data, starts, budget_words: int, workload, *, context=None
):
    """Workload-weighted sibling of :func:`split_budget_by_mass`.

    A sharded synopsis pays estimation error only in a query's (at most
    two) *partial* boundary shards, so the budget should concentrate
    where query endpoints actually land.  Each shard's share is
    proportional to ``mass_i * pressure_i`` where ``mass_i`` is the
    shard's absolute frequency mass (a proxy for how hard the shard is
    to summarise) and ``pressure_i`` is the workload's endpoint mass in
    the shard *per domain position* — the total weight of observed
    queries whose low or high endpoint falls in shard ``i``, divided by
    the shard's width.

    Under the uniform all-ranges workload every domain position carries
    the same endpoint mass (``n + 1`` of the ``n(n+1)/2`` ranges start
    or end at each position), so ``pressure`` is constant and the split
    reduces *exactly* to :func:`split_budget_by_mass` — the differential
    suite pins this.  A skewed observed workload shifts words toward the
    hot shards instead.

    Raises :class:`~repro.errors.InvalidParameterError` on an empty or
    all-zero-weight workload (there is no signal to split by — callers
    should fall back to the mass split), on negative weights, on a
    workload/domain size mismatch, and on non-finite masses.
    """
    import numpy as np

    label = context or name
    spec, data, starts, shard_count, masses = _budget_split_spec(
        name, data, starts, budget_words, context=label
    )
    if workload is None or len(workload) == 0:
        raise InvalidParameterError(
            f"{label}: cannot split a budget by an empty workload; "
            "use split_budget_by_mass for the uniform objective"
        )
    if int(workload.n) != int(data.size):
        raise InvalidParameterError(
            f"{label}: workload domain ({workload.n}) does not match the "
            f"frequency vector length ({data.size})"
        )
    query_weights = np.asarray(workload.weights, dtype=np.float64)
    if np.any(query_weights < 0) or not np.all(np.isfinite(query_weights)):
        raise InvalidParameterError(
            f"{label}: workload weights must be finite and non-negative"
        )
    total_weight = float(query_weights.sum())
    if total_weight <= 0.0:
        raise InvalidParameterError(
            f"{label}: workload carries zero total weight; nothing to split by"
        )
    endpoint_mass = np.zeros(shard_count, dtype=np.float64)
    for endpoints in (workload.lows, workload.highs):
        shard_ids = np.searchsorted(starts, endpoints, side="right") - 1
        np.add.at(endpoint_mass, shard_ids, query_weights)
    widths = np.diff(starts).astype(np.float64)
    pressure = endpoint_mass / widths
    raw = masses * pressure
    total = float(raw.sum())
    if total <= 0.0:
        # Zero data mass everywhere the workload looks: fall back to the
        # mass split's behaviour so the result is still a valid budget.
        return split_budget_by_mass(name, data, starts, budget_words, context=label)
    return _apportion_budget(raw / total, budget_words, spec.words_per_unit)


def merge_shard_budgets(budgets, runs):
    """:func:`split_budget_by_mass` in reverse: pool budgets over merged runs.

    ``runs`` is a sorted list of non-overlapping inclusive shard-id
    pairs ``(first, last)``; each run's shards collapse into one coarser
    shard whose word budget is the *sum* of the run's budgets, so a
    compaction conserves the column's total storage allocation exactly
    (mass-proportionality is preserved too: the merged shard's mass is
    the sum of its parts' masses, and so is its budget).  Returns the
    post-merge budget vector, one entry per surviving shard.
    """
    import numpy as np

    budgets = np.asarray(budgets, dtype=np.int64)
    if budgets.ndim != 1 or budgets.size < 1:
        raise InvalidParameterError("budgets must be a non-empty 1-D vector")
    previous_end = -1
    merged: list[int] = []
    cursor = 0
    for first, last in runs:
        first, last = int(first), int(last)
        if not 0 <= first < last < budgets.size:
            raise InvalidParameterError(
                f"run ({first}, {last}) must satisfy 0 <= first < last < "
                f"{budgets.size}"
            )
        if first <= previous_end:
            raise InvalidParameterError(
                "runs must be sorted and non-overlapping"
            )
        merged.extend(budgets[cursor:first].tolist())
        merged.append(int(budgets[first : last + 1].sum()))
        previous_end = last
        cursor = last + 1
    merged.extend(budgets[cursor:].tolist())
    out = np.asarray(merged, dtype=np.int64)
    assert int(out.sum()) == int(budgets.sum())
    return out


def aggregate_shard_predictions(predictions, shard_sizes) -> ErrorPrediction | None:
    """Merge per-shard error models into one synopsis-level prediction.

    A random range decomposes into exact interior totals plus partial
    sums in its two boundary shards, so its squared error is
    ``(e_left + e_right)^2``.  Dropping the cross term (the same
    simplification the A0 builder makes) and taking each shard's local
    all-ranges SSE-per-query as a proxy for its partial-range error
    gives ``sse_per_query ~= sum_i 2 * (m_i / n) * p_i``: each endpoint
    lands in shard ``i`` with probability about ``m_i / n``, and there
    are two endpoints.  The aggregate is a heuristic, so ``exact`` is
    always False; returns ``None`` when any shard lacks a model.
    """
    import numpy as np

    if predictions is None or any(p is None for p in predictions):
        return None
    sizes = np.asarray(shard_sizes, dtype=np.float64)
    if sizes.size != len(predictions) or sizes.size == 0:
        raise InvalidParameterError(
            "shard_sizes must parallel predictions and be non-empty"
        )
    n = float(sizes.sum())
    per_query = float(
        sum(
            2.0 * (size / n) * prediction.sse_per_query
            for size, prediction in zip(sizes.tolist(), predictions)
        )
    )
    total = int(n)
    return ErrorPrediction(
        sse_per_query=per_query,
        query_count=total * (total + 1) // 2,
        sampled_queries=int(sum(p.sampled_queries for p in predictions)),
        exact=False,
    )


def _reopt_variant(base_name: str):
    """Builder for the paper's ``A-reopt`` family: build the base
    histogram, then re-optimise its stored values for the all-ranges
    SSE (Section 5).  Storage is unchanged (2 words per bucket)."""

    def build(data, units: int, **kwargs):
        from repro.core.reopt import reoptimize_values

        base = BUILDER_REGISTRY[base_name].build(data, units, **kwargs)
        return reoptimize_values(base, data)

    return build


for _base in ("naive", "point-opt", "a0", "opt-a", "opt-a-auto"):
    BUILDER_REGISTRY[f"{_base}-reopt"] = BuilderSpec(
        name=f"{_base}-reopt",
        words_per_unit=BUILDER_REGISTRY[_base].words_per_unit,
        build=_reopt_variant(_base),
        description=f"{_base} boundaries + Section 5 value re-optimisation",
    )
    if _base in POOL_AWARE_BUILDERS:
        POOL_AWARE_BUILDERS.add(f"{_base}-reopt")
