"""Classic engine histograms and the prefix-workload optimum.

Two families the paper positions itself against:

* :func:`build_equi_width` / :func:`build_equi_depth` — the rule-based
  histograms real database engines shipped (System R lineage); no
  optimisation at all.  Included as registry baselines so experiments
  can show what the paper's DP constructions buy over them.

* :func:`build_prefix_opt` — the *hierarchically-restricted* case the
  paper credits to reference [9]: when every query is a prefix range
  ``[0, r]``, equation (1)'s error reduces to the prefix-piece error of
  the single bucket containing ``r`` (the middle is exact and there is
  no suffix piece), so the SSE is bucket-additive and a plain ``O(n²B)``
  DP is *exactly* optimal — no pseudo-polynomial state needed.  This is
  the cleanest illustration of the paper's central difficulty: general
  ranges couple buckets; prefix ranges do not.
"""

from __future__ import annotations

import numpy as np

from repro.core.histogram import AverageHistogram
from repro.internal.dp import interval_dp
from repro.internal.prefix import PrefixAlgebra
from repro.internal.validation import as_frequency_vector, check_bucket_count


def build_equi_width(data, n_buckets: int, rounding: str = "per_piece") -> AverageHistogram:
    """Equal-length buckets — the simplest engine histogram."""
    data = as_frequency_vector(data)
    n = data.size
    n_buckets = check_bucket_count(n_buckets, n)
    edges = np.linspace(0, n, n_buckets + 1)[:-1]
    lefts = np.unique(np.floor(edges).astype(np.int64))
    return AverageHistogram.from_boundaries(data, lefts, rounding=rounding, label="EQUI-WIDTH")


def build_equi_depth(data, n_buckets: int, rounding: str = "per_piece") -> AverageHistogram:
    """Buckets holding (approximately) equal record mass.

    The classical equi-depth histogram: boundaries at the quantiles of
    the attribute-value distribution.  Degenerates gracefully on heavy
    skew (a single value holding more than ``1/B`` of the mass yields
    fewer than ``B`` distinct boundaries).
    """
    data = as_frequency_vector(data)
    n = data.size
    n_buckets = check_bucket_count(n_buckets, n)
    total = data.sum()
    if total == 0:
        return build_equi_width(data, n_buckets, rounding=rounding)
    cumulative = np.cumsum(data)
    targets = total * np.arange(1, n_buckets) / n_buckets
    cuts = np.searchsorted(cumulative, targets, side="left") + 1
    lefts = np.unique(np.concatenate(([0], np.clip(cuts, 1, n - 1))))
    hist = AverageHistogram.from_boundaries(data, lefts, rounding=rounding, label="EQUI-DEPTH")
    return hist


def build_prefix_opt(data, n_buckets: int, rounding: str = "none") -> AverageHistogram:
    """The optimal average histogram for *prefix* range queries.

    Minimises ``sum_r (s[0, r] - est[0, r])^2`` over all bucketings: the
    reference-[9] restricted setting where the error of query ``[0, r]``
    is exactly the prefix-piece error ``delta_pre(r)`` of ``r``'s
    bucket, making the objective bucket-additive.

    Un-rounded answering by default so the optimality guarantee is
    exact; pass ``rounding="per_piece"`` for the integer procedure.
    """
    data = as_frequency_vector(data)
    n = data.size
    n_buckets = check_bucket_count(n_buckets, n)
    algebra = PrefixAlgebra(data)

    def cost_row(a: int) -> np.ndarray:
        bs = np.arange(a, n)
        _, p2 = algebra.prefix_error_moments(a, bs)
        return np.asarray(p2, dtype=np.float64)

    lefts, _ = interval_dp(n, n_buckets, cost_row)
    return AverageHistogram.from_boundaries(data, lefts, rounding=rounding, label="PREFIX-OPT")
