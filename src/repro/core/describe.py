"""Human-readable synopsis introspection.

``describe(estimator, data=None)`` renders the structure of any
estimator in the library — bucket tables for histograms, kept
coefficients for wavelets — optionally annotated with per-bucket error
envelopes when the data is supplied.  Used by the CLI's ``inspect``
command and handy in notebooks.
"""

from __future__ import annotations

import numpy as np

from repro.core.histogram import AverageHistogram, SapHistogram
from repro.core.sap_poly import PolySapHistogram
from repro.experiments.reporting import format_table
from repro.wavelets.point_topb import PointTopBWavelet
from repro.wavelets.range_optimal import RangeOptimalWavelet


def describe(estimator, data=None) -> str:
    """Render an estimator's structure as an aligned text table."""
    title = f"{estimator.name}: n={estimator.n}, {estimator.storage_words()} words"
    if isinstance(estimator, (SapHistogram, PolySapHistogram)):
        rows = []
        for index, (a, b) in enumerate(estimator.bucket_ranges()):
            rows.append([index, a, b, b - a + 1, float(estimator.averages[index])])
        return format_table(
            ["bucket", "start", "end", "length", "average"], rows, title=title
        )
    if isinstance(estimator, AverageHistogram):
        envelope = None
        if data is not None:
            from repro.queries.bounds import compute_error_envelope

            envelope = compute_error_envelope(estimator, data)
        headers = ["bucket", "start", "end", "length", "value"]
        if envelope is not None:
            headers += ["max suffix err", "max prefix err"]
        rows = []
        for index, (a, b) in enumerate(estimator.bucket_ranges()):
            row = [index, a, b, b - a + 1, float(estimator.values[index])]
            if envelope is not None:
                row += [
                    float(envelope.max_suffix_error[index]),
                    float(envelope.max_prefix_error[index]),
                ]
            rows.append(row)
        return format_table(headers, rows, title=title)
    if isinstance(estimator, PointTopBWavelet):
        rows = [
            [int(i), float(c)]
            for i, c in zip(estimator.indices, estimator.coefficients)
        ]
        return format_table(["coefficient", "value"], rows, title=title)
    if isinstance(estimator, RangeOptimalWavelet):
        rows = [
            [int(r), int(c), float(v)]
            for r, c, v in zip(
                estimator.row_indices, estimator.col_indices, estimator.coefficients
            )
        ]
        return format_table(["row basis", "col basis", "value"], rows, title=title)
    # Fallback: protocol-level facts only.
    return title
