"""Histogram representations and their range-query answering procedures.

Two concrete representations cover every histogram in the paper:

* :class:`AverageHistogram` — one summary value per bucket, answered by
  the paper's equation (1): split the query into a suffix piece of the
  first bucket, exactly-known middle buckets, and a prefix piece of the
  last bucket.  Rounding modes select between OPT-A's integer answers
  (``"per_piece"``), a single final rounding (``"total"``), and real
  answers (``"none"``, used by reopt and the theory-level comparisons).
  NAIVE, OPT-A, A0, POINT-OPT, and reopt histograms all use this class.

* :class:`SapHistogram` — per-bucket suffix/prefix summaries in addition
  to the average.  SAP0 stores constants, SAP1 linear fits; a SAP0
  histogram is simply a :class:`SapHistogram` whose fits have zero
  slope.  Storage accounting follows Theorems 7 and 8 (3B and 5B words).

Both are :class:`~repro.queries.estimators.RangeSumEstimator` subclasses
with fully vectorised ``estimate_many``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.internal.prefix import round_half_up
from repro.queries.estimators import RangeSumEstimator

#: Supported rounding modes for :class:`AverageHistogram`.
ROUNDING_MODES = ("per_piece", "total", "none")


def validate_lefts(lefts, n: int) -> np.ndarray:
    """Validate bucket left boundaries: ``lefts[0] == 0``, strictly increasing, < n."""
    lefts = np.asarray(lefts, dtype=np.int64)
    if lefts.ndim != 1 or lefts.size == 0:
        raise InvalidParameterError("lefts must be a non-empty 1-D integer array")
    if lefts[0] != 0:
        raise InvalidParameterError(f"first bucket must start at 0, got {lefts[0]}")
    if np.any(np.diff(lefts) <= 0):
        raise InvalidParameterError("bucket boundaries must be strictly increasing")
    if lefts[-1] >= n:
        raise InvalidParameterError(f"last bucket start {lefts[-1]} out of range for n={n}")
    return lefts


class Histogram(RangeSumEstimator):
    """Common bucket bookkeeping shared by all histogram representations."""

    def __init__(self, lefts, n: int) -> None:
        self.n = int(n)
        self.lefts = validate_lefts(lefts, self.n)
        self.bucket_count = int(self.lefts.size)
        self.rights = np.concatenate((self.lefts[1:] - 1, [self.n - 1]))
        self.bucket_lengths = self.rights - self.lefts + 1

    def bucket_of(self, index) -> np.ndarray:
        """Bucket id containing each (validated) index; vectorised."""
        return np.searchsorted(self.lefts, np.asarray(index), side="right") - 1

    def bucket_ranges(self) -> list[tuple[int, int]]:
        """Inclusive ``(start, end)`` index pairs, one per bucket."""
        return list(zip(self.lefts.tolist(), self.rights.tolist()))

    def storage_words(self) -> int:
        raise NotImplementedError


class AverageHistogram(Histogram):
    """Single-value-per-bucket histogram answered via equation (1).

    Parameters
    ----------
    lefts:
        Bucket start indices (first must be 0).
    values:
        The per-bucket summary values.  For OPT-A these are the exact
        bucket averages; reopt substitutes arbitrary optimised values.
    n:
        Domain size.
    rounding:
        ``"per_piece"`` rounds each partial-bucket contribution to an
        integer (the paper's OPT-A procedure, which makes all errors
        integral); ``"total"`` rounds the final sum once; ``"none"``
        returns real-valued answers.
    label:
        Display name used by reports (defaults to ``"AVG-HISTOGRAM"``).
    """

    def __init__(self, lefts, values, n: int, rounding: str = "per_piece",
                 label: str = "AVG-HISTOGRAM") -> None:
        super().__init__(lefts, n)
        self.values = np.asarray(values, dtype=np.float64)
        if self.values.shape != (self.bucket_count,):
            raise InvalidParameterError(
                f"values must have one entry per bucket "
                f"({self.bucket_count}), got shape {self.values.shape}"
            )
        if rounding not in ROUNDING_MODES:
            raise InvalidParameterError(
                f"rounding must be one of {ROUNDING_MODES}, got {rounding!r}"
            )
        self.rounding = rounding
        self._label = label
        # Exclusive cumulative bucket totals: _cum_totals[i] = sum of
        # bucket totals for buckets < i, where a bucket's total is
        # length * value (exact when values are true averages).
        totals = self.bucket_lengths * self.values
        self._cum_totals = np.concatenate(([0.0], np.cumsum(totals)))

    @classmethod
    def from_boundaries(cls, data, lefts, rounding: str = "per_piece",
                        label: str = "AVG-HISTOGRAM") -> "AverageHistogram":
        """Build with the exact per-bucket averages of ``data``."""
        data = np.asarray(data, dtype=np.float64)
        n = data.size
        lefts = validate_lefts(lefts, n)
        prefix = np.concatenate(([0.0], np.cumsum(data)))
        rights = np.concatenate((lefts[1:] - 1, [n - 1]))
        sums = prefix[rights + 1] - prefix[lefts]
        values = sums / (rights - lefts + 1)
        return cls(lefts, values, n, rounding=rounding, label=label)

    @property
    def name(self) -> str:
        return self._label

    def storage_words(self) -> int:
        """2B words: one boundary + one summary value per bucket (Thm 10)."""
        return 2 * self.bucket_count

    def estimate_many(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        bl = self.bucket_of(lows)
        br = self.bucket_of(highs)
        same = bl == br
        suffix_len = self.rights[bl] - lows + 1
        prefix_len = highs - self.lefts[br] + 1
        suffix = suffix_len * self.values[bl]
        prefix = prefix_len * self.values[br]
        middle = self._cum_totals[br] - self._cum_totals[bl + 1]
        whole = (highs - lows + 1) * self.values[bl]
        if self.rounding == "per_piece":
            inter = round_half_up(suffix) + middle + round_half_up(prefix)
            intra = round_half_up(whole)
        elif self.rounding == "total":
            inter = round_half_up(suffix + middle + prefix)
            intra = round_half_up(whole)
        else:
            inter = suffix + middle + prefix
            intra = whole
        return np.where(same, intra, inter)

    def with_values(self, values, rounding: str | None = None,
                    label: str | None = None) -> "AverageHistogram":
        """Copy with the same boundaries but different stored values."""
        return AverageHistogram(
            self.lefts,
            values,
            self.n,
            rounding=self.rounding if rounding is None else rounding,
            label=self._label if label is None else label,
        )


class SapHistogram(Histogram):
    """SAP0/SAP1 histogram: per-bucket suffix and prefix summaries.

    The suffix summary approximates ``s[l, bucket_end]`` by
    ``suffix_slope * piece_len + suffix_intercept`` (zero slope for
    SAP0); symmetrically for prefixes.  Intra-bucket queries are
    answered by the bucket average (recoverable from the summaries, so
    it does not count against storage — Theorems 7 and 8).
    """

    def __init__(self, lefts, averages, suffix_slopes, suffix_intercepts,
                 prefix_slopes, prefix_intercepts, n: int, order: int,
                 label: str | None = None) -> None:
        super().__init__(lefts, n)
        if order not in (0, 1):
            raise InvalidParameterError(f"order must be 0 or 1, got {order}")
        self.order = order
        shape = (self.bucket_count,)

        def _as(name, arr):
            arr = np.asarray(arr, dtype=np.float64)
            if arr.shape != shape:
                raise InvalidParameterError(f"{name} must have shape {shape}, got {arr.shape}")
            return arr

        self.averages = _as("averages", averages)
        self.suffix_slopes = _as("suffix_slopes", suffix_slopes)
        self.suffix_intercepts = _as("suffix_intercepts", suffix_intercepts)
        self.prefix_slopes = _as("prefix_slopes", prefix_slopes)
        self.prefix_intercepts = _as("prefix_intercepts", prefix_intercepts)
        if order == 0 and (np.any(self.suffix_slopes != 0) or np.any(self.prefix_slopes != 0)):
            raise InvalidParameterError("SAP0 histograms must have zero slopes")
        self._label = label or f"SAP{order}"
        totals = self.bucket_lengths * self.averages
        self._cum_totals = np.concatenate(([0.0], np.cumsum(totals)))

    @property
    def name(self) -> str:
        return self._label

    def storage_words(self) -> int:
        """3B words for SAP0 (Thm 7), 5B for SAP1 (Thm 8)."""
        return (3 if self.order == 0 else 5) * self.bucket_count

    def estimate_many(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        bl = self.bucket_of(lows)
        br = self.bucket_of(highs)
        same = bl == br
        suffix_len = self.rights[bl] - lows + 1
        prefix_len = highs - self.lefts[br] + 1
        suffix = self.suffix_slopes[bl] * suffix_len + self.suffix_intercepts[bl]
        prefix = self.prefix_slopes[br] * prefix_len + self.prefix_intercepts[br]
        middle = self._cum_totals[br] - self._cum_totals[bl + 1]
        intra = (highs - lows + 1) * self.averages[bl]
        return np.where(same, intra, suffix + middle + prefix)
