"""Minimax (maximum-error-optimal) histograms.

Selectivity estimators are often judged by their *worst* error rather
than the SSE; the corresponding optimal histogram minimises the maximum
point deviation.  Inside one bucket the best stored value for the
max-error objective is the midrange ``(min + max) / 2``, with bucket
cost ``(max - min) / 2``; buckets combine by ``max``, so the shared
interval DP with max-combine finds the global minimax partition in
``O(n^2 B)``.

This is the classical "maxdiff-style" companion to V-optimal and rounds
out the builder registry with the other norm real engines quote.  For
*range* queries the returned histogram still answers with equation (1);
the deterministic per-query bounds of :mod:`repro.queries.bounds`
quantify what the midrange values buy (smaller worst-case envelopes,
larger SSE).
"""

from __future__ import annotations

import numpy as np

from repro.core.histogram import AverageHistogram
from repro.internal.dp import interval_dp
from repro.internal.validation import as_frequency_vector, check_bucket_count


def minimax_cost_rows(data: np.ndarray, a: int) -> np.ndarray:
    """``(max - min) / 2`` of ``data[a..b]`` for all ``b``, in O(n - a)."""
    suffix = data[a:]
    running_max = np.maximum.accumulate(suffix)
    running_min = np.minimum.accumulate(suffix)
    return (running_max - running_min) / 2.0


def build_minimax(data, n_buckets: int, rounding: str = "none") -> AverageHistogram:
    """Histogram minimising the maximum point-estimation error.

    Stores per-bucket midranges; the optimal objective value equals the
    worst ``|data[i] - value[bucket(i)]|`` over the domain.
    """
    data = as_frequency_vector(data)
    n = data.size
    n_buckets = check_bucket_count(n_buckets, n)
    lefts, _ = interval_dp(
        n, n_buckets, lambda a: minimax_cost_rows(data, a), combine="max"
    )
    rights = np.concatenate((lefts[1:] - 1, [n - 1]))
    values = np.asarray(
        [
            (data[a : b + 1].max() + data[a : b + 1].min()) / 2.0
            for a, b in zip(lefts, rights)
        ]
    )
    return AverageHistogram(lefts, values, n, rounding=rounding, label="MINIMAX")


def max_point_error(histogram: AverageHistogram, data) -> float:
    """Worst point deviation of the stored values — the minimax objective."""
    data = np.asarray(data, dtype=np.float64)
    per_index = histogram.values[histogram.bucket_of(np.arange(data.size))]
    return float(np.abs(data - per_index).max())
