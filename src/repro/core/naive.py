"""The NAIVE baseline: a single global average.

Included in Figure 1 "only to provide a reasonable upper bound for SSE".
It is an :class:`~repro.core.histogram.AverageHistogram` with one bucket
(2 words of storage: one boundary, one value).
"""

from __future__ import annotations

from repro.core.histogram import AverageHistogram
from repro.internal.validation import as_frequency_vector


def build_naive(data, rounding: str = "per_piece") -> AverageHistogram:
    """Summarise ``data`` by its single global average."""
    data = as_frequency_vector(data)
    return AverageHistogram.from_boundaries(data, [0], rounding=rounding, label="NAIVE")
