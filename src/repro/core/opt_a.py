"""OPT-A: the exact range-optimal average histogram (Sections 2.1.1-2.1.2).

OPT-A stores one value per bucket — the bucket average — and answers
with equation (1), rounding each partial-bucket contribution to an
integer.  Finding the *range-optimal* bucket boundaries is hard because
inter-bucket queries couple distant buckets through the cross term
``2 * delta_suf(l) * delta_pre(r)``.  The paper's insight: the coupling
of a prefix bucketing with the future is summarised entirely by

    Lambda = sum over l <= i of delta_suf(l)

which is an *integer* (all answers are rounded), so a dynamic program
over states ``(i, k, Lambda)`` is exact and pseudo-polynomial.

This module implements both DPs from the paper:

* :func:`build_opt_a` / :func:`opt_a_search` — the improved algorithm of
  Section 2.1.2 over ``F*(i, k, Lambda)`` (Theorem 2), with sparse state
  sets, numpy group-by-minimum merging, and a sound branch-and-bound
  prune: the *realised* error of a partial bucketing (queries fully
  inside the prefix) only ever grows, so states whose realised error
  already exceeds a known upper bound (by default the A0 heuristic's
  true SSE) cannot complete to an optimum.

* :func:`build_opt_a_warmup` — the warm-up algorithm of Section 2.1.1
  over ``E*(i, k, Lambda_2, Lambda)`` (Theorem 1).  Asymptotically
  slower (two-dimensional state), kept for cross-validation and study;
  use it only on small inputs.

Both require integral data (scale and round otherwise — that is exactly
what :mod:`repro.core.opt_a_rounded` automates, with the Theorem 4
approximation guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.core.a0 import build_a0
from repro.core.histogram import AverageHistogram
from repro.errors import BudgetExceededError, InvalidDataError
from repro.internal.deadline import check_deadline
from repro.internal.parallel import map_rows
from repro.internal.prefix import PrefixAlgebra, round_half_up
from repro.internal.validation import as_frequency_vector, check_bucket_count
from repro.queries import evaluation

#: Default cap on the total number of DP states per layer.
DEFAULT_MAX_STATES = 2_000_000


@dataclass(frozen=True)
class OptAResult:
    """Outcome of the OPT-A dynamic program.

    Attributes
    ----------
    histogram:
        The optimal histogram (answering with per-piece rounding).
    objective:
        The DP's minimum SSE over all ranges — equals the histogram's
        exact SSE under the rounded answering procedure.
    lefts:
        Bucket start indices.
    state_count:
        Total number of ``(i, k, Lambda)`` states explored (a measure of
        the pseudo-polynomial cost).
    pruned:
        Number of states discarded by the upper-bound prune.
    """

    histogram: AverageHistogram
    objective: float
    lefts: np.ndarray
    state_count: int
    pruned: int


def _require_integral(data: np.ndarray) -> np.ndarray:
    # rtol must be 0: allclose's default relative term scales with the
    # frequency magnitude, so large half-integers (e.g. 1000000.5) would
    # silently pass the check and be rounded instead of rejected.
    if not np.allclose(data, np.round(data), rtol=0.0, atol=1e-9):
        raise InvalidDataError(
            "OPT-A's pseudo-polynomial DP requires integral frequencies "
            "(the paper's model); round the data or use build_opt_a_rounded"
        )
    return np.round(data)


@dataclass
class _BucketTerms:
    """Rounded statistics for every candidate bucket, precomputed once."""

    s1: np.ndarray  # (n, n): sum of rounded suffix errors of bucket [a, b]
    s2: np.ndarray  # sum of squared rounded suffix errors
    p1: np.ndarray  # sum of rounded prefix errors
    p2: np.ndarray  # sum of squared rounded prefix errors
    intra: np.ndarray  # rounded intra-bucket SSE


def _row_terms(algebra: PrefixAlgebra, a: int):
    """One row of the precompute (module-level so process pools can pickle it)."""
    return algebra.rounded_bucket_terms_row(a)


def _precompute_terms(algebra: PrefixAlgebra, pool=None) -> _BucketTerms:
    """Rounded statistics of every candidate bucket via the row kernel.

    One :meth:`~repro.internal.prefix.PrefixAlgebra.rounded_bucket_terms_row`
    call per row start ``a`` — O(n) vectorised kernel dispatches instead
    of the n(n+1)/2 scalar calls of the old precompute.  ``pool`` fans
    the rows out (threads or processes, see
    :func:`repro.internal.parallel.map_rows`); results are bit-identical
    to the serial and scalar paths on the integral data the DP requires.
    """
    n = algebra.n
    shape = (n, n)
    s1 = np.zeros(shape)
    s2 = np.zeros(shape)
    p1 = np.zeros(shape)
    p2 = np.zeros(shape)
    intra = np.zeros(shape)
    rows = map_rows(
        partial(_row_terms, algebra),
        range(n),
        pool=pool,
        context="OPT-A bucket-term precompute",
    )
    for a, (row_s1, row_s2, row_p1, row_p2, row_intra) in enumerate(rows):
        s1[a, a:] = row_s1
        s2[a, a:] = row_s2
        p1[a, a:] = row_p1
        p2[a, a:] = row_p2
        intra[a, a:] = row_intra
    return _BucketTerms(s1=s1, s2=s2, p1=p1, p2=p2, intra=intra)


def _precompute_terms_scalar(algebra: PrefixAlgebra, pool=None) -> _BucketTerms:
    """Per-bucket scalar precompute; the differential-test reference."""
    del pool  # accepted for signature compatibility; always serial
    n = algebra.n
    shape = (n, n)
    s1 = np.zeros(shape)
    s2 = np.zeros(shape)
    p1 = np.zeros(shape)
    p2 = np.zeros(shape)
    intra = np.zeros(shape)
    for a in range(n):
        check_deadline("OPT-A bucket-term precompute")
        for b in range(a, n):
            s1[a, b], s2[a, b], p1[a, b], p2[a, b], intra[a, b] = (
                algebra.rounded_bucket_terms(a, b)
            )
    return _BucketTerms(s1=s1, s2=s2, p1=p1, p2=p2, intra=intra)


class _StateBlock:
    """Sparse DP states at one ``(k, i)`` cell, keyed by integer Lambda."""

    __slots__ = ("lam", "f", "sum_s2", "parent_j", "parent_idx")

    def __init__(self, lam, f, sum_s2, parent_j, parent_idx) -> None:
        self.lam = lam
        self.f = f
        self.sum_s2 = sum_s2
        self.parent_j = parent_j
        self.parent_idx = parent_idx

    def __len__(self) -> int:
        return int(self.lam.size)


def _merge_candidates(lam, f, sum_s2, parent_j, parent_idx) -> _StateBlock:
    """Group candidates by Lambda, keeping the minimum-F representative."""
    order = np.lexsort((f, lam))
    lam_sorted = lam[order]
    keep = np.empty(lam_sorted.size, dtype=bool)
    keep[0] = True
    np.not_equal(lam_sorted[1:], lam_sorted[:-1], out=keep[1:])
    chosen = order[keep]
    return _StateBlock(
        lam=lam[chosen],
        f=f[chosen],
        sum_s2=sum_s2[chosen],
        parent_j=parent_j[chosen],
        parent_idx=parent_idx[chosen],
    )


def opt_a_search(
    data,
    n_buckets: int,
    *,
    max_states: int = DEFAULT_MAX_STATES,
    upper_bound: float | None = None,
    pool=None,
) -> OptAResult:
    """Run the improved OPT-A dynamic program (Theorem 2) and backtrack.

    Parameters
    ----------
    data:
        Integral frequency vector.
    n_buckets:
        Bucket budget ``B`` (at most; fewer buckets are allowed).
    max_states:
        Safety cap on the total live states in any layer; exceeding it
        raises :class:`~repro.errors.BudgetExceededError` with a pointer
        to :func:`~repro.core.opt_a_rounded.build_opt_a_rounded`.
    upper_bound:
        Any value known to be >= the optimal SSE, used to prune states
        whose already-realised error exceeds it.  Defaults to the true
        SSE of the A0 heuristic with the same budget (cheap to compute
        and usually tight).
    pool:
        Optional parallelism for the bucket-term precompute: ``None``
        (serial), an int worker count, or an executor (see
        :func:`repro.internal.parallel.map_rows`).  The result is
        bit-identical in every mode.

    Returns
    -------
    OptAResult
    """
    data = _require_integral(as_frequency_vector(data))
    n = data.size
    n_buckets = check_bucket_count(n_buckets, n)
    algebra = PrefixAlgebra(data)
    terms = _precompute_terms(algebra, pool=pool)

    if upper_bound is None:
        heuristic = build_a0(data, n_buckets, rounding="per_piece")
        upper_bound = evaluation.sse(heuristic, data)
    upper_bound = float(upper_bound) + 1e-6

    # layers[k][i] -> _StateBlock for prefixes of length i using exactly
    # k non-empty buckets.  i ranges 1..n; bucket [j, i-1] appended last.
    layers: list[dict[int, _StateBlock]] = [dict() for _ in range(n_buckets + 1)]
    state_count = 0
    pruned = 0

    # k = 1: single bucket [0, i-1].
    for i in range(1, n + 1):
        a, b = 0, i - 1
        f = terms.intra[a, b] + (n - i) * terms.s2[a, b]
        realised = terms.intra[a, b]
        if realised > upper_bound:
            pruned += 1
            continue
        layers[1][i] = _StateBlock(
            # round_half_up, not builtin round(): the answering path
            # standardises on half-up for cross-platform determinism and
            # banker's rounding would key .5 Lambdas differently.
            lam=np.asarray([int(round_half_up(terms.s1[a, b]))], dtype=np.int64),
            f=np.asarray([f], dtype=np.float64),
            sum_s2=np.asarray([terms.s2[a, b]], dtype=np.float64),
            parent_j=np.asarray([0], dtype=np.int32),
            parent_idx=np.asarray([0], dtype=np.int32),
        )
        state_count += 1

    for k in range(2, n_buckets + 1):
        prev = layers[k - 1]
        layer_states = 0
        for i in range(k, n + 1):
            check_deadline("OPT-A DP layer")
            cand_lam, cand_f, cand_s2 = [], [], []
            cand_pj, cand_pi = [], []
            for j in range(k - 1, i):
                block = prev.get(j)
                if block is None:
                    continue
                a, b = j, i - 1
                add_const = terms.intra[a, b] + j * terms.p2[a, b] + (n - i) * terms.s2[a, b]
                new_f = block.f + add_const + 2.0 * block.lam * terms.p1[a, b]
                new_lam = block.lam + np.int64(round_half_up(terms.s1[a, b]))
                new_s2 = block.sum_s2 + terms.s2[a, b]
                realised = new_f - (n - i) * new_s2
                ok = realised <= upper_bound
                pruned += int(np.count_nonzero(~ok))
                if not ok.any():
                    continue
                cand_lam.append(new_lam[ok])
                cand_f.append(new_f[ok])
                cand_s2.append(new_s2[ok])
                cand_pj.append(np.full(int(ok.sum()), j, dtype=np.int32))
                cand_pi.append(np.nonzero(ok)[0].astype(np.int32))
            if not cand_lam:
                continue
            block = _merge_candidates(
                np.concatenate(cand_lam),
                np.concatenate(cand_f),
                np.concatenate(cand_s2),
                np.concatenate(cand_pj),
                np.concatenate(cand_pi),
            )
            layers[k][i] = block
            layer_states += len(block)
            if layer_states > max_states:
                raise BudgetExceededError(
                    f"OPT-A DP exceeded max_states={max_states} at layer k={k} "
                    f"(n={n}, total sum={algebra.total():.0f}); rescale the data "
                    f"with build_opt_a_rounded or raise max_states"
                )
        state_count += layer_states

    # Best final state over all k <= B.
    best = (np.inf, -1, -1)  # (F, k, state index)
    for k in range(1, n_buckets + 1):
        block = layers[k].get(n)
        if block is None:
            continue
        idx = int(np.argmin(block.f))
        if block.f[idx] < best[0]:
            best = (float(block.f[idx]), k, idx)
    if best[1] < 0:
        raise BudgetExceededError(
            "OPT-A DP pruned every candidate; the supplied upper_bound "
            f"({upper_bound:.6g}) is below the optimal SSE"
        )

    # Backtrack bucket start indices.
    lefts: list[int] = []
    _, k, idx = best
    i = n
    while i > 0:
        block = layers[k][i]
        j = int(block.parent_j[idx])
        lefts.append(j)
        idx = int(block.parent_idx[idx])
        i, k = j, k - 1
    lefts.reverse()
    lefts_arr = np.asarray(lefts, dtype=np.int64)

    histogram = AverageHistogram.from_boundaries(
        data, lefts_arr, rounding="per_piece", label="OPT-A"
    )
    return OptAResult(
        histogram=histogram,
        objective=best[0],
        lefts=lefts_arr,
        state_count=state_count,
        pruned=pruned,
    )


def build_opt_a(
    data,
    n_buckets: int,
    *,
    max_states: int = DEFAULT_MAX_STATES,
    upper_bound: float | None = None,
    pool=None,
) -> AverageHistogram:
    """Build the exact range-optimal OPT-A histogram (Theorems 1-2)."""
    return opt_a_search(
        data, n_buckets, max_states=max_states, upper_bound=upper_bound, pool=pool
    ).histogram


def build_opt_a_warmup(
    data,
    n_buckets: int,
    *,
    max_states: int = 500_000,
    pool=None,
) -> OptAResult:
    """The warm-up DP of Section 2.1.1 over states ``(i, k, Lambda_2, Lambda)``.

    Kept for study and cross-validation against :func:`opt_a_search`;
    the two agree on the optimal objective.  The two-dimensional state
    makes this considerably more expensive — use small inputs.
    """
    data = _require_integral(as_frequency_vector(data))
    n = data.size
    n_buckets = check_bucket_count(n_buckets, n)
    algebra = PrefixAlgebra(data)
    terms = _precompute_terms(algebra, pool=pool)

    # States at (k, i): dict mapping (lam, lam2) -> (E, parent_j, parent_key).
    layers: list[dict[int, dict[tuple[int, int], tuple[float, int, tuple]]]] = [
        dict() for _ in range(n_buckets + 1)
    ]
    state_count = 0
    for i in range(1, n + 1):
        a, b = 0, i - 1
        key = (int(round_half_up(terms.s1[a, b])), int(round_half_up(terms.s2[a, b])))
        layers[1][i] = {key: (float(terms.intra[a, b]), 0, None)}
        state_count += 1

    for k in range(2, n_buckets + 1):
        for i in range(k, n + 1):
            check_deadline("warm-up OPT-A DP layer")
            cell: dict[tuple[int, int], tuple[float, int, tuple]] = {}
            for j in range(k - 1, i):
                prev_cell = layers[k - 1].get(j)
                if not prev_cell:
                    continue
                a, b = j, i - 1
                length = i - j
                add_const = terms.intra[a, b] + j * terms.p2[a, b]
                for (lam, lam2), (e_val, _, _) in prev_cell.items():
                    new_e = e_val + add_const + length * lam2 + 2.0 * lam * terms.p1[a, b]
                    new_key = (
                        lam + int(round_half_up(terms.s1[a, b])),
                        lam2 + int(round_half_up(terms.s2[a, b])),
                    )
                    old = cell.get(new_key)
                    if old is None or new_e < old[0]:
                        cell[new_key] = (new_e, j, (lam, lam2))
            if cell:
                layers[k][i] = cell
                state_count += len(cell)
                if state_count > max_states:
                    raise BudgetExceededError(
                        f"warm-up OPT-A DP exceeded max_states={max_states}; "
                        "use opt_a_search (the improved algorithm) instead"
                    )

    best = (np.inf, -1, None)
    for k in range(1, n_buckets + 1):
        cell = layers[k].get(n)
        if not cell:
            continue
        for key, (e_val, _, _) in cell.items():
            if e_val < best[0]:
                best = (e_val, k, key)
    objective, k, key = best

    lefts: list[int] = []
    i = n
    while i > 0:
        e_val, j, parent_key = layers[k][i][key]
        lefts.append(j)
        i, k, key = j, k - 1, parent_key
    lefts.reverse()
    lefts_arr = np.asarray(lefts, dtype=np.int64)
    histogram = AverageHistogram.from_boundaries(
        data, lefts_arr, rounding="per_piece", label="OPT-A"
    )
    return OptAResult(
        histogram=histogram,
        objective=float(objective),
        lefts=lefts_arr,
        state_count=state_count,
        pruned=0,
    )
