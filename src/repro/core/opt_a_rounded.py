"""OPT-A-ROUNDED: the (1 + eps)-approximate OPT-A (Section 2.1.3).

Definition 3: round every array entry to a nearby multiple of ``x``
(arbitrarily or with unbiased randomisation), divide through by ``x``,
compute the OPT-A histogram of the result, and multiply through by
``x``.  The rounded instance's total mass — and with it the magnitude of
the DP's ``Lambda`` states — shrinks by a factor ``x``, so the
pseudo-polynomial dynamic program speeds up proportionally while the
histogram quality degrades by a bounded factor (Theorem 4).

The theorem's exact ``x``-from-``eps`` constant is not spelled out in
the paper; :func:`choose_rounding_parameter` derives one from the
perturbation analysis in its docstring, anchored to a cheap upper bound
on the optimal error.  Callers who know what they want can pass ``x``
directly.
"""

from __future__ import annotations

import numpy as np

from repro.core.a0 import build_a0
from repro.core.histogram import AverageHistogram
from repro.core.opt_a import DEFAULT_MAX_STATES, OptAResult, opt_a_search
from repro.errors import InvalidParameterError
from repro.internal.prefix import round_half_up
from repro.internal.validation import as_frequency_vector, check_bucket_count, check_positive
from repro.queries import evaluation


def round_to_multiples(data, x: int, mode: str = "arbitrary", seed=None) -> np.ndarray:
    """Round each entry to a multiple of ``x``.

    ``mode="arbitrary"`` rounds to the nearest multiple (the paper lets
    any nearby multiple be chosen); ``mode="randomized"`` rounds up with
    probability equal to the fractional part, which is unbiased and
    gives the sharper runtime of the paper's closing remark in 2.1.3.
    """
    data = np.asarray(data, dtype=np.float64)
    scaled = data / x
    if mode == "arbitrary":
        return round_half_up(scaled) * x
    if mode == "randomized":
        rng = np.random.default_rng(seed)
        floor = np.floor(scaled)
        frac = scaled - floor
        up = rng.random(scaled.shape) < frac
        return (floor + up) * x
    raise InvalidParameterError(f"mode must be 'arbitrary' or 'randomized', got {mode!r}")


def choose_rounding_parameter(data, n_buckets: int, epsilon: float) -> int:
    """Pick the rounding granularity ``x`` for a target quality loss ``eps``.

    Rounding entries by at most ``x/2`` perturbs any range sum by at
    most ``Delta = n * x / 2``, and hence any histogram's SSE by at most
    ``2 * Delta' * sqrt(R * SSE) + R * Delta'^2`` over the ``R = n(n+1)/2``
    ranges (Cauchy-Schwarz), with ``Delta' = 2 * Delta`` covering both the
    data and the estimate shifts.  Setting this to ``eps * E0 / 2`` for
    an upper bound ``E0 >= OPT`` (the A0 heuristic's true SSE) and
    solving the quadratic for ``x`` gives the value below; ``x`` is at
    least 1 (no-op) and the build degrades gracefully if the bound is
    loose.
    """
    data = as_frequency_vector(data)
    n = data.size
    n_buckets = check_bucket_count(n_buckets, n)
    epsilon = check_positive(epsilon, name="epsilon")
    heuristic = build_a0(np.round(data), n_buckets, rounding="per_piece")
    e0 = evaluation.sse(heuristic, np.round(data))
    if e0 <= 0.0:
        return 1
    r = n * (n + 1) / 2.0
    # Solve r*d^2 + 2*sqrt(r*e0)*d = eps*e0/2 for d = n*x (Delta').
    sqrt_re0 = np.sqrt(r * e0)
    d = (-2.0 * sqrt_re0 + np.sqrt(4.0 * r * e0 + 2.0 * r * epsilon * e0)) / (2.0 * r)
    return max(1, int(d / n))


def build_opt_a_rounded(
    data,
    n_buckets: int,
    *,
    x: int | None = None,
    epsilon: float | None = None,
    mode: str = "arbitrary",
    seed=None,
    rebuild: str = "original",
    max_states: int = DEFAULT_MAX_STATES,
    pool=None,
) -> AverageHistogram:
    """Build the OPT-A-ROUNDED histogram (Definition 3, Theorem 4).

    ``pool`` is forwarded to :func:`~repro.core.opt_a.opt_a_search` for
    the bucket-term precompute (bit-identical in every mode).

    Exactly one of ``x`` (the rounding granularity) or ``epsilon`` (a
    target quality-loss factor, from which ``x`` is derived) may be
    given; with neither, ``x = 1`` (plain OPT-A on rounded data).

    ``rebuild`` selects the stored values.  ``"scaled"`` is Definition 3
    verbatim: the rounded instance's averages multiplied by ``x``.  The
    default ``"original"`` keeps the boundaries the rounded DP found but
    stores the exact averages of the original data — it costs one O(n)
    pass and sidesteps the systematic bias deterministic rounding
    injects into the stored values (with half-up rounding and ``x = 2``,
    every odd count inflates by 1, which dominates the SSE on
    heavy-tailed data; see benchmarks/test_rounding_tradeoff.py for the
    measured gap).  Only boundary placement is then affected by the
    approximation.
    """
    data = as_frequency_vector(data)
    n = data.size
    n_buckets = check_bucket_count(n_buckets, n)
    if x is not None and epsilon is not None:
        raise InvalidParameterError("pass at most one of x and epsilon")
    if rebuild not in ("scaled", "original"):
        raise InvalidParameterError(f"rebuild must be 'scaled' or 'original', got {rebuild!r}")
    if x is None:
        x = choose_rounding_parameter(data, n_buckets, epsilon) if epsilon is not None else 1
    if not isinstance(x, (int, np.integer)) or x < 1:
        raise InvalidParameterError(f"x must be a positive integer, got {x!r}")
    x = int(x)

    reduced = round_to_multiples(data, x, mode=mode, seed=seed) / x
    result: OptAResult = opt_a_search(reduced, n_buckets, max_states=max_states, pool=pool)
    # x = 1 leaves integral data untouched: that IS exact OPT-A.
    label = "OPT-A" if x == 1 else "OPT-A-ROUNDED"
    if rebuild == "original":
        return AverageHistogram.from_boundaries(
            np.round(data), result.lefts, rounding="per_piece", label=label
        )
    return AverageHistogram(
        result.lefts,
        result.histogram.values * x,
        n,
        rounding="per_piece",
        label=label,
    )


#: Total mass below which the exact DP (x = 1) is attempted first.
#: Above it, the auto builder starts the ladder at mass/target — failed
#: pseudo-polynomial attempts are not free (each one explores millions
#: of states before hitting the cap), so skipping the doomed rungs is
#: what keeps the auto path interactive on heavy columns.
AUTO_MASS_TARGET = 10_000


def build_opt_a_auto(
    data,
    n_buckets: int,
    *,
    max_states: int = DEFAULT_MAX_STATES,
    max_x: int = 1 << 20,
    initial_x: int | None = None,
    mode: str = "arbitrary",
    seed=None,
    pool=None,
) -> AverageHistogram:
    """Exact OPT-A when it fits the state budget, else the coarsest-
    necessary OPT-A-ROUNDED.

    Starts the rounding ladder at ``initial_x`` (by default, the power
    of two bringing the total mass near :data:`AUTO_MASS_TARGET` —
    light data starts at the exact ``x = 1``) and doubles until the
    dynamic program fits ``max_states``.  This is the recommended entry
    point when the data's mass is unknown: small instances get the
    provable optimum, heavy instances degrade through Theorem 4's
    guarantee instead of failing or stalling.  Pass ``initial_x=1`` to
    force the exact attempt regardless of mass.
    """
    import numpy as np

    from repro.errors import BudgetExceededError

    if initial_x is None:
        mass = float(np.asarray(data, dtype=np.float64).sum())
        initial_x = 1
        while mass / initial_x > AUTO_MASS_TARGET:
            initial_x *= 2
    x = max(int(initial_x), 1)
    while True:
        try:
            return build_opt_a_rounded(
                data, n_buckets, x=x, mode=mode, seed=seed, max_states=max_states, pool=pool
            )
        except BudgetExceededError:
            x *= 2
            if x > max_x:
                raise
