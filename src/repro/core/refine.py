"""Local-search refinement of bucket boundaries.

Section 4 mentions "heuristics and local search improvements" on top of
the DP constructions.  :func:`refine_boundaries` implements the natural
hill-climber: repeatedly try shifting each interior boundary by up to
``step`` positions, rebuild the histogram, and keep any move that lowers
the true workload SSE.  Because every candidate is evaluated with the
*exact* objective (not a DP surrogate), this can only improve — which
makes it a useful post-pass for the heuristics (A0, POINT-OPT) whose DP
objective diverges from the true SSE, and a no-op in expectation for the
already-optimal builders.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.histogram import AverageHistogram, validate_lefts
from repro.internal.validation import as_frequency_vector
from repro.queries import evaluation
from repro.queries.workload import Workload


def _default_build(data, lefts):
    return AverageHistogram.from_boundaries(data, lefts, rounding="per_piece", label="REFINED")


def refine_boundaries(
    data,
    lefts,
    *,
    build: Callable | None = None,
    workload: Workload | None = None,
    step: int = 2,
    max_passes: int = 25,
):
    """Hill-climb bucket boundaries under the exact workload SSE.

    Parameters
    ----------
    data:
        Frequency vector.
    lefts:
        Initial bucket start indices.
    build:
        ``build(data, lefts) -> estimator`` used for every candidate;
        defaults to an equation-(1) average histogram.  Pass e.g. a SAP1
        constructor-from-boundaries to refine other representations.
    workload:
        Objective ranges; default all ranges.
    step:
        Maximum boundary shift tried per move.  Candidate shifts are
        geometric (±1, ±2, ±4, … up to ±step), so wide search radii stay
        cheap; accepted moves restart from the small shifts.
    max_passes:
        Upper bound on full sweeps over the boundaries.

    Returns
    -------
    (estimator, lefts, sse):
        The refined histogram, its boundaries, and its exact SSE.
    """
    data = as_frequency_vector(data)
    n = data.size
    lefts = validate_lefts(lefts, n).copy()
    if build is None:
        build = _default_build

    def objective(candidate):
        estimator = build(data, candidate)
        return evaluation.sse(estimator, data, workload), estimator

    deltas: list[int] = []
    magnitude = 1
    while magnitude <= step:
        deltas.extend((magnitude, -magnitude))
        magnitude *= 2
    if step > 1 and step not in deltas:
        deltas.extend((step, -step))

    best_sse, best_est = objective(lefts)
    for _ in range(max_passes):
        improved = False
        for boundary in range(1, lefts.size):
            low_limit = lefts[boundary - 1] + 1
            high_limit = lefts[boundary + 1] - 1 if boundary + 1 < lefts.size else n - 1
            current = lefts[boundary]
            for delta in deltas:
                candidate_pos = current + delta
                if not low_limit <= candidate_pos <= high_limit:
                    continue
                candidate = lefts.copy()
                candidate[boundary] = candidate_pos
                sse_value, estimator = objective(candidate)
                if sse_value < best_sse - 1e-12:
                    best_sse, best_est = sse_value, estimator
                    lefts = candidate
                    improved = True
                    break
        if not improved:
            break
    return best_est, lefts, float(best_sse)
