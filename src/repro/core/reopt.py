"""Value re-optimisation for fixed bucket boundaries (Section 5).

Once boundaries are fixed, the un-rounded equation-(1) answer to any
range ``(a, b)`` is linear in the stored values:
``s~[a, b] = sum_P cov_P(a, b) * x_P`` where ``cov_P`` is how many
indices of bucket ``P`` the range covers.  The SSE over a workload is
therefore the quadratic ``x Q x^T + g x^T + c`` of the paper, minimised
by a single linear solve.  We assemble the (workload x buckets) coverage
design matrix and use a least-squares solve, which is numerically robust
when buckets are indistinguishable under the workload (singular ``Q``).

The paper sketches an ``O(N + B^3)`` assembly of ``Q`` by exploiting the
piecewise structure of ``cov``; the vectorised ``O(|workload| * B)``
assembly below produces the identical system and is faster in numpy at
any scale a quadratic-size workload can reach.  Applied to any base
histogram this yields the paper's ``A-reopt`` family; it helps exactly
when the base stores plain averages (OPT-A, A0, POINT-OPT, NAIVE) and
cannot help SAP0/SAP1, which already optimise their summary values.
"""

from __future__ import annotations

import numpy as np

from repro.core.histogram import AverageHistogram, Histogram, validate_lefts
from repro.internal.validation import as_frequency_vector
from repro.queries.workload import Workload, all_ranges


def coverage_matrix(lefts, n: int, workload: Workload) -> np.ndarray:
    """Per-query bucket coverage lengths: shape ``(len(workload), B)``.

    Entry ``(q, P)`` is the number of indices of bucket ``P`` inside
    query ``q``'s range — the coefficient of ``x_P`` in the linear
    answer.
    """
    lefts = validate_lefts(lefts, n)
    rights = np.concatenate((lefts[1:] - 1, [n - 1]))
    lows = workload.lows[:, None]
    highs = workload.highs[:, None]
    overlap = np.minimum(highs, rights[None, :]) - np.maximum(lows, lefts[None, :]) + 1
    return np.maximum(overlap, 0).astype(np.float64)


def reoptimize_values(
    histogram: Histogram,
    data,
    *,
    workload: Workload | None = None,
    rounding: str = "none",
    label: str | None = None,
) -> AverageHistogram:
    """Re-optimise the stored per-bucket values of ``histogram`` for SSE.

    Parameters
    ----------
    histogram:
        Any histogram; only its bucket boundaries are used.
    data:
        The frequency vector the histogram summarises.
    workload:
        Ranges (optionally weighted) to optimise for; defaults to all
        ranges — the paper's objective.
    rounding:
        Answering mode of the returned histogram.  The optimisation
        itself is over the un-rounded linear answer, per the paper.
    label:
        Display name; defaults to ``"<base>-reopt"``.

    Returns
    -------
    AverageHistogram
        Same boundaries, values minimising the workload SSE.
    """
    data = as_frequency_vector(data)
    n = data.size
    if workload is None:
        workload = all_ranges(n)
    design = coverage_matrix(histogram.lefts, n, workload)
    prefix = np.concatenate(([0.0], np.cumsum(data)))
    truth = prefix[workload.highs + 1] - prefix[workload.lows]
    sqrt_w = np.sqrt(workload.weights)
    values, *_ = np.linalg.lstsq(design * sqrt_w[:, None], truth * sqrt_w, rcond=None)
    base = getattr(histogram, "name", "HIST")
    return AverageHistogram(
        histogram.lefts,
        values,
        n,
        rounding=rounding,
        label=label or f"{base}-reopt",
    )


def reopt_quadratic(lefts, data, workload: Workload | None = None):
    """The paper's explicit ``(Q, g, c)`` of the SSE quadratic.

    ``SSE(x) = x @ Q @ x + g @ x + c``.  Exposed for tests and for
    study; :func:`reoptimize_values` solves the same system via least
    squares.
    """
    data = as_frequency_vector(data)
    n = data.size
    if workload is None:
        workload = all_ranges(n)
    design = coverage_matrix(lefts, n, workload)
    prefix = np.concatenate(([0.0], np.cumsum(data)))
    truth = prefix[workload.highs + 1] - prefix[workload.lows]
    weighted = design * workload.weights[:, None]
    q = design.T @ weighted
    g = -2.0 * (weighted.T @ truth)
    c = float((workload.weights * truth * truth).sum())
    return q, g, c
