"""SAP0 and SAP1: range-optimal histograms in polynomial time.

These are the paper's Section 2.2 constructions.  Each bucket stores, in
addition to its average, summary values for the *suffix* piece (left
endpoint of an inter-bucket range falls here) and the *prefix* piece
(right endpoint falls here): constants for SAP0, linear functions of the
piece length for SAP1.

The Decomposition Lemma (Lemma 5) shows that when the stored summaries
are the bucket means of suffix/prefix sums (SAP0) — or, by the same
argument, their least-squares fits (SAP1) — the cross terms of the
sum-squared error vanish, so the total SSE is a sum of independent
per-bucket costs:

    cost(a, b) = intra(a, b)                      # ranges inside the bucket
               + (n - 1 - b) * SSR_suffix(a, b)   # left endpoints here
               + a * SSR_prefix(a, b)             # right endpoints here

(0-indexed; ``(n - 1 - b)`` right endpoints lie strictly right of the
bucket and ``a`` left endpoints strictly left).  For SAP0 the residuals
are variances about the mean; for SAP1, regression residuals.  The
shared interval DP then finds the optimal boundaries in ``O(n^2 B)``
(Theorems 6 and 8), and by the Lemma the result is optimal over *all*
boundaries and summary values simultaneously.
"""

from __future__ import annotations

import numpy as np

from repro.core.histogram import SapHistogram
from repro.internal.dp import interval_dp
from repro.internal.prefix import PrefixAlgebra
from repro.internal.validation import as_frequency_vector, check_bucket_count


def sap_histogram_from_boundaries(data, lefts, order: int) -> SapHistogram:
    """Assemble the SAP histogram with optimal summaries for given boundaries."""
    data = as_frequency_vector(data)
    algebra = PrefixAlgebra(data)
    lefts = np.asarray(lefts, dtype=np.int64)
    n = data.size
    rights = np.concatenate((lefts[1:] - 1, [n - 1]))
    averages, suf_slope, suf_int, pre_slope, pre_int = [], [], [], [], []
    for a, b in zip(lefts.tolist(), rights.tolist()):
        averages.append(algebra.bucket_mean(a, b))
        if order == 0:
            suffix_value, _ = algebra.sap0_suffix(a, b)
            prefix_value, _ = algebra.sap0_prefix(a, b)
            suf_slope.append(0.0)
            suf_int.append(float(suffix_value))
            pre_slope.append(0.0)
            pre_int.append(float(prefix_value))
        else:
            suffix_fit = algebra.sap1_suffix_fit(a, b)
            prefix_fit = algebra.sap1_prefix_fit(a, b)
            suf_slope.append(suffix_fit.slope)
            suf_int.append(suffix_fit.intercept)
            pre_slope.append(prefix_fit.slope)
            pre_int.append(prefix_fit.intercept)
    return SapHistogram(
        lefts, averages, suf_slope, suf_int, pre_slope, pre_int, n, order=order
    )


def _build(data, n_buckets: int, order: int, pool=None) -> SapHistogram:
    data = as_frequency_vector(data)
    n = data.size
    n_buckets = check_bucket_count(n_buckets, n)
    algebra = PrefixAlgebra(data)

    if order == 0:
        def cost_row(a: int) -> np.ndarray:
            bs = np.arange(a, n)
            _, var_suffix = algebra.sap0_suffix(a, bs)
            _, var_prefix = algebra.sap0_prefix(a, bs)
            return algebra.intra_sse(a, bs) + (n - 1 - bs) * var_suffix + a * var_prefix
    else:
        def cost_row(a: int) -> np.ndarray:
            bs = np.arange(a, n)
            ssr_suffix = algebra.sap1_suffix_ssr(a, bs)
            ssr_prefix = algebra.sap1_prefix_ssr(a, bs)
            return algebra.intra_sse(a, bs) + (n - 1 - bs) * ssr_suffix + a * ssr_prefix

    lefts, _ = interval_dp(n, n_buckets, cost_row, pool=pool)
    return sap_histogram_from_boundaries(data, lefts, order)


def build_sap0(data, n_buckets: int, *, pool=None) -> SapHistogram:
    """Range-optimal SAP0 histogram (Theorem 6); 3B words of storage."""
    return _build(data, n_buckets, order=0, pool=pool)


def build_sap1(data, n_buckets: int, *, pool=None) -> SapHistogram:
    """Range-optimal SAP1 histogram (Theorem 8); 5B words of storage.

    SAP1's answer class strictly contains OPT-A's (set the suffix/prefix
    fits to the bucket average line and you recover equation (1) without
    rounding), so for equal ``n_buckets`` its SSE is never worse than
    un-rounded OPT-A's — at 2.5x the space per bucket.
    """
    return _build(data, n_buckets, order=1, pool=pool)
