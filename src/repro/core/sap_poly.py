"""SAPd: higher-order polynomial suffix/prefix summaries (degree >= 2).

Section 2.2.2 generalises SAP0's constants to SAP1's linear functions
and notes the technique keeps working; this module continues the ladder
to arbitrary (small) polynomial degree ``d``: each bucket stores the
degree-``d`` least-squares fits of its suffix sums and prefix sums
against the piece length.

The Decomposition Lemma survives verbatim: OLS residuals are orthogonal
to every regressor, in particular the constant, so the per-bucket
residual sums are zero and the cross terms of the SSE vanish — the
interval DP with additive costs

    cost(a, b) = intra(a, b) + (n-1-b) * SSR_suf(a, b) + a * SSR_pre(a, b)

is exactly optimal over boundaries and summaries simultaneously, in
``O(n^2 B)`` (for fixed ``d``).

Storage: boundaries + two (d+1)-coefficient fits per bucket =
``(2d + 3) * B`` words (the average is recoverable from the fits as in
SAP0/SAP1) — degree 1 reproduces SAP1's 5B.

Numerics: fits use the *centred* length basis ``x = m - (L+1)/2``,
which decorrelates the powers (odd moments vanish) and keeps the normal
equations well-conditioned up to degree 3 for the domain sizes this
library targets; the centre is derivable from the boundaries, so it
costs no storage.
"""

from __future__ import annotations

from math import comb

import numpy as np

from repro.errors import InvalidParameterError
from repro.internal.dp import interval_dp
from repro.internal.prefix import PrefixAlgebra
from repro.internal.validation import as_frequency_vector, check_bucket_count
from repro.queries.estimators import RangeSumEstimator

#: Highest supported fit degree (conditioning-bounded).
MAX_DEGREE = 3


class _PolyMoments:
    """Vectorised raw and centred moments of suffix/prefix sums.

    For a fixed bucket start ``a`` and all ends ``b``, provides
    ``R_j = sum_l m_l^j * y_l`` (suffix sums against piece length) and
    the analogous prefix moments, plus centred power sums of the
    lengths — everything the degree-``d`` normal equations need, O(1)
    per bucket after O(n * d) preprocessing.
    """

    def __init__(self, data: np.ndarray, degree: int) -> None:
        self.n = n = data.size
        self.degree = degree
        self.p = np.concatenate(([0.0], np.cumsum(data)))
        t = np.arange(n + 1, dtype=np.float64)
        # cum_tj_p[j][i] = sum_{u <= i} u^j * p[u]; cum_tj[j][i] = sum u^j.
        self.cum_tj_p = [
            np.concatenate(([0.0], np.cumsum(t**j * self.p))) for j in range(degree + 1)
        ]
        self.cum_tj = [
            np.concatenate(([0.0], np.cumsum(t**j))) for j in range(degree + 1)
        ]
        # Faulhaber sums P_j(L) = sum_{m=1..L} m^j, for j up to 2d.
        # (index 0 counts terms, so it must exclude m = 0: 0^0 == 1.)
        m = np.arange(n + 1, dtype=np.float64)
        self.power_sums = [np.arange(n + 1, dtype=np.float64)] + [
            np.cumsum(m**j) for j in range(1, 2 * degree + 1)
        ]
        # sum of squared suffix/prefix sums handled via PrefixAlgebra.
        self.algebra = PrefixAlgebra(data)

    def _sum_range(self, table, lo, hi):
        """sum_{u=lo..hi} of a cumulative-with-leading-zero table."""
        return table[np.asarray(hi) + 1] - table[lo]

    def suffix_raw(self, a: int, bs: np.ndarray):
        """``R_j = sum_{l=a..b} (b+1-l)^j * s(l, b)`` for j = 0..d."""
        d = self.degree
        pb = self.p[bs + 1]
        # A_i = sum_{l=a..b} l^i, B_i = sum_{l=a..b} l^i p[l].
        A = [self._sum_range(self.cum_tj[i], a, bs) for i in range(d + 1)]
        B = [self._sum_range(self.cum_tj_p[i], a, bs) for i in range(d + 1)]
        out = []
        for j in range(d + 1):
            total = np.zeros_like(pb)
            for i in range(j + 1):
                coeff = comb(j, i) * (-1.0) ** i
                total += coeff * (bs + 1.0) ** (j - i) * (pb * A[i] - B[i])
            out.append(total)
        return out

    def prefix_raw(self, a: int, bs: np.ndarray):
        """``R_j = sum_{r=a..b} (r-a+1)^j * s(a, r)`` for j = 0..d."""
        d = self.degree
        pa = self.p[a]
        # C_i = sum_{r=a..b} (r+1)^i ... expand via u = r+1 in a+1..b+1.
        A = [self._sum_range(self.cum_tj[i], a + 1, bs + 1) for i in range(d + 1)]
        B = [self._sum_range(self.cum_tj_p[i], a + 1, bs + 1) for i in range(d + 1)]
        out = []
        for j in range(d + 1):
            total = np.zeros(bs.shape, dtype=np.float64)
            for i in range(j + 1):
                # (r - a + 1)^j = (u - a)^j with u = r + 1.
                coeff = comb(j, i) * (-float(a)) ** (j - i)
                total += coeff * (B[i] - pa * A[i])
            out.append(total)
        return out

    def centred_power_sums(self, lengths: np.ndarray):
        """``S_k(L) = sum_{m=1..L} (m - (L+1)/2)^k`` for k = 0..2d."""
        centres = (lengths + 1.0) / 2.0
        L_idx = lengths.astype(np.int64)
        out = []
        for k in range(2 * self.degree + 1):
            total = np.zeros(lengths.shape, dtype=np.float64)
            for j in range(k + 1):
                total += (
                    comb(k, j)
                    * (-centres) ** (k - j)
                    * self.power_sums[j][L_idx]
                )
            out.append(total)
        return out

    @staticmethod
    def centre_moments(raw, lengths):
        """Convert raw length moments ``R_j`` to centred ``r_k``."""
        centres = (lengths + 1.0) / 2.0
        out = []
        for k in range(len(raw)):
            total = np.zeros(lengths.shape, dtype=np.float64)
            for j in range(k + 1):
                total += comb(k, j) * (-centres) ** (k - j) * raw[j]
            out.append(total)
        return out


def _ssr_rows(moments: _PolyMoments, a: int, side: str):
    """Residual SSE of the degree-d centred fit, for all ``b >= a``."""
    n, d = moments.n, moments.degree
    bs = np.arange(a, n)
    lengths = (bs - a + 1).astype(np.float64)
    raw = moments.suffix_raw(a, bs) if side == "suffix" else moments.prefix_raw(a, bs)
    r = moments.centre_moments(raw, lengths)
    s = moments.centred_power_sums(lengths)
    # Normal equations M c = r with M[i, j] = S_{i+j}.
    count = bs.size
    M = np.empty((count, d + 1, d + 1))
    for i in range(d + 1):
        for j in range(d + 1):
            M[:, i, j] = s[i + j]
    rhs = np.stack(r, axis=1)
    # Ridge-of-last-resort for degenerate tiny buckets (L <= d).
    eye = np.eye(d + 1) * 1e-9
    coeffs = np.linalg.solve(M + eye, rhs[..., None])[..., 0]
    if side == "suffix":
        _, y2, _ = moments.algebra.suffix_raw_moments(a, bs)
    else:
        _, y2, _ = moments.algebra.prefix_raw_moments(a, bs)
    ssr = np.asarray(y2) - np.einsum("bk,bk->b", coeffs, rhs)
    return np.maximum(ssr, 0.0), coeffs


class PolySapHistogram(RangeSumEstimator):
    """Histogram with degree-``d`` polynomial suffix/prefix summaries.

    The suffix estimate for a piece of length ``m`` inside bucket ``P``
    is ``sum_k suffix_coeffs[P, k] * (m - (L_P + 1)/2)^k``, and
    symmetrically for prefixes; intra-bucket queries answer with the
    bucket average (recoverable — not stored against the budget).
    """

    def __init__(self, lefts, averages, suffix_coeffs, prefix_coeffs, n: int,
                 degree: int) -> None:
        from repro.core.histogram import validate_lefts

        self.n = int(n)
        self.lefts = validate_lefts(lefts, self.n)
        self.bucket_count = int(self.lefts.size)
        self.rights = np.concatenate((self.lefts[1:] - 1, [self.n - 1]))
        self.bucket_lengths = self.rights - self.lefts + 1
        self.degree = int(degree)
        self.averages = np.asarray(averages, dtype=np.float64)
        self.suffix_coeffs = np.asarray(suffix_coeffs, dtype=np.float64)
        self.prefix_coeffs = np.asarray(prefix_coeffs, dtype=np.float64)
        expected = (self.bucket_count, self.degree + 1)
        if self.suffix_coeffs.shape != expected or self.prefix_coeffs.shape != expected:
            raise InvalidParameterError(
                f"coefficient arrays must have shape {expected}"
            )
        totals = self.bucket_lengths * self.averages
        self._cum_totals = np.concatenate(([0.0], np.cumsum(totals)))
        self._centres = (self.bucket_lengths + 1.0) / 2.0

    @property
    def name(self) -> str:
        return f"SAP{self.degree}"

    def storage_words(self) -> int:
        """``(2d + 3) B``: boundary + two (d+1)-coefficient fits."""
        return (2 * self.degree + 3) * self.bucket_count

    def bucket_of(self, index) -> np.ndarray:
        return np.searchsorted(self.lefts, np.asarray(index), side="right") - 1

    def bucket_ranges(self) -> list[tuple[int, int]]:
        return list(zip(self.lefts.tolist(), self.rights.tolist()))

    def _poly(self, coeffs: np.ndarray, buckets: np.ndarray, lengths: np.ndarray):
        x = lengths - self._centres[buckets]
        total = np.zeros(lengths.shape, dtype=np.float64)
        for k in range(self.degree + 1):
            total += coeffs[buckets, k] * x**k
        return total

    def estimate_many(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        bl = self.bucket_of(lows)
        br = self.bucket_of(highs)
        same = bl == br
        suffix_len = (self.rights[bl] - lows + 1).astype(np.float64)
        prefix_len = (highs - self.lefts[br] + 1).astype(np.float64)
        suffix = self._poly(self.suffix_coeffs, bl, suffix_len)
        prefix = self._poly(self.prefix_coeffs, br, prefix_len)
        middle = self._cum_totals[br] - self._cum_totals[bl + 1]
        intra = (highs - lows + 1) * self.averages[bl]
        return np.where(same, intra, suffix + middle + prefix)


def build_sap_poly(
    data, n_buckets: int, degree: int = 2, *, pool=None
) -> PolySapHistogram:
    """Range-optimal SAPd histogram for ``2 <= degree <= MAX_DEGREE``.

    (Degrees 0 and 1 are served by :func:`repro.core.sap.build_sap0` and
    :func:`~repro.core.sap.build_sap1`, which share the same objective.)

    ``pool`` fans the DP cost-row precompute out (threads only; the
    cost rows close over the moment tables) — bit-identical results.
    """
    data = as_frequency_vector(data)
    n = data.size
    n_buckets = check_bucket_count(n_buckets, n)
    if not 2 <= degree <= MAX_DEGREE:
        raise InvalidParameterError(
            f"degree must be in [2, {MAX_DEGREE}], got {degree}"
        )
    moments = _PolyMoments(data, degree)

    def cost_row(a: int) -> np.ndarray:
        bs = np.arange(a, n)
        ssr_suffix, _ = _ssr_rows(moments, a, "suffix")
        ssr_prefix, _ = _ssr_rows(moments, a, "prefix")
        return (
            np.asarray(moments.algebra.intra_sse(a, bs))
            + (n - 1 - bs) * ssr_suffix
            + a * ssr_prefix
        )

    lefts, _ = interval_dp(n, n_buckets, cost_row, pool=pool)
    rights = np.concatenate((lefts[1:] - 1, [n - 1]))

    averages, suffix_rows, prefix_rows = [], [], []
    for a, b in zip(lefts.tolist(), rights.tolist()):
        averages.append(moments.algebra.bucket_mean(a, b))
        offset = b - a  # position of b within cost_row(a)'s arrays
        _, suffix_coeffs = _ssr_rows(moments, a, "suffix")
        _, prefix_coeffs = _ssr_rows(moments, a, "prefix")
        suffix_rows.append(suffix_coeffs[offset])
        prefix_rows.append(prefix_coeffs[offset])
    return PolySapHistogram(
        lefts, averages, suffix_rows, prefix_rows, n, degree=degree
    )
