"""Large-domain construction via restricted-boundary dynamic programming.

The optimal builders are quadratic in the domain size — fine for the
synopsis-sized domains the paper evaluates, not for a 100k-value
attribute.  The classic engineering answer is to run the *same* DP over
a restricted set of ``m << n`` candidate boundary positions: the DP is
then exactly optimal over that candidate set, at
``O(m n + m^2 B)`` instead of ``O(n^2 B)``.

Candidate selection is what makes this work on skewed data.  A uniform
coarse grid alone misplaces boundaries around spikes (the head of a
Zipf distribution changes by orders of magnitude between adjacent
values); we therefore union

* a uniform grid bringing the count to the target, with
* the neighbourhoods of the largest values and of the steepest jumps
  (boundary positions that any good bucketing wants available).

A final local-search pass (on a sampled workload, to stay
sub-quadratic) can polish the result further.
"""

from __future__ import annotations

import numpy as np

from repro.core.a0 import a0_objective_rows
from repro.core.histogram import AverageHistogram
from repro.core.refine import refine_boundaries
from repro.errors import InvalidParameterError
from repro.internal.prefix import PrefixAlgebra, WeightedPointCost
from repro.internal.validation import as_frequency_vector, check_bucket_count
from repro.queries.workload import random_ranges

#: Target candidate-set size when chosen automatically.
DEFAULT_CANDIDATE_TARGET = 512

#: Methods the restricted DP can drive (sum-combine objectives with
#: vectorised cost rows).
SCALABLE_METHODS = ("sap0", "sap1", "a0", "point-opt", "prefix-opt")


def _cost_row_factory(method: str, data: np.ndarray):
    """``factory -> cost_row(a) -> costs for b = a..n-1`` per method."""
    n = data.size
    if method in ("sap0", "sap1"):
        algebra = PrefixAlgebra(data)
        order = 0 if method == "sap0" else 1

        def cost_row(a: int) -> np.ndarray:
            bs = np.arange(a, n)
            if order == 0:
                _, var_s = algebra.sap0_suffix(a, bs)
                _, var_p = algebra.sap0_prefix(a, bs)
            else:
                var_s = algebra.sap1_suffix_ssr(a, bs)
                var_p = algebra.sap1_prefix_ssr(a, bs)
            return algebra.intra_sse(a, bs) + (n - 1 - bs) * var_s + a * var_p

        return cost_row
    if method == "a0":
        algebra = PrefixAlgebra(data)
        return lambda a: a0_objective_rows(algebra, a)
    if method == "point-opt":
        from repro.core.vopt import range_participation_weights

        costs = WeightedPointCost(data, range_participation_weights(n))
        return lambda a: np.asarray(costs.bucket_cost(a, np.arange(a, n)))
    if method == "prefix-opt":
        algebra = PrefixAlgebra(data)

        def cost_row(a: int) -> np.ndarray:
            _, p2 = algebra.prefix_error_moments(a, np.arange(a, n))
            return np.asarray(p2)

        return cost_row
    raise InvalidParameterError(
        f"method {method!r} is not scalable; choose from {SCALABLE_METHODS}"
    )


def default_candidates(
    data: np.ndarray,
    n_buckets: int,
    target: int = DEFAULT_CANDIDATE_TARGET,
) -> np.ndarray:
    """Candidate boundary positions: uniform grid + data-adaptive picks.

    The adaptive picks are the neighbourhoods (position and position+1)
    of the ``4 * n_buckets`` largest values and of the ``4 * n_buckets``
    steepest adjacent jumps — the positions skew pushes boundaries
    toward.  Always includes 0; sorted and deduplicated.
    """
    n = data.size
    if n <= target:
        return np.arange(n, dtype=np.int64)
    grid_step = max(n // target, 1)
    grid = np.arange(0, n, grid_step, dtype=np.int64)
    k = min(4 * n_buckets, n)
    spikes = np.argsort(-data, kind="stable")[:k].astype(np.int64)
    jumps = np.argsort(-np.abs(np.diff(data)), kind="stable")[:k].astype(np.int64)
    adaptive = np.concatenate((spikes, spikes + 1, jumps, jumps + 1))
    candidates = np.unique(np.concatenate(([0], grid, adaptive)))
    return candidates[(candidates >= 0) & (candidates < n)]


def restricted_interval_dp(
    n: int,
    max_buckets: int,
    cost_row,
    candidates: np.ndarray,
) -> tuple[np.ndarray, float]:
    """The interval DP with bucket starts restricted to ``candidates``.

    Exactly optimal over bucketings whose boundaries all lie in the
    candidate set; ``O(m n)`` cost evaluation plus ``O(m^2 B)`` DP.
    """
    candidates = np.unique(np.asarray(candidates, dtype=np.int64))
    if candidates[0] != 0 or candidates[-1] >= n:
        raise InvalidParameterError("candidates must start at 0 and stay < n")
    m = candidates.size
    # ends[j] = candidate[j+1] - 1, last bucket ends at n - 1.
    ends = np.concatenate((candidates[1:] - 1, [n - 1]))
    # cost[s, e] = cost of bucket [candidates[s], ends[e]] for e >= s.
    cost = np.full((m, m), np.inf)
    for s in range(m):
        row = np.asarray(cost_row(int(candidates[s])), dtype=np.float64)
        valid_ends = ends[s:] - candidates[s]
        cost[s, s:] = row[valid_ends]

    best = np.full((max_buckets + 1, m + 1), np.inf)
    parent = np.zeros((max_buckets + 1, m + 1), dtype=np.int64)
    best[:, 0] = 0.0
    for k in range(1, max_buckets + 1):
        prev = best[k - 1]
        for i in range(1, m + 1):
            options = prev[:i] + cost[:i, i - 1]
            j = int(np.argmin(options))
            best[k, i] = options[j]
            parent[k, i] = j

    lefts: list[int] = []
    i, k = m, max_buckets
    while i > 0:
        j = int(parent[k, i])
        lefts.append(int(candidates[j]))
        i, k = j, k - 1
    lefts.reverse()
    return np.asarray(lefts, dtype=np.int64), float(best[max_buckets, m])


def build_scaled(
    data,
    n_buckets: int,
    *,
    method: str = "sap1",
    candidates: np.ndarray | None = None,
    target_candidates: int = DEFAULT_CANDIDATE_TARGET,
    refine: bool = True,
    refine_queries: int = 4000,
    seed: int = 0,
) -> AverageHistogram:
    """Build a histogram for a large domain via the restricted DP.

    Parameters
    ----------
    data:
        Full-resolution frequency vector (any size).
    n_buckets:
        Bucket budget.
    method:
        Objective driving the DP (one of :data:`SCALABLE_METHODS`); the
        returned histogram stores exact full-resolution bucket averages
        and answers un-rounded equation (1) regardless.
    candidates:
        Explicit candidate boundary positions (must include 0).
        Defaults to :func:`default_candidates`.
    refine:
        Polish boundaries with local search on a sampled workload.

    Returns
    -------
    AverageHistogram
        2B-word histogram with full-resolution boundaries.
    """
    data = as_frequency_vector(data)
    n = data.size
    n_buckets = check_bucket_count(n_buckets, n)
    cost_row = _cost_row_factory(method, data)
    if candidates is None:
        candidates = default_candidates(data, n_buckets, target_candidates)
    lefts, _ = restricted_interval_dp(n, n_buckets, cost_row, candidates)

    label = f"{method.upper()}-SCALED"
    # Rebuild in the method's own representation (SAP summaries matter).
    if method in ("sap0", "sap1"):
        from repro.core.sap import sap_histogram_from_boundaries

        def build(full_data, candidate_lefts):
            hist = sap_histogram_from_boundaries(
                full_data, candidate_lefts, order=0 if method == "sap0" else 1
            )
            hist._label = label
            return hist
    else:
        def build(full_data, candidate_lefts):
            return AverageHistogram.from_boundaries(
                full_data, candidate_lefts, rounding="none", label=label
            )

    if refine and n > candidates.size:
        workload = random_ranges(n, refine_queries, seed=seed)
        step = max(int(n // candidates.size), 1)
        estimator, _, _ = refine_boundaries(
            data, lefts, build=build, workload=workload, step=step, max_passes=6
        )
        return estimator
    return build(data, lefts)
