"""POINT-OPT: the V-optimal histogram, optimised for point queries.

This is the classical dynamic-programming histogram of Jagadish et al.
[6], which minimises the (weighted) sum-squared error of *equality*
queries.  The paper uses it as the baseline that range-optimised
histograms beat: "We adjusted the probabilities for each point A[i] to
reflect the probability that A[i] is part of a random range-query"
(Section 4) — index ``i`` lies in a uniformly random range with
probability proportional to ``(i + 1) * (n - i)`` (0-indexed), which is
the default weighting here.

Construction is the shared ``O(n^2 B)`` interval DP with the weighted
bucket point-variance as the additive cost.
"""

from __future__ import annotations

import numpy as np

from repro.core.histogram import AverageHistogram
from repro.internal.dp import interval_dp
from repro.internal.prefix import WeightedPointCost
from repro.internal.validation import as_frequency_vector, check_bucket_count


def range_participation_weights(n: int) -> np.ndarray:
    """P(index i is covered by a uniform random range), up to normalisation.

    There are ``(i + 1) * (n - i)`` ranges ``[a, b]`` with
    ``a <= i <= b`` out of ``n (n + 1) / 2``; the returned weights are
    normalised to sum to 1.
    """
    idx = np.arange(n, dtype=np.float64)
    weights = (idx + 1.0) * (n - idx)
    return weights / weights.sum()


def build_point_opt(
    data,
    n_buckets: int,
    weights=None,
    rounding: str = "per_piece",
) -> AverageHistogram:
    """Build the POINT-OPT (V-optimal) histogram with at most ``n_buckets``.

    Parameters
    ----------
    data:
        Frequency vector.
    n_buckets:
        Bucket budget.
    weights:
        Per-point weights; defaults to the range-participation weights
        the paper uses.  Pass ``np.ones(n)`` for the textbook V-optimal
        histogram.
    rounding:
        Answering-procedure rounding mode for the returned histogram.

    Returns
    -------
    AverageHistogram
        Stores the *weighted* bucket means (optimal for the point
        objective) and answers range queries with equation (1).
    """
    data = as_frequency_vector(data)
    n = data.size
    n_buckets = check_bucket_count(n_buckets, n)
    if weights is None:
        weights = range_participation_weights(n)
    costs = WeightedPointCost(data, weights)

    def cost_row(a: int) -> np.ndarray:
        return costs.bucket_cost(a, np.arange(a, n))

    lefts, _ = interval_dp(n, n_buckets, cost_row)
    rights = np.concatenate((lefts[1:] - 1, [n - 1]))
    values = np.asarray([costs.bucket_value(int(a), int(b)) for a, b in zip(lefts, rights)])
    return AverageHistogram(lefts, values, n, rounding=rounding, label="POINT-OPT")
