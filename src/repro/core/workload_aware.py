"""Workload-aware histogram construction.

The paper optimises for the uniform all-ranges workload; real query
logs are anything but uniform.  This module generalises the bucket-
additive dynamic program to an arbitrary weighted
:class:`~repro.queries.workload.Workload`:

    cost(a, b) = sum over intra-bucket queries   w * delta(l, r)^2
               + sum over left endpoints in it   w_suf(l, b) * delta_suf(l)^2
               + sum over right endpoints in it  w_pre(r, a) * delta_pre(r)^2

where ``w_suf(l, b)`` is the total weight of workload queries starting
at ``l`` and ending beyond the bucket, and symmetrically for
``w_pre``.  As with A0, the inter-bucket *cross* terms are dropped, so
in general this is a heuristic — but it is **exact** for two important
families (cross terms provably vanish):

* point/equality workloads — every query is intra-bucket; the DP
  degenerates to the weighted V-optimal histogram of [6];
* prefix workloads — the suffix piece of bucket 0 covers the whole
  bucket, so ``delta_suf = 0``; the DP degenerates to the
  hierarchical-case optimum of [9] (:func:`repro.core.classic.build_prefix_opt`).

With unit weights over all ranges it reproduces A0 exactly.

Every bucket cost is O(1) after O(n^2 + |workload|) preprocessing: the
weighted intra sums are 2-D dominance sums over scatter tables of
``w*s^2``, ``w*len*s``, ``w*len^2``; the suffix sums expand into six
column-cumulative tables of the boundary-crossing weights (DESIGN.md
section 4 has the analogous un-weighted expansions).  Memory is
Theta(n^2) words — fine for the synopsis-sized domains this library
targets (guarded at ``MAX_DOMAIN``).
"""

from __future__ import annotations

import numpy as np

from repro.core.histogram import AverageHistogram
from repro.errors import InvalidParameterError
from repro.internal.dp import interval_dp
from repro.internal.validation import as_frequency_vector, check_bucket_count
from repro.queries.workload import Workload

#: Domain guard: the preprocessing holds ~11 (n+1)^2 float64 tables.
MAX_DOMAIN = 2048


class WorkloadCosts:
    """O(1) weighted bucket costs for an arbitrary range workload."""

    def __init__(self, data, workload: Workload) -> None:
        self.data = as_frequency_vector(data)
        self.n = n = int(self.data.size)
        if workload.n != n:
            raise InvalidParameterError(
                f"workload domain ({workload.n}) does not match data length ({n})"
            )
        if n > MAX_DOMAIN:
            raise InvalidParameterError(
                f"workload-aware construction supports domains up to {MAX_DOMAIN} "
                f"(requested {n}); build on a coarsened domain instead"
            )
        if len(workload) == 0:
            raise InvalidParameterError(
                "workload-aware construction needs at least one query: an "
                "empty workload makes every bucket cost zero and the DP "
                "boundaries arbitrary"
            )
        if np.any(workload.weights < 0) or not np.all(np.isfinite(workload.weights)):
            raise InvalidParameterError(
                "workload weights must be finite and non-negative"
            )
        if float(np.sum(workload.weights)) <= 0.0:
            raise InvalidParameterError(
                "workload carries zero total weight: every bucket cost would "
                "be zero and the DP boundaries arbitrary"
            )
        self.p = np.concatenate(([0.0], np.cumsum(self.data)))

        lows = workload.lows
        highs = workload.highs
        weights = workload.weights
        spans = self.p[highs + 1] - self.p[lows]
        lengths = (highs - lows + 1).astype(np.float64)

        # --- intra terms: 2-D dominance tables over (low, high) ---------
        def scatter(values):
            table = np.zeros((n, n))
            np.add.at(table, (lows, highs), values)
            # 2-D prefix sums with a zero border.
            padded = np.zeros((n + 1, n + 1))
            padded[1:, 1:] = np.cumsum(np.cumsum(table, axis=0), axis=1)
            return padded

        self._d_ws2 = scatter(weights * spans * spans)
        self._d_wms = scatter(weights * lengths * spans)
        self._d_wm2 = scatter(weights * lengths * lengths)

        # --- suffix terms: crossing weights u(l, t) = weight of queries
        #     with low == l and high >= t, cumulated over l -------------
        by_low = np.zeros((n, n))
        np.add.at(by_low, (lows, highs), weights)
        # u[l, t] for t in 0..n (u[:, n] == 0).
        u = np.zeros((n, n + 1))
        u[:, :n] = by_low[:, ::-1].cumsum(axis=1)[:, ::-1]
        l_idx = np.arange(n, dtype=np.float64)[:, None]
        p_l = self.p[:n][:, None]

        def cum_l(table):
            padded = np.zeros((n + 1, n + 1))
            padded[1:, :] = np.cumsum(table, axis=0)
            return padded

        self._suf = [
            cum_l(u),                      # f1: sum u
            cum_l(u * p_l),                # f2: sum u p[l]
            cum_l(u * p_l * p_l),          # f3: sum u p[l]^2
            cum_l(u * l_idx),              # f4: sum u l
            cum_l(u * l_idx * p_l),        # f5: sum u l p[l]
            cum_l(u * l_idx * l_idx),      # f6: sum u l^2
        ]

        # --- prefix terms: v(r, t) = weight of queries with high == r
        #     and low <= t; column t = a-1 is fixed per DP row ----------
        by_high = np.zeros((n, n))
        np.add.at(by_high, (highs, lows), weights)
        # v[r, t] with t in -1..n-1 mapped to columns 0..n (column 0 == 0).
        self._v = np.zeros((n, n + 1))
        self._v[:, 1:] = by_high.cumsum(axis=1)

    def _rectangle(self, table, a, bs):
        """Dominance sums over the square [a..b] x [a..b], vectorised in b."""
        top = table[bs + 1, bs + 1]
        left = table[a, bs + 1]
        bottom = table[bs + 1, a]
        corner = table[a, a]
        return top - left - bottom + corner

    def cost_row(self, a: int) -> np.ndarray:
        """Weighted DP costs of buckets ``[a, b]`` for ``b = a..n-1``."""
        n = self.n
        bs = np.arange(a, n)
        pb = self.p[bs + 1]
        lengths = (bs - a + 1).astype(np.float64)
        mean = (pb - self.p[a]) / lengths

        # Intra-bucket: ws2 - 2 mu wms + mu^2 wm2 over the square.
        intra = (
            self._rectangle(self._d_ws2, a, bs)
            - 2.0 * mean * self._rectangle(self._d_wms, a, bs)
            + mean * mean * self._rectangle(self._d_wm2, a, bs)
        )

        # Suffix: weights u(l, b+1) cumulated over l = a..b.
        f = [m[bs + 1, bs + 1] - m[a, bs + 1] for m in self._suf]
        b1 = bs + 1.0
        term_a = pb * pb * f[0] - 2.0 * pb * f[1] + f[2]
        term_b = b1 * pb * f[0] - b1 * f[1] - pb * f[3] + f[4]
        term_c = b1 * b1 * f[0] - 2.0 * b1 * f[3] + f[5]
        suffix = term_a - 2.0 * mean * term_b + mean * mean * term_c

        # Prefix: weights v(r, a-1), cumulated over r = a..b on the fly.
        v = self._v[a:, a]  # column t = a-1
        span = self.p[a + 1 :] - self.p[a]  # s(a, r) for r = a..n-1
        m_r = np.arange(1, n - a + 1, dtype=np.float64)
        w1 = np.cumsum(v * span * span)
        w2 = np.cumsum(v * m_r * span)
        w3 = np.cumsum(v * m_r * m_r)
        prefix = w1 - 2.0 * mean * w2 + mean * mean * w3

        return np.maximum(intra + suffix + prefix, 0.0)


def build_workload_aware(
    data,
    n_buckets: int,
    workload: Workload | None = None,
    rounding: str = "none",
) -> AverageHistogram:
    """Average histogram whose boundaries minimise the workload-weighted
    bucket-additive cost (cross terms dropped; see module docstring for
    when the result is provably optimal)."""
    if workload is None:
        raise InvalidParameterError(
            "workload-aware construction needs the query log: pass "
            "workload=Workload(...) (e.g. repro.queries.workload.biased_ranges)"
        )
    data = as_frequency_vector(data)
    n_buckets = check_bucket_count(n_buckets, data.size)
    costs = WorkloadCosts(data, workload)
    lefts, _ = interval_dp(data.size, n_buckets, costs.cost_row)
    return AverageHistogram.from_boundaries(
        data, lefts, rounding=rounding, label="WORKLOAD-A0"
    )
