"""Synthetic attribute-value distributions used by tests and experiments."""

from repro.data.distributions import (
    gaussian_mixture_frequencies,
    random_rounding,
    step_frequencies,
    uniform_frequencies,
    zipf_frequencies,
)
from repro.data.datasets import paper_dataset

__all__ = [
    "zipf_frequencies",
    "uniform_frequencies",
    "gaussian_mixture_frequencies",
    "step_frequencies",
    "random_rounding",
    "paper_dataset",
]
