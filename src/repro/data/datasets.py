"""Named datasets used by the paper's experiments.

The evaluation section uses a single dataset: "127 integer keys created
after doing random rounding, (up or down with probability 1/2) of floats
that are Zipf distribution with tail exponent alpha = 1.8".  The exact
scale factor and random seed are not reported, so :func:`paper_dataset`
fixes both (documented below); the *shape* conclusions of Figure 1 are
insensitive to these choices, which the seed-sweep in
``benchmarks/test_figure1.py`` verifies.
"""

from __future__ import annotations

import numpy as np

from repro.data.distributions import zipf_frequencies

#: Default deterministic seed for the reproduction dataset.
PAPER_SEED = 20010521  # PODS 2001 conference date.

#: Domain size of the paper's dataset.
PAPER_DOMAIN = 127

#: Tail exponent reported in Section 4.
PAPER_ALPHA = 1.8

#: Scale of the largest (rank-1) frequency.  Not reported in the paper;
#: chosen so the total record count is a few thousand, typical for the
#: era's experiments and small enough for the pseudo-polynomial OPT-A
#: dynamic program to run exactly.
PAPER_SCALE = 1000.0


def paper_dataset(seed: int = PAPER_SEED, scale: float = PAPER_SCALE) -> np.ndarray:
    """The reproduction of the paper's 127-key Zipf(1.8) dataset."""
    return zipf_frequencies(PAPER_DOMAIN, alpha=PAPER_ALPHA, scale=scale, seed=seed)
