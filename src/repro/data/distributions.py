"""Synthetic frequency-vector generators.

The experiments in the paper use a Zipf distribution with "random
rounding (up or down with probability 1/2)" applied to the float
frequencies; :func:`random_rounding` implements exactly that and the
other generators provide standard shapes (uniform noise, Gaussian
mixtures, piecewise-constant steps) used by the wider histogram
literature for stress-testing bucketing algorithms.

All generators return integer-valued ``float64`` frequency vectors
(counts), suitable for every builder in :mod:`repro.core`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError


def _rng(seed) -> np.random.Generator:
    return np.random.default_rng(seed)


def _check_n(n: int) -> int:
    if not isinstance(n, (int, np.integer)) or n < 1:
        raise InvalidParameterError(f"n must be a positive integer, got {n!r}")
    return int(n)


def random_rounding(values, seed=None) -> np.ndarray:
    """Round each float up or down with probability 1/2, per the paper.

    Section 4: "integer keys created after doing random rounding, (up or
    down with probability 1/2) of floats".  Values that are already
    integral are left unchanged; results are clipped at zero so the
    output remains a valid frequency vector.
    """
    rng = _rng(seed)
    values = np.asarray(values, dtype=np.float64)
    floor = np.floor(values)
    up = rng.random(values.shape) < 0.5
    rounded = np.where(up, np.ceil(values), floor)
    return np.clip(rounded, 0.0, None)


def zipf_frequencies(
    n: int,
    alpha: float = 1.8,
    scale: float = 1000.0,
    seed=None,
    permute: bool = False,
) -> np.ndarray:
    """Zipf frequency vector with tail exponent ``alpha``.

    ``freq[i] = scale / (i + 1) ** alpha`` (rank order), randomly rounded
    to integers.  With ``permute=True`` the ranks are shuffled over the
    domain, which produces the spiky profiles typical of real attribute
    value distributions; the default keeps the classical sorted shape.
    """
    n = _check_n(n)
    if alpha <= 0:
        raise InvalidParameterError(f"alpha must be positive, got {alpha}")
    if scale <= 0:
        raise InvalidParameterError(f"scale must be positive, got {scale}")
    rng = _rng(seed)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    freqs = scale / ranks**alpha
    if permute:
        rng.shuffle(freqs)
    return random_rounding(freqs, seed=rng)


def uniform_frequencies(n: int, low: int = 0, high: int = 100, seed=None) -> np.ndarray:
    """Independent uniform integer counts in ``[low, high]``."""
    n = _check_n(n)
    if low < 0 or high < low:
        raise InvalidParameterError(f"need 0 <= low <= high, got [{low}, {high}]")
    rng = _rng(seed)
    return rng.integers(low, high + 1, size=n).astype(np.float64)


def gaussian_mixture_frequencies(
    n: int,
    modes: int = 3,
    scale: float = 500.0,
    noise: float = 0.05,
    seed=None,
) -> np.ndarray:
    """Smooth multi-modal frequency vector (sum of Gaussian bumps + noise).

    A common stand-in for real numeric attributes (e.g. prices with a
    few popular price points); histograms with few buckets struggle near
    the mode boundaries, which exercises boundary placement.
    """
    n = _check_n(n)
    if modes < 1:
        raise InvalidParameterError(f"modes must be >= 1, got {modes}")
    rng = _rng(seed)
    xs = np.arange(n, dtype=np.float64)
    freqs = np.zeros(n, dtype=np.float64)
    for _ in range(modes):
        centre = rng.uniform(0, n)
        width = rng.uniform(n / 30.0, n / 6.0) + 1e-9
        height = rng.uniform(0.3, 1.0) * scale
        freqs += height * np.exp(-0.5 * ((xs - centre) / width) ** 2)
    freqs += rng.uniform(0.0, noise * scale, size=n)
    return random_rounding(freqs, seed=rng)


def step_frequencies(
    n: int,
    steps: int = 5,
    low: float = 0.0,
    high: float = 1000.0,
    seed=None,
) -> np.ndarray:
    """Piecewise-constant frequency vector with ``steps`` random plateaus.

    The best case for bucket histograms (a B-bucket histogram is exact
    once B >= steps); used to test that optimal builders actually find
    the plateau boundaries and reach zero error.
    """
    n = _check_n(n)
    if not 1 <= steps <= n:
        raise InvalidParameterError(f"steps must be in [1, {n}], got {steps}")
    rng = _rng(seed)
    boundaries = np.sort(rng.choice(np.arange(1, n), size=steps - 1, replace=False))
    levels = np.round(rng.uniform(low, high, size=steps))
    freqs = np.empty(n, dtype=np.float64)
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [n]))
    for level, start, end in zip(levels, starts, ends):
        freqs[start:end] = level
    return freqs
