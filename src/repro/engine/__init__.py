"""Approximate query processing substrate.

The paper motivates its synopses with selectivity estimation inside
database engines (query optimisers, AQUA-style approximate answering,
online aggregation).  This package provides that surrounding system in
miniature: an in-memory column store (:mod:`table`), attribute-value
distributions (:mod:`column`), a catalog of per-column synopses built
under a global space budget with exact and approximate executors
(:mod:`engine`), a small SQL dialect for range aggregates (:mod:`sql`),
and binary (de)serialisation of synopses (:mod:`storage`).
"""

from repro.engine.batch import BatchQuery
from repro.engine.column import ColumnStatistics, JointColumnStatistics
from repro.engine.table import Table
from repro.engine.engine import (
    AggregateQuery,
    ApproximateQueryEngine,
    QuantileQuery,
    QuantileResult,
    QueryResult,
)
from repro.engine.grouped import GroupedAggregateQuery, GroupResult
from repro.engine.joint import JOINT_METHODS, JointAggregateQuery
from repro.engine.persistence import load_catalog, save_catalog
from repro.engine.advisor import AdvisorChoice, best_method, recommend
from repro.engine.resilience import (
    DEGRADATION_LEVELS,
    ESTIMATES_ONLY,
    SERVE_ANYTHING,
    STRICT,
    CircuitBreaker,
    Deadline,
    DegradationPolicy,
    FallbackChain,
    FallbackStage,
    FaultInjector,
    deadline_scope,
)
from repro.engine.compaction import BackgroundCompactor, CompactionPolicy, plan_runs
from repro.engine.optimizer import (
    BackgroundOptimizer,
    ObservedWorkload,
    run_optimization,
)
from repro.engine.shard_tree import DyadicShardTree
from repro.engine.sharding import (
    INTERIOR_MODES,
    ShardedSynopsis,
    build_sharded,
    shard_boundaries,
)
from repro.engine.simulator import SimulationReport, TrafficSpec, simulate_traffic
from repro.engine.sql import parse_query
from repro.engine.storage import deserialize_estimator, serialize_estimator

__all__ = [
    "BatchQuery",
    "ColumnStatistics",
    "JointColumnStatistics",
    "JointAggregateQuery",
    "GroupedAggregateQuery",
    "GroupResult",
    "save_catalog",
    "load_catalog",
    "JOINT_METHODS",
    "Table",
    "ApproximateQueryEngine",
    "AggregateQuery",
    "QueryResult",
    "QuantileQuery",
    "QuantileResult",
    "parse_query",
    "recommend",
    "best_method",
    "AdvisorChoice",
    "simulate_traffic",
    "TrafficSpec",
    "SimulationReport",
    "serialize_estimator",
    "deserialize_estimator",
    "ShardedSynopsis",
    "build_sharded",
    "shard_boundaries",
    "DyadicShardTree",
    "INTERIOR_MODES",
    "BackgroundCompactor",
    "CompactionPolicy",
    "plan_runs",
    "BackgroundOptimizer",
    "ObservedWorkload",
    "run_optimization",
    "CircuitBreaker",
    "Deadline",
    "deadline_scope",
    "DegradationPolicy",
    "DEGRADATION_LEVELS",
    "ESTIMATES_ONLY",
    "SERVE_ANYTHING",
    "STRICT",
    "FallbackChain",
    "FallbackStage",
    "FaultInjector",
]
