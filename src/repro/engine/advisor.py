"""Synopsis advisor: pick the best method for a column empirically.

Physical-design advisors try candidate structures against a
representative workload and keep the winner; this module does the same
for synopses.  Given a frequency vector, a word budget, and (optionally)
a workload, it builds every candidate method and ranks them by measured
SSE — exactly the comparison Figure 1 plots, packaged as a tuning
decision.  The engine exposes it as ``method="auto"``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.builders import BUILDER_REGISTRY, build_by_name
from repro.errors import ReproError
from repro.queries.evaluation import sse
from repro.queries.workload import Workload, random_ranges

#: Candidates the advisor tries by default.  Exact OPT-A is represented
#: by the auto builder so heavy instances degrade instead of failing;
#: expensive or dominated methods can still be requested explicitly.
DEFAULT_CANDIDATES = (
    "a0",
    "a0-reopt",
    "opt-a-auto",
    "sap0",
    "sap1",
    "point-opt",
    "wavelet-point",
    "equi-depth",
)


@dataclass(frozen=True)
class AdvisorChoice:
    """One candidate's outcome."""

    method: str
    sse: float
    storage_words: int
    error: str | None = None  # set when the candidate failed to build


def recommend(
    data,
    budget_words: int,
    *,
    workload: Workload | None = None,
    candidates=DEFAULT_CANDIDATES,
    candidate_kwargs: dict[str, dict] | None = None,
    sample_queries: int = 2000,
    seed: int = 0,
) -> list[AdvisorChoice]:
    """Rank candidate methods by measured SSE under the budget.

    With no workload, a uniform sample of ranges stands in for the
    all-ranges objective (cheaper on wide domains, same ordering in
    expectation).  ``candidate_kwargs`` passes per-method build kwargs
    (e.g. ``{"workload-a0": {"workload": observed}}``).  Failed
    candidates are kept in the result with their error message and sort
    last; *any* exception is treated as that candidate's failure — a
    heavy build dying with FloatingPointError/MemoryError must not
    abort the whole recommendation.
    """
    import numpy as np

    data = np.asarray(data, dtype=float)
    if workload is None:
        total_ranges = data.size * (data.size + 1) // 2
        if total_ranges <= sample_queries:
            from repro.queries.workload import all_ranges

            workload = all_ranges(data.size)
        else:
            workload = random_ranges(data.size, sample_queries, seed=seed)

    choices: list[AdvisorChoice] = []
    for method in candidates:
        build_kwargs = (candidate_kwargs or {}).get(method, {})
        try:
            estimator = build_by_name(method, data, budget_words, **build_kwargs)
            choices.append(
                AdvisorChoice(
                    method=method,
                    sse=sse(estimator, data, workload),
                    storage_words=estimator.storage_words(),
                )
            )
        except Exception as error:  # noqa: BLE001 — one candidate's crash
            # (ReproError, FloatingPointError, MemoryError, ...) must not
            # abort the ranking; it is recorded and sorts last.
            choices.append(
                AdvisorChoice(
                    method=method,
                    sse=float("inf"),
                    storage_words=0,
                    error=f"{type(error).__name__}: {error}",
                )
            )
    choices.sort(key=lambda choice: choice.sse)
    return choices


def best_method(data, budget_words: int, **kwargs) -> str:
    """The winning method name (raises if every candidate failed)."""
    ranked = recommend(data, budget_words, **kwargs)
    winner = ranked[0]
    if winner.error is not None:
        raise ReproError(
            f"every advisor candidate failed; first error: {winner.error}"
        )
    return winner.method
