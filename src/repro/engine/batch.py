"""Batched query execution — the engine's high-throughput path.

A production engine is rarely asked one range aggregate at a time:
dashboards, Figure-1-style sweeps, and optimiser probes arrive in the
thousands.  Every 1-D synopsis already answers ranges vectorised
(:meth:`~repro.queries.estimators.RangeSumEstimator.estimate_many`), so
the only thing between the catalog and bulk throughput is the per-query
python overhead of :meth:`~repro.engine.engine.ApproximateQueryEngine.execute`.
:class:`BatchExecutionMixin` removes it: queries are grouped by
``(table, column, aggregate)``, each group is clipped and answered with
one ``estimate_many`` call, and exact answers (when requested) come from
one sort plus vectorised binary search per group instead of one masked
scan per query.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError, InvalidQueryError


def _as_bounds(values, fill: float) -> np.ndarray:
    """Bound array with open endpoints (``None``/NaN) replaced by ``fill``."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise InvalidQueryError("batch bounds must be 1-D arrays")
    if arr.dtype.kind not in "fiu":
        arr = np.array(
            [fill if value is None else float(value) for value in arr.tolist()],
            dtype=np.float64,
        )
    else:
        arr = arr.astype(np.float64)
        arr = np.where(np.isnan(arr), fill, arr)
    return arr


@dataclass(frozen=True)
class BatchQuery:
    """A homogeneous batch of range aggregates over one column.

    ``lows``/``highs`` are parallel arrays of inclusive raw-value
    bounds; ``None``/NaN entries (normalised to ``-inf``/``+inf``) mean
    unbounded on that side.  ``aggregate`` is one of ``count``, ``sum``,
    ``avg`` and applies to every query in the batch.
    """

    table: str
    column: str
    aggregate: str
    lows: np.ndarray
    highs: np.ndarray

    def __post_init__(self) -> None:
        from repro.engine.engine import SUPPORTED_AGGREGATES

        if self.aggregate not in SUPPORTED_AGGREGATES:
            raise InvalidQueryError(
                f"aggregate must be one of {SUPPORTED_AGGREGATES}, got {self.aggregate!r}"
            )
        lows = _as_bounds(self.lows, -np.inf)
        highs = _as_bounds(self.highs, np.inf)
        if lows.shape != highs.shape:
            raise InvalidQueryError("lows and highs must be parallel arrays")
        inverted = np.nonzero(lows > highs)[0]
        if inverted.size:
            first = int(inverted[0])
            raise InvalidQueryError(
                f"BETWEEN bounds are inverted at position {first}: "
                f"[{lows[first]}, {highs[first]}]"
            )
        object.__setattr__(self, "lows", lows)
        object.__setattr__(self, "highs", highs)

    def __len__(self) -> int:
        return int(self.lows.size)

    def queries(self) -> list:
        """The batch as individual :class:`AggregateQuery` objects."""
        from repro.engine.engine import AggregateQuery

        return [
            AggregateQuery(
                table=self.table,
                column=self.column,
                aggregate=self.aggregate,
                low=None if low == -np.inf else low,
                high=None if high == np.inf else high,
            )
            for low, high in zip(self.lows.tolist(), self.highs.tolist())
        ]


def _estimate_group(entry, aggregate: str, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
    """Synopsis estimates for one homogeneous group, fully vectorised."""
    low_idx, high_idx, valid = entry.statistics.clip_range_many(lows, highs)
    estimates = np.zeros(lows.shape, dtype=np.float64)
    if not valid.any():
        return estimates
    clipped_lows = low_idx[valid]
    clipped_highs = high_idx[valid]
    if aggregate == "count":
        estimates[valid] = entry.count_estimator.estimate_many(clipped_lows, clipped_highs)
    elif aggregate == "sum":
        estimates[valid] = entry.sum_estimator.estimate_many(clipped_lows, clipped_highs)
    else:  # avg
        counts = np.asarray(
            entry.count_estimator.estimate_many(clipped_lows, clipped_highs),
            dtype=np.float64,
        )
        totals = np.asarray(
            entry.sum_estimator.estimate_many(clipped_lows, clipped_highs),
            dtype=np.float64,
        )
        estimates[valid] = np.divide(
            totals, counts, out=np.zeros_like(totals), where=counts > 0
        )
    return estimates


class BatchExecutionMixin:
    """Bulk executors; mixed into the engine.

    Relies on the host class providing ``self.table(name)``, the 1-D
    synopsis catalog with ``self._resolve_synopsis``, and the
    ``self._stats`` counters initialised in ``__init__``.
    """

    def execute_batch(
        self,
        queries,
        *,
        with_exact: bool = False,
        on_stale: str = "serve",
        audit_rate: float = 0.0,
        degradation=None,
    ) -> list:
        """Answer many aggregates at once; results parallel the input.

        ``queries`` is either a :class:`BatchQuery` or any iterable of
        :class:`~repro.engine.engine.AggregateQuery`.  Queries are
        grouped by (table, column, aggregate) and each group is answered
        with one vectorised synopsis call; ``with_exact`` computes every
        group's ground truth from a single sorted scan of the column.
        ``on_stale`` and ``audit_rate`` have
        :meth:`~repro.engine.engine.ApproximateQueryEngine.execute`
        semantics; auditing samples each group vectorised and never
        changes the returned results.

        ``degradation`` (a policy or preset name, as in ``execute``)
        resolves each *group* down the serving ladder instead of
        applying ``on_stale``: fresh synopsis -> stale synopsis ->
        fallback estimator -> exact scan.  Every result is tagged with
        its group's serving level.
        """
        from repro.engine.engine import AggregateQuery, QueryResult
        from repro.engine.resilience import as_degradation_policy

        if on_stale not in ("serve", "rebuild", "error"):
            raise InvalidParameterError(
                f"on_stale must be serve, rebuild, or error, got {on_stale!r}"
            )
        policy = as_degradation_policy(degradation)
        audit_rate = self._check_audit_rate(audit_rate)
        if isinstance(queries, BatchQuery):
            query_list = queries.queries()
        else:
            query_list = list(queries)
            for query in query_list:
                if not isinstance(query, AggregateQuery):
                    raise InvalidQueryError(
                        "execute_batch takes AggregateQuery items or a BatchQuery, "
                        f"got {type(query).__name__}"
                    )
        start = time.perf_counter()
        results: list = [None] * len(query_list)
        groups: dict[tuple[str, str, str], list[int]] = {}
        for position, query in enumerate(query_list):
            groups.setdefault(
                (query.table, query.column, query.aggregate), []
            ).append(position)
        with self.tracer.span(
            "batch", queries=len(query_list), groups=len(groups)
        ):
            for (table_name, column_name, aggregate), positions in groups.items():
                if policy is None:
                    entry = self._resolve_synopsis(table_name, column_name, on_stale)
                    level = (
                        "stale"
                        if (table_name, column_name) in self._stale
                        else "fresh"
                    )
                else:
                    entry, level = self._resolve_with_policy(
                        table_name, column_name, policy
                    )
                group_queries = [query_list[i] for i in positions]
                lows = np.array(
                    [-np.inf if q.low is None else q.low for q in group_queries],
                    dtype=np.float64,
                )
                highs = np.array(
                    [np.inf if q.high is None else q.high for q in group_queries],
                    dtype=np.float64,
                )
                self._record_degraded_serve(level, len(positions))
                if level == "progressive":
                    # Interval answers are scalar by nature (each query
                    # gets its own refinement chain), so the group loops
                    # stage-0 sessions instead of the vectorised path.
                    from repro.serving.progressive import initial_answer

                    exact_array = (
                        self._exact_batch(
                            table_name, column_name, aggregate, lows, highs
                        )
                        if with_exact
                        else None
                    )
                    if with_exact:
                        self._bump("exact_scans", len(positions))
                    self._bump_hits(f"{table_name}.{column_name}", len(positions))
                    for offset, position in enumerate(positions):
                        answer = initial_answer(self, group_queries[offset])
                        results[position] = answer.as_result(
                            exact=float(exact_array[offset])
                            if exact_array is not None
                            else None
                        )
                    continue
                if entry is None:
                    if level == "exact":
                        estimate_array = self._exact_batch(
                            table_name, column_name, aggregate, lows, highs
                        )
                        self._bump("exact_scans", len(positions))
                        synopsis_name = "exact-scan"
                        synopsis_words = 0
                    else:  # fallback
                        estimate_array = self._fallback_estimate_many(
                            table_name, column_name, aggregate, lows, highs
                        )
                        synopsis_name = "fallback-uniform"
                        synopsis_words = 4
                    exact_array = (
                        self._exact_batch(
                            table_name, column_name, aggregate, lows, highs
                        )
                        if with_exact and level != "exact"
                        else (estimate_array if with_exact else None)
                    )
                else:
                    estimate_array = _estimate_group(entry, aggregate, lows, highs)
                    self._record_sharded_batch(entry, lows, highs)
                    exact_array = (
                        self._exact_batch(
                            table_name, column_name, aggregate, lows, highs
                        )
                        if with_exact
                        else None
                    )
                    if audit_rate > 0.0:
                        self._audit_batch_group(
                            (table_name, column_name, aggregate),
                            entry,
                            estimate_array,
                            exact_array,
                            lows,
                            highs,
                            audit_rate,
                        )
                    synopsis_name = entry.count_estimator.name
                    synopsis_words = (
                        entry.count_estimator.storage_words()
                        + entry.sum_estimator.storage_words()
                    )
                estimates = estimate_array.tolist()
                exacts = exact_array.tolist() if exact_array is not None else None
                self._bump_hits(f"{table_name}.{column_name}", len(positions))
                for offset, position in enumerate(positions):
                    results[position] = QueryResult(
                        query=group_queries[offset],
                        estimate=estimates[offset],
                        exact=exacts[offset] if exacts is not None else None,
                        synopsis_name=synopsis_name,
                        synopsis_words=synopsis_words,
                        degradation=level,
                    )
        elapsed = time.perf_counter() - start
        with self._stats_lock:
            self._stats["batches"] += 1
            self._stats["batch_queries"] += len(query_list)
            self._stats["last_batch_seconds"] = elapsed
            self._stats["last_batch_qps"] = (
                len(query_list) / elapsed if elapsed > 0 else 0.0
            )
            self._stats["total_batch_seconds"] += elapsed
            if with_exact:
                self._stats["exact_scans"] += len(query_list)
        self.metrics.counter("batch_queries_total").inc(len(query_list))
        self.metrics.histogram("batch_seconds").observe(elapsed)
        return results

    def _record_sharded_batch(self, entry, lows: np.ndarray, highs: np.ndarray) -> None:
        """Boundary-shard hit accounting for one batch group, if sharded."""
        from repro.engine.sharding import ShardedSynopsis

        if not isinstance(entry.count_estimator, ShardedSynopsis):
            return
        low_idx, high_idx, valid = entry.statistics.clip_range_many(lows, highs)
        if valid.any():
            self._record_sharded_queries(entry, low_idx[valid], high_idx[valid])

    def _exact_batch(
        self,
        table_name: str,
        column_name: str,
        aggregate: str,
        lows: np.ndarray,
        highs: np.ndarray,
    ) -> np.ndarray:
        """Ground truth for one group from a single sorted column scan."""
        values = np.asarray(self.table(table_name).column(column_name), dtype=np.float64)
        ordered = np.sort(values)
        lo_pos = np.searchsorted(ordered, lows, side="left")
        hi_pos = np.searchsorted(ordered, highs, side="right")
        counts = (hi_pos - lo_pos).astype(np.float64)
        if aggregate == "count":
            return counts
        prefix = np.concatenate(([0.0], np.cumsum(ordered)))
        sums = prefix[hi_pos] - prefix[lo_pos]
        if aggregate == "sum":
            return sums
        return np.divide(sums, counts, out=np.zeros_like(sums), where=counts > 0)
