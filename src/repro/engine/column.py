"""Attribute-value distributions of table columns.

A :class:`ColumnStatistics` turns a raw column into the paper's model: a
frequency vector indexed by attribute value.  COUNT range predicates
translate to range sums over the count vector; SUM predicates to range
sums over the value-weighted vector (so the same synopsis machinery
answers both).

Two physical layouts, chosen automatically:

* **dense** — one slot per integer in ``[lo, hi]`` (the paper's model);
  used when the span is at most ``MAX_DENSE_DOMAIN``.
* **rank** — one slot per *distinct* value, in sorted order; used for
  wide or non-integer domains (prices in cents, identifiers...).  Range
  predicates map to rank intervals by binary search, so every synopsis
  and estimator works unchanged — the histogram then buckets ranks
  rather than raw values, which is exactly how engines handle wide
  domains.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidDataError

#: Widest integer span materialised densely.
MAX_DENSE_DOMAIN = 1 << 20


@dataclass(frozen=True)
class ColumnStatistics:
    """Attribute-value distribution of one column.

    Attributes
    ----------
    lo, hi:
        Smallest and largest attribute value present.
    values_axis:
        The attribute value at each frequency-vector index (for the
        dense layout, ``lo + arange``; for the rank layout, the sorted
        distinct values).
    count_frequencies:
        Rows per index.
    sum_frequencies:
        Attribute mass per index (``values_axis * count_frequencies``).
    row_count:
        Total number of rows.
    layout:
        ``"dense"`` or ``"rank"``.
    """

    lo: float
    hi: float
    values_axis: np.ndarray
    count_frequencies: np.ndarray
    sum_frequencies: np.ndarray
    row_count: int
    layout: str

    @classmethod
    def from_values(cls, values, max_dense_domain: int = MAX_DENSE_DOMAIN) -> "ColumnStatistics":
        """Build the distribution from a raw column of values.

        Integer-valued columns with span up to ``max_dense_domain`` get
        the dense layout; everything else (wide spans, true floats)
        gets the rank layout.
        """
        values = np.asarray(values)
        if values.ndim != 1 or values.size == 0:
            raise InvalidDataError("column must be a non-empty 1-D array")
        values = np.asarray(values, dtype=np.float64)
        if not np.all(np.isfinite(values)):
            raise InvalidDataError("column contains NaN or infinite values")

        integral = np.allclose(values, np.round(values))
        lo = float(values.min())
        hi = float(values.max())
        if integral and hi - lo + 1 <= max_dense_domain:
            ints = np.round(values).astype(np.int64)
            lo_i, hi_i = int(lo), int(hi)
            domain = hi_i - lo_i + 1
            counts = np.bincount(ints - lo_i, minlength=domain).astype(np.float64)
            axis = np.arange(domain, dtype=np.float64) + lo_i
            layout = "dense"
        else:
            axis, count_ints = np.unique(values, return_counts=True)
            counts = count_ints.astype(np.float64)
            layout = "rank"
        return cls(
            lo=lo,
            hi=hi,
            values_axis=axis,
            count_frequencies=counts,
            sum_frequencies=counts * axis,
            row_count=int(values.size),
            layout=layout,
        )

    @property
    def domain_size(self) -> int:
        """Number of indexable slots in the frequency vectors."""
        return int(self.count_frequencies.size)

    def value_at(self, index: int) -> float:
        """The attribute value a frequency-vector index refers to."""
        return float(self.values_axis[index])

    def clip_axis(self, low, high) -> tuple[int, int] | None:
        """Alias of :meth:`clip_range`, used by joint statistics."""
        return self.clip_range(low, high)

    def clip_range(self, low, high) -> tuple[int, int] | None:
        """Intersect a raw-value range with the domain; None if empty.

        Open endpoints (``None``) mean unbounded on that side.  Returns
        0-indexed positions into the frequency vectors covering exactly
        the values in ``[low, high]``.
        """
        low_index = (
            0
            if low is None
            else int(np.searchsorted(self.values_axis, low, side="left"))
        )
        high_index = (
            self.domain_size - 1
            if high is None
            else int(np.searchsorted(self.values_axis, high, side="right")) - 1
        )
        if low_index > high_index or low_index >= self.domain_size or high_index < 0:
            return None
        return low_index, high_index

    def _prefix(self, kind: str) -> np.ndarray:
        """Cached exclusive prefix sums of one frequency vector.

        The cache lives on the instance (lazily attached; the dataclass
        is frozen but not slotted) so repeated snapshot lookups — the
        audit path answers every sampled query this way — cost two array
        reads instead of an O(n) cumsum.
        """
        cache = self.__dict__.get("_prefix_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_prefix_cache", cache)
        if kind not in cache:
            frequencies = (
                self.count_frequencies if kind == "count" else self.sum_frequencies
            )
            cache[kind] = np.concatenate(([0.0], np.cumsum(frequencies)))
        return cache[kind]

    def range_totals(self, kind: str, low_index, high_index) -> np.ndarray:
        """Exact range sums of a frequency vector over clipped index ranges.

        ``kind`` is ``"count"`` or ``"sum"``; indices are inclusive and
        must already be clipped (see :meth:`clip_range` /
        :meth:`clip_range_many`).  These are the *build-time snapshot*
        answers: for a non-stale synopsis they equal a live table scan,
        which is what lets the engine audit queries without rescanning.
        """
        if kind not in ("count", "sum"):
            raise InvalidDataError(f"kind must be count or sum, got {kind!r}")
        prefix = self._prefix(kind)
        low_index = np.asarray(low_index, dtype=np.int64)
        high_index = np.asarray(high_index, dtype=np.int64)
        return prefix[high_index + 1] - prefix[low_index]

    def snapshot_aggregate(self, aggregate: str, low_index: int, high_index: int) -> float:
        """One COUNT/SUM/AVG answer from the build-time snapshot."""
        count = float(self.range_totals("count", low_index, high_index))
        if aggregate == "count":
            return count
        total = float(self.range_totals("sum", low_index, high_index))
        if aggregate == "sum":
            return total
        return total / count if count > 0 else 0.0

    def clip_range_many(
        self, lows, highs
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised :meth:`clip_range` over parallel bound arrays.

        ``-inf`` / ``+inf`` stand in for open endpoints.  Returns
        ``(low_idx, high_idx, valid)``; entries with ``valid[i] False``
        select no domain value and their indices are meaningless.
        """
        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)
        low_idx = np.searchsorted(self.values_axis, lows, side="left").astype(np.int64)
        high_idx = (
            np.searchsorted(self.values_axis, highs, side="right").astype(np.int64) - 1
        )
        valid = (low_idx <= high_idx) & (low_idx < self.domain_size) & (high_idx >= 0)
        return low_idx, high_idx, valid


@dataclass(frozen=True)
class JointColumnStatistics:
    """Dense joint distribution of two columns.

    ``count_grid[i, j]`` is the number of rows whose (x, y) values sit
    at indices ``(i, j)`` of the two columns' value axes — the 2-D
    frequency grid the footnote-2 synopses summarise.  Guarded by
    :data:`MAX_JOINT_CELLS` because the grid is materialised densely;
    wide attributes fall back to their rank layout automatically, so
    the cell count is (distinct x) * (distinct y).
    """

    x: ColumnStatistics
    y: ColumnStatistics
    count_grid: np.ndarray
    row_count: int

    @classmethod
    def from_values(cls, x_values, y_values) -> "JointColumnStatistics":
        x_stats = ColumnStatistics.from_values(x_values)
        y_stats = ColumnStatistics.from_values(y_values)
        cells = x_stats.domain_size * y_stats.domain_size
        if cells > MAX_JOINT_CELLS:
            raise InvalidDataError(
                f"joint domain has {cells} cells (> {MAX_JOINT_CELLS}); "
                "coarsen the attributes before building a joint synopsis"
            )
        x_raw = np.asarray(x_values, dtype=np.float64)
        y_raw = np.asarray(y_values, dtype=np.float64)
        if x_raw.shape != y_raw.shape:
            raise InvalidDataError("joint columns must have the same length")
        x_idx = np.searchsorted(x_stats.values_axis, x_raw)
        y_idx = np.searchsorted(y_stats.values_axis, y_raw)
        grid = np.zeros((x_stats.domain_size, y_stats.domain_size))
        np.add.at(grid, (x_idx, y_idx), 1.0)
        return cls(x=x_stats, y=y_stats, count_grid=grid, row_count=int(x_raw.size))

    def clip_rectangle(self, x_low, x_high, y_low, y_high):
        """Intersect a raw-value rectangle with the joint domain.

        Returns 0-indexed ``(x1, y1, x2, y2)`` or None if empty.
        """
        x_clip = self.x.clip_axis(x_low, x_high)
        y_clip = self.y.clip_axis(y_low, y_high)
        if x_clip is None or y_clip is None:
            return None
        return x_clip[0], y_clip[0], x_clip[1], y_clip[1]


#: Largest joint grid materialised by :class:`JointColumnStatistics`.
MAX_JOINT_CELLS = 1 << 20
