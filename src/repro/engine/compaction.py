"""Shard compaction policy and background compactor.

Under streaming ingest a sharded column's heat distribution skews hard:
appends land in a few hot shards (usually the domain tail) while the
bulk of the shard array goes cold.  Keeping every cold shard at full
resolution wastes per-shard fixed overhead and keeps the dyadic tree
deeper than the data needs.  The t-digest "continuous aggregate" move
is to fold cold runs into coarser *mergeable* summaries without ever
stopping ingest — here that is
:meth:`repro.engine.sharding.ShardedSynopsis.with_compacted_runs`:
adjacent cold shards merge into one shard whose synopsis is rebuilt
over the concatenated slice with the *sum* of the run's word budgets
(:func:`repro.core.builders.merge_shard_budgets`, i.e.
``split_budget_by_mass`` run in reverse), swapped in copy-on-write so
readers never see a half-compacted synopsis.

This module holds the *decision* layer: :class:`CompactionPolicy`
selects which runs to merge from per-shard heat counters, and
:class:`BackgroundCompactor` drives
:meth:`~repro.engine.engine.ApproximateQueryEngine.compact_all_shards`
on a daemon thread, mirroring the serving tier's refresh daemon.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class CompactionPolicy:
    """When and how aggressively to merge cold shard runs.

    ``max_heat`` is the hottest a shard may be (append touches since its
    last build) and still count as cold; ``hot_tail_shards`` exempts the
    trailing shards outright, since streaming appends concentrate there
    and merging them would immediately re-dirty the coarse shard.  Runs
    shorter than ``min_run_length`` are not worth a rebuild; runs are
    capped at ``max_run_length`` so one compaction never collapses the
    whole column (bounding both rebuild latency and resolution loss per
    generation), and ``min_shards`` stops compaction from degenerating
    the synopsis into a monolith.
    """

    min_run_length: int = 2
    max_run_length: int = 8
    hot_tail_shards: int = 1
    max_heat: int = 0
    min_shards: int = 2

    def __post_init__(self) -> None:
        if self.min_run_length < 2:
            raise InvalidParameterError(
                f"min_run_length must be >= 2, got {self.min_run_length}"
            )
        if self.max_run_length < self.min_run_length:
            raise InvalidParameterError(
                f"max_run_length must be >= min_run_length, got "
                f"{self.max_run_length}"
            )
        if self.hot_tail_shards < 0 or self.max_heat < 0:
            raise InvalidParameterError(
                "hot_tail_shards and max_heat must be non-negative"
            )
        if self.min_shards < 1:
            raise InvalidParameterError(
                f"min_shards must be >= 1, got {self.min_shards}"
            )


def plan_runs(heat, policy: CompactionPolicy) -> list[tuple[int, int]]:
    """The sorted, non-overlapping cold runs a compaction should merge.

    ``heat`` is the per-shard append-touch counter vector (index =
    shard id).  A shard is *cold* when its heat is at most
    ``policy.max_heat`` and it is not within the exempt hot tail.
    Maximal cold runs are split greedily into ``max_run_length`` chunks;
    chunks shorter than ``min_run_length`` are dropped.  Finally runs
    are trimmed from the left until the post-merge shard count stays at
    least ``policy.min_shards``.  Returns ``[]`` when nothing qualifies
    — callers treat that as "no compaction needed".
    """
    heat = [int(h) for h in heat]
    size = len(heat)
    eligible = max(0, size - int(policy.hot_tail_shards))
    runs: list[tuple[int, int]] = []
    start = None
    for shard in range(eligible + 1):
        cold = shard < eligible and heat[shard] <= policy.max_heat
        if cold and start is None:
            start = shard
        elif not cold and start is not None:
            first = start
            while shard - first >= policy.min_run_length:
                last = min(shard - 1, first + policy.max_run_length - 1)
                if last - first + 1 >= policy.min_run_length:
                    runs.append((first, last))
                first = last + 1
            start = None
    # Keep at least min_shards surviving shards: each run of length L
    # removes L - 1 shards, so drop whole runs (longest removals last
    # are the most valuable, so trim from the front) until we fit.
    surviving = size - sum(last - first for first, last in runs)
    while runs and surviving < policy.min_shards:
        first, last = runs.pop(0)
        surviving += last - first
    return runs


class BackgroundCompactor:
    """Daemon thread that periodically compacts every registered column.

    Mirrors the serving tier's refresh loop: ``start`` spawns a daemon
    thread that calls ``engine.compact_all_shards(policy)`` every
    ``interval`` seconds (a ``threading.Event`` wait, so ``stop`` is
    prompt), swallowing per-cycle engine errors into an error counter
    instead of dying — a failed compaction leaves the old synopsis
    serving, which is always safe.
    """

    def __init__(
        self,
        engine,
        *,
        interval: float = 1.0,
        policy: CompactionPolicy | None = None,
    ) -> None:
        if interval <= 0:
            raise InvalidParameterError(f"interval must be > 0, got {interval}")
        self.engine = engine
        self.interval = float(interval)
        self.policy = policy or CompactionPolicy()
        self.cycles = 0
        self.errors = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="shard-compactor", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float | None = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def run_once(self) -> dict:
        """One synchronous compaction sweep (what the thread loops on)."""
        report = self.engine.compact_all_shards(policy=self.policy)
        self.cycles += 1
        return report

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.run_once()
            except Exception:  # pragma: no cover - defensive: keep serving
                self.errors += 1
            if self._stop.wait(self.interval):
                return
