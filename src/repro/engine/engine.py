"""The approximate query engine: synopsis catalog + executors.

Registers tables, builds per-column synopses under a space budget using
any builder from :mod:`repro.core.builders`, and answers COUNT/SUM/AVG
range-predicate aggregates from the synopses — with an exact scan
executor alongside for ground truth, the way AQUA-style systems validate
their estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.builders import BUILDER_REGISTRY, build_by_name
from repro.engine.batch import BatchExecutionMixin, BatchQuery  # noqa: F401  (re-exported)
from repro.engine.column import ColumnStatistics
from repro.engine.grouped import GroupedAggregateQuery, GroupedSynopsisMixin, GroupResult
from repro.engine.joint import JointAggregateQuery, JointSynopsisMixin
from repro.engine.table import Table
from repro.errors import InvalidParameterError, InvalidQueryError
from repro.queries.estimators import RangeSumEstimator

#: Aggregates the engine understands.
SUPPORTED_AGGREGATES = ("count", "sum", "avg")


@dataclass(frozen=True)
class AggregateQuery:
    """``SELECT <agg> FROM <table> WHERE <column> BETWEEN <low> AND <high>``.

    ``low``/``high`` are inclusive raw attribute values; ``None`` means
    unbounded on that side.  ``agg`` is one of ``count``, ``sum``,
    ``avg`` (of the predicate column over the qualifying rows).
    """

    table: str
    column: str
    aggregate: str
    low: float | None = None
    high: float | None = None

    def __post_init__(self) -> None:
        if self.aggregate not in SUPPORTED_AGGREGATES:
            raise InvalidQueryError(
                f"aggregate must be one of {SUPPORTED_AGGREGATES}, got {self.aggregate!r}"
            )
        if self.low is not None and self.high is not None and self.low > self.high:
            raise InvalidQueryError(
                f"BETWEEN bounds are inverted: [{self.low}, {self.high}]"
            )


@dataclass(frozen=True)
class QueryResult:
    """An engine answer with provenance.

    ``guaranteed_bound`` is a deterministic bound on the absolute error
    (available for COUNT/SUM when the synopsis is an average histogram
    and the caller asked for it); the true answer always lies in
    ``estimate +- guaranteed_bound``.
    """

    query: AggregateQuery
    estimate: float
    exact: float | None
    synopsis_name: str
    synopsis_words: int
    guaranteed_bound: float | None = None

    @property
    def absolute_error(self) -> float | None:
        if self.exact is None:
            return None
        return abs(self.estimate - self.exact)

    @property
    def relative_error(self) -> float | None:
        if self.exact is None:
            return None
        return self.absolute_error / max(abs(self.exact), 1.0)


@dataclass(frozen=True)
class QuantileQuery:
    """``SELECT QUANTILE(col, q)|MEDIAN(col) FROM t [WHERE col BETWEEN ..]``."""

    table: str
    column: str
    q: float
    low: float | None = None
    high: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.q <= 1.0:
            raise InvalidQueryError(f"quantile must be in [0, 1], got {self.q}")
        if self.low is not None and self.high is not None and self.low > self.high:
            raise InvalidQueryError(
                f"BETWEEN bounds are inverted: [{self.low}, {self.high}]"
            )


@dataclass(frozen=True)
class QuantileResult:
    """A quantile answer with provenance."""

    table: str
    column: str
    q: float
    estimate: float
    exact: float | None
    synopsis_name: str

    @property
    def absolute_error(self) -> float | None:
        if self.exact is None:
            return None
        return abs(self.estimate - self.exact)


@dataclass(frozen=True)
class _ColumnSynopses:
    statistics: ColumnStatistics
    count_estimator: RangeSumEstimator
    sum_estimator: RangeSumEstimator
    method: str
    budget_words: int
    builder_kwargs: dict

    def envelope_for(self, aggregate: str):
        """Lazily-computed error envelope, if the synopsis supports it."""
        from repro.core.histogram import AverageHistogram
        from repro.queries.bounds import compute_error_envelope

        estimator = (
            self.count_estimator if aggregate == "count" else self.sum_estimator
        )
        if not isinstance(estimator, AverageHistogram):
            return None, None
        frequencies = (
            self.statistics.count_frequencies
            if aggregate == "count"
            else self.statistics.sum_frequencies
        )
        return compute_error_envelope(estimator, frequencies), estimator


def _build_column_entry(
    values, method: str, budget_words: int, **builder_kwargs
) -> _ColumnSynopses:
    """Build one column's COUNT and SUM synopses from its raw values.

    Pure function of its inputs — safe to run in worker threads for
    :meth:`ApproximateQueryEngine.build_all_synopses` (``parallel=True``).
    """
    statistics = ColumnStatistics.from_values(values)
    if method == "auto":
        from repro.engine.advisor import best_method

        method = best_method(statistics.count_frequencies, max(budget_words // 2, 4))
    if method not in BUILDER_REGISTRY:
        raise InvalidParameterError(
            f"unknown synopsis method {method!r}; available: "
            f"{sorted(BUILDER_REGISTRY)} or 'auto'"
        )
    half = max(budget_words // 2, BUILDER_REGISTRY[method].words_per_unit)
    count_est = build_by_name(method, statistics.count_frequencies, half, **builder_kwargs)
    sum_est = build_by_name(method, statistics.sum_frequencies, half, **builder_kwargs)
    return _ColumnSynopses(
        statistics=statistics,
        count_estimator=count_est,
        sum_estimator=sum_est,
        method=method,
        budget_words=budget_words,
        builder_kwargs=dict(builder_kwargs),
    )


class ApproximateQueryEngine(BatchExecutionMixin, JointSynopsisMixin, GroupedSynopsisMixin):
    """Catalog of tables and per-column synopses answering range aggregates.

    Single-column range aggregates (COUNT/SUM/AVG) answer from 1-D
    synopses; two-column conjunctive predicates answer from 2-D joint
    synopses via :class:`repro.engine.joint.JointSynopsisMixin`; bulk
    workloads ride :meth:`execute_batch` from
    :class:`repro.engine.batch.BatchExecutionMixin`.
    """

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._synopses: dict[tuple[str, str], _ColumnSynopses] = {}
        self._stale: set[tuple[str, str]] = set()
        self._joint_synopses: dict[tuple[str, str, str], object] = {}
        self._stale_joint: set[tuple[str, str, str]] = set()
        self._grouped_synopses: dict[tuple[str, str, str], dict] = {}
        self._grouped_configs: dict[tuple[str, str, str], dict] = {}
        self._stale_grouped: set[tuple[str, str, str]] = set()
        self._stats: dict = {
            "queries": 0,
            "batch_queries": 0,
            "batches": 0,
            "joint_queries": 0,
            "grouped_queries": 0,
            "exact_scans": 0,
            "stale_served": 0,
            "rebuilds": 0,
            "synopsis_hits": {},
            "last_batch_seconds": 0.0,
            "last_batch_qps": 0.0,
            "total_batch_seconds": 0.0,
        }

    # ------------------------------------------------------------------
    # Catalog management
    # ------------------------------------------------------------------
    def register_table(self, table: Table) -> None:
        """Add (or replace) a table; drops its previous synopses.

        Every kind of synopsis for the table is dropped — 1-D, joint,
        and grouped — since all of them summarise the replaced data.
        """
        self._tables[table.name] = table
        for key in [key for key in self._synopses if key[0] == table.name]:
            del self._synopses[key]
            self._stale.discard(key)
        for key in [key for key in self._joint_synopses if key[0] == table.name]:
            del self._joint_synopses[key]
            self._stale_joint.discard(key)
        for key in [key for key in self._grouped_synopses if key[0] == table.name]:
            del self._grouped_synopses[key]
            self._grouped_configs.pop(key, None)
            self._stale_grouped.discard(key)

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise InvalidQueryError(
                f"unknown table {name!r}; registered: {sorted(self._tables)}"
            )
        return self._tables[name]

    def build_synopsis(
        self,
        table_name: str,
        column_name: str,
        *,
        method: str = "sap1",
        budget_words: int = 64,
        **builder_kwargs,
    ) -> None:
        """Build COUNT and SUM synopses for one column.

        The word budget is split evenly between the count and sum
        frequency vectors (each aggregate needs its own synopsis; AVG is
        derived as SUM/COUNT).
        """
        table = self.table(table_name)
        entry = _build_column_entry(
            table.column(column_name), method, budget_words, **builder_kwargs
        )
        self._synopses[(table_name, column_name)] = entry
        self._stale.discard((table_name, column_name))

    def build_all_synopses(
        self,
        *,
        method: str = "sap1",
        total_budget_words: int = 512,
        parallel: bool = False,
        max_workers: int | None = None,
        **builder_kwargs,
    ) -> None:
        """Build synopses for every column of every table, splitting a
        global word budget evenly across columns (a simple catalog
        policy; callers needing weighted budgets use
        :meth:`build_synopsis` per column).

        ``parallel=True`` runs the per-column builds in a thread pool —
        they are independent of each other and the heavy numpy kernels
        release the GIL, so a multi-column catalog builds concurrently.
        The resulting catalog is identical to a serial build.
        """
        columns = [
            (table.name, column)
            for table in self._tables.values()
            for column in table.column_names()
        ]
        if not columns:
            return
        per_column = max(total_budget_words // len(columns), 4)
        if parallel and len(columns) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                futures = {
                    key: pool.submit(
                        _build_column_entry,
                        self._tables[key[0]].column(key[1]),
                        method,
                        per_column,
                        **builder_kwargs,
                    )
                    for key in columns
                }
            for key, future in futures.items():
                self._synopses[key] = future.result()
                self._stale.discard(key)
            return
        for table_name, column_name in columns:
            self.build_synopsis(
                table_name,
                column_name,
                method=method,
                budget_words=per_column,
                **builder_kwargs,
            )

    def synopsis_catalog(self) -> list[dict]:
        """One row per built synopsis: location, method, true storage."""
        return [
            {
                "table": table,
                "column": column,
                "method": entry.method,
                "count_words": entry.count_estimator.storage_words(),
                "sum_words": entry.sum_estimator.storage_words(),
                "domain_size": entry.statistics.domain_size,
            }
            for (table, column), entry in sorted(self._synopses.items())
        ]

    # ------------------------------------------------------------------
    # Data evolution
    # ------------------------------------------------------------------
    def append_rows(self, table_name: str, rows: dict) -> None:
        """Append rows to a table; *all* its synopses become *stale*.

        Staleness covers the 1-D, joint, and grouped synopses of the
        table alike — each summarises the pre-append data.  Stale
        synopses still answer; the execute paths take an ``on_stale``
        policy and :meth:`refresh_stale` rebuilds them with their
        original method and budget.
        """
        table = self.table(table_name)
        self._tables[table_name] = table.with_appended(rows)
        for key in self._synopses:
            if key[0] == table_name:
                self._stale.add(key)
        for key in self._joint_synopses:
            if key[0] == table_name:
                self._stale_joint.add(key)
        for key in self._grouped_synopses:
            if key[0] == table_name:
                self._stale_grouped.add(key)

    def stale_synopses(self) -> list[tuple[str, str]]:
        """The (table, column) pairs whose 1-D synopses predate appends.

        Joint and grouped staleness is reported by
        :meth:`stale_joint_synopses` / :meth:`stale_grouped_synopses`.
        """
        return sorted(self._stale)

    def refresh_stale(self) -> int:
        """Rebuild every stale synopsis with its recorded configuration.

        Covers 1-D, joint, and grouped synopses; returns the number of
        synopses rebuilt.
        """
        rebuilt = 0
        for key in list(self._stale):
            entry = self._synopses[key]
            self.build_synopsis(
                key[0],
                key[1],
                method=entry.method,
                budget_words=entry.budget_words,
                **entry.builder_kwargs,
            )
            rebuilt += 1
        for key in list(self._stale_joint):
            entry = self._joint_synopses[key]
            self.build_joint_synopsis(
                key[0],
                key[1],
                key[2],
                method=entry.method,
                budget_words=entry.budget_words,
            )
            rebuilt += 1
        for key in list(self._stale_grouped):
            config = self._grouped_configs[key]
            self.build_grouped_synopsis(key[0], key[1], key[2], **config)
            rebuilt += 1
        self._stats["rebuilds"] += rebuilt
        return rebuilt

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute_exact(self, query: AggregateQuery) -> float:
        """Ground truth by scanning the base table."""
        table = self.table(query.table)
        values = table.column(query.column)
        mask = np.ones(values.shape, dtype=bool)
        if query.low is not None:
            mask &= values >= query.low
        if query.high is not None:
            mask &= values <= query.high
        if query.aggregate == "count":
            return float(mask.sum())
        selected = values[mask]
        if query.aggregate == "sum":
            return float(selected.sum())
        return float(selected.mean()) if selected.size else 0.0

    def _resolve_synopsis(
        self, table_name: str, column_name: str, on_stale: str
    ) -> _ColumnSynopses:
        """Look up a 1-D synopsis, applying the staleness policy.

        Shared by the scalar and batch execute paths; ``on_stale`` must
        already be validated by the caller.
        """
        key = (table_name, column_name)
        if key not in self._synopses:
            raise InvalidQueryError(
                f"no synopsis built for {table_name}.{column_name}; "
                "call build_synopsis first"
            )
        if key in self._stale:
            if on_stale == "error":
                raise InvalidQueryError(
                    f"synopsis for {table_name}.{column_name} is stale "
                    "(rows appended since build); refresh_stale() or pass "
                    "on_stale='rebuild'"
                )
            if on_stale == "rebuild":
                entry = self._synopses[key]
                self.build_synopsis(
                    key[0],
                    key[1],
                    method=entry.method,
                    budget_words=entry.budget_words,
                    **entry.builder_kwargs,
                )
                self._stats["rebuilds"] += 1
            else:
                self._stats["stale_served"] += 1
        return self._synopses[key]

    def stats(self) -> dict:
        """A snapshot of the engine's execution counters.

        Keys: scalar/batch/joint/grouped query counts, ``batches``,
        ``exact_scans``, ``stale_served``, ``rebuilds``, per-column
        ``synopsis_hits``, the last batch's wall time and queries/sec
        (``last_batch_seconds`` / ``last_batch_qps``), cumulative
        ``total_batch_seconds``, and the current stale-set sizes.
        """
        snapshot = dict(self._stats)
        snapshot["synopsis_hits"] = dict(self._stats["synopsis_hits"])
        snapshot["total_queries"] = (
            snapshot["queries"]
            + snapshot["batch_queries"]
            + snapshot["joint_queries"]
            + snapshot["grouped_queries"]
        )
        snapshot["stale_1d"] = len(self._stale)
        snapshot["stale_joint"] = len(self._stale_joint)
        snapshot["stale_grouped"] = len(self._stale_grouped)
        return snapshot

    def execute(
        self,
        query: AggregateQuery,
        *,
        with_exact: bool = False,
        with_bound: bool = False,
        on_stale: str = "serve",
    ) -> QueryResult:
        """Answer from the synopses; optionally attach the exact answer.

        ``on_stale`` controls behaviour when rows were appended after
        the synopsis was built: ``"serve"`` answers from the stale
        synopsis (default — estimates drift with the appended volume),
        ``"rebuild"`` refreshes it first, ``"error"`` refuses.
        """
        if on_stale not in ("serve", "rebuild", "error"):
            raise InvalidParameterError(
                f"on_stale must be serve, rebuild, or error, got {on_stale!r}"
            )
        entry = self._resolve_synopsis(query.table, query.column, on_stale)
        self._stats["queries"] += 1
        hits = self._stats["synopsis_hits"]
        hit_key = f"{query.table}.{query.column}"
        hits[hit_key] = hits.get(hit_key, 0) + 1
        if with_exact:
            self._stats["exact_scans"] += 1
        clipped = entry.statistics.clip_range(query.low, query.high)
        if clipped is None:
            estimate = 0.0
        else:
            low, high = clipped
            if query.aggregate == "count":
                estimate = entry.count_estimator.estimate(low, high)
            elif query.aggregate == "sum":
                estimate = entry.sum_estimator.estimate(low, high)
            else:  # avg
                count = entry.count_estimator.estimate(low, high)
                total = entry.sum_estimator.estimate(low, high)
                estimate = total / count if count > 0 else 0.0
        exact = self.execute_exact(query) if with_exact else None
        bound = None
        if with_bound and clipped is not None and query.aggregate in ("count", "sum"):
            envelope, estimator = entry.envelope_for(query.aggregate)
            if envelope is not None:
                low, high = clipped
                bound = float(
                    envelope.bound(
                        estimator, np.asarray([low]), np.asarray([high])
                    )[0]
                )
        return QueryResult(
            query=query,
            estimate=float(estimate),
            exact=exact,
            synopsis_name=entry.count_estimator.name,
            synopsis_words=entry.count_estimator.storage_words()
            + entry.sum_estimator.storage_words(),
            guaranteed_bound=bound,
        )

    def execute_quantile(
        self,
        table_name: str,
        column_name: str,
        q: float,
        *,
        low: float | None = None,
        high: float | None = None,
        with_exact: bool = False,
    ) -> "QuantileResult":
        """Estimate the ``q``-quantile of a column from its count synopsis.

        The estimate is the smallest attribute value whose estimated
        cumulative frequency (within the optional ``[low, high]``
        window) reaches ``q`` of the window total.
        """
        from repro.queries.quantiles import estimate_quantile

        key = (table_name, column_name)
        if key not in self._synopses:
            raise InvalidQueryError(
                f"no synopsis built for {table_name}.{column_name}; "
                "call build_synopsis first"
            )
        entry = self._synopses[key]
        clipped = entry.statistics.clip_range(low, high)
        if clipped is None:
            raise InvalidQueryError(
                f"window [{low}, {high}] does not intersect the domain of "
                f"{table_name}.{column_name}"
            )
        index = estimate_quantile(
            entry.count_estimator, q, low=clipped[0], high=clipped[1]
        )
        estimate = float(entry.statistics.value_at(index))
        exact = None
        if with_exact:
            values = self.table(table_name).column(column_name)
            mask = np.ones(values.shape, dtype=bool)
            if low is not None:
                mask &= values >= low
            if high is not None:
                mask &= values <= high
            selected = np.sort(values[mask])
            if selected.size:
                rank = min(
                    int(np.ceil(q * selected.size)) - 1 if q > 0 else 0,
                    selected.size - 1,
                )
                exact = float(selected[max(rank, 0)])
        return QuantileResult(
            table=table_name,
            column=column_name,
            q=float(q),
            estimate=estimate,
            exact=exact,
            synopsis_name=entry.count_estimator.name,
        )

    def execute_sql(
        self, statement: str, *, with_exact: bool = False
    ) -> QueryResult | QuantileResult | list[GroupResult]:
        """Parse and run one statement of the mini SQL dialect.

        Single-column predicates route to the 1-D synopses; two-column
        BETWEEN conjunctions route to the joint synopses.  Aggregates
        return a :class:`QueryResult`, quantile/median statements a
        :class:`QuantileResult`, and GROUP BY statements a list of
        :class:`~repro.engine.grouped.GroupResult`.
        """
        from repro.engine.sql import parse_query

        query = parse_query(statement)
        if isinstance(query, GroupedAggregateQuery):
            return self.execute_grouped(query, with_exact=with_exact)
        if isinstance(query, JointAggregateQuery):
            return self.execute_joint(query, with_exact=with_exact)
        if isinstance(query, QuantileQuery):
            return self.execute_quantile(
                query.table,
                query.column,
                query.q,
                low=query.low,
                high=query.high,
                with_exact=with_exact,
            )
        return self.execute(query, with_exact=with_exact)

