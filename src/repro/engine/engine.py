"""The approximate query engine: synopsis catalog + executors.

Registers tables, builds per-column synopses under a space budget using
any builder from :mod:`repro.core.builders`, and answers COUNT/SUM/AVG
range-predicate aggregates from the synopses — with an exact scan
executor alongside for ground truth, the way AQUA-style systems validate
their estimates.
"""

from __future__ import annotations

import copy
import itertools
import json
import math
import random
import threading
import time
from dataclasses import dataclass, replace

import numpy as np

from repro.core.builders import (
    BUILDER_REGISTRY,
    aggregate_shard_predictions,
    build_by_name,
)
from repro.engine.compaction import CompactionPolicy, plan_runs
from repro.engine.optimizer import ObservedWorkload, run_optimization
from repro.engine.sharding import ShardedSynopsis, build_sharded
from repro.engine.batch import BatchExecutionMixin, BatchQuery  # noqa: F401  (re-exported)
from repro.engine.column import ColumnStatistics
from repro.engine.grouped import GroupedAggregateQuery, GroupedSynopsisMixin, GroupResult
from repro.engine.joint import JointAggregateQuery, JointSynopsisMixin
from repro.engine.resilience import (
    BREAKER_CLOSED,
    CircuitBreaker,
    Deadline,
    DegradationPolicy,
    FallbackChain,
    FallbackStage,
    as_degradation_policy,
    as_fallback_chain,
    deadline_scope,
    jittered_backoff,
)
from repro.engine.table import Table
from repro.errors import (
    BuildFailedError,
    BuildTimeoutError,
    InvalidParameterError,
    InvalidQueryError,
)
from repro.observability import ErrorAuditor, MetricsRegistry, SystemClock, TraceRecorder
from repro.observability.metrics import ERROR_BUCKETS
from repro.queries.estimators import RangeSumEstimator

#: Aggregates the engine understands.
SUPPORTED_AGGREGATES = ("count", "sum", "avg")


@dataclass(frozen=True)
class AggregateQuery:
    """``SELECT <agg> FROM <table> WHERE <column> BETWEEN <low> AND <high>``.

    ``low``/``high`` are inclusive raw attribute values; ``None`` means
    unbounded on that side.  ``agg`` is one of ``count``, ``sum``,
    ``avg`` (of the predicate column over the qualifying rows).
    """

    table: str
    column: str
    aggregate: str
    low: float | None = None
    high: float | None = None

    def __post_init__(self) -> None:
        if self.aggregate not in SUPPORTED_AGGREGATES:
            raise InvalidQueryError(
                f"aggregate must be one of {SUPPORTED_AGGREGATES}, got {self.aggregate!r}"
            )
        if self.low is not None and self.high is not None and self.low > self.high:
            raise InvalidQueryError(
                f"BETWEEN bounds are inverted: [{self.low}, {self.high}]"
            )


@dataclass(frozen=True)
class QueryResult:
    """An engine answer with provenance.

    ``guaranteed_bound`` is a deterministic bound on the absolute error
    (available for COUNT/SUM when the synopsis is an average histogram
    and the caller asked for it); the true answer always lies in
    ``estimate +- guaranteed_bound``.

    ``degradation`` records which rung of the serving ladder produced
    the answer: ``"fresh"`` (up-to-date synopsis), ``"stale"`` (synopsis
    predating appends), ``"fallback"`` (uniform model over frozen column
    statistics), ``"progressive"`` (synopsis answer carrying a
    confidence interval, refinable by the serving tier), or ``"exact"``
    (base-table scan) — see
    :class:`repro.engine.resilience.DegradationPolicy`.

    ``interval``/``confidence`` are set only on progressive answers: the
    claimed-``confidence`` interval ``[lo, hi]`` around the estimate,
    derived from the frozen builder error model (see
    :mod:`repro.serving.progressive`).
    """

    query: AggregateQuery
    estimate: float
    exact: float | None
    synopsis_name: str
    synopsis_words: int
    guaranteed_bound: float | None = None
    degradation: str = "fresh"
    interval: tuple[float, float] | None = None
    confidence: float | None = None

    @property
    def absolute_error(self) -> float | None:
        if self.exact is None:
            return None
        return abs(self.estimate - self.exact)

    @property
    def relative_error(self) -> float | None:
        if self.exact is None:
            return None
        return self.absolute_error / max(abs(self.exact), 1.0)


@dataclass(frozen=True)
class QuantileQuery:
    """``SELECT QUANTILE(col, q)|MEDIAN(col) FROM t [WHERE col BETWEEN ..]``."""

    table: str
    column: str
    q: float
    low: float | None = None
    high: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.q <= 1.0:
            raise InvalidQueryError(f"quantile must be in [0, 1], got {self.q}")
        if self.low is not None and self.high is not None and self.low > self.high:
            raise InvalidQueryError(
                f"BETWEEN bounds are inverted: [{self.low}, {self.high}]"
            )


@dataclass(frozen=True)
class QuantileResult:
    """A quantile answer with provenance."""

    table: str
    column: str
    q: float
    estimate: float
    exact: float | None
    synopsis_name: str

    @property
    def absolute_error(self) -> float | None:
        if self.exact is None:
            return None
        return abs(self.estimate - self.exact)


@dataclass(frozen=True)
class _ColumnSynopses:
    statistics: ColumnStatistics
    count_estimator: RangeSumEstimator
    sum_estimator: RangeSumEstimator
    method: str
    budget_words: int
    builder_kwargs: dict
    #: Builder-reported error model per aggregate ("count"/"sum"),
    #: frozen at build time so later corruption or drift is detectable;
    #: None for catalogs predating prediction (e.g. loaded from disk).
    predicted: dict | None = None
    #: Number of contiguous domain shards the estimators were built
    #: with (1 = monolithic); recorded so rebuilds keep the layout.
    shards: int = 1

    def envelope_for(self, aggregate: str):
        """Lazily-computed error envelope, if the synopsis supports it."""
        from repro.core.histogram import AverageHistogram
        from repro.queries.bounds import compute_error_envelope

        estimator = (
            self.count_estimator if aggregate == "count" else self.sum_estimator
        )
        if not isinstance(estimator, AverageHistogram):
            return None, None
        frequencies = (
            self.statistics.count_frequencies
            if aggregate == "count"
            else self.statistics.sum_frequencies
        )
        return compute_error_envelope(estimator, frequencies), estimator


def _build_column_entry(
    values,
    method: str,
    budget_words: int,
    *,
    predict_errors: bool = True,
    shards: int = 1,
    parallel_shards: bool = True,
    on_shard_built=None,
    **builder_kwargs,
) -> _ColumnSynopses:
    """Build one column's COUNT and SUM synopses from its raw values.

    Pure function of its inputs — safe to run in worker threads for
    :meth:`ApproximateQueryEngine.build_all_synopses` (``parallel=True``).
    ``predict_errors`` additionally evaluates each synopsis's
    SSE-per-query error model (frozen into the entry for the online
    auditor; sampled on large domains, so the cost stays bounded).

    ``shards > 1`` partitions the column's domain into that many
    contiguous shards (clamped to the domain size) and builds one
    independent synopsis per shard — see
    :class:`repro.engine.sharding.ShardedSynopsis`; ``parallel_shards``
    runs the per-shard builds on a thread pool, and
    ``on_shard_built(shard, seconds)`` observes each shard's build time.
    """
    from repro.core.builders import predict_sse_per_query

    statistics = ColumnStatistics.from_values(values)
    if method == "auto":
        from repro.engine.advisor import best_method

        method = best_method(statistics.count_frequencies, max(budget_words // 2, 4))
    if method not in BUILDER_REGISTRY:
        raise InvalidParameterError(
            f"unknown synopsis method {method!r}; available: "
            f"{sorted(BUILDER_REGISTRY)} or 'auto'"
        )
    if shards < 1:
        raise InvalidParameterError(f"shards must be >= 1, got {shards}")
    shards = min(int(shards), statistics.domain_size)
    half = max(budget_words // 2, BUILDER_REGISTRY[method].words_per_unit)
    predicted = None
    if shards > 1:
        count_est = build_sharded(
            method,
            statistics.count_frequencies,
            half,
            shards,
            parallel=parallel_shards,
            predict=predict_errors,
            on_shard_built=on_shard_built,
            **builder_kwargs,
        )
        sum_est = build_sharded(
            method,
            statistics.sum_frequencies,
            half,
            shards,
            parallel=parallel_shards,
            predict=predict_errors,
            on_shard_built=on_shard_built,
            **builder_kwargs,
        )
        if predict_errors:
            predicted = {
                "count": aggregate_shard_predictions(
                    count_est.shard_predictions, np.diff(count_est.starts)
                ),
                "sum": aggregate_shard_predictions(
                    sum_est.shard_predictions, np.diff(sum_est.starts)
                ),
            }
    else:
        count_est = build_by_name(
            method, statistics.count_frequencies, half, **builder_kwargs
        )
        sum_est = build_by_name(
            method, statistics.sum_frequencies, half, **builder_kwargs
        )
        if predict_errors:
            predicted = {
                "count": predict_sse_per_query(count_est, statistics.count_frequencies),
                "sum": predict_sse_per_query(sum_est, statistics.sum_frequencies),
            }
    return _ColumnSynopses(
        statistics=statistics,
        count_estimator=count_est,
        sum_estimator=sum_est,
        method=method,
        budget_words=budget_words,
        builder_kwargs=dict(builder_kwargs),
        predicted=predicted,
        shards=shards,
    )


def _build_entry_resilient(
    values,
    stages,
    budget_words,
    *,
    predict_errors,
    shards,
    parallel_shards,
    deadline_seconds,
    clock,
    sleep,
    on_shard_built=None,
    on_event=None,
    backoff_rng=None,
    backoff_jitter=0.5,
):
    """Walk a fallback ladder building one column entry.

    ``stages`` is a non-empty list of
    :class:`~repro.engine.resilience.FallbackStage` rungs (the primary
    first).  Each rung gets a fresh deadline of ``deadline_seconds``
    (``None`` = unbounded) and its own retry-with-backoff budget;
    timeouts skip straight to the next rung because a deterministic DP
    that blew its budget once will blow it again.  Returns
    ``(entry, outcome)`` where ``outcome`` records the serving rung and
    every failure along the way; raises
    :class:`~repro.errors.BuildFailedError` when the ladder is
    exhausted.
    """

    def _notify(kind: str, **attrs) -> None:
        if on_event is not None:
            on_event(kind, **attrs)

    failures: dict[str, Exception] = {}
    attempts_total = 0
    for rung, stage in enumerate(stages):
        attempt = 0
        while True:
            attempts_total += 1
            deadline = (
                Deadline(deadline_seconds, clock=clock)
                if deadline_seconds is not None
                else None
            )
            try:
                with deadline_scope(deadline):
                    entry = _build_column_entry(
                        values,
                        stage.method,
                        budget_words,
                        predict_errors=predict_errors,
                        shards=shards,
                        parallel_shards=parallel_shards,
                        on_shard_built=on_shard_built,
                        **stage.builder_kwargs,
                    )
            except BuildTimeoutError as error:
                failures[f"rung{rung}:{stage.method}"] = error
                _notify("timeout", method=stage.method, rung=rung)
                break
            except Exception as error:  # noqa: BLE001 — any fault degrades
                failures[f"rung{rung}:{stage.method}@{attempt}"] = error
                _notify("failure", method=stage.method, rung=rung)
                if attempt >= stage.retries:
                    break
                _notify("retry", method=stage.method, rung=rung)
                if stage.backoff_seconds > 0:
                    sleep(
                        jittered_backoff(
                            stage.backoff_seconds,
                            attempt,
                            rng=backoff_rng,
                            jitter=backoff_jitter,
                        )
                    )
                attempt += 1
                continue
            if rung > 0:
                _notify("fallback", method=stage.method, rung=rung)
            outcome = {
                "method": entry.method,
                "requested": stages[0].method,
                "rung": rung,
                "attempts": attempts_total,
                "failures": failures,
            }
            return entry, outcome
    if len(failures) == 1:
        # A one-attempt ladder (no chain, no retries) keeps its original
        # exception type — existing callers and tests rely on it, and a
        # BuildTimeoutError must surface as itself for deadline callers.
        raise next(iter(failures.values()))
    summary = "; ".join(
        f"{key}: {type(error).__name__}: {error}" for key, error in failures.items()
    )
    raise BuildFailedError(
        f"all {len(stages)} fallback rung(s) failed ({summary})", failures=failures
    )


def _timed_build_column_entry(
    values,
    stages,
    budget_words,
    predict_errors,
    shards=1,
    deadline_seconds=None,
    clock=None,
    sleep=time.sleep,
    on_event=None,
    backoff_rng=None,
    backoff_jitter=0.5,
):
    """Worker-thread wrapper timing one resilient column build (wall clock).

    Runs the whole fallback ladder inside the worker so the ambient
    deadline (a thread-local) binds to the thread actually building.
    """
    start = time.perf_counter()
    entry, outcome = _build_entry_resilient(
        values,
        stages,
        budget_words,
        predict_errors=predict_errors,
        shards=shards,
        # The column builds already run on the catalog thread pool;
        # nesting a per-shard pool inside each worker oversubscribes.
        parallel_shards=False,
        deadline_seconds=deadline_seconds,
        clock=clock,
        sleep=sleep,
        on_event=on_event,
        backoff_rng=backoff_rng,
        backoff_jitter=backoff_jitter,
    )
    return entry, time.perf_counter() - start, outcome


class ApproximateQueryEngine(BatchExecutionMixin, JointSynopsisMixin, GroupedSynopsisMixin):
    """Catalog of tables and per-column synopses answering range aggregates.

    Single-column range aggregates (COUNT/SUM/AVG) answer from 1-D
    synopses; two-column conjunctive predicates answer from 2-D joint
    synopses via :class:`repro.engine.joint.JointSynopsisMixin`; bulk
    workloads ride :meth:`execute_batch` from
    :class:`repro.engine.batch.BatchExecutionMixin`.
    """

    def __init__(
        self,
        *,
        clock=None,
        trace_capacity: int = 2048,
        audit_window: int = 4096,
        audit_seed: int = 0,
        workload_capacity: int = 512,
        predict_errors: bool = True,
        breaker_threshold: int = 3,
        breaker_cooldown_seconds: float = 60.0,
        default_fallback=None,
        default_deadline_ms: float | None = None,
        backoff_jitter: float = 0.5,
        backoff_seed: int | None = None,
    ) -> None:
        self._tables: dict[str, Table] = {}
        self._synopses: dict[tuple[str, str], _ColumnSynopses] = {}
        self._stale: set[tuple[str, str]] = set()
        #: Dirty shard ids per sharded synopsis key; ``None`` means the
        #: domain itself changed (every shard must rebuild).  Only stale
        #: sharded entries have a row here.
        self._dirty_shards: dict[tuple[str, str], set[int] | None] = {}
        #: Per-shard append-touch counters per sharded synopsis key,
        #: reset by full builds and compactions; the compaction policy
        #: (:func:`repro.engine.compaction.plan_runs`) reads them to
        #: find cold runs worth merging.
        self._shard_heat: dict[tuple[str, str], dict[int, int]] = {}
        self._joint_synopses: dict[tuple[str, str, str], object] = {}
        self._stale_joint: set[tuple[str, str, str]] = set()
        self._grouped_synopses: dict[tuple[str, str, str], dict] = {}
        self._grouped_configs: dict[tuple[str, str, str], dict] = {}
        self._stale_grouped: set[tuple[str, str, str]] = set()
        self.clock = clock if clock is not None else SystemClock()
        self.tracer = TraceRecorder(self.clock, capacity=trace_capacity)
        self.metrics = MetricsRegistry()
        self.auditor = ErrorAuditor(window=audit_window)
        #: Reservoir-sampled index-space ranges of audited queries, the
        #: signal :meth:`optimize_budgets` reallocates budgets toward.
        self.observed_workload = ObservedWorkload(
            capacity=workload_capacity, seed=audit_seed
        )
        self.predict_errors = bool(predict_errors)
        self._audit_rng = np.random.default_rng(audit_seed)
        #: Per-synopsis lifecycle: built_at, build_seconds, stale_since.
        self._build_meta: dict[tuple[str, str], dict] = {}
        #: Pinned error models for entries lacking a build-time one.
        self._prediction_cache: dict[tuple, object] = {}
        #: Session-wide defaults for the resilient build paths; per-call
        #: ``fallback=`` / ``deadline_ms=`` arguments override them.
        self.default_fallback = as_fallback_chain(default_fallback)
        self.default_deadline_ms = default_deadline_ms
        #: One circuit breaker per builder method, lazily created by
        #: :meth:`refresh_stale` (see :meth:`breaker_states`).
        self._breaker_threshold = int(breaker_threshold)
        self._breaker_cooldown_seconds = float(breaker_cooldown_seconds)
        self._breakers: dict[str, CircuitBreaker] = {}
        #: Cached uniform models backing the "fallback" degradation
        #: rung: (table, column) -> dict(lo, hi, rows, total).
        self._fallback_models: dict[tuple[str, str], dict] = {}
        #: Keys quarantined by :func:`repro.engine.persistence.load_catalog`
        #: after checksum/deserialisation failures (served as stale
        #: substitutes until rebuilt).
        self._quarantined: set[tuple[str, str]] = set()
        #: Injection point for retry backoff sleeps (tests use a no-op).
        self._sleep = time.sleep
        #: Jittered retry schedule: deterministic doubling synchronizes
        #: retries across workers sharing a fault, so backoff sleeps are
        #: scaled by a seeded uniform factor (see
        #: :func:`repro.engine.resilience.jittered_backoff`).
        self._backoff_jitter = float(backoff_jitter)
        self._backoff_rng = random.Random(backoff_seed)
        #: Serialises every ``_stats`` read-modify-write so concurrent
        #: ``execute`` / ``execute_batch`` / ``stats()`` calls (the
        #: serving tier runs them from different threads) neither lose
        #: increments nor crash a snapshot mid-mutation.
        self._stats_lock = threading.RLock()
        #: Monotonic per-table data versions, bumped by
        #: :meth:`register_table` and :meth:`append_rows`; cache
        #: consistency tokens (see :class:`repro.serving.CatalogView`)
        #: embed them so no answer computed before a data change can be
        #: served after it.
        self._table_versions: dict[str, int] = {}
        #: Monotonic ids stamped onto ``_build_meta`` entries by
        #: :meth:`_record_build`; a rebuild changes the id, so cached
        #: answers from the previous synopsis stop validating.
        self._build_seq = itertools.count(1)
        self._stats: dict = self._fresh_stats()

    @staticmethod
    def _fresh_stats() -> dict:
        return {
            "queries": 0,
            "batch_queries": 0,
            "batches": 0,
            "joint_queries": 0,
            "grouped_queries": 0,
            "exact_scans": 0,
            "stale_served": 0,
            "progressive_served": 0,
            "rebuilds": 0,
            "dirty_shards_rebuilt": 0,
            "compactions": 0,
            "compacted_shards": 0,
            "optimizer_runs": 0,
            "optimizer_shards_rebuilt": 0,
            "optimizer_column_rebuilds": 0,
            "audited_queries": 0,
            "drift_flags": 0,
            "build_timeouts": 0,
            "build_failures": 0,
            "build_retries": 0,
            "fallback_builds": 0,
            "degraded_serves": 0,
            "breaker_skips": 0,
            "synopsis_hits": {},
            "last_batch_seconds": 0.0,
            "last_batch_qps": 0.0,
            "total_batch_seconds": 0.0,
        }

    @staticmethod
    def _check_audit_rate(audit_rate) -> float:
        rate = float(audit_rate)
        if not 0.0 <= rate <= 1.0 or math.isnan(rate):
            raise InvalidParameterError(
                f"audit_rate must be in [0, 1], got {audit_rate!r}"
            )
        return rate

    # ------------------------------------------------------------------
    # Counter plumbing (thread-safe)
    # ------------------------------------------------------------------
    def _bump(self, key: str, amount=1) -> None:
        """Increment one execution counter under the stats lock."""
        with self._stats_lock:
            self._stats[key] += amount

    def _set_stat(self, key: str, value) -> None:
        with self._stats_lock:
            self._stats[key] = value

    def _bump_hits(self, hit_key: str, amount: int = 1) -> None:
        with self._stats_lock:
            hits = self._stats["synopsis_hits"]
            hits[hit_key] = hits.get(hit_key, 0) + amount

    def _invalidate_predictions(self, key: tuple[str, str]) -> None:
        """Drop every pinned error model for one synopsis.

        The cache is keyed ``((table, column), aggregate)``; clearing by
        prefix removes *all* aggregates — not just the literal
        ``("count", "sum")`` pair — so a new aggregate kind (quantile,
        say) pinned for ``key`` can never survive a rebuild or table
        replacement and serve a stale prediction.
        """
        for cache_key in [ck for ck in self._prediction_cache if ck[0] == key]:
            del self._prediction_cache[cache_key]

    def _bump_table_version(self, table_name: str) -> None:
        self._table_versions[table_name] = (
            self._table_versions.get(table_name, 0) + 1
        )

    def table_version(self, table_name: str) -> int:
        """Monotonic data version of one table.

        Starts at 0 for never-registered names, and increases on every
        :meth:`register_table` and :meth:`append_rows`.  Answer caches
        compare versions instead of subscribing to invalidation events:
        any answer recorded under an older version is unservable.
        """
        return self._table_versions.get(table_name, 0)

    # ------------------------------------------------------------------
    # Catalog management
    # ------------------------------------------------------------------
    def register_table(self, table: Table) -> None:
        """Add (or replace) a table; drops its previous synopses.

        Every kind of synopsis for the table is dropped — 1-D, joint,
        and grouped — since all of them summarise the replaced data.
        """
        self._tables[table.name] = table
        self._bump_table_version(table.name)
        for key in [key for key in self._fallback_models if key[0] == table.name]:
            del self._fallback_models[key]
        for key in [key for key in self._synopses if key[0] == table.name]:
            del self._synopses[key]
            self._stale.discard(key)
            self._dirty_shards.pop(key, None)
            self._build_meta.pop(key, None)
            self._invalidate_predictions(key)
        for key in [key for key in self._joint_synopses if key[0] == table.name]:
            del self._joint_synopses[key]
            self._stale_joint.discard(key)
        for key in [key for key in self._grouped_synopses if key[0] == table.name]:
            del self._grouped_synopses[key]
            self._grouped_configs.pop(key, None)
            self._stale_grouped.discard(key)

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise InvalidQueryError(
                f"unknown table {name!r}; registered: {sorted(self._tables)}"
            )
        return self._tables[name]

    def _resolve_build_policy(self, fallback, deadline_ms):
        """Per-call fallback/deadline arguments, defaulted from the engine."""
        chain = as_fallback_chain(fallback) if fallback is not None else self.default_fallback
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        if deadline_ms is not None:
            deadline_ms = float(deadline_ms)
            if not deadline_ms > 0:
                raise InvalidParameterError(
                    f"deadline_ms must be positive, got {deadline_ms!r}"
                )
        return chain, deadline_ms

    @staticmethod
    def _ladder_stages(method: str, builder_kwargs: dict, chain: FallbackChain | None):
        """The full build ladder: the primary rung, then the chain's.

        The primary method name is validated here so a typo fails fast
        instead of being "recovered" by the fallback chain (config
        errors are not runtime faults).
        """
        if method != "auto" and method not in BUILDER_REGISTRY:
            raise InvalidParameterError(
                f"unknown synopsis method {method!r}; available: "
                f"{sorted(BUILDER_REGISTRY)} or 'auto'"
            )
        primary = FallbackStage(method=method, builder_kwargs=dict(builder_kwargs))
        return [primary] + (list(chain.stages) if chain is not None else [])

    def _observe_build_event(self, kind: str, *, method: str, rung: int) -> None:
        """Fold a ladder event from a (possibly worker-thread) build into
        the metrics; counter/stat mutation goes through the stats lock."""
        if kind == "timeout":
            self._bump("build_timeouts")
            self.metrics.counter("build_timeouts_total", method=method).inc()
        elif kind == "failure":
            self._bump("build_failures")
            self.metrics.counter("build_failures_total", method=method).inc()
        elif kind == "retry":
            self._bump("build_retries")
            self.metrics.counter("build_retries_total", method=method).inc()
        elif kind == "fallback":
            self._bump("fallback_builds")
            self.metrics.counter("fallback_builds_total", method=method).inc()

    def build_synopsis(
        self,
        table_name: str,
        column_name: str,
        *,
        method: str = "sap1",
        budget_words: int = 64,
        shards: int = 1,
        fallback=None,
        deadline_ms: float | None = None,
        **builder_kwargs,
    ) -> None:
        """Build COUNT and SUM synopses for one column.

        The word budget is split evenly between the count and sum
        frequency vectors (each aggregate needs its own synopsis; AVG is
        derived as SUM/COUNT).

        ``shards > 1`` builds a :class:`~repro.engine.sharding.ShardedSynopsis`
        per aggregate: the domain is cut into that many contiguous
        shards (clamped to the domain size), each shard gets its own
        synopsis built on a thread pool with a mass-proportional slice
        of the budget, and later appends dirty only the shards they
        touch (see :meth:`append_rows` / :meth:`refresh_stale`).

        ``deadline_ms`` bounds each build attempt: the DP inner loops
        poll the deadline cooperatively and raise
        :class:`~repro.errors.BuildTimeoutError` when it expires.
        ``fallback`` names the rungs tried *after* the primary
        ``method`` fails or times out (a :class:`FallbackChain`, a spec
        string like ``"a0 -> naive"``, or a list of methods).  Every
        rung gets the same word budget, so a fallback build is
        bit-identical to building that method directly — including its
        frozen :class:`~repro.core.builders.ErrorPrediction`.  With a
        ladder, exhaustion raises
        :class:`~repro.errors.BuildFailedError` carrying every rung's
        failure; without one, the primary's exception propagates
        unchanged.
        """
        table = self.table(table_name)
        chain, deadline_ms = self._resolve_build_policy(fallback, deadline_ms)
        stages = self._ladder_stages(method, builder_kwargs, chain)

        def _observe_shard(shard: int, seconds: float) -> None:
            self.metrics.histogram("shard_build_seconds").observe(seconds)

        with self.tracer.span(
            "build",
            table=table_name,
            column=column_name,
            method=method,
            budget_words=budget_words,
            shards=shards,
        ) as span:
            entry, outcome = _build_entry_resilient(
                table.column(column_name),
                stages,
                budget_words,
                predict_errors=self.predict_errors,
                shards=shards,
                parallel_shards=True,
                deadline_seconds=(
                    deadline_ms / 1000.0 if deadline_ms is not None else None
                ),
                clock=None,
                sleep=self._sleep,
                on_shard_built=_observe_shard if shards > 1 else None,
                on_event=self._observe_build_event,
                backoff_rng=self._backoff_rng,
                backoff_jitter=self._backoff_jitter,
            )
            span.set(
                resolved_method=entry.method,
                rung=outcome["rung"],
                attempts=outcome["attempts"],
            )
        elapsed = span.duration or 0.0
        key = (table_name, column_name)
        self._synopses[key] = entry
        self._stale.discard(key)
        self._dirty_shards.pop(key, None)
        self._shard_heat.pop(key, None)
        self._quarantined.discard(key)
        self._invalidate_predictions(key)
        self._observe_shard_tree(key, entry.count_estimator)
        self._record_build(
            key, entry.method, elapsed, requested=method, rung=outcome["rung"]
        )

    def _observe_shard_tree(self, key: tuple[str, str], estimator) -> None:
        """Export one sharded synopsis's dyadic-tree depth as a gauge."""
        if isinstance(estimator, ShardedSynopsis):
            self.metrics.gauge(
                "shard_tree_depth", table=key[0], column=key[1]
            ).set(estimator.tree_depth)

    def _record_build(
        self,
        key: tuple[str, str],
        method: str,
        seconds: float,
        *,
        requested: str | None = None,
        rung: int = 0,
    ) -> None:
        self._build_meta[key] = {
            "built_at": self.clock.now(),
            "build_seconds": seconds,
            "stale_since": None,
            "requested_method": requested if requested is not None else method,
            "served_method": method,
            "rung": rung,
            "build_id": next(self._build_seq),
        }
        self.metrics.counter("builds_total", method=method).inc()
        self.metrics.histogram("build_seconds").observe(seconds)

    def build_all_synopses(
        self,
        *,
        method: str = "sap1",
        total_budget_words: int = 512,
        parallel: bool = False,
        max_workers: int | None = None,
        shards: int = 1,
        fallback=None,
        deadline_ms: float | None = None,
        **builder_kwargs,
    ) -> None:
        """Build synopses for every column of every table, splitting a
        global word budget evenly across columns (a simple catalog
        policy; callers needing weighted budgets use
        :meth:`build_synopsis` per column).

        ``parallel=True`` runs the per-column builds in a thread pool —
        they are independent of each other and the heavy numpy kernels
        release the GIL, so a multi-column catalog builds concurrently.
        The resulting catalog is identical to a serial build.

        Failures are isolated per column in both paths: one column's
        builder blowing up (after its ``fallback`` ladder, if any, is
        exhausted) never discards another column's completed synopsis.
        Every successful entry is installed first, then a single
        :class:`~repro.errors.BuildFailedError` is raised whose
        ``failures`` dict maps ``"table.column"`` to that column's
        exception.
        """
        columns = [
            (table.name, column)
            for table in self._tables.values()
            for column in table.column_names()
        ]
        if not columns:
            return
        chain, deadline_ms = self._resolve_build_policy(fallback, deadline_ms)
        stages = self._ladder_stages(method, builder_kwargs, chain)
        per_column = max(total_budget_words // len(columns), 4)
        failures: dict[str, Exception] = {}
        with self.tracer.span(
            "build_all",
            columns=len(columns),
            method=method,
            parallel=bool(parallel and len(columns) > 1),
        ) as span:
            if parallel and len(columns) > 1:
                from concurrent.futures import ThreadPoolExecutor

                with ThreadPoolExecutor(max_workers=max_workers) as pool:
                    futures = {
                        key: pool.submit(
                            _timed_build_column_entry,
                            self._tables[key[0]].column(key[1]),
                            stages,
                            per_column,
                            self.predict_errors,
                            shards,
                            deadline_ms / 1000.0 if deadline_ms is not None else None,
                            None,
                            self._sleep,
                            self._observe_build_event,
                            self._backoff_rng,
                            self._backoff_jitter,
                        )
                        for key in columns
                    }
                for key, future in futures.items():
                    try:
                        entry, seconds, outcome = future.result()
                    except Exception as error:  # noqa: BLE001 — isolate per column
                        failures[f"{key[0]}.{key[1]}"] = error
                        continue
                    self._synopses[key] = entry
                    self._stale.discard(key)
                    self._dirty_shards.pop(key, None)
                    self._quarantined.discard(key)
                    self._invalidate_predictions(key)
                    self._record_build(
                        key,
                        entry.method,
                        seconds,
                        requested=method,
                        rung=outcome["rung"],
                    )
            else:
                for table_name, column_name in columns:
                    try:
                        self.build_synopsis(
                            table_name,
                            column_name,
                            method=method,
                            budget_words=per_column,
                            shards=shards,
                            fallback=chain,
                            deadline_ms=deadline_ms,
                            **builder_kwargs,
                        )
                    except Exception as error:  # noqa: BLE001 — isolate per column
                        failures[f"{table_name}.{column_name}"] = error
            span.set(failed_columns=len(failures))
        if failures:
            summary = "; ".join(
                f"{name}: {type(error).__name__}: {error}"
                for name, error in sorted(failures.items())
            )
            raise BuildFailedError(
                f"{len(failures)}/{len(columns)} column build(s) failed ({summary})",
                failures=failures,
            )

    def synopsis_catalog(self) -> list[dict]:
        """One row per built synopsis: location, method, true storage."""
        return [
            {
                "table": table,
                "column": column,
                "method": entry.method,
                "count_words": entry.count_estimator.storage_words(),
                "sum_words": entry.sum_estimator.storage_words(),
                "domain_size": entry.statistics.domain_size,
                "shards": entry.shards,
            }
            for (table, column), entry in sorted(self._synopses.items())
        ]

    # ------------------------------------------------------------------
    # Data evolution
    # ------------------------------------------------------------------
    def append_rows(self, table_name: str, rows: dict) -> None:
        """Append rows to a table; *all* its synopses become *stale*.

        Staleness covers the 1-D, joint, and grouped synopses of the
        table alike — each summarises the pre-append data.  Stale
        synopses still answer; the execute paths take an ``on_stale``
        policy and :meth:`refresh_stale` rebuilds them with their
        original method and budget.

        Sharded synopses additionally record *which* shards the new
        values land in: only those shards are dirty, and
        :meth:`refresh_stale` rebuilds just them.  Values outside the
        synopsis's domain (or new distinct values on a rank-layout
        column) change the domain itself, so every shard is dirtied.
        """
        table = self.table(table_name)
        self._tables[table_name] = table.with_appended(rows)
        self._bump_table_version(table_name)
        for key in [key for key in self._fallback_models if key[0] == table_name]:
            del self._fallback_models[key]
        now = self.clock.now()
        self.metrics.counter("appends_total").inc()
        for key, entry in self._synopses.items():
            if key[0] == table_name:
                self._stale.add(key)
                meta = self._build_meta.get(key)
                if meta is not None and meta.get("stale_since") is None:
                    meta["stale_since"] = now
                if isinstance(entry.count_estimator, ShardedSynopsis):
                    current = self._dirty_shards.get(key, set())
                    touched = entry.count_estimator.touched_shards(
                        entry.statistics.values_axis, rows[key[1]]
                    )
                    if current is not None:
                        self._dirty_shards[key] = (
                            None if touched is None else current | touched
                        )
                    heat = self._shard_heat.setdefault(key, {})
                    hot = (
                        range(entry.count_estimator.num_shards)
                        if touched is None
                        else touched
                    )
                    for shard in hot:
                        heat[shard] = heat.get(shard, 0) + 1
        for key in self._joint_synopses:
            if key[0] == table_name:
                self._stale_joint.add(key)
        for key in self._grouped_synopses:
            if key[0] == table_name:
                self._stale_grouped.add(key)

    def stale_synopses(self) -> list[tuple[str, str]]:
        """The (table, column) pairs whose 1-D synopses predate appends.

        Joint and grouped staleness is reported by
        :meth:`stale_joint_synopses` / :meth:`stale_grouped_synopses`.
        """
        return sorted(self._stale)

    def dirty_shards(self) -> dict[str, list[int] | None]:
        """Dirty shard ids per stale *sharded* synopsis.

        Keys are ``"table.column"``; ``None`` means the appended values
        changed the domain itself, so every shard must rebuild.  Stale
        monolithic synopses do not appear here.

        Safe against concurrent appends/refreshes: the mapping is
        snapshotted atomically (a C-level copy under the GIL) before the
        Python-level loop walks it.
        """
        return {
            f"{key[0]}.{key[1]}": (None if shards is None else sorted(shards))
            for key, shards in list(self._dirty_shards.items())
        }

    def shard_heat(self) -> dict[str, list[int]]:
        """Per-shard append-touch counters for every sharded synopsis.

        Keys are ``"table.column"``; entry ``i`` counts how many
        :meth:`append_rows` calls landed values in shard ``i`` since its
        last full build or compaction.  The compaction policy treats
        low-heat shards as cold and merges runs of them (see
        :meth:`compact_shards`).
        """
        out: dict[str, list[int]] = {}
        # Snapshot before the Python-level walk: compactions swap
        # entries concurrently with serve-plane reads.
        for key, entry in list(self._synopses.items()):
            if isinstance(entry.count_estimator, ShardedSynopsis):
                heat = self._shard_heat.get(key, {})
                out[f"{key[0]}.{key[1]}"] = [
                    heat.get(shard, 0)
                    for shard in range(entry.count_estimator.num_shards)
                ]
        return out

    def compact_shards(
        self,
        table_name: str,
        column_name: str,
        *,
        policy: CompactionPolicy | None = None,
        runs=None,
    ) -> dict | None:
        """Merge cold shard runs of one sharded synopsis in place.

        ``runs`` gives explicit inclusive shard-id runs to merge;
        otherwise :func:`repro.engine.compaction.plan_runs` selects cold
        runs from the heat counters under ``policy`` (default
        :class:`~repro.engine.compaction.CompactionPolicy`).  Both
        aggregates' synopses are rebuilt over the merged slices of the
        entry's *frozen* frequency vectors — compaction re-summarises
        the same snapshot the synopsis already answers for, so it
        neither loses nor gains staleness — with pooled word budgets
        (:func:`repro.core.builders.merge_shard_budgets`) and swapped in
        copy-on-write.  Dirty-shard ids are remapped onto the post-merge
        geometry, ``stale_since`` is preserved for entries that were
        already stale, and :meth:`_record_build` bumps the entry's build
        id so the serving tier's answer-cache tokens stop validating:
        no answer computed against the pre-compaction synopsis can ever
        be served as fresh afterwards.

        Returns a report dict, or ``None`` when no runs qualify.
        """
        key = (table_name, column_name)
        if key not in self._synopses:
            raise InvalidQueryError(
                f"no synopses built for {table_name}.{column_name}"
            )
        entry = self._synopses[key]
        if not isinstance(entry.count_estimator, ShardedSynopsis):
            raise InvalidParameterError(
                f"{table_name}.{column_name} is not sharded; nothing to compact"
            )
        synopsis = entry.count_estimator
        if runs is None:
            policy = policy if policy is not None else CompactionPolicy()
            heat = self._shard_heat.get(key, {})
            runs = plan_runs(
                [heat.get(shard, 0) for shard in range(synopsis.num_shards)],
                policy,
            )
        runs = [(int(first), int(last)) for first, last in runs]
        if not runs:
            return None
        merged = sum(last - first for first, last in runs)

        def _observe_shard(shard: int, seconds: float) -> None:
            self.metrics.histogram("shard_build_seconds").observe(seconds)

        with self.tracer.span(
            "compact",
            table=table_name,
            column=column_name,
            runs=len(runs),
            shards_before=synopsis.num_shards,
        ) as span:
            count_est = synopsis.with_compacted_runs(
                runs,
                entry.statistics.count_frequencies,
                predict=self.predict_errors,
                on_shard_built=_observe_shard,
                **entry.builder_kwargs,
            )
            sum_est = entry.sum_estimator.with_compacted_runs(
                runs,
                entry.statistics.sum_frequencies,
                predict=self.predict_errors,
                on_shard_built=_observe_shard,
                **entry.builder_kwargs,
            )
            span.set(
                shards_after=count_est.num_shards,
                generation=count_est.compaction_generation,
            )
        predicted = None
        if self.predict_errors:
            predicted = {
                "count": aggregate_shard_predictions(
                    count_est.shard_predictions, np.diff(count_est.starts)
                ),
                "sum": aggregate_shard_predictions(
                    sum_est.shard_predictions, np.diff(sum_est.starts)
                ),
            }
        self._synopses[key] = replace(
            entry,
            count_estimator=count_est,
            sum_estimator=sum_est,
            predicted=predicted,
            shards=count_est.num_shards,
        )
        # Remap surviving dirty-shard ids onto the post-merge geometry
        # (a dirty shard inside a merged run dirties the merged shard).
        if key in self._dirty_shards and self._dirty_shards[key] is not None:
            old_starts = synopsis.starts
            self._dirty_shards[key] = {
                int(
                    np.searchsorted(
                        count_est.starts, old_starts[shard], side="right"
                    )
                )
                - 1
                for shard in self._dirty_shards[key]
            }
        self._shard_heat.pop(key, None)
        self._invalidate_predictions(key)
        self._bump("compactions")
        self._bump("compacted_shards", merged)
        self.metrics.counter("compaction_runs_total").inc()
        self.metrics.counter("compaction_shards_merged_total").inc(merged)
        self._observe_shard_tree(key, count_est)
        stale_since = (self._build_meta.get(key) or {}).get("stale_since")
        self._record_build(key, entry.method, span.duration or 0.0)
        if key in self._stale:
            # Compaction re-summarises the frozen snapshot: a stale
            # entry stays stale, with its original stale_since intact.
            self._build_meta[key]["stale_since"] = stale_since
        return {
            "table": table_name,
            "column": column_name,
            "runs": [[first, last] for first, last in runs],
            "shards_before": synopsis.num_shards,
            "shards_after": count_est.num_shards,
            "shards_merged": merged,
            "generation": count_est.compaction_generation,
        }

    def compact_all_shards(
        self, *, policy: CompactionPolicy | None = None
    ) -> list[dict]:
        """Run policy-driven compaction over every sharded synopsis.

        The sweep the :class:`~repro.engine.compaction.BackgroundCompactor`
        loops on.  Returns the per-column reports of the columns that
        actually compacted (columns with no qualifying cold runs are
        skipped silently).
        """
        policy = policy if policy is not None else CompactionPolicy()
        reports: list[dict] = []
        for key in sorted(
            key
            for key, entry in self._synopses.items()
            if isinstance(entry.count_estimator, ShardedSynopsis)
        ):
            report = self.compact_shards(key[0], key[1], policy=policy)
            if report is not None:
                reports.append(report)
        return reports

    def optimize_budgets(
        self,
        *,
        min_samples: int = 32,
        max_shard_rebuilds: int = 8,
        min_shift_fraction: float = 0.05,
        reallocate_columns: bool = True,
        max_column_shift: float = 0.25,
        min_marginal_ratio: float = 1.5,
        column_floor_words: int = 16,
        advisor_candidates=None,
        advisor_sample_queries: int = 512,
    ) -> dict:
        """Reallocate budgets toward the observed workload (one sweep).

        Closes the audit loop: the ranges sampled into
        :attr:`observed_workload` by ``audit_rate`` queries drive two
        reallocation levels.

        *Across shards* — every sharded column with at least
        ``min_samples`` observed queries per aggregate recomputes its
        per-shard budget split with
        :func:`~repro.core.builders.split_budget_by_workload` and
        rebuilds only its worst-misallocated shards (at most
        ``max_shard_rebuilds`` per aggregate; shards whose budget would
        shift by less than ``min_shift_fraction`` of its current value
        are left alone).  Rebuilds run over the entry's frozen frequency
        snapshot — like :meth:`compact_shards`, staleness is neither
        gained nor lost — and the column's total budget is conserved
        exactly.

        *Across columns* — with ``reallocate_columns=True``, whole-column
        budgets move toward the columns with the highest observed
        squared-error mass per word, but only when the best/worst
        marginal ratio exceeds ``min_marginal_ratio``; moves are capped
        at ``max_column_shift`` of each budget and floored at
        ``column_floor_words``, the global total is conserved, and
        changed columns rebuild fully from the live table with their
        method re-advised on the observed workload
        (:mod:`repro.engine.advisor`, with ``workload-a0`` as a
        candidate on DP-sized domains).

        Returns a report dict (per-column shard reallocations, column
        moves, total shards rebuilt).  Metrics:
        ``optimizer_reallocations_total``, ``optimizer_rebuilds_total``,
        and per-key ``optimizer_observed_sse_per_query`` /
        ``optimizer_predicted_sse_per_query`` gauges.
        """
        return run_optimization(
            self,
            min_samples=min_samples,
            max_shard_rebuilds=max_shard_rebuilds,
            min_shift_fraction=min_shift_fraction,
            reallocate_columns=reallocate_columns,
            max_column_shift=max_column_shift,
            min_marginal_ratio=min_marginal_ratio,
            column_floor_words=column_floor_words,
            advisor_candidates=advisor_candidates,
            advisor_sample_queries=advisor_sample_queries,
        )

    def save_observed_workload(self, path) -> None:
        """Write the observed-workload recorder state to a JSON sidecar.

        The catalog format itself is unchanged (no version bump): the
        recorder is advisory state, so it travels in its own file and a
        missing/corrupt sidecar never blocks a catalog load.
        """
        with open(path, "w") as handle:
            json.dump(self.observed_workload.state_dict(), handle, indent=2)

    def load_observed_workload(self, path) -> None:
        """Restore the observed-workload recorder from its JSON sidecar."""
        with open(path) as handle:
            self.observed_workload.load_state_dict(json.load(handle))

    def _refresh_entry(
        self,
        key: tuple[str, str],
        *,
        fallback=None,
        deadline_ms: float | None = None,
    ) -> None:
        """Bring one stale 1-D synopsis up to date.

        Sharded entries whose appends stayed inside the existing domain
        rebuild *only their dirty shards*: the column statistics are
        recomputed (a cheap vectorised scan), the untouched shards keep
        their estimators and frozen per-shard error predictions by
        reference, and the entry-level prediction is re-aggregated.
        Everything else — monolithic entries, domain growth, rank-layout
        columns that gained distinct values — falls back to a full
        rebuild with the recorded configuration.
        """
        entry = self._synopses[key]
        dirty = self._dirty_shards.get(key)
        if isinstance(entry.count_estimator, ShardedSynopsis) and dirty is not None:
            new_stats = ColumnStatistics.from_values(self.table(key[0]).column(key[1]))
            if np.array_equal(new_stats.values_axis, entry.statistics.values_axis):
                deadline = None
                if deadline_ms is not None:
                    deadline = Deadline(float(deadline_ms) / 1000.0)
                with deadline_scope(deadline):
                    self._refresh_dirty_shards(key, entry, new_stats, sorted(dirty))
                return
        self.build_synopsis(
            key[0],
            key[1],
            method=entry.method,
            budget_words=entry.budget_words,
            shards=entry.shards,
            fallback=fallback,
            deadline_ms=deadline_ms,
            **entry.builder_kwargs,
        )

    def _refresh_dirty_shards(
        self,
        key: tuple[str, str],
        entry: _ColumnSynopses,
        new_stats: ColumnStatistics,
        dirty: list[int],
    ) -> None:
        """Incrementally rebuild one sharded entry's dirty shards."""

        def _observe_shard(shard: int, seconds: float) -> None:
            self.metrics.histogram("shard_build_seconds").observe(seconds)

        with self.tracer.span(
            "shard_refresh",
            table=key[0],
            column=key[1],
            dirty=len(dirty),
            shards=entry.shards,
        ) as span:
            count_est = entry.count_estimator.with_rebuilt_shards(
                dirty,
                new_stats.count_frequencies,
                predict=self.predict_errors,
                on_shard_built=_observe_shard,
                **entry.builder_kwargs,
            )
            sum_est = entry.sum_estimator.with_rebuilt_shards(
                dirty,
                new_stats.sum_frequencies,
                predict=self.predict_errors,
                on_shard_built=_observe_shard,
                **entry.builder_kwargs,
            )
            # Each rebuilt shard rewrites its leaf + ancestors in both
            # aggregates' dyadic trees: O(log S) nodes per shard instead
            # of the O(S) prefix recompute the flat path pays.
            refreshed_nodes = len(dirty) * (
                count_est.tree.nodes_per_update + sum_est.tree.nodes_per_update
            )
            span.set(
                tree_nodes_refreshed=refreshed_nodes,
                tree_depth=count_est.tree_depth,
            )
        self.metrics.counter("shard_tree_node_refreshes_total").inc(refreshed_nodes)
        self._observe_shard_tree(key, count_est)
        predicted = None
        if self.predict_errors:
            predicted = {
                "count": aggregate_shard_predictions(
                    count_est.shard_predictions, np.diff(count_est.starts)
                ),
                "sum": aggregate_shard_predictions(
                    sum_est.shard_predictions, np.diff(sum_est.starts)
                ),
            }
        self._synopses[key] = replace(
            entry,
            statistics=new_stats,
            count_estimator=count_est,
            sum_estimator=sum_est,
            predicted=predicted,
        )
        self._stale.discard(key)
        self._dirty_shards.pop(key, None)
        self._invalidate_predictions(key)
        self._bump("dirty_shards_rebuilt", len(dirty))
        self.metrics.counter("dirty_shards_rebuilt_total").inc(len(dirty))
        self.metrics.counter("shard_refreshes_total").inc()
        self._record_build(key, entry.method, span.duration or 0.0)

    def _breaker(self, method: str) -> CircuitBreaker:
        """The (lazily created) circuit breaker guarding one builder method."""
        breaker = self._breakers.get(method)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self._breaker_threshold,
                cooldown_seconds=self._breaker_cooldown_seconds,
                clock=self.clock,
            )
            self._breakers[method] = breaker
        return breaker

    def breaker_states(self) -> dict[str, dict]:
        """Per-builder-method circuit-breaker snapshots (JSON-ready)."""
        return {
            method: breaker.snapshot()
            for method, breaker in sorted(self._breakers.items())
        }

    def refresh_stale(
        self, *, fallback=None, deadline_ms: float | None = None
    ) -> int:
        """Rebuild every stale synopsis with its recorded configuration.

        Covers 1-D, joint, and grouped synopses; returns the number of
        synopses rebuilt.  Sharded 1-D entries refresh incrementally —
        only their dirty shards rebuild (see :meth:`_refresh_entry`).

        Counter updates are transactional per synopsis: ``rebuilds`` and
        ``rebuilds_total`` advance only after each rebuild succeeds, so
        a builder exception part-way through leaves the counters equal
        to the number of synopses actually rebuilt and the failed
        synopsis still marked stale.

        Each 1-D entry's recorded builder method is guarded by a
        circuit breaker: repeated rebuild failures (after the optional
        ``fallback`` ladder is exhausted) open the breaker and later
        refreshes *skip* that method's entries — without raising — until
        the cool-down lapses, so the entries keep serving their stale
        synopses instead of hammering a broken builder.  The first
        failing rebuild still raises (the transactional contract above
        is unchanged); only an already-open breaker turns failures into
        skips.  ``fallback`` / ``deadline_ms`` behave as in
        :meth:`build_synopsis`, with each entry's recorded method as the
        primary rung.
        """
        rebuilt = 0
        skipped = 0
        with self.tracer.span("rebuild", trigger="refresh_stale") as span:
            try:
                for key in sorted(self._stale):
                    method = self._synopses[key].method
                    breaker = self._breaker(method)
                    if not breaker.allow():
                        skipped += 1
                        self._bump("breaker_skips")
                        self.metrics.counter(
                            "breaker_skips_total", method=method
                        ).inc()
                        continue
                    probing = breaker.state != BREAKER_CLOSED
                    try:
                        self._refresh_entry(
                            key, fallback=fallback, deadline_ms=deadline_ms
                        )
                    except Exception:
                        if breaker.record_failure():
                            self.metrics.counter(
                                "breaker_opened_total", method=method
                            ).inc()
                        raise
                    breaker.record_success()
                    if probing:
                        self.metrics.counter(
                            "breaker_closed_total", method=method
                        ).inc()
                    rebuilt += 1
                    self._bump("rebuilds")
                    self.metrics.counter("rebuilds_total").inc()
                for key in sorted(self._stale_joint):
                    entry = self._joint_synopses[key]
                    self.build_joint_synopsis(
                        key[0],
                        key[1],
                        key[2],
                        method=entry.method,
                        budget_words=entry.budget_words,
                    )
                    rebuilt += 1
                    self._bump("rebuilds")
                    self.metrics.counter("rebuilds_total").inc()
                for key in sorted(self._stale_grouped):
                    config = self._grouped_configs[key]
                    self.build_grouped_synopsis(key[0], key[1], key[2], **config)
                    rebuilt += 1
                    self._bump("rebuilds")
                    self.metrics.counter("rebuilds_total").inc()
            finally:
                span.set(rebuilt=rebuilt, breaker_skipped=skipped)
        return rebuilt

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute_exact(self, query: AggregateQuery) -> float:
        """Ground truth by scanning the base table."""
        table = self.table(query.table)
        values = table.column(query.column)
        mask = np.ones(values.shape, dtype=bool)
        if query.low is not None:
            mask &= values >= query.low
        if query.high is not None:
            mask &= values <= query.high
        if query.aggregate == "count":
            return float(mask.sum())
        selected = values[mask]
        if query.aggregate == "sum":
            return float(selected.sum())
        return float(selected.mean()) if selected.size else 0.0

    def _resolve_synopsis(
        self, table_name: str, column_name: str, on_stale: str
    ) -> _ColumnSynopses:
        """Look up a 1-D synopsis, applying the staleness policy.

        Shared by the scalar and batch execute paths; ``on_stale`` must
        already be validated by the caller.
        """
        key = (table_name, column_name)
        if key not in self._synopses:
            raise InvalidQueryError(
                f"no synopsis built for {table_name}.{column_name}; "
                "call build_synopsis first"
            )
        if key in self._stale:
            if on_stale == "error":
                raise InvalidQueryError(
                    f"synopsis for {table_name}.{column_name} is stale "
                    "(rows appended since build); refresh_stale() or pass "
                    "on_stale='rebuild'"
                )
            if on_stale == "rebuild":
                self._refresh_entry(key)
                self._bump("rebuilds")
            else:
                self._bump("stale_served")
        return self._synopses[key]

    def _resolve_with_policy(
        self, table_name: str, column_name: str, policy: DegradationPolicy
    ) -> tuple[_ColumnSynopses | None, str]:
        """Descend the serving ladder under a degradation policy.

        Returns ``(entry, level)``; ``entry`` is ``None`` on the
        synopsis-free rungs (``"fallback"`` / ``"exact"``).  Unknown
        tables and columns still raise — they are query errors, not
        faults to degrade around.
        """
        key = (table_name, column_name)
        entry = self._synopses.get(key)
        if entry is not None and key not in self._stale:
            return entry, "fresh"
        # Validate the target before degrading.
        self.table(table_name).column(column_name)
        if entry is not None and policy.allow_stale:
            self._bump("stale_served")
            return entry, "stale"
        if policy.allow_fallback:
            return None, "fallback"
        if policy.allow_progressive and entry is not None:
            # Anytime rung: serve the (possibly stale) synopsis as an
            # interval answer instead of a bare point estimate; the
            # serving tier's Refiner tightens it in the background.
            self._bump("progressive_served")
            return entry, "progressive"
        if policy.allow_exact:
            return None, "exact"
        if entry is None:
            raise InvalidQueryError(
                f"no synopsis built for {table_name}.{column_name} and the "
                "degradation policy admits no substitute rung"
            )
        raise InvalidQueryError(
            f"synopsis for {table_name}.{column_name} is stale and the "
            "degradation policy admits no substitute rung"
        )

    def _record_degraded_serve(self, level: str, count: int = 1) -> None:
        """Account one (or a batch of) answers served below ``fresh``."""
        if level == "fresh":
            return
        self._bump("degraded_serves", count)
        self.metrics.counter("degraded_serves_total", level=level).inc(count)

    def _fallback_model(self, table_name: str, column_name: str) -> dict:
        """Cached 4-word summary (lo, hi, rows, total) of one column."""
        key = (table_name, column_name)
        model = self._fallback_models.get(key)
        if model is None:
            values = np.asarray(
                self.table(table_name).column(column_name), dtype=np.float64
            )
            if values.size:
                model = {
                    "lo": float(values.min()),
                    "hi": float(values.max()),
                    "rows": float(values.size),
                    "total": float(values.sum()),
                }
            else:
                model = {"lo": 0.0, "hi": 0.0, "rows": 0.0, "total": 0.0}
            self._fallback_models[key] = model
        return model

    def _fallback_estimate_many(
        self,
        table_name: str,
        column_name: str,
        aggregate: str,
        lows: np.ndarray,
        highs: np.ndarray,
    ) -> np.ndarray:
        """Uniform-model estimates — the ``"fallback"`` serving rung.

        Assumes values spread uniformly over ``[lo, hi]``: a range
        predicate selects the overlapping fraction of rows (and of the
        total, for SUM).  Crude, but O(1) per query from four cached
        words — the rung between a lost synopsis and a full scan.
        ``lows`` / ``highs`` use ``-inf`` / ``+inf`` for open ends.
        """
        model = self._fallback_model(table_name, column_name)
        lo, hi = model["lo"], model["hi"]
        rows, total = model["rows"], model["total"]
        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)
        if rows <= 0:
            return np.zeros(lows.shape)
        span = hi - lo
        if span > 0:
            clip_lo = np.maximum(lows, lo)
            clip_hi = np.minimum(highs, hi)
            frac = np.clip((clip_hi - clip_lo) / span, 0.0, 1.0)
        else:
            # Single-valued column: all mass at lo.
            frac = ((lows <= lo) & (highs >= lo)).astype(np.float64)
        if aggregate == "count":
            return rows * frac
        if aggregate == "sum":
            return total * frac
        return np.where(frac > 0.0, total / rows, 0.0)

    def stats(self) -> dict:
        """An immutable snapshot of the engine's execution counters.

        Keys: scalar/batch/joint/grouped query counts, ``batches``,
        ``exact_scans``, ``stale_served``, ``rebuilds``,
        ``audited_queries``, ``drift_flags``, per-column
        ``synopsis_hits``, the last batch's wall time and queries/sec
        (``last_batch_seconds`` / ``last_batch_qps``), cumulative
        ``total_batch_seconds``, and the current stale-set sizes.

        The snapshot is a deep copy — mutating it (or the nested
        ``synopsis_hits`` dict) never touches the live counters — and
        :meth:`reset_stats` zeroes the live counters between windows.
        Both hold the stats lock, so snapshots taken while other
        threads are executing queries are internally consistent and
        never observe a dict mid-mutation.
        """
        with self._stats_lock:
            snapshot = copy.deepcopy(self._stats)
        snapshot["total_queries"] = (
            snapshot["queries"]
            + snapshot["batch_queries"]
            + snapshot["joint_queries"]
            + snapshot["grouped_queries"]
        )
        snapshot["stale_1d"] = len(self._stale)
        snapshot["stale_joint"] = len(self._stale_joint)
        snapshot["stale_grouped"] = len(self._stale_grouped)
        return snapshot

    def reset_stats(self) -> dict:
        """Zero the execution counters; returns the final pre-reset snapshot.

        Only the counters reset — synopses, staleness, metrics
        instruments, traces, and audit windows are untouched (they have
        their own lifecycles: ``metrics.reset()``, ``tracer.clear()``,
        ``auditor.clear()``).
        """
        with self._stats_lock:
            snapshot = self.stats()
            self._stats = self._fresh_stats()
        return snapshot

    def execute(
        self,
        query: AggregateQuery,
        *,
        with_exact: bool = False,
        with_bound: bool = False,
        on_stale: str = "serve",
        audit_rate: float = 0.0,
        degradation=None,
    ) -> QueryResult:
        """Answer from the synopses; optionally attach the exact answer.

        ``on_stale`` controls behaviour when rows were appended after
        the synopsis was built: ``"serve"`` answers from the stale
        synopsis (default — estimates drift with the appended volume),
        ``"rebuild"`` refreshes it first, ``"error"`` refuses.

        ``degradation`` switches to the policy-driven serving ladder
        instead of ``on_stale``: pass a
        :class:`~repro.engine.resilience.DegradationPolicy` (or a
        preset name — ``"serve_anything"``, ``"estimates_only"``,
        ``"strict"``) and the answer resolves fresh synopsis -> stale
        synopsis -> fallback estimator -> exact scan, stopping at the
        first admitted rung.  Under the default-permissive policies a
        query on a registered column never raises; every result carries
        the level that produced it in ``result.degradation``.

        ``audit_rate`` samples that fraction of queries for online error
        auditing: the exact answer is computed alongside (from the
        build-time snapshot when the synopsis is fresh, a live scan when
        stale) and the observed error feeds :meth:`error_report`.
        Auditing never changes the returned result.
        """
        if on_stale not in ("serve", "rebuild", "error"):
            raise InvalidParameterError(
                f"on_stale must be serve, rebuild, or error, got {on_stale!r}"
            )
        policy = as_degradation_policy(degradation)
        audit_rate = self._check_audit_rate(audit_rate)
        with self.tracer.span(
            "query",
            table=query.table,
            column=query.column,
            aggregate=query.aggregate,
        ) as span:
            if policy is None:
                entry = self._resolve_synopsis(query.table, query.column, on_stale)
                level = (
                    "stale" if (query.table, query.column) in self._stale else "fresh"
                )
            else:
                entry, level = self._resolve_with_policy(
                    query.table, query.column, policy
                )
            span.set(degradation=level)
            self._bump("queries")
            self._bump_hits(f"{query.table}.{query.column}")
            self._record_degraded_serve(level)
            if level == "progressive":
                # Late import: serving depends on engine, not vice versa.
                from repro.serving.progressive import initial_answer

                answer = initial_answer(self, query)
                exact = None
                if with_exact:
                    exact = self.execute_exact(query)
                    self._bump("exact_scans")
                span.set(stage=answer.stage)
                return answer.as_result(exact=exact)
            if entry is None:
                return self._execute_degraded(query, level, with_exact=with_exact)
            if with_exact:
                self._bump("exact_scans")
            clipped = entry.statistics.clip_range(query.low, query.high)
            if clipped is not None and isinstance(
                entry.count_estimator, ShardedSynopsis
            ):
                self._record_sharded_queries(
                    entry,
                    np.asarray([clipped[0]], dtype=np.int64),
                    np.asarray([clipped[1]], dtype=np.int64),
                )
            if clipped is None:
                estimate = 0.0
            else:
                low, high = clipped
                if query.aggregate == "count":
                    estimate = entry.count_estimator.estimate(low, high)
                elif query.aggregate == "sum":
                    estimate = entry.sum_estimator.estimate(low, high)
                else:  # avg
                    count = entry.count_estimator.estimate(low, high)
                    total = entry.sum_estimator.estimate(low, high)
                    estimate = total / count if count > 0 else 0.0
            exact = self.execute_exact(query) if with_exact else None
            bound = None
            if with_bound and clipped is not None and query.aggregate in ("count", "sum"):
                envelope, estimator = entry.envelope_for(query.aggregate)
                if envelope is not None:
                    low, high = clipped
                    bound = float(
                        envelope.bound(
                            estimator, np.asarray([low]), np.asarray([high])
                        )[0]
                    )
            if audit_rate > 0.0 and (
                audit_rate >= 1.0 or float(self._audit_rng.random()) < audit_rate
            ):
                self._audit_scalar(query, entry, clipped, float(estimate), exact)
        return QueryResult(
            query=query,
            estimate=float(estimate),
            exact=exact,
            synopsis_name=entry.count_estimator.name,
            synopsis_words=entry.count_estimator.storage_words()
            + entry.sum_estimator.storage_words(),
            guaranteed_bound=bound,
            degradation=level,
        )

    def _execute_degraded(
        self, query: AggregateQuery, level: str, *, with_exact: bool
    ) -> QueryResult:
        """Answer one query from a synopsis-free ladder rung."""
        if level == "exact":
            estimate = self.execute_exact(query)
            self._bump("exact_scans")
            exact = estimate if with_exact else None
            return QueryResult(
                query=query,
                estimate=estimate,
                exact=exact,
                synopsis_name="exact-scan",
                synopsis_words=0,
                degradation=level,
            )
        low = query.low if query.low is not None else -np.inf
        high = query.high if query.high is not None else np.inf
        estimate = float(
            self._fallback_estimate_many(
                query.table,
                query.column,
                query.aggregate,
                np.asarray([low]),
                np.asarray([high]),
            )[0]
        )
        exact = None
        if with_exact:
            exact = self.execute_exact(query)
            self._bump("exact_scans")
        return QueryResult(
            query=query,
            estimate=estimate,
            exact=exact,
            synopsis_name="fallback-uniform",
            synopsis_words=4,
            degradation=level,
        )

    # ------------------------------------------------------------------
    # Observability: auditing, error reports, exports
    # ------------------------------------------------------------------
    def _record_sharded_queries(
        self, entry: _ColumnSynopses, low_idx: np.ndarray, high_idx: np.ndarray
    ) -> None:
        """Boundary-shard hit-rate accounting for clipped sharded queries.

        ``boundary_shard_queries_total / sharded_queries_total`` is the
        boundary-shard hit rate (queries that paid synopsis error in at
        least one partial shard); shard-aligned queries are answered
        entirely from exact totals and only advance the denominator.
        """
        boundary_queries, partials = entry.count_estimator.boundary_stats(
            low_idx, high_idx
        )
        self.metrics.counter("sharded_queries_total").inc(int(low_idx.size))
        if boundary_queries:
            self.metrics.counter("boundary_shard_queries_total").inc(boundary_queries)
        if partials:
            self.metrics.counter("boundary_shard_partials_total").inc(partials)

    def _record_observed(
        self,
        table_name: str,
        column_name: str,
        aggregate: str,
        low_idx: np.ndarray,
        high_idx: np.ndarray,
    ) -> None:
        """Feed audited index-space ranges into the workload recorder.

        AVG queries exercise *both* the count and sum estimators, so
        they record under both aggregates; the optimiser consumes the
        recorder keyed the same way the synopses are stored.
        """
        targets = ("count", "sum") if aggregate == "avg" else (aggregate,)
        for target in targets:
            self.observed_workload.record_many(
                (table_name, column_name, target), low_idx, high_idx
            )

    def _audit_scalar(
        self,
        query: AggregateQuery,
        entry: _ColumnSynopses,
        clipped: tuple[int, int] | None,
        estimate: float,
        exact: float | None,
    ) -> None:
        """Record one audited query into the error windows."""
        if clipped is not None:
            self._record_observed(
                query.table,
                query.column,
                query.aggregate,
                np.asarray([clipped[0]], dtype=np.int64),
                np.asarray([clipped[1]], dtype=np.int64),
            )
        if exact is None:
            if (query.table, query.column) in self._stale:
                exact = self.execute_exact(query)
            elif clipped is None:
                exact = 0.0
            else:
                exact = entry.statistics.snapshot_aggregate(
                    query.aggregate, clipped[0], clipped[1]
                )
        absolute_error = self.auditor.record(
            (query.table, query.column, query.aggregate), estimate, exact
        )
        self._bump("audited_queries")
        self.metrics.counter("audited_total", aggregate=query.aggregate).inc()
        self.metrics.histogram("audit_abs_error", buckets=ERROR_BUCKETS).observe(
            absolute_error
        )

    def _audit_batch_group(
        self,
        key: tuple[str, str, str],
        entry: _ColumnSynopses,
        estimates: np.ndarray,
        exacts: np.ndarray | None,
        lows: np.ndarray,
        highs: np.ndarray,
        audit_rate: float,
    ) -> None:
        """Audit a sampled subset of one homogeneous batch group."""
        table_name, column_name, aggregate = key
        count = int(estimates.size)
        if audit_rate >= 1.0:
            mask = np.ones(count, dtype=bool)
        else:
            mask = self._audit_rng.random(count) < audit_rate
        audited = int(mask.sum())
        if not audited:
            return
        obs_low, obs_high, obs_valid = entry.statistics.clip_range_many(
            lows[mask], highs[mask]
        )
        if obs_valid.any():
            self._record_observed(
                table_name,
                column_name,
                aggregate,
                obs_low[obs_valid],
                obs_high[obs_valid],
            )
        if exacts is not None:
            audit_exacts = np.asarray(exacts, dtype=np.float64)[mask]
        elif (table_name, column_name) in self._stale:
            audit_exacts = self._exact_batch(
                table_name, column_name, aggregate, lows[mask], highs[mask]
            )
        else:
            audit_exacts = self._snapshot_exact_many(
                entry, aggregate, lows[mask], highs[mask]
            )
        absolute_errors = self.auditor.record_many(
            key, np.asarray(estimates, dtype=np.float64)[mask], audit_exacts
        )
        self._bump("audited_queries", audited)
        self.metrics.counter("audited_total", aggregate=aggregate).inc(audited)
        error_histogram = self.metrics.histogram(
            "audit_abs_error", buckets=ERROR_BUCKETS
        )
        for value in absolute_errors.tolist():
            error_histogram.observe(value)

    @staticmethod
    def _snapshot_exact_many(
        entry: _ColumnSynopses, aggregate: str, lows: np.ndarray, highs: np.ndarray
    ) -> np.ndarray:
        """Vectorised exact answers from the build-time snapshot."""
        low_idx, high_idx, valid = entry.statistics.clip_range_many(lows, highs)
        counts = np.zeros(lows.shape, dtype=np.float64)
        if valid.any():
            counts[valid] = entry.statistics.range_totals(
                "count", low_idx[valid], high_idx[valid]
            )
        if aggregate == "count":
            return counts
        totals = np.zeros(lows.shape, dtype=np.float64)
        if valid.any():
            totals[valid] = entry.statistics.range_totals(
                "sum", low_idx[valid], high_idx[valid]
            )
        if aggregate == "sum":
            return totals
        return np.divide(totals, counts, out=np.zeros_like(totals), where=counts > 0)

    def _predicted_for(self, key: tuple[str, str], aggregate: str):
        """The frozen builder error model for one (synopsis, aggregate).

        AVG has no direct model (it is SUM/COUNT of two synopses).
        Entries without a build-time prediction (catalogs loaded from
        disk) get one computed on first use and pinned, so subsequent
        corruption is still detectable.
        """
        if aggregate not in ("count", "sum"):
            return None
        entry = self._synopses.get(key)
        if entry is None:
            return None
        if entry.predicted is not None:
            return entry.predicted.get(aggregate)
        cache_key = (key, aggregate)
        if cache_key not in self._prediction_cache:
            from repro.core.builders import predict_sse_per_query

            estimator = (
                entry.count_estimator if aggregate == "count" else entry.sum_estimator
            )
            data = (
                entry.statistics.count_frequencies
                if aggregate == "count"
                else entry.statistics.sum_frequencies
            )
            self._prediction_cache[cache_key] = predict_sse_per_query(estimator, data)
        return self._prediction_cache[cache_key]

    def error_report(
        self,
        *,
        drift_threshold: float = 2.0,
        drift_floor: float = 1e-6,
        min_samples: int = 1,
        mark_stale: bool = False,
    ) -> dict:
        """Observed-vs-predicted error per audited (table, column, aggregate).

        A synopsis is *drifting* when its windowed observed
        SSE-per-query exceeds ``drift_threshold`` times the builder's
        predicted SSE-per-query plus ``drift_floor`` (the floor absorbs
        float noise and keeps exactly-zero predictions meaningful), with
        at least ``min_samples`` audited queries in the window.
        ``mark_stale=True`` feeds drifting synopses into the existing
        staleness machinery, so the usual ``on_stale`` policies and
        :meth:`refresh_stale` take over.
        """
        if drift_threshold <= 0:
            raise InvalidParameterError(
                f"drift_threshold must be > 0, got {drift_threshold}"
            )
        rows = []
        for key in self.auditor.keys():
            table_name, column_name, aggregate = key
            observed = self.auditor.observed(key)
            synopsis_key = (table_name, column_name)
            entry = self._synopses.get(synopsis_key)
            prediction = self._predicted_for(synopsis_key, aggregate)
            predicted_value = None if prediction is None else prediction.sse_per_query
            ratio = None
            drifting = False
            if predicted_value is not None and observed.samples >= min_samples:
                if predicted_value > 0:
                    ratio = observed.sse_per_query / predicted_value
                else:
                    ratio = math.inf if observed.sse_per_query > drift_floor else 1.0
                drifting = (
                    observed.sse_per_query
                    > drift_threshold * predicted_value + drift_floor
                )
            if drifting:
                self._bump("drift_flags")
                self.metrics.counter("drift_flags_total").inc()
                if mark_stale and entry is not None:
                    self._stale.add(synopsis_key)
                    meta = self._build_meta.get(synopsis_key)
                    if meta is not None and meta.get("stale_since") is None:
                        meta["stale_since"] = self.clock.now()
            rows.append(
                {
                    "table": table_name,
                    "column": column_name,
                    "aggregate": aggregate,
                    "method": entry.method if entry is not None else None,
                    "samples": observed.samples,
                    "observed_sse_per_query": observed.sse_per_query,
                    "predicted_sse_per_query": predicted_value,
                    "predicted_exact": None if prediction is None else prediction.exact,
                    "ratio": ratio,
                    "mean_abs_error": observed.mean_abs_error,
                    "max_abs_error": observed.max_abs_error,
                    "mean_relative_error": observed.mean_relative_error,
                    "stale": synopsis_key in self._stale,
                    "drifting": drifting,
                }
            )
        return {
            "synopses": rows,
            "audited_queries": self.auditor.total_audited,
            "window": self.auditor.window,
            "drift_threshold": drift_threshold,
        }

    def staleness_ages(self) -> dict[str, float]:
        """Seconds each currently-stale 1-D synopsis has been stale."""
        now = self.clock.now()
        ages: dict[str, float] = {}
        for key in self._stale:
            meta = self._build_meta.get(key)
            if meta is not None and meta.get("stale_since") is not None:
                ages[f"{key[0]}.{key[1]}"] = now - meta["stale_since"]
        return ages

    def observability_snapshot(self) -> dict:
        """One structured, JSON-ready view of everything observable."""
        return {
            "stats": self.stats(),
            "metrics": self.metrics.snapshot(),
            "error_report": self.error_report(),
            "observed_workload": self.observed_workload.snapshot(),
            "staleness_ages": self.staleness_ages(),
            "dirty_shards": self.dirty_shards(),
            "synopsis_catalog": self.synopsis_catalog(),
            "spans_recorded": len(self.tracer),
            "breakers": self.breaker_states(),
            "quarantined": sorted(f"{t}.{c}" for t, c in self._quarantined),
        }

    def quarantined_synopses(self) -> list[tuple[str, str]]:
        """Keys whose persisted synopses failed verification on load.

        Each is serving a cheap substitute and is marked stale;
        :meth:`refresh_stale` (or a direct :meth:`build_synopsis`)
        clears the quarantine.
        """
        return sorted(self._quarantined)

    def dump_metrics(self, format: str = "json") -> str:
        """Render the observability state for export.

        ``"json"`` emits :meth:`observability_snapshot`;
        ``"prometheus"`` emits the metrics registry in Prometheus text
        format with the engine counters and staleness ages mirrored in
        as gauges (one scrape target, no extra deps).
        """
        if format == "json":
            return json.dumps(
                self.observability_snapshot(), indent=2, sort_keys=True, default=str
            )
        if format == "prometheus":
            for name, value in self.stats().items():
                if isinstance(value, (int, float)):
                    self.metrics.gauge(f"stat_{name}").set(float(value))
            for column, age in self.staleness_ages().items():
                self.metrics.gauge("staleness_age_seconds", column=column).set(age)
            return self.metrics.render_prometheus()
        raise InvalidParameterError(
            f"format must be json or prometheus, got {format!r}"
        )

    def execute_quantile(
        self,
        table_name: str,
        column_name: str,
        q: float,
        *,
        low: float | None = None,
        high: float | None = None,
        with_exact: bool = False,
    ) -> "QuantileResult":
        """Estimate the ``q``-quantile of a column from its count synopsis.

        The estimate is the smallest attribute value whose estimated
        cumulative frequency (within the optional ``[low, high]``
        window) reaches ``q`` of the window total.
        """
        from repro.queries.quantiles import estimate_quantile

        key = (table_name, column_name)
        if key not in self._synopses:
            raise InvalidQueryError(
                f"no synopsis built for {table_name}.{column_name}; "
                "call build_synopsis first"
            )
        entry = self._synopses[key]
        clipped = entry.statistics.clip_range(low, high)
        if clipped is None:
            raise InvalidQueryError(
                f"window [{low}, {high}] does not intersect the domain of "
                f"{table_name}.{column_name}"
            )
        index = estimate_quantile(
            entry.count_estimator, q, low=clipped[0], high=clipped[1]
        )
        estimate = float(entry.statistics.value_at(index))
        exact = None
        if with_exact:
            values = self.table(table_name).column(column_name)
            mask = np.ones(values.shape, dtype=bool)
            if low is not None:
                mask &= values >= low
            if high is not None:
                mask &= values <= high
            selected = np.sort(values[mask])
            if selected.size:
                rank = min(
                    int(np.ceil(q * selected.size)) - 1 if q > 0 else 0,
                    selected.size - 1,
                )
                exact = float(selected[max(rank, 0)])
        return QuantileResult(
            table=table_name,
            column=column_name,
            q=float(q),
            estimate=estimate,
            exact=exact,
            synopsis_name=entry.count_estimator.name,
        )

    def execute_sql(
        self, statement: str, *, with_exact: bool = False
    ) -> QueryResult | QuantileResult | list[GroupResult]:
        """Parse and run one statement of the mini SQL dialect.

        Single-column predicates route to the 1-D synopses; two-column
        BETWEEN conjunctions route to the joint synopses.  Aggregates
        return a :class:`QueryResult`, quantile/median statements a
        :class:`QuantileResult`, and GROUP BY statements a list of
        :class:`~repro.engine.grouped.GroupResult`.
        """
        from repro.engine.sql import parse_query

        query = parse_query(statement)
        if isinstance(query, GroupedAggregateQuery):
            return self.execute_grouped(query, with_exact=with_exact)
        if isinstance(query, JointAggregateQuery):
            return self.execute_joint(query, with_exact=with_exact)
        if isinstance(query, QuantileQuery):
            return self.execute_quantile(
                query.table,
                query.column,
                query.q,
                low=query.low,
                high=query.high,
                with_exact=with_exact,
            )
        return self.execute(query, with_exact=with_exact)

