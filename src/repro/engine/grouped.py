"""GROUP BY support: per-group synopses.

``SELECT COUNT(*) ... WHERE x BETWEEN a AND b GROUP BY g`` needs one
attribute-value distribution per group.  The engine materialises a
small catalog of per-group synopses (guarded by ``max_groups`` — GROUP
BY columns are categorical by nature) and answers each group's range
aggregate independently, exactly as the single-column path does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError, InvalidQueryError

#: Most distinct group values a grouped synopsis will materialise.
MAX_GROUPS = 256


@dataclass(frozen=True)
class GroupedAggregateQuery:
    """A range aggregate fanned out over the values of a group column."""

    table: str
    column: str
    aggregate: str
    group_by: str
    low: float | None = None
    high: float | None = None

    def __post_init__(self) -> None:
        if self.aggregate not in ("count", "sum", "avg"):
            raise InvalidQueryError(
                f"grouped aggregate must be count/sum/avg, got {self.aggregate!r}"
            )
        if self.column == self.group_by:
            raise InvalidQueryError("GROUP BY column must differ from the aggregated column")
        if self.low is not None and self.high is not None and self.low > self.high:
            raise InvalidQueryError(f"bounds are inverted: [{self.low}, {self.high}]")


@dataclass(frozen=True)
class GroupResult:
    """One group's row in a grouped answer."""

    group: float
    estimate: float
    exact: float | None

    @property
    def absolute_error(self) -> float | None:
        if self.exact is None:
            return None
        return abs(self.estimate - self.exact)


class GroupedSynopsisMixin:
    """Per-group synopsis catalog; mixed into the engine.

    Relies on the host class providing ``self.table(name)`` plus the
    ``self._grouped_synopses`` / ``self._grouped_configs`` dicts,
    ``self._stale_grouped`` set, and ``self._stats`` counters
    initialised in ``__init__``.
    """

    def build_grouped_synopsis(
        self,
        table_name: str,
        column_name: str,
        group_by: str,
        *,
        method: str = "sap1",
        budget_words: int = 512,
        max_groups: int = MAX_GROUPS,
    ) -> None:
        """Build one synopsis per distinct value of ``group_by``.

        The word budget is split evenly across groups (each group gets a
        COUNT and a SUM synopsis over its own distribution).
        """
        from repro.core.builders import BUILDER_REGISTRY, build_by_name
        from repro.engine.column import ColumnStatistics
        from repro.engine.engine import _ColumnSynopses

        table = self.table(table_name)
        values = table.column(column_name)
        groups = table.column(group_by)
        distinct = np.unique(groups)
        if distinct.size > max_groups:
            raise InvalidParameterError(
                f"{group_by!r} has {distinct.size} distinct values "
                f"(> max_groups={max_groups}); GROUP BY columns should be categorical"
            )
        if method not in BUILDER_REGISTRY:
            raise InvalidParameterError(
                f"unknown synopsis method {method!r}; available: {sorted(BUILDER_REGISTRY)}"
            )
        per_group = max(
            budget_words // (2 * distinct.size),
            BUILDER_REGISTRY[method].words_per_unit,
        )
        catalog: dict[float, _ColumnSynopses] = {}
        for group in distinct.tolist():
            member_values = values[groups == group]
            statistics = ColumnStatistics.from_values(member_values)
            catalog[group] = _ColumnSynopses(
                statistics=statistics,
                count_estimator=build_by_name(
                    method, statistics.count_frequencies, per_group
                ),
                sum_estimator=build_by_name(
                    method, statistics.sum_frequencies, per_group
                ),
                method=method,
                budget_words=per_group * 2,
                builder_kwargs={},
            )
        key = (table_name, column_name, group_by)
        self._grouped_synopses[key] = catalog
        self._grouped_configs[key] = {
            "method": method,
            "budget_words": budget_words,
            "max_groups": max_groups,
        }
        self._stale_grouped.discard(key)

    def stale_grouped_synopses(self) -> list[tuple[str, str, str]]:
        """The (table, column, group_by) triples whose grouped synopses predate appends."""
        return sorted(self._stale_grouped)

    def execute_grouped(
        self,
        query: GroupedAggregateQuery,
        *,
        with_exact: bool = False,
        on_stale: str = "serve",
    ) -> list[GroupResult]:
        """Answer one grouped aggregate; one :class:`GroupResult` per group.

        ``on_stale`` matches the 1-D execute path: ``"serve"`` answers
        from stale per-group synopses, ``"rebuild"`` refreshes the whole
        grouped catalog first, ``"error"`` refuses.
        """
        if on_stale not in ("serve", "rebuild", "error"):
            raise InvalidParameterError(
                f"on_stale must be serve, rebuild, or error, got {on_stale!r}"
            )
        key = (query.table, query.column, query.group_by)
        catalog = self._grouped_synopses.get(key)
        if catalog is None:
            raise InvalidQueryError(
                f"no grouped synopsis for {query.table}.{query.column} "
                f"GROUP BY {query.group_by}; call build_grouped_synopsis first"
            )
        if key in self._stale_grouped:
            if on_stale == "error":
                raise InvalidQueryError(
                    f"grouped synopsis for {key[0]}.{key[1]} GROUP BY {key[2]} "
                    "is stale (rows appended since build); refresh_stale() or "
                    "pass on_stale='rebuild'"
                )
            if on_stale == "rebuild":
                self.build_grouped_synopsis(
                    key[0], key[1], key[2], **self._grouped_configs[key]
                )
                self._bump("rebuilds")
                catalog = self._grouped_synopses[key]
            else:
                self._bump("stale_served")
        self._bump("grouped_queries")
        results = []
        with self.tracer.span(
            "grouped_query",
            table=query.table,
            column=query.column,
            group_by=query.group_by,
            aggregate=query.aggregate,
            groups=len(catalog),
        ):
            self.metrics.counter("grouped_queries_total").inc()
            for group, entry in sorted(catalog.items()):
                clipped = entry.statistics.clip_range(query.low, query.high)
                if clipped is None:
                    estimate = 0.0
                else:
                    low, high = clipped
                    if query.aggregate == "count":
                        estimate = entry.count_estimator.estimate(low, high)
                    elif query.aggregate == "sum":
                        estimate = entry.sum_estimator.estimate(low, high)
                    else:
                        count = entry.count_estimator.estimate(low, high)
                        total = entry.sum_estimator.estimate(low, high)
                        estimate = total / count if count > 0 else 0.0
                exact = (
                    self._grouped_exact(query, group) if with_exact else None
                )
                if exact is not None:
                    from repro.observability.metrics import ERROR_BUCKETS

                    self.metrics.histogram(
                        "grouped_abs_error", buckets=ERROR_BUCKETS
                    ).observe(abs(float(estimate) - exact))
                results.append(
                    GroupResult(group=group, estimate=float(estimate), exact=exact)
                )
        return results

    def _grouped_exact(self, query: GroupedAggregateQuery, group) -> float:
        table = self.table(query.table)
        values = table.column(query.column)
        groups = table.column(query.group_by)
        mask = groups == group
        if query.low is not None:
            mask &= values >= query.low
        if query.high is not None:
            mask &= values <= query.high
        selected = values[mask]
        if query.aggregate == "count":
            return float(mask.sum())
        if query.aggregate == "sum":
            return float(selected.sum())
        return float(selected.mean()) if selected.size else 0.0
