"""Joint (two-column) predicates — the footnote-2 extension in the engine.

A conjunctive predicate ``x BETWEEN .. AND .. AND y BETWEEN .. AND ..``
is a rectangle query against the *joint* distribution of the two
columns, which the 2-D synopses of :mod:`repro.multidim` summarise.
:class:`JointSynopsisMixin` adds joint-synopsis cataloging and execution
to the engine; COUNT is the supported aggregate (joint synopses
summarise the count grid).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError, InvalidQueryError

#: Joint synopsis methods understood by :meth:`build_joint_synopsis`.
JOINT_METHODS = ("wavelet2d-point", "wavelet2d-range", "grid")


@dataclass(frozen=True)
class JointAggregateQuery:
    """``SELECT COUNT(*) WHERE x BETWEEN .. AND .. AND y BETWEEN .. AND ..``.

    Bounds are inclusive raw values; ``None`` means unbounded.
    """

    table: str
    column_x: str
    column_y: str
    x_low: float | None = None
    x_high: float | None = None
    y_low: float | None = None
    y_high: float | None = None

    def __post_init__(self) -> None:
        for low, high, axis in (
            (self.x_low, self.x_high, "x"),
            (self.y_low, self.y_high, "y"),
        ):
            if low is not None and high is not None and low > high:
                raise InvalidQueryError(
                    f"{axis}-axis bounds are inverted: [{low}, {high}]"
                )
        if self.column_x == self.column_y:
            raise InvalidQueryError("joint query needs two distinct columns")

    def swapped(self) -> "JointAggregateQuery":
        """The same query with the two columns exchanged."""
        return JointAggregateQuery(
            table=self.table,
            column_x=self.column_y,
            column_y=self.column_x,
            x_low=self.y_low,
            x_high=self.y_high,
            y_low=self.x_low,
            y_high=self.x_high,
        )


def _build_joint(method: str, grid: np.ndarray, budget_words: int):
    """Budget-driven construction of one 2-D synopsis over a count grid."""
    from repro.multidim.grid_histogram import build_grid_histogram
    from repro.multidim.haar2d import PointTopBWavelet2D
    from repro.multidim.range_optimal2d import RangeOptimalWavelet2D

    if method == "wavelet2d-point":
        return PointTopBWavelet2D(grid, max(budget_words // 2, 1))
    if method == "wavelet2d-range":
        return RangeOptimalWavelet2D(grid, max(budget_words // 2, 1))
    if method == "grid":
        # words = Bx + By + Bx * By with Bx == By == b.
        b = max(int(math.isqrt(budget_words + 1)) - 1, 1)
        b_rows = min(b, grid.shape[0])
        b_cols = min(b, grid.shape[1])
        return build_grid_histogram(grid, b_rows, b_cols, method="sap1")
    raise InvalidParameterError(
        f"unknown joint synopsis method {method!r}; available: {JOINT_METHODS}"
    )


@dataclass(frozen=True)
class _JointSynopses:
    statistics: object  # JointColumnStatistics
    estimator: object  # Estimator2D
    method: str
    budget_words: int


class JointSynopsisMixin:
    """Joint-predicate catalog and executors for the engine.

    Relies on the host class providing ``self.table(name)`` plus the
    ``self._joint_synopses`` dict, ``self._stale_joint`` set, and
    ``self._stats`` counters initialised in ``__init__``.
    """

    def build_joint_synopsis(
        self,
        table_name: str,
        column_x: str,
        column_y: str,
        *,
        method: str = "wavelet2d-point",
        budget_words: int = 128,
    ) -> None:
        """Build a 2-D synopsis over the joint distribution of two columns."""
        from repro.engine.column import JointColumnStatistics

        table = self.table(table_name)
        statistics = JointColumnStatistics.from_values(
            table.column(column_x), table.column(column_y)
        )
        estimator = _build_joint(method, statistics.count_grid, budget_words)
        key = (table_name, column_x, column_y)
        self._joint_synopses[key] = _JointSynopses(
            statistics=statistics,
            estimator=estimator,
            method=method,
            budget_words=budget_words,
        )
        self._stale_joint.discard(key)

    def stale_joint_synopses(self) -> list[tuple[str, str, str]]:
        """The (table, col_x, col_y) triples whose joint synopses predate appends."""
        return sorted(self._stale_joint)

    def joint_catalog(self) -> list[dict]:
        """One row per joint synopsis."""
        return [
            {
                "table": table,
                "columns": (cx, cy),
                "method": entry.method,
                "words": entry.estimator.storage_words(),
                "grid_shape": entry.statistics.count_grid.shape,
            }
            for (table, cx, cy), entry in sorted(self._joint_synopses.items())
        ]

    def execute_joint(
        self,
        query: JointAggregateQuery,
        *,
        with_exact: bool = False,
        on_stale: str = "serve",
    ):
        """Answer a two-column COUNT from the joint synopsis.

        ``on_stale`` matches the 1-D execute path: ``"serve"`` answers
        from a stale synopsis, ``"rebuild"`` refreshes it first,
        ``"error"`` refuses.
        """
        from repro.engine.engine import QueryResult

        if on_stale not in ("serve", "rebuild", "error"):
            raise InvalidParameterError(
                f"on_stale must be serve, rebuild, or error, got {on_stale!r}"
            )
        key = (query.table, query.column_x, query.column_y)
        entry = self._joint_synopses.get(key)
        if entry is None:
            reversed_key = (query.table, query.column_y, query.column_x)
            entry = self._joint_synopses.get(reversed_key)
            if entry is None:
                raise InvalidQueryError(
                    f"no joint synopsis for {query.table}.({query.column_x}, "
                    f"{query.column_y}); call build_joint_synopsis first"
                )
            query = query.swapped()
            key = reversed_key
        if key in self._stale_joint:
            if on_stale == "error":
                raise InvalidQueryError(
                    f"joint synopsis for {key[0]}.({key[1]}, {key[2]}) is stale "
                    "(rows appended since build); refresh_stale() or pass "
                    "on_stale='rebuild'"
                )
            if on_stale == "rebuild":
                self.build_joint_synopsis(
                    key[0],
                    key[1],
                    key[2],
                    method=entry.method,
                    budget_words=entry.budget_words,
                )
                self._bump("rebuilds")
                entry = self._joint_synopses[key]
            else:
                self._bump("stale_served")
        self._bump("joint_queries")

        with self.tracer.span(
            "joint_query",
            table=query.table,
            column_x=query.column_x,
            column_y=query.column_y,
        ):
            self.metrics.counter("joint_queries_total").inc()
            clipped = entry.statistics.clip_rectangle(
                query.x_low, query.x_high, query.y_low, query.y_high
            )
            if clipped is None:
                estimate = 0.0
            else:
                x1, y1, x2, y2 = clipped
                estimate = entry.estimator.estimate(x1, y1, x2, y2)
            exact = self.execute_joint_exact(query) if with_exact else None
            if exact is not None:
                from repro.observability.metrics import ERROR_BUCKETS

                self.metrics.histogram(
                    "joint_abs_error", buckets=ERROR_BUCKETS
                ).observe(abs(float(estimate) - exact))
        return QueryResult(
            query=query,  # type: ignore[arg-type]
            estimate=float(estimate),
            exact=exact,
            synopsis_name=entry.estimator.name,
            synopsis_words=entry.estimator.storage_words(),
        )

    def execute_joint_exact(self, query: JointAggregateQuery) -> float:
        """Ground truth for a joint COUNT by scanning the base table."""
        table = self.table(query.table)
        xs = table.column(query.column_x)
        ys = table.column(query.column_y)
        mask = np.ones(xs.shape, dtype=bool)
        if query.x_low is not None:
            mask &= xs >= query.x_low
        if query.x_high is not None:
            mask &= xs <= query.x_high
        if query.y_low is not None:
            mask &= ys >= query.y_low
        if query.y_high is not None:
            mask &= ys <= query.y_high
        return float(mask.sum())
