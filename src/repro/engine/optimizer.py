"""Workload-adaptive budget optimisation: closing the audit loop.

The paper's builders optimise for the uniform all-ranges workload; the
serving tier observes the *actual* query mix through the
:class:`~repro.observability.ErrorAuditor`'s sampled audits.  This
module closes the loop audit → optimise → targeted rebuild, in the
spirit of Storyboard's global budget optimisation across segments
(Gan–Bailis–Charikar, PAPERS.md):

* :class:`ObservedWorkload` reservoir-samples the index-space ranges of
  audited queries per ``(table, column, aggregate)`` and materialises
  them as a weighted :class:`~repro.queries.workload.Workload`;
* :func:`run_optimization` reallocates each sharded column's word
  budget across shards with
  :func:`~repro.core.builders.split_budget_by_workload` (rebuilding
  only the worst-misallocated shards through
  :meth:`~repro.engine.sharding.ShardedSynopsis.with_rebuilt_shards`,
  conserving the column total exactly), and optionally moves budget
  *between* columns by observed-SSE-per-word, re-choosing monolithic
  columns' methods through :mod:`repro.engine.advisor` scored on the
  observed workload (with the ``workload-a0`` builder as a candidate);
* :class:`BackgroundOptimizer` drives
  :meth:`~repro.engine.engine.ApproximateQueryEngine.optimize_budgets`
  on a daemon thread, mirroring
  :class:`~repro.engine.compaction.BackgroundCompactor`, and republishes
  a serving pool's shared catalog after rebuilds.

Shard-level reallocation re-summarises the entry's *frozen* frequency
snapshot (exactly like compaction), so it neither loses nor gains
staleness; column-level moves rebuild from the live table and clear
staleness like any full build.  See ``docs/ADAPTIVITY.md``.
"""

from __future__ import annotations

import threading
from dataclasses import replace

import numpy as np

from repro.core.builders import (
    BUILDER_REGISTRY,
    _apportion_budget,
    aggregate_shard_predictions,
    split_budget_by_workload,
)
from repro.engine.sharding import ShardedSynopsis
from repro.errors import InvalidParameterError, ReproError
from repro.queries.workload import Workload

__all__ = ["ObservedWorkload", "BackgroundOptimizer", "run_optimization"]

#: Aggregates the recorder keys on (AVG audits record under both).
_RECORDED_AGGREGATES = ("count", "sum")


class ObservedWorkload:
    """Reservoir-sampled observed query ranges per (table, column, aggregate).

    Each key holds an algorithm-R reservoir of up to ``capacity``
    index-space ``(low, high)`` ranges plus the total number of ranges
    ever offered, so the sample stays uniform over the whole observation
    stream at O(capacity) memory per key.  Thread-safe: the engine
    records from whatever thread runs the audited query.
    """

    def __init__(self, capacity: int = 512, seed: int = 0) -> None:
        if int(capacity) < 1:
            raise InvalidParameterError(
                f"reservoir capacity must be >= 1, got {capacity}"
            )
        self.capacity = int(capacity)
        self._seed = int(seed)
        self._rng = np.random.default_rng(self._seed)
        self._lock = threading.Lock()
        self._reservoirs: dict[tuple[str, str, str], list[tuple[int, int]]] = {}
        self._seen: dict[tuple[str, str, str], int] = {}

    def record_many(self, key: tuple[str, str, str], lows, highs) -> None:
        """Offer a batch of clipped index-space ranges to ``key``'s reservoir."""
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        if lows.shape != highs.shape or lows.ndim != 1:
            raise InvalidParameterError("lows and highs must be parallel 1-D arrays")
        with self._lock:
            reservoir = self._reservoirs.setdefault(key, [])
            seen = self._seen.get(key, 0)
            for low, high in zip(lows.tolist(), highs.tolist()):
                if len(reservoir) < self.capacity:
                    reservoir.append((low, high))
                else:
                    slot = int(self._rng.integers(0, seen + 1))
                    if slot < self.capacity:
                        reservoir[slot] = (low, high)
                seen += 1
            self._seen[key] = seen

    def record(self, key: tuple[str, str, str], low: int, high: int) -> None:
        self.record_many(key, [low], [high])

    def keys(self) -> list[tuple[str, str, str]]:
        with self._lock:
            return sorted(self._reservoirs)

    def seen(self, key: tuple[str, str, str]) -> int:
        """Total ranges ever offered under ``key`` (not just the sample)."""
        with self._lock:
            return self._seen.get(key, 0)

    def sampled(self, key: tuple[str, str, str]) -> int:
        with self._lock:
            return len(self._reservoirs.get(key, ()))

    def clear(self, key: tuple[str, str, str] | None = None) -> None:
        with self._lock:
            if key is None:
                self._reservoirs.clear()
                self._seen.clear()
            else:
                self._reservoirs.pop(key, None)
                self._seen.pop(key, None)

    def workload_for(self, key: tuple[str, str, str], n: int) -> Workload | None:
        """The reservoir as a weighted workload over domain ``[0, n)``.

        Distinct ranges collapse to one query weighted by multiplicity.
        Ranges outside the current domain (recorded before a domain
        change) are dropped; returns ``None`` when nothing usable
        remains.
        """
        with self._lock:
            ranges = list(self._reservoirs.get(key, ()))
        counts: dict[tuple[int, int], int] = {}
        for low, high in ranges:
            if 0 <= low <= high < n:
                counts[(low, high)] = counts.get((low, high), 0) + 1
        if not counts:
            return None
        ordered = sorted(counts)
        return Workload(
            n=int(n),
            lows=np.array([low for low, _ in ordered], dtype=np.int64),
            highs=np.array([high for _, high in ordered], dtype=np.int64),
            weights=np.array([counts[r] for r in ordered], dtype=np.float64),
        )

    def column_workload(self, table: str, column: str, n: int) -> Workload | None:
        """Merged workload over every aggregate recorded for one column."""
        parts = [
            self.workload_for((table, column, aggregate), n)
            for aggregate in _RECORDED_AGGREGATES
        ]
        parts = [part for part in parts if part is not None]
        if not parts:
            return None
        if len(parts) == 1:
            return parts[0]
        merged: dict[tuple[int, int], float] = {}
        for part in parts:
            for low, high, weight in zip(
                part.lows.tolist(), part.highs.tolist(), part.weights.tolist()
            ):
                merged[(low, high)] = merged.get((low, high), 0.0) + weight
        ordered = sorted(merged)
        return Workload(
            n=int(n),
            lows=np.array([low for low, _ in ordered], dtype=np.int64),
            highs=np.array([high for _, high in ordered], dtype=np.int64),
            weights=np.array([merged[r] for r in ordered], dtype=np.float64),
        )

    def snapshot(self) -> dict[str, dict]:
        """JSON-ready per-key observation counts for observability."""
        with self._lock:
            return {
                f"{table}.{column}/{aggregate}": {
                    "seen": self._seen.get(key, 0),
                    "sampled": len(reservoir),
                }
                for key, reservoir in sorted(self._reservoirs.items())
                for table, column, aggregate in [key]
            }

    def state_dict(self) -> dict:
        """Serialisable recorder state (reservoirs + stream counts).

        The RNG is re-seeded on load, so a restored recorder resumes
        *a* valid uniform sampling stream rather than the bit-exact one
        — reservoir contents and seen-counts survive, which is what the
        optimiser consumes.
        """
        with self._lock:
            return {
                "version": 1,
                "capacity": self.capacity,
                "seed": self._seed,
                "keys": [
                    {
                        "table": key[0],
                        "column": key[1],
                        "aggregate": key[2],
                        "seen": self._seen.get(key, 0),
                        "lows": [low for low, _ in reservoir],
                        "highs": [high for _, high in reservoir],
                    }
                    for key, reservoir in sorted(self._reservoirs.items())
                ],
            }

    def load_state_dict(self, state: dict) -> None:
        """Replace this recorder's contents with a serialised state."""
        if not isinstance(state, dict) or state.get("version") != 1:
            raise InvalidParameterError(
                "unrecognised observed-workload state (expected version 1)"
            )
        capacity = int(state.get("capacity", 0))
        if capacity < 1:
            raise InvalidParameterError(
                f"state capacity must be >= 1, got {capacity}"
            )
        reservoirs: dict[tuple[str, str, str], list[tuple[int, int]]] = {}
        seen: dict[tuple[str, str, str], int] = {}
        for row in state.get("keys", []):
            key = (str(row["table"]), str(row["column"]), str(row["aggregate"]))
            lows = [int(v) for v in row["lows"]]
            highs = [int(v) for v in row["highs"]]
            if len(lows) != len(highs) or len(lows) > capacity:
                raise InvalidParameterError(
                    f"corrupt reservoir for {key}: {len(lows)} lows, "
                    f"{len(highs)} highs, capacity {capacity}"
                )
            reservoirs[key] = list(zip(lows, highs))
            seen[key] = max(int(row.get("seen", len(lows))), len(lows))
        with self._lock:
            self.capacity = capacity
            self._seed = int(state.get("seed", 0))
            self._rng = np.random.default_rng(self._seed)
            self._reservoirs = reservoirs
            self._seen = seen


def _shard_budget_plan(
    estimator: ShardedSynopsis,
    frequencies: np.ndarray,
    workload: Workload,
    *,
    max_shard_rebuilds: int,
    min_shift_fraction: float,
    context: str,
):
    """Plan one aggregate's shard-budget move toward its workload split.

    Computes the full workload-weighted target, picks the (at most
    ``max_shard_rebuilds``) worst-misallocated shards, and re-apportions
    only *their pooled current budget* among them in proportion to their
    targets — untouched shards keep their budgets, so the column total
    is conserved exactly no matter how few shards rebuild.  Returns
    ``(new_budgets, rebuild_ids)`` or ``None`` when no shard's budget
    would shift by at least ``min_shift_fraction`` of its current value.
    """
    current = estimator.budgets
    targets = split_budget_by_workload(
        estimator.method,
        frequencies,
        estimator.starts,
        int(current.sum()),
        workload,
        context=context,
    )
    diff = targets - current
    relative = np.abs(diff) / np.maximum(current, 1)
    candidates = np.nonzero((diff != 0) & (relative >= min_shift_fraction))[0]
    if candidates.size < 2:
        return None
    # Worst offenders first; deterministic tie-break by shard id.
    order = np.lexsort((candidates, -np.abs(diff[candidates])))
    chosen = np.sort(candidates[order][: max(int(max_shard_rebuilds), 2)])
    if not (np.any(diff[chosen] > 0) and np.any(diff[chosen] < 0)):
        # All gainers or all donors: redistribution within the set
        # cannot move words while conserving the total.
        return None
    floor = BUILDER_REGISTRY[estimator.method].words_per_unit
    pooled = int(current[chosen].sum())
    weights = targets[chosen].astype(np.float64)
    new_chosen = _apportion_budget(weights / weights.sum(), pooled, floor)
    new_budgets = current.copy()
    new_budgets[chosen] = new_chosen
    rebuild_ids = sorted(int(s) for s in chosen[new_chosen != current[chosen]])
    if not rebuild_ids:
        return None
    return new_budgets, rebuild_ids


def _optimize_shards_for_key(
    engine,
    key: tuple[str, str],
    *,
    min_samples: int,
    max_shard_rebuilds: int,
    min_shift_fraction: float,
) -> dict | None:
    """Reallocate one sharded column's budgets toward its observed workload.

    Mirrors :meth:`~repro.engine.engine.ApproximateQueryEngine.compact_shards`:
    rebuilds run over the entry's *frozen* frequency snapshot and swap
    in copy-on-write, preserving staleness; the build id bumps so answer
    -cache tokens stop validating.
    """
    entry = engine._synopses[key]
    table_name, column_name = key
    plans = {}
    for aggregate, estimator, frequencies in (
        ("count", entry.count_estimator, entry.statistics.count_frequencies),
        ("sum", entry.sum_estimator, entry.statistics.sum_frequencies),
    ):
        audit_key = (table_name, column_name, aggregate)
        if engine.observed_workload.seen(audit_key) < min_samples:
            continue
        workload = engine.observed_workload.workload_for(audit_key, estimator.n)
        if workload is None:
            continue
        observed = engine.auditor.observed(audit_key)
        if observed is not None:
            engine.metrics.gauge(
                "optimizer_observed_sse_per_query",
                table=table_name,
                column=column_name,
                aggregate=aggregate,
            ).set(observed.sse_per_query)
        prediction = engine._predicted_for(key, aggregate)
        if prediction is not None:
            engine.metrics.gauge(
                "optimizer_predicted_sse_per_query",
                table=table_name,
                column=column_name,
                aggregate=aggregate,
            ).set(prediction.sse_per_query)
        try:
            plan = _shard_budget_plan(
                estimator,
                frequencies,
                workload,
                max_shard_rebuilds=max_shard_rebuilds,
                min_shift_fraction=min_shift_fraction,
                context=f"{table_name}.{column_name}/{aggregate}",
            )
        except ReproError:
            # Degenerate signal (e.g. zero-weight after domain change):
            # skip this aggregate rather than failing the sweep.
            continue
        if plan is not None:
            plans[aggregate] = plan
    if not plans:
        return None

    def _observe_shard(shard: int, seconds: float) -> None:
        engine.metrics.histogram("shard_build_seconds").observe(seconds)

    rebuilt = 0
    moved_words = 0
    per_aggregate = {}
    with engine.tracer.span(
        "optimize_shards",
        table=table_name,
        column=column_name,
        aggregates=len(plans),
    ) as span:
        estimators = {
            "count": entry.count_estimator,
            "sum": entry.sum_estimator,
        }
        frequencies = {
            "count": entry.statistics.count_frequencies,
            "sum": entry.statistics.sum_frequencies,
        }
        for aggregate, (new_budgets, rebuild_ids) in plans.items():
            old = estimators[aggregate].budgets
            estimators[aggregate] = estimators[aggregate].with_rebuilt_shards(
                rebuild_ids,
                frequencies[aggregate],
                predict=engine.predict_errors,
                on_shard_built=_observe_shard,
                budgets=new_budgets,
                **entry.builder_kwargs,
            )
            shifted = int(np.abs(new_budgets - old).sum()) // 2
            rebuilt += len(rebuild_ids)
            moved_words += shifted
            per_aggregate[aggregate] = {
                "shards_rebuilt": rebuild_ids,
                "words_moved": shifted,
            }
        span.set(shards_rebuilt=rebuilt, words_moved=moved_words)
    count_est = estimators["count"]
    sum_est = estimators["sum"]
    predicted = None
    if engine.predict_errors:
        predicted = {
            "count": aggregate_shard_predictions(
                count_est.shard_predictions, np.diff(count_est.starts)
            ),
            "sum": aggregate_shard_predictions(
                sum_est.shard_predictions, np.diff(sum_est.starts)
            ),
        }
    engine._synopses[key] = replace(
        entry,
        count_estimator=count_est,
        sum_estimator=sum_est,
        predicted=predicted,
    )
    engine._invalidate_predictions(key)
    engine._observe_shard_tree(key, count_est)
    engine.metrics.counter("optimizer_reallocations_total").inc()
    engine.metrics.counter("optimizer_rebuilds_total").inc(rebuilt)
    stale_since = (engine._build_meta.get(key) or {}).get("stale_since")
    engine._record_build(key, entry.method, span.duration or 0.0)
    if key in engine._stale:
        # The reallocation re-summarises the frozen snapshot: a stale
        # entry stays stale, with its original stale_since intact.
        engine._build_meta[key]["stale_since"] = stale_since
    return {
        "table": table_name,
        "column": column_name,
        "shards_rebuilt": rebuilt,
        "words_moved": moved_words,
        "aggregates": per_aggregate,
    }


def _choose_column_method(
    engine,
    key: tuple[str, str],
    entry,
    new_budget: int,
    *,
    candidates,
    sample_queries: int,
):
    """Pick a (method, builder_kwargs) for one column's full rebuild.

    Monolithic columns with an observed workload are re-advised on that
    workload, with ``workload-a0`` joining the candidate pool on
    DP-sized domains; sharded columns keep their recorded method (their
    adaptivity lives in the per-shard budget split).
    """
    from repro.core.workload_aware import MAX_DOMAIN
    from repro.engine.advisor import DEFAULT_CANDIDATES, recommend

    if isinstance(entry.count_estimator, ShardedSynopsis):
        return entry.method, dict(entry.builder_kwargs)
    n = int(entry.statistics.domain_size)
    observed = engine.observed_workload.column_workload(key[0], key[1], n)
    if observed is None:
        return entry.method, dict(entry.builder_kwargs)
    pool = tuple(candidates) if candidates else DEFAULT_CANDIDATES
    candidate_kwargs: dict[str, dict] = {}
    if n <= MAX_DOMAIN:
        if "workload-a0" not in pool:
            pool = pool + ("workload-a0",)
        candidate_kwargs["workload-a0"] = {"workload": observed}
    elif "workload-a0" in pool:
        pool = tuple(m for m in pool if m != "workload-a0")
    half = max(new_budget // 2, 4)
    ranked = recommend(
        entry.statistics.count_frequencies,
        half,
        workload=observed,
        candidates=pool,
        candidate_kwargs=candidate_kwargs,
        sample_queries=sample_queries,
    )
    winner = next((choice for choice in ranked if choice.error is None), None)
    if winner is None:
        return entry.method, dict(entry.builder_kwargs)
    return winner.method, dict(candidate_kwargs.get(winner.method, {}))


def _reallocate_columns(
    engine,
    *,
    min_samples: int,
    max_column_shift: float,
    min_marginal_ratio: float,
    column_floor_words: int,
    candidates,
    sample_queries: int,
) -> list[dict]:
    """Move whole-column budgets toward the observed error mass.

    A column's *score* is its windowed observed squared error mass
    (SSE-per-query × audited samples, summed over aggregates); its
    *marginal value per word* is score/budget.  Budgets only move when
    the best/worst marginal ratio exceeds ``min_marginal_ratio`` —
    below that, a full-rebuild shuffle is not worth its cost.  Targets
    are proportional to sqrt(score) (damping extremes), floored at
    ``column_floor_words``, clamped to ±``max_column_shift`` of the old
    budget, and repaired word-by-word so the global total is conserved
    exactly.  Changed columns rebuild fully from the live table, with
    the method re-advised on the observed workload.
    """
    scores: dict[tuple[str, str], float] = {}
    for key in engine._synopses:
        samples = 0
        mass = 0.0
        for aggregate in _RECORDED_AGGREGATES:
            observed = engine.auditor.observed((key[0], key[1], aggregate))
            if observed is None:  # never audited under this aggregate
                continue
            samples += observed.samples
            mass += observed.sse_per_query * observed.samples
        if samples >= min_samples:
            scores[key] = mass
    if len(scores) < 2:
        return []
    keys = sorted(scores)
    budgets = np.array(
        [int(engine._synopses[k].budget_words) for k in keys], dtype=np.int64
    )
    mass = np.array([scores[k] for k in keys], dtype=np.float64)
    per_word = mass / np.maximum(budgets, 1)
    floor = int(column_floor_words)
    total = int(budgets.sum())
    if per_word.max() <= 0 or total < floor * len(keys):
        return []
    if per_word.max() / max(per_word.min(), 1e-12) < min_marginal_ratio:
        return []
    weights = np.sqrt(mass)
    if weights.sum() <= 0:
        return []
    targets = _apportion_budget(weights / weights.sum(), total, floor)
    shift_cap = np.maximum(
        (budgets * float(max_column_shift)).astype(np.int64), 1
    )
    new = np.clip(targets, budgets - shift_cap, budgets + shift_cap)
    new = np.maximum(new, floor)
    deficit = total - int(new.sum())
    while deficit != 0:
        if deficit > 0:
            gaps = np.where(new < targets, targets - new, 0)
            index = int(np.argmax(gaps)) if gaps.max() > 0 else int(np.argmin(new))
            new[index] += 1
            deficit -= 1
        else:
            gaps = np.where((new > targets) & (new > floor), new - targets, 0)
            if gaps.max() > 0:
                index = int(np.argmax(gaps))
            else:
                shrinkable = np.nonzero(new > floor)[0]
                if shrinkable.size == 0:
                    return []
                index = int(shrinkable[np.argmax(new[shrinkable])])
            new[index] -= 1
            deficit += 1
    actions: list[dict] = []
    for position, key in enumerate(keys):
        if int(new[position]) == int(budgets[position]):
            continue
        entry = engine._synopses[key]
        new_budget = int(new[position])
        method, builder_kwargs = _choose_column_method(
            engine,
            key,
            entry,
            new_budget,
            candidates=candidates,
            sample_queries=sample_queries,
        )
        engine.build_synopsis(
            key[0],
            key[1],
            method=method,
            budget_words=new_budget,
            shards=entry.shards,
            **builder_kwargs,
        )
        engine.metrics.counter("optimizer_reallocations_total").inc()
        engine.metrics.counter("optimizer_rebuilds_total").inc()
        actions.append(
            {
                "table": key[0],
                "column": key[1],
                "budget_before": int(budgets[position]),
                "budget_after": new_budget,
                "method_before": entry.method,
                "method_after": method,
            }
        )
    return actions


def run_optimization(
    engine,
    *,
    min_samples: int = 32,
    max_shard_rebuilds: int = 8,
    min_shift_fraction: float = 0.05,
    reallocate_columns: bool = True,
    max_column_shift: float = 0.25,
    min_marginal_ratio: float = 1.5,
    column_floor_words: int = 16,
    advisor_candidates=None,
    advisor_sample_queries: int = 512,
) -> dict:
    """One optimisation sweep over the engine's catalog.

    The implementation behind
    :meth:`~repro.engine.engine.ApproximateQueryEngine.optimize_budgets`;
    see that method for the knob semantics.
    """
    if min_samples < 1:
        raise InvalidParameterError(f"min_samples must be >= 1, got {min_samples}")
    if not 0.0 <= float(min_shift_fraction):
        raise InvalidParameterError(
            f"min_shift_fraction must be >= 0, got {min_shift_fraction}"
        )
    if not 0.0 < float(max_column_shift) <= 1.0:
        raise InvalidParameterError(
            f"max_column_shift must be in (0, 1], got {max_column_shift}"
        )
    if float(min_marginal_ratio) < 1.0:
        raise InvalidParameterError(
            f"min_marginal_ratio must be >= 1, got {min_marginal_ratio}"
        )
    shard_reports: list[dict] = []
    column_actions: list[dict] = []
    with engine.tracer.span(
        "optimize", columns=len(engine._synopses)
    ) as span:
        for key in sorted(engine._synopses):
            if not isinstance(
                engine._synopses[key].count_estimator, ShardedSynopsis
            ):
                continue
            report = _optimize_shards_for_key(
                engine,
                key,
                min_samples=min_samples,
                max_shard_rebuilds=max_shard_rebuilds,
                min_shift_fraction=min_shift_fraction,
            )
            if report is not None:
                shard_reports.append(report)
        if reallocate_columns:
            column_actions = _reallocate_columns(
                engine,
                min_samples=min_samples,
                max_column_shift=max_column_shift,
                min_marginal_ratio=min_marginal_ratio,
                column_floor_words=column_floor_words,
                candidates=advisor_candidates,
                sample_queries=advisor_sample_queries,
            )
        shards_rebuilt = sum(r["shards_rebuilt"] for r in shard_reports)
        span.set(
            shard_columns=len(shard_reports),
            shards_rebuilt=shards_rebuilt,
            column_rebuilds=len(column_actions),
        )
    engine._bump("optimizer_runs")
    if shards_rebuilt:
        engine._bump("optimizer_shards_rebuilt", shards_rebuilt)
    if column_actions:
        engine._bump("optimizer_column_rebuilds", len(column_actions))
    return {
        "shard_reallocations": shard_reports,
        "column_reallocations": column_actions,
        "shards_rebuilt": shards_rebuilt,
        "columns_changed": len(shard_reports) + len(column_actions),
    }


class BackgroundOptimizer:
    """Daemon thread that periodically reallocates budgets to the workload.

    Mirrors :class:`~repro.engine.compaction.BackgroundCompactor`:
    ``start`` spawns a daemon thread calling
    ``engine.optimize_budgets(**optimize_kwargs)`` every ``interval``
    seconds (a ``threading.Event`` wait, so ``stop`` is prompt),
    swallowing per-cycle errors into a counter — a failed optimisation
    leaves the previous synopses serving, which is always safe.  When a
    ``server`` (anything with a ``republish()`` method, e.g.
    :class:`repro.serving.PoolServer`) is attached, any cycle that
    actually rebuilt something republishes the shared catalog so worker
    processes pick up the reallocated synopses.
    """

    def __init__(
        self,
        engine,
        *,
        interval: float = 5.0,
        server=None,
        **optimize_kwargs,
    ) -> None:
        if interval <= 0:
            raise InvalidParameterError(f"interval must be > 0, got {interval}")
        self.engine = engine
        self.interval = float(interval)
        self.server = server
        self.optimize_kwargs = dict(optimize_kwargs)
        self.cycles = 0
        self.errors = 0
        self.republishes = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="budget-optimizer", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float | None = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def run_once(self) -> dict:
        """One synchronous optimisation sweep (what the thread loops on)."""
        report = self.engine.optimize_budgets(**self.optimize_kwargs)
        self.cycles += 1
        if self.server is not None and (
            report["shards_rebuilt"] or report["column_reallocations"]
        ):
            self.server.republish()
            self.republishes += 1
        return report

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.run_once()
            except Exception:  # pragma: no cover - defensive: keep serving
                self.errors += 1
            if self._stop.wait(self.interval):
                return
