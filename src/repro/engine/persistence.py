"""Whole-catalog persistence.

A synopsis catalog is the thing an engine keeps *instead of* the data,
so it must survive restarts on its own: :func:`save_catalog` writes
every 1-D synopsis (and its column statistics) to a single compressed
``.npz`` container, and :func:`load_catalog` restores them into an
engine that need not have the base tables registered at all — estimates
keep working; only exact-answer comparisons require re-registering the
data.

Layout: a JSON manifest plus, per synopsis, the binary estimator blobs
(via :mod:`repro.engine.storage`) and the column-statistics arrays.
Joint (2-D) synopses are rebuildable from data and are not persisted in
v1 of the format; the manifest records the format version so future
layouts can evolve.
"""

from __future__ import annotations

import io
import json

import numpy as np

from repro.engine.column import ColumnStatistics
from repro.engine.engine import ApproximateQueryEngine, _ColumnSynopses
from repro.engine.storage import deserialize_estimator, serialize_estimator
from repro.errors import SerializationError

FORMAT_VERSION = 1


def save_catalog(engine: ApproximateQueryEngine, path) -> int:
    """Write every 1-D synopsis of ``engine`` to ``path`` (.npz).

    Returns the number of synopses written.  Stale synopses are written
    as-is (staleness is a property of the session, not the bytes).
    """
    manifest = {"version": FORMAT_VERSION, "synopses": []}
    arrays: dict[str, np.ndarray] = {}
    for index, ((table, column), entry) in enumerate(sorted(engine._synopses.items())):
        manifest["synopses"].append(
            {
                "table": table,
                "column": column,
                "method": entry.method,
                "budget_words": entry.budget_words,
                "layout": entry.statistics.layout,
                "lo": entry.statistics.lo,
                "hi": entry.statistics.hi,
                "row_count": entry.statistics.row_count,
            }
        )
        arrays[f"{index}_count_blob"] = np.frombuffer(
            serialize_estimator(entry.count_estimator), dtype=np.uint8
        )
        arrays[f"{index}_sum_blob"] = np.frombuffer(
            serialize_estimator(entry.sum_estimator), dtype=np.uint8
        )
        arrays[f"{index}_values_axis"] = entry.statistics.values_axis
        arrays[f"{index}_count_freq"] = entry.statistics.count_frequencies
        arrays[f"{index}_sum_freq"] = entry.statistics.sum_frequencies
    arrays["manifest"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)
    return len(manifest["synopses"])


def load_catalog(engine: ApproximateQueryEngine, path) -> int:
    """Restore synopses written by :func:`save_catalog` into ``engine``.

    Existing synopses for the same (table, column) are replaced; tables
    themselves are untouched (and need not exist).  Returns the number
    of synopses restored.
    """
    with np.load(path) as archive:
        try:
            manifest = json.loads(bytes(archive["manifest"]).decode("utf-8"))
        except KeyError as error:
            raise SerializationError(f"{path} is not a repro catalog") from error
        if manifest.get("version") != FORMAT_VERSION:
            raise SerializationError(
                f"unsupported catalog version {manifest.get('version')!r}"
            )
        for index, meta in enumerate(manifest["synopses"]):
            statistics = ColumnStatistics(
                lo=meta["lo"],
                hi=meta["hi"],
                values_axis=archive[f"{index}_values_axis"],
                count_frequencies=archive[f"{index}_count_freq"],
                sum_frequencies=archive[f"{index}_sum_freq"],
                row_count=int(meta["row_count"]),
                layout=meta["layout"],
            )
            entry = _ColumnSynopses(
                statistics=statistics,
                count_estimator=deserialize_estimator(
                    bytes(archive[f"{index}_count_blob"])
                ),
                sum_estimator=deserialize_estimator(bytes(archive[f"{index}_sum_blob"])),
                method=meta["method"],
                budget_words=int(meta["budget_words"]),
                builder_kwargs={},
            )
            key = (meta["table"], meta["column"])
            engine._synopses[key] = entry
            engine._stale.discard(key)
    return len(manifest["synopses"])
