"""Whole-catalog persistence.

A synopsis catalog is the thing an engine keeps *instead of* the data,
so it must survive restarts on its own: :func:`save_catalog` writes
every 1-D synopsis (and its column statistics) to a single compressed
``.npz`` container, and :func:`load_catalog` restores them into an
engine that need not have the base tables registered at all — estimates
keep working; only exact-answer comparisons require re-registering the
data.

Layout: a JSON manifest plus, per synopsis, the binary estimator blobs
(via :mod:`repro.engine.storage`) and the column-statistics arrays.
Sharded synopses (format version 2) additionally persist their shard
boundaries, per-shard estimator blobs, exact per-shard totals and
budgets, the frozen per-shard error predictions, and the engine's
dirty-shard flags — a loaded sharded entry with dirty shards is marked
stale, because the bytes genuinely predate the appended rows it knows
about.  Monolithic staleness remains a session property and is not
persisted.  Joint (2-D) synopses are rebuildable from data and are not
persisted; the manifest records the format version so layouts can keep
evolving (version-1 files still load).

Durability (format version 3): :func:`save_catalog` writes atomically —
the container is serialised to a temporary file in the target
directory, fsynced, and renamed over the destination, so a crash or
injected I/O failure mid-save never leaves a partial catalog where a
good one stood.  The manifest carries a CRC-32 per stored array;
:func:`load_catalog` verifies them and *quarantines* entries that fail
(checksum mismatch or undecodable blob): if the entry's column
statistics survive, a cheap single-bucket substitute synopsis is
installed and marked stale (``engine.quarantined_synopses()`` lists
them; ``refresh_stale`` rebuilds the real thing), otherwise the entry
is skipped.  A corrupted file never raises an unhandled numpy or zip
error — only :class:`~repro.errors.SerializationError` when the whole
container is unreadable.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
import zlib

import numpy as np

from repro.core.builders import ErrorPrediction, aggregate_shard_predictions
from repro.engine.column import ColumnStatistics
from repro.engine.engine import ApproximateQueryEngine, _ColumnSynopses
from repro.engine.shard_tree import DyadicShardTree
from repro.engine.sharding import ShardedSynopsis
from repro.engine.storage import deserialize_estimator, serialize_estimator
from repro.errors import InvalidParameterError, SerializationError
from repro.internal.faults import fault_point, transform_bytes

FORMAT_VERSION = 4
_SUPPORTED_VERSIONS = (1, 2, 3, 4)
#: Versions :func:`save_catalog` can still *write* (regression tests pin
#: that old layouts keep loading; version 1 predates sharding and has no
#: writer anymore).
_WRITABLE_VERSIONS = (2, 3, 4)


def _blob(data: bytes) -> np.ndarray:
    return np.frombuffer(data, dtype=np.uint8)


def _crc(array: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(array).tobytes()) & 0xFFFFFFFF


def _prediction_to_json(prediction: ErrorPrediction | None):
    if prediction is None:
        return None
    return {
        "sse_per_query": prediction.sse_per_query,
        "query_count": prediction.query_count,
        "sampled_queries": prediction.sampled_queries,
        "exact": prediction.exact,
    }


def _prediction_from_json(payload) -> ErrorPrediction | None:
    if payload is None:
        return None
    return ErrorPrediction(
        sse_per_query=float(payload["sse_per_query"]),
        query_count=int(payload["query_count"]),
        sampled_queries=int(payload["sampled_queries"]),
        exact=bool(payload["exact"]),
    )


def _save_sharded(
    arrays: dict, prefix: str, sharded: ShardedSynopsis, version: int
) -> dict:
    """Store one sharded estimator's arrays; returns its manifest row."""
    arrays[f"{prefix}_starts"] = sharded.starts
    arrays[f"{prefix}_totals"] = sharded.totals
    arrays[f"{prefix}_budgets"] = sharded.budgets
    for shard, estimator in enumerate(sharded.estimators):
        arrays[f"{prefix}_shard{shard}"] = _blob(serialize_estimator(estimator))
    predictions = sharded.shard_predictions
    row = {
        "method": sharded.method,
        "predictions": (
            None
            if predictions is None
            else [_prediction_to_json(p) for p in predictions]
        ),
    }
    if version >= 4:
        # Format v4: the dyadic tree's level arrays (each CRC-verified
        # like every other array), the interior-answering mode, and the
        # compaction lineage ride along so a restart resumes exactly the
        # geometry and history it saved — no tree rebuild, no forgotten
        # compaction generations.
        for level, nodes in enumerate(sharded.tree.levels):
            arrays[f"{prefix}_tree_level{level}"] = nodes
        row["interior"] = sharded.interior
        row["tree_levels"] = len(sharded.tree.levels)
        row["tree_size"] = sharded.tree.size
        row["lineage"] = sharded.lineage
    return row


def _load_sharded(archive, prefix: str, meta: dict) -> ShardedSynopsis:
    starts = archive[f"{prefix}_starts"]
    shard_count = int(starts.size - 1)
    estimators = [
        deserialize_estimator(bytes(archive[f"{prefix}_shard{shard}"]))
        for shard in range(shard_count)
    ]
    raw_predictions = meta.get("predictions")
    predictions = (
        None
        if raw_predictions is None
        else [_prediction_from_json(p) for p in raw_predictions]
    )
    tree = None
    if "tree_levels" in meta:
        try:
            tree = DyadicShardTree.from_levels(
                [
                    archive[f"{prefix}_tree_level{level}"]
                    for level in range(int(meta["tree_levels"]))
                ],
                int(meta["tree_size"]),
            )
        except InvalidParameterError as error:
            raise SerializationError(
                f"persisted shard tree {prefix!r} is malformed: {error}"
            ) from error
        if not tree.check_invariant():
            raise SerializationError(
                f"persisted shard tree {prefix!r} violates the "
                "node-equals-sum-of-children invariant"
            )
    # Pre-v4 catalogs carry no tree: ShardedSynopsis rebuilds it from
    # the persisted totals (it is derived state), defaulting to tree
    # answering so old catalogs get the O(log S) path on load.
    return ShardedSynopsis(
        starts,
        estimators,
        archive[f"{prefix}_totals"],
        archive[f"{prefix}_budgets"],
        meta["method"],
        shard_predictions=predictions,
        interior=meta.get("interior", "tree"),
        tree=tree,
        lineage=meta.get("lineage"),
    )


def serialize_catalog(
    engine: ApproximateQueryEngine, *, version: int = FORMAT_VERSION
) -> bytes:
    """Serialise every 1-D synopsis of ``engine`` to one ``.npz`` blob.

    This is the byte-level half of :func:`save_catalog`: the returned
    payload is exactly what :func:`save_catalog` writes to disk, and
    :func:`deserialize_catalog` restores it.  The multi-process serving
    tier (:mod:`repro.serving.shared_catalog`) publishes these blobs
    into shared memory so worker processes attach to one catalog copy
    without ever pickling the engine.

    Stale synopses are written as-is; sharded entries also record their
    dirty-shard flags (``"all"`` when the whole domain must rebuild),
    monolithic staleness is a session property and is dropped.  Format
    v4 additionally persists each sharded entry's dyadic shard tree,
    interior-answering mode, and compaction lineage.

    ``version`` selects the layout for regression testing of old-format
    loads (v2: no checksums, no tree; v3: checksums, no tree);
    production callers leave it at :data:`FORMAT_VERSION`.
    """
    version = int(version)
    if version not in _WRITABLE_VERSIONS:
        raise InvalidParameterError(
            f"cannot write catalog version {version}; writable: "
            f"{_WRITABLE_VERSIONS}"
        )
    manifest = {"version": version, "synopses": []}
    arrays: dict[str, np.ndarray] = {}
    for index, ((table, column), entry) in enumerate(sorted(engine._synopses.items())):
        row = {
            "table": table,
            "column": column,
            "method": entry.method,
            "budget_words": entry.budget_words,
            "layout": entry.statistics.layout,
            "lo": entry.statistics.lo,
            "hi": entry.statistics.hi,
            "row_count": entry.statistics.row_count,
            "shards": entry.shards,
        }
        if isinstance(entry.count_estimator, ShardedSynopsis):
            row["count_sharded"] = _save_sharded(
                arrays, f"{index}_count", entry.count_estimator, version
            )
            row["sum_sharded"] = _save_sharded(
                arrays, f"{index}_sum", entry.sum_estimator, version
            )
            dirty = engine._dirty_shards.get((table, column))
            if (table, column) in engine._stale:
                row["dirty_shards"] = "all" if dirty is None else sorted(dirty)
        else:
            arrays[f"{index}_count_blob"] = _blob(
                serialize_estimator(entry.count_estimator)
            )
            arrays[f"{index}_sum_blob"] = _blob(
                serialize_estimator(entry.sum_estimator)
            )
        arrays[f"{index}_values_axis"] = entry.statistics.values_axis
        arrays[f"{index}_count_freq"] = entry.statistics.count_frequencies
        arrays[f"{index}_sum_freq"] = entry.statistics.sum_frequencies
        manifest["synopses"].append(row)
    if version >= 3:
        manifest["checksums"] = {
            name: _crc(array) for name, array in arrays.items()
        }
    arrays["manifest"] = _blob(json.dumps(manifest).encode("utf-8"))
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    return buffer.getvalue()


def save_catalog(
    engine: ApproximateQueryEngine, path, *, version: int = FORMAT_VERSION
) -> int:
    """Write every 1-D synopsis of ``engine`` to ``path`` (.npz).

    Returns the number of synopses written.  The layout is produced by
    :func:`serialize_catalog` (see there for the format and ``version``
    semantics).

    The write is atomic (temp file + fsync + rename): concurrent
    readers and crash recovery only ever see the previous complete
    catalog or the new one, never a torn file.  Every stored array's
    CRC-32 goes into the manifest for load-time verification.
    """
    count = len(engine._synopses)
    payload = serialize_catalog(engine, version=version)
    payload = transform_bytes("persistence_write", payload, path=str(path))
    _atomic_write(path, payload)
    return count


def _atomic_write(path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically (temp + fsync + rename).

    The temporary file lives in the destination directory so the final
    :func:`os.replace` stays on one filesystem (rename atomicity).  Any
    failure — including an injected ``persistence_write`` fault between
    the two half-writes below — removes the temp file and leaves the
    destination untouched.
    """
    target = os.fspath(path)
    directory = os.path.dirname(target) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(target) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            half = len(payload) // 2
            handle.write(payload[:half])
            # Mid-write chaos hook: proves a failure here cannot tear
            # the destination (the temp file is discarded below).
            fault_point("persistence_write", path=target)
            handle.write(payload[half:])
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, target)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


class _VerifyingArchive:
    """Array access with manifest-CRC verification folded in.

    Raises :class:`~repro.errors.SerializationError` both on a checksum
    mismatch and on any decode failure from the underlying container
    (bit-flipped zlib streams surface as zipfile/OSError/ValueError —
    all normalised here so callers handle exactly one exception type).
    """

    def __init__(self, archive, checksums: dict | None) -> None:
        self._archive = archive
        self._checksums = checksums or {}

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            array = self._archive[name]
        except SerializationError:
            raise
        except Exception as error:  # noqa: BLE001 — zip/zlib/npy decode zoo
            raise SerializationError(
                f"cannot decode catalog array {name!r}: {error}"
            ) from error
        expected = self._checksums.get(name)
        if expected is not None and _crc(array) != int(expected):
            raise SerializationError(f"checksum mismatch for catalog array {name!r}")
        return array


def _load_statistics(archive: _VerifyingArchive, index: int, meta: dict):
    return ColumnStatistics(
        lo=meta["lo"],
        hi=meta["hi"],
        values_axis=archive[f"{index}_values_axis"],
        count_frequencies=archive[f"{index}_count_freq"],
        sum_frequencies=archive[f"{index}_sum_freq"],
        row_count=int(meta["row_count"]),
        layout=meta["layout"],
    )


def _quarantine_substitute(
    archive: _VerifyingArchive, index: int, meta: dict
) -> _ColumnSynopses | None:
    """A single-bucket stand-in for a corrupt entry, if its statistics
    survived; ``None`` when even those are unreadable."""
    from repro.core.naive import build_naive

    try:
        statistics = _load_statistics(archive, index, meta)
        count_estimator = build_naive(statistics.count_frequencies)
        sum_estimator = build_naive(statistics.sum_frequencies)
    except Exception:  # noqa: BLE001 — stats corrupt too: skip the entry
        return None
    return _ColumnSynopses(
        statistics=statistics,
        count_estimator=count_estimator,
        sum_estimator=sum_estimator,
        method=meta["method"],
        budget_words=int(meta["budget_words"]),
        builder_kwargs={},
        predicted=None,
        shards=int(meta.get("shards", 1)),
    )


def load_catalog(engine: ApproximateQueryEngine, path) -> int:
    """Restore synopses written by :func:`save_catalog` into ``engine``.

    Existing synopses for the same (table, column) are replaced; tables
    themselves are untouched (and need not exist).  Sharded entries come
    back with their shard boundaries, frozen per-shard predictions, and
    dirty-shard flags — entries with dirty shards are marked stale.
    Returns the number of synopses restored (including quarantined
    substitutes).

    Version-3 catalogs verify every array against its manifest CRC-32.
    Entries that fail verification (or whose blobs no longer decode)
    are *quarantined*: a single-bucket substitute built from the
    entry's surviving column statistics is installed and marked stale
    so estimates keep flowing while ``refresh_stale`` rebuilds the real
    synopsis; entries whose statistics are also corrupt are skipped.
    An unreadable container (truncation, mangled manifest) raises
    :class:`~repro.errors.SerializationError` — never a raw numpy or
    zipfile exception.
    """
    fault_point("persistence_read", path=str(path))
    try:
        with open(path, "rb") as handle:
            payload = handle.read()
    except OSError as error:
        raise SerializationError(f"cannot read catalog {path}: {error}") from error
    payload = transform_bytes("persistence_read", payload, path=str(path))
    return deserialize_catalog(engine, payload, source=str(path))


def deserialize_catalog(
    engine: ApproximateQueryEngine, payload: bytes, *, source: str = "<bytes>"
) -> int:
    """Restore a :func:`serialize_catalog` blob into ``engine``.

    The byte-level half of :func:`load_catalog` (see there for the
    quarantine and verification semantics); ``source`` only labels
    error messages.  Shared-memory attach in the multi-process serving
    tier calls this directly on the published segment's bytes.
    """
    try:
        raw_archive = np.load(io.BytesIO(payload), allow_pickle=False)
    except Exception as error:  # noqa: BLE001 — truncated/mangled container
        raise SerializationError(
            f"{source} is not a readable catalog: {error}"
        ) from error
    with raw_archive as archive:
        try:
            manifest = json.loads(bytes(archive["manifest"]).decode("utf-8"))
        except KeyError as error:
            raise SerializationError(f"{source} is not a repro catalog") from error
        except Exception as error:  # noqa: BLE001 — corrupt manifest blob
            raise SerializationError(
                f"{source} has an unreadable manifest: {error}"
            ) from error
        if manifest.get("version") not in _SUPPORTED_VERSIONS:
            raise SerializationError(
                f"unsupported catalog version {manifest.get('version')!r}"
            )
        verifying = _VerifyingArchive(archive, manifest.get("checksums"))
        restored = 0
        for index, meta in enumerate(manifest["synopses"]):
            key = (meta["table"], meta["column"])
            try:
                entry = _load_entry(verifying, index, meta)
            except Exception:  # noqa: BLE001 — quarantine, never crash the load
                engine.metrics.counter(
                    "catalog_entries_quarantined_total"
                ).inc()
                substitute = _quarantine_substitute(verifying, index, meta)
                if substitute is None:
                    engine.metrics.counter("catalog_entries_skipped_total").inc()
                    continue
                engine._synopses[key] = substitute
                engine._stale.add(key)
                engine._dirty_shards.pop(key, None)
                engine._quarantined.add(key)
                restored += 1
                continue
            engine._synopses[key] = entry
            engine._stale.discard(key)
            engine._dirty_shards.pop(key, None)
            engine._quarantined.discard(key)
            dirty = meta.get("dirty_shards")
            if dirty is not None:
                engine._stale.add(key)
                engine._dirty_shards[key] = (
                    None if dirty == "all" else {int(shard) for shard in dirty}
                )
            restored += 1
    return restored


def _load_entry(
    archive: _VerifyingArchive, index: int, meta: dict
) -> _ColumnSynopses:
    """Decode and verify one catalog entry (raises on any damage)."""
    statistics = _load_statistics(archive, index, meta)
    predicted = None
    if "count_sharded" in meta:
        count_estimator = _load_sharded(archive, f"{index}_count", meta["count_sharded"])
        sum_estimator = _load_sharded(archive, f"{index}_sum", meta["sum_sharded"])
        sizes = np.diff(count_estimator.starts)
        count_prediction = aggregate_shard_predictions(
            count_estimator.shard_predictions, sizes
        )
        sum_prediction = aggregate_shard_predictions(
            sum_estimator.shard_predictions, sizes
        )
        if count_prediction is not None and sum_prediction is not None:
            predicted = {"count": count_prediction, "sum": sum_prediction}
    else:
        count_estimator = deserialize_estimator(bytes(archive[f"{index}_count_blob"]))
        sum_estimator = deserialize_estimator(bytes(archive[f"{index}_sum_blob"]))
    return _ColumnSynopses(
        statistics=statistics,
        count_estimator=count_estimator,
        sum_estimator=sum_estimator,
        method=meta["method"],
        budget_words=int(meta["budget_words"]),
        builder_kwargs={},
        predicted=predicted,
        shards=int(meta.get("shards", 1)),
    )
