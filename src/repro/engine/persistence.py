"""Whole-catalog persistence.

A synopsis catalog is the thing an engine keeps *instead of* the data,
so it must survive restarts on its own: :func:`save_catalog` writes
every 1-D synopsis (and its column statistics) to a single compressed
``.npz`` container, and :func:`load_catalog` restores them into an
engine that need not have the base tables registered at all — estimates
keep working; only exact-answer comparisons require re-registering the
data.

Layout: a JSON manifest plus, per synopsis, the binary estimator blobs
(via :mod:`repro.engine.storage`) and the column-statistics arrays.
Sharded synopses (format version 2) additionally persist their shard
boundaries, per-shard estimator blobs, exact per-shard totals and
budgets, the frozen per-shard error predictions, and the engine's
dirty-shard flags — a loaded sharded entry with dirty shards is marked
stale, because the bytes genuinely predate the appended rows it knows
about.  Monolithic staleness remains a session property and is not
persisted.  Joint (2-D) synopses are rebuildable from data and are not
persisted; the manifest records the format version so layouts can keep
evolving (version-1 files still load).
"""

from __future__ import annotations

import json

import numpy as np

from repro.core.builders import ErrorPrediction, aggregate_shard_predictions
from repro.engine.column import ColumnStatistics
from repro.engine.engine import ApproximateQueryEngine, _ColumnSynopses
from repro.engine.sharding import ShardedSynopsis
from repro.engine.storage import deserialize_estimator, serialize_estimator
from repro.errors import SerializationError

FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def _blob(data: bytes) -> np.ndarray:
    return np.frombuffer(data, dtype=np.uint8)


def _prediction_to_json(prediction: ErrorPrediction | None):
    if prediction is None:
        return None
    return {
        "sse_per_query": prediction.sse_per_query,
        "query_count": prediction.query_count,
        "sampled_queries": prediction.sampled_queries,
        "exact": prediction.exact,
    }


def _prediction_from_json(payload) -> ErrorPrediction | None:
    if payload is None:
        return None
    return ErrorPrediction(
        sse_per_query=float(payload["sse_per_query"]),
        query_count=int(payload["query_count"]),
        sampled_queries=int(payload["sampled_queries"]),
        exact=bool(payload["exact"]),
    )


def _save_sharded(arrays: dict, prefix: str, sharded: ShardedSynopsis) -> dict:
    """Store one sharded estimator's arrays; returns its manifest row."""
    arrays[f"{prefix}_starts"] = sharded.starts
    arrays[f"{prefix}_totals"] = sharded.totals
    arrays[f"{prefix}_budgets"] = sharded.budgets
    for shard, estimator in enumerate(sharded.estimators):
        arrays[f"{prefix}_shard{shard}"] = _blob(serialize_estimator(estimator))
    predictions = sharded.shard_predictions
    return {
        "method": sharded.method,
        "predictions": (
            None
            if predictions is None
            else [_prediction_to_json(p) for p in predictions]
        ),
    }


def _load_sharded(archive, prefix: str, meta: dict) -> ShardedSynopsis:
    starts = archive[f"{prefix}_starts"]
    shard_count = int(starts.size - 1)
    estimators = [
        deserialize_estimator(bytes(archive[f"{prefix}_shard{shard}"]))
        for shard in range(shard_count)
    ]
    raw_predictions = meta.get("predictions")
    predictions = (
        None
        if raw_predictions is None
        else [_prediction_from_json(p) for p in raw_predictions]
    )
    return ShardedSynopsis(
        starts,
        estimators,
        archive[f"{prefix}_totals"],
        archive[f"{prefix}_budgets"],
        meta["method"],
        shard_predictions=predictions,
    )


def save_catalog(engine: ApproximateQueryEngine, path) -> int:
    """Write every 1-D synopsis of ``engine`` to ``path`` (.npz).

    Returns the number of synopses written.  Stale synopses are written
    as-is; sharded entries also record their dirty-shard flags (``"all"``
    when the whole domain must rebuild), monolithic staleness is a
    session property and is dropped.
    """
    manifest = {"version": FORMAT_VERSION, "synopses": []}
    arrays: dict[str, np.ndarray] = {}
    for index, ((table, column), entry) in enumerate(sorted(engine._synopses.items())):
        row = {
            "table": table,
            "column": column,
            "method": entry.method,
            "budget_words": entry.budget_words,
            "layout": entry.statistics.layout,
            "lo": entry.statistics.lo,
            "hi": entry.statistics.hi,
            "row_count": entry.statistics.row_count,
            "shards": entry.shards,
        }
        if isinstance(entry.count_estimator, ShardedSynopsis):
            row["count_sharded"] = _save_sharded(
                arrays, f"{index}_count", entry.count_estimator
            )
            row["sum_sharded"] = _save_sharded(
                arrays, f"{index}_sum", entry.sum_estimator
            )
            dirty = engine._dirty_shards.get((table, column))
            if (table, column) in engine._stale:
                row["dirty_shards"] = "all" if dirty is None else sorted(dirty)
        else:
            arrays[f"{index}_count_blob"] = _blob(
                serialize_estimator(entry.count_estimator)
            )
            arrays[f"{index}_sum_blob"] = _blob(
                serialize_estimator(entry.sum_estimator)
            )
        arrays[f"{index}_values_axis"] = entry.statistics.values_axis
        arrays[f"{index}_count_freq"] = entry.statistics.count_frequencies
        arrays[f"{index}_sum_freq"] = entry.statistics.sum_frequencies
        manifest["synopses"].append(row)
    arrays["manifest"] = _blob(json.dumps(manifest).encode("utf-8"))
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)
    return len(manifest["synopses"])


def load_catalog(engine: ApproximateQueryEngine, path) -> int:
    """Restore synopses written by :func:`save_catalog` into ``engine``.

    Existing synopses for the same (table, column) are replaced; tables
    themselves are untouched (and need not exist).  Sharded entries come
    back with their shard boundaries, frozen per-shard predictions, and
    dirty-shard flags — entries with dirty shards are marked stale.
    Returns the number of synopses restored.
    """
    with np.load(path) as archive:
        try:
            manifest = json.loads(bytes(archive["manifest"]).decode("utf-8"))
        except KeyError as error:
            raise SerializationError(f"{path} is not a repro catalog") from error
        if manifest.get("version") not in _SUPPORTED_VERSIONS:
            raise SerializationError(
                f"unsupported catalog version {manifest.get('version')!r}"
            )
        for index, meta in enumerate(manifest["synopses"]):
            statistics = ColumnStatistics(
                lo=meta["lo"],
                hi=meta["hi"],
                values_axis=archive[f"{index}_values_axis"],
                count_frequencies=archive[f"{index}_count_freq"],
                sum_frequencies=archive[f"{index}_sum_freq"],
                row_count=int(meta["row_count"]),
                layout=meta["layout"],
            )
            predicted = None
            if "count_sharded" in meta:
                count_estimator = _load_sharded(
                    archive, f"{index}_count", meta["count_sharded"]
                )
                sum_estimator = _load_sharded(
                    archive, f"{index}_sum", meta["sum_sharded"]
                )
                sizes = np.diff(count_estimator.starts)
                count_prediction = aggregate_shard_predictions(
                    count_estimator.shard_predictions, sizes
                )
                sum_prediction = aggregate_shard_predictions(
                    sum_estimator.shard_predictions, sizes
                )
                if count_prediction is not None and sum_prediction is not None:
                    predicted = {"count": count_prediction, "sum": sum_prediction}
            else:
                count_estimator = deserialize_estimator(
                    bytes(archive[f"{index}_count_blob"])
                )
                sum_estimator = deserialize_estimator(
                    bytes(archive[f"{index}_sum_blob"])
                )
            entry = _ColumnSynopses(
                statistics=statistics,
                count_estimator=count_estimator,
                sum_estimator=sum_estimator,
                method=meta["method"],
                budget_words=int(meta["budget_words"]),
                builder_kwargs={},
                predicted=predicted,
                shards=int(meta.get("shards", 1)),
            )
            key = (meta["table"], meta["column"])
            engine._synopses[key] = entry
            engine._stale.discard(key)
            engine._dirty_shards.pop(key, None)
            dirty = meta.get("dirty_shards")
            if dirty is not None:
                engine._stale.add(key)
                engine._dirty_shards[key] = (
                    None if dirty == "all" else {int(shard) for shard in dirty}
                )
    return len(manifest["synopses"])
