"""Fault-tolerant build-and-serve policies for the engine.

The paper itself motivates graceful degradation: OPT-A's
pseudo-polynomial DP (Theorems 1-2) can blow any time budget on heavy
instances, while A0 (Theorem 10) and OPT-A-ROUNDED (Theorem 4) are
cheap substitutes with bounded quality loss.  This module turns that
observation into engine policy, the way AQUA-style systems and
self-tuning synopsis managers formalise it:

* :class:`~repro.internal.deadline.Deadline` (re-exported) — a
  cooperative time budget polled inside the DP inner loops; expiry
  raises :class:`~repro.errors.BuildTimeoutError`.
* :class:`FallbackChain` — an ordered ladder of builder rungs (e.g.
  ``sap1 -> a0 -> naive``) with per-rung retry-and-backoff; the engine
  walks it on timeout or failure and records which rung served.
* :class:`CircuitBreaker` — per-builder failure accounting; a builder
  that keeps failing in ``refresh_stale`` is *opened* for a cool-down
  and its entries keep serving stale instead of re-failing every
  refresh.
* :class:`DegradationPolicy` — the query-path serving ladder: fresh
  synopsis -> stale synopsis -> fallback estimator -> exact scan, with
  every answer tagged by the level that produced it.
* :class:`~repro.internal.faults.FaultInjector` (re-exported) — the
  deterministic chaos hook set the resilience tests drive.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.errors import InvalidParameterError
from repro.internal.deadline import (  # noqa: F401  (re-exported)
    Deadline,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from repro.internal.faults import (  # noqa: F401  (re-exported)
    FaultInjector,
    FaultRule,
    fault_point,
    transform_bytes,
)

#: The serving ladder, best to worst.  Every :class:`QueryResult` is
#: tagged with the level that produced it.  ``progressive`` — between
#: ``fallback`` and ``exact`` — answers immediately from the synopsis
#: with an honest confidence interval derived from the frozen error
#: model, then lets the serving tier's background refiner tighten it
#: (see :mod:`repro.serving.progressive`).
DEGRADATION_LEVELS = ("fresh", "stale", "fallback", "progressive", "exact")


@dataclass(frozen=True)
class FallbackStage:
    """One rung of a fallback chain: a builder plus retry policy.

    ``retries`` re-attempts the same rung on *failure* (faults are often
    transient); timeouts skip straight to the next rung because a
    deterministic DP that blew its budget once will blow it again.
    ``backoff_seconds`` sleeps between attempts, doubling each retry.
    """

    method: str
    retries: int = 0
    backoff_seconds: float = 0.0
    builder_kwargs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise InvalidParameterError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_seconds < 0:
            raise InvalidParameterError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )


class FallbackChain:
    """An ordered ladder of builder rungs tried until one succeeds.

    Parse one from CLI-style text with :meth:`parse`::

        FallbackChain.parse("sap1 -> a0 -> naive")
        FallbackChain.parse("sap1,a0,naive", retries=1, backoff_seconds=0.01)

    Methods must exist in :data:`repro.core.builders.BUILDER_REGISTRY`
    (validated eagerly so a typo fails at configuration time, not at
    the third rung of a production incident).
    """

    def __init__(self, stages) -> None:
        self.stages: list[FallbackStage] = [
            stage if isinstance(stage, FallbackStage) else FallbackStage(str(stage))
            for stage in stages
        ]
        if not self.stages:
            raise InvalidParameterError("a FallbackChain needs at least one stage")
        from repro.core.builders import BUILDER_REGISTRY

        for stage in self.stages:
            if stage.method != "auto" and stage.method not in BUILDER_REGISTRY:
                raise InvalidParameterError(
                    f"unknown builder {stage.method!r} in fallback chain; "
                    f"available: {sorted(BUILDER_REGISTRY)} or 'auto'"
                )

    @classmethod
    def parse(
        cls, text: str, *, retries: int = 0, backoff_seconds: float = 0.0
    ) -> "FallbackChain":
        """Build a chain from ``"m1 -> m2 -> m3"`` or ``"m1,m2,m3"``."""
        separators = "->" if "->" in text else ","
        names = [name.strip() for name in text.split(separators) if name.strip()]
        if not names:
            raise InvalidParameterError(f"empty fallback chain spec {text!r}")
        return cls(
            FallbackStage(name, retries=retries, backoff_seconds=backoff_seconds)
            for name in names
        )

    def methods(self) -> list[str]:
        return [stage.method for stage in self.stages]

    def __len__(self) -> int:
        return len(self.stages)

    def __repr__(self) -> str:  # pragma: no cover - debugging sugar
        return f"FallbackChain({' -> '.join(self.methods())})"


def jittered_backoff(
    base_seconds: float,
    attempt: int,
    *,
    rng: random.Random | None = None,
    jitter: float = 0.5,
) -> float:
    """Exponential backoff with multiplicative jitter.

    Returns ``base_seconds * 2**attempt`` scaled by a uniform factor in
    ``[1 - jitter, 1 + jitter]``.  Deterministic backoff synchronizes
    retries across a fleet of workers — after a shared fault they all
    re-attempt at the same instant and stampede the same resource;
    jitter decorrelates them.  Pass a seeded ``rng`` (anything with a
    ``.random()`` method: :class:`random.Random`, a numpy generator)
    for reproducible schedules in tests; ``rng=None`` uses the module
    default (process-seeded).  ``jitter=0.0`` reproduces the exact
    doubling schedule.
    """
    if base_seconds < 0:
        raise InvalidParameterError(
            f"base_seconds must be >= 0, got {base_seconds}"
        )
    if not 0.0 <= jitter < 1.0:
        raise InvalidParameterError(f"jitter must be in [0, 1), got {jitter}")
    if attempt < 0:
        raise InvalidParameterError(f"attempt must be >= 0, got {attempt}")
    delay = base_seconds * (2.0**attempt)
    if jitter == 0.0 or delay == 0.0:
        return delay
    draw = random.random() if rng is None else float(rng.random())
    return delay * (1.0 - jitter + 2.0 * jitter * draw)


def as_fallback_chain(value) -> FallbackChain | None:
    """Coerce ``None`` / str / iterable / chain into a chain (or None)."""
    if value is None or isinstance(value, FallbackChain):
        return value
    if isinstance(value, str):
        return FallbackChain.parse(value)
    return FallbackChain(value)


#: Circuit-breaker states (classic three-state machine).
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure accounting for one builder method.

    *Closed* admits every attempt.  After ``failure_threshold``
    consecutive failures the breaker *opens*: attempts are refused for
    ``cooldown_seconds`` (entries keep serving stale).  The first probe
    after the cool-down runs *half-open* — success closes the breaker,
    failure re-opens it for another cool-down.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown_seconds: float = 60.0,
        clock=None,
    ) -> None:
        if failure_threshold < 1:
            raise InvalidParameterError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_seconds <= 0:
            raise InvalidParameterError(
                f"cooldown_seconds must be > 0, got {cooldown_seconds}"
            )
        self.failure_threshold = int(failure_threshold)
        self.cooldown_seconds = float(cooldown_seconds)
        self._clock = clock
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self._half_open = False

    def _now(self) -> float:
        return time.perf_counter() if self._clock is None else self._clock.now()

    @property
    def state(self) -> str:
        if self.opened_at is None:
            return BREAKER_CLOSED
        if self._half_open or self._now() - self.opened_at >= self.cooldown_seconds:
            return BREAKER_HALF_OPEN
        return BREAKER_OPEN

    def allow(self) -> bool:
        """May an attempt proceed right now?

        Transitions open -> half-open when the cool-down has elapsed; in
        half-open exactly the next attempt is admitted as a probe.
        """
        state = self.state
        if state == BREAKER_CLOSED:
            return True
        if state == BREAKER_HALF_OPEN:
            self._half_open = True
            return True
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.opened_at = None
        self._half_open = False

    def record_failure(self) -> bool:
        """Count one failure; returns True when this failure opens the breaker."""
        self.consecutive_failures += 1
        was_open = self.opened_at is not None
        if self._half_open:
            # Failed probe: re-open for a fresh cool-down.
            self.opened_at = self._now()
            self._half_open = False
            return False
        if not was_open and self.consecutive_failures >= self.failure_threshold:
            self.opened_at = self._now()
            return True
        return False

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "failure_threshold": self.failure_threshold,
            "cooldown_seconds": self.cooldown_seconds,
            "opened_at": self.opened_at,
        }


@dataclass(frozen=True)
class DegradationPolicy:
    """Which rungs of the serving ladder a query may descend to.

    ``execute`` / ``execute_batch`` resolve answers fresh synopsis ->
    stale synopsis -> fallback estimator (uniform model over the
    column's frozen summary statistics) -> exact scan, stopping at the
    first admitted rung.  The default admits everything, so a query on
    a registered column *never raises* — it degrades.  Disallowing all
    rungs below ``fresh`` reproduces strict behaviour.
    """

    allow_stale: bool = True
    allow_fallback: bool = True
    allow_exact: bool = True
    #: Admit the ``progressive`` rung (between ``fallback`` and
    #: ``exact``): answer from the synopsis with a confidence interval
    #: instead of a bare point estimate.  Off by default so existing
    #: policies keep their exact serving behaviour.
    allow_progressive: bool = False

    def floor(self) -> str:
        if self.allow_exact:
            return "exact"
        if self.allow_progressive:
            return "progressive"
        if self.allow_fallback:
            return "fallback"
        if self.allow_stale:
            return "stale"
        return "fresh"


#: Serve-anything policy (the documented production default).
SERVE_ANYTHING = DegradationPolicy()

#: Estimates only — degrade through stale and the fallback model but
#: never pay a base-table scan.
ESTIMATES_ONLY = DegradationPolicy(allow_exact=False)

#: Strict freshness: any degradation raises instead of serving.
STRICT = DegradationPolicy(
    allow_stale=False, allow_fallback=False, allow_exact=False
)

#: Anytime serving: a degraded answer is an *interval* that a
#: background refiner tightens, never a bare stale estimate or a
#: uniform-model guess (both rungs lie silently; an interval does not).
ANYTIME = DegradationPolicy(
    allow_stale=False, allow_fallback=False, allow_progressive=True
)

#: Named presets accepted anywhere a policy is (CLI, execute paths).
DEGRADATION_PRESETS = {
    "serve_anything": SERVE_ANYTHING,
    "estimates_only": ESTIMATES_ONLY,
    "strict": STRICT,
    "anytime": ANYTIME,
}


def as_degradation_policy(value) -> DegradationPolicy | None:
    """Coerce ``None`` / preset name / policy into a policy (or None)."""
    if value is None or isinstance(value, DegradationPolicy):
        return value
    if isinstance(value, str):
        policy = DEGRADATION_PRESETS.get(value.strip().lower().replace("-", "_"))
        if policy is None:
            raise InvalidParameterError(
                f"unknown degradation policy {value!r}; "
                f"available: {sorted(DEGRADATION_PRESETS)}"
            )
        return policy
    raise InvalidParameterError(
        f"degradation must be a DegradationPolicy, preset name, or None, "
        f"got {type(value).__name__}"
    )
