"""Dyadic tree index over frozen per-shard totals.

A :class:`~repro.engine.sharding.ShardedSynopsis` answers the interior
of ``s[a, b]`` from the exact totals of its fully-covered shards.  A
flat sum over those totals is O(S) per query and, worse, any prefix
array cached over them is invalidated wholesale (an O(S) recompute)
every time one shard's total changes — which under streaming ingest is
*every* ``refresh_stale``.  This module replaces both with the classic
dyadic decomposition (the same one :mod:`repro.sketches.dyadic` uses
for Count-Min range queries): a complete binary tree whose level-0
leaves are the shard totals and whose level-``k`` nodes each hold the
sum of a ``2^k``-aligned block of shards.

* **answering** — any interior run ``[first, last]`` of shards is
  covered by at most ``2 log2(S)`` tree nodes, so a range resolves in
  O(log S) node reads (vectorised across a batch via dyadic prefix
  sums);
* **maintenance** — changing one shard's total touches exactly its
  ``depth + 1`` ancestors, so an incremental dirty-shard refresh keeps
  the index consistent in O(log S) per rebuilt shard instead of
  recomputing an O(S) prefix;
* **mergeability** — two trees over adjacent shard runs concatenate,
  and a compaction that merges a run of shards into one coarser shard
  is just a rebuild of the (smaller) tree.

With integer-valued totals (COUNT vectors always; SUM vectors over
integer attributes) every node value is an exact float64 integer, so
tree answers are *bit-identical* to flat summation in any order — the
differential suites assert exactly that.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.sketches.dyadic import dyadic_decompose
from repro.wavelets.haar import next_power_of_two


class DyadicShardTree:
    """Complete dyadic sum-tree over a vector of per-shard totals.

    The tree is stored as one float64 array per level: ``levels[0]`` is
    the totals padded with zeros to the next power of two, and
    ``levels[k][i] == levels[k-1][2i] + levels[k-1][2i + 1]`` — the
    node-equals-sum-of-children invariant checked by
    :meth:`check_invariant` and the property suites.
    """

    def __init__(self, totals) -> None:
        totals = np.asarray(totals, dtype=np.float64)
        if totals.ndim != 1 or totals.size < 1:
            raise InvalidParameterError(
                f"totals must be a non-empty 1-D vector, got shape {totals.shape}"
            )
        self.size = int(totals.size)
        self.padded = next_power_of_two(self.size)
        self.depth = int(self.padded.bit_length() - 1)
        level = np.zeros(self.padded, dtype=np.float64)
        level[: self.size] = totals
        self.levels: list[np.ndarray] = [level]
        for _ in range(self.depth):
            level = level[0::2] + level[1::2]
            self.levels.append(level)

    @classmethod
    def from_levels(cls, levels, size: int) -> "DyadicShardTree":
        """Rehydrate a tree from persisted level arrays (verifying shape).

        The caller is expected to follow up with :meth:`check_invariant`
        when the arrays come from an untrusted source (a persisted
        catalog); shape damage is rejected here directly.
        """
        tree = cls.__new__(cls)
        levels = [np.asarray(level, dtype=np.float64).copy() for level in levels]
        if not levels or levels[0].size < 1:
            raise InvalidParameterError("tree needs at least one non-empty level")
        tree.size = int(size)
        tree.padded = int(levels[0].size)
        tree.depth = len(levels) - 1
        if tree.padded != next_power_of_two(max(tree.size, 1)) or tree.size < 1:
            raise InvalidParameterError(
                f"level 0 has {tree.padded} slots; expected the next power of "
                f"two above size {size}"
            )
        for index, level in enumerate(levels):
            if level.size != tree.padded >> index:
                raise InvalidParameterError(
                    f"level {index} has {level.size} nodes, expected "
                    f"{tree.padded >> index}"
                )
        if levels[-1].size != 1:
            raise InvalidParameterError("top level must hold exactly the root")
        tree.levels = levels
        return tree

    # ------------------------------------------------------------------
    # Geometry / accounting
    # ------------------------------------------------------------------
    @property
    def nodes_per_update(self) -> int:
        """Tree nodes rewritten by one :meth:`update` (leaf + ancestors)."""
        return self.depth + 1

    @property
    def node_count(self) -> int:
        return sum(level.size for level in self.levels)

    @property
    def root(self) -> float:
        """The whole-domain total (sum of every shard)."""
        return float(self.levels[-1][0])

    def leaf_totals(self) -> np.ndarray:
        """The live per-shard totals (a copy, unpadded)."""
        return self.levels[0][: self.size].copy()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def update(self, shard: int, new_total: float) -> int:
        """Set one shard's total, rewriting its ``depth + 1`` ancestors.

        Returns the number of nodes rewritten (always
        :attr:`nodes_per_update`) so callers can account node refreshes.
        """
        if not 0 <= shard < self.size:
            raise InvalidParameterError(
                f"shard {shard} out of range [0, {self.size})"
            )
        self.levels[0][shard] = float(new_total)
        for level in range(1, self.depth + 1):
            parent = shard >> level
            child = parent * 2
            self.levels[level][parent] = (
                self.levels[level - 1][child] + self.levels[level - 1][child + 1]
            )
        return self.nodes_per_update

    def updated(self, shards, new_totals) -> tuple["DyadicShardTree", int]:
        """A copy of this tree with the given shard totals replaced.

        Copy-on-write companion of
        :meth:`~repro.engine.sharding.ShardedSynopsis.with_rebuilt_shards`:
        the level arrays are copied once (a memcpy, not a prefix
        recompute) and each changed shard costs O(log S) node rewrites.
        Returns ``(tree, nodes_rewritten)``.
        """
        shards = list(shards)
        new_totals = np.asarray(new_totals, dtype=np.float64)
        if len(shards) != new_totals.size:
            raise InvalidParameterError(
                "shards and new_totals must be parallel sequences"
            )
        clone = DyadicShardTree.__new__(DyadicShardTree)
        clone.size = self.size
        clone.padded = self.padded
        clone.depth = self.depth
        clone.levels = [level.copy() for level in self.levels]
        refreshed = 0
        for shard, total in zip(shards, new_totals.tolist()):
            refreshed += clone.update(int(shard), total)
        return clone, refreshed

    # ------------------------------------------------------------------
    # Answering
    # ------------------------------------------------------------------
    def prefix_many(self, counts) -> np.ndarray:
        """Vectorised dyadic prefix sums: ``out[i] = sum(totals[:counts[i]])``.

        Each prefix ``[0, k)`` decomposes into one aligned block per set
        bit of ``k`` (the block for bit ``l`` starts at ``k`` with its
        low ``l + 1`` bits cleared), so the whole batch resolves in
        ``depth + 1`` vectorised gathers — O(log S) per query with no
        python-level loop over queries.
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.size and (counts.min() < 0 or counts.max() > self.size):
            raise InvalidParameterError(
                f"prefix counts must lie in [0, {self.size}]"
            )
        result = np.zeros(counts.shape, dtype=np.float64)
        # Unmasked gather-multiply beats boolean masking here: the bit
        # selects via a 0/1 factor, so each level is one shift, one
        # gather, one fused multiply-add over the whole batch.  The
        # gathered node is exact even when the bit is 0 (the index is
        # still in range), and 0.0 * node adds exactly 0.0 in IEEE-754
        # for every finite node value, so answers are bit-identical to
        # the masked form.
        for level in range(self.depth + 1):
            bits = (counts >> level) & 1
            nodes = (counts >> (level + 1)) * 2
            # A node index can only run off the level's end when its bit
            # is 0 (counts == padded size), where the factor kills the
            # term anyway — clamp so the gather stays in bounds.
            np.minimum(nodes, self.levels[level].size - 1, out=nodes)
            result += self.levels[level][nodes] * bits
        return result

    def range_sum_many(self, firsts, lasts) -> np.ndarray:
        """Vectorised interior sums ``sum(totals[first..last])`` (inclusive)."""
        firsts = np.asarray(firsts, dtype=np.int64)
        lasts = np.asarray(lasts, dtype=np.int64)
        if firsts.size and np.any(firsts > lasts):
            raise InvalidParameterError("every first must be <= its last")
        return self.prefix_many(lasts + 1) - self.prefix_many(firsts)

    def range_sum(self, first: int, last: int) -> float:
        """Scalar interior sum via the canonical dyadic block cover.

        Reuses :func:`repro.sketches.dyadic.dyadic_decompose` — the same
        ≤ ``2 log2(S)``-block cover the Count-Min estimator walks — so
        tests can cross-check the prefix-difference path against direct
        block summation.
        """
        first, last = int(first), int(last)
        if not 0 <= first <= last < self.size:
            raise InvalidParameterError(
                f"range [{first}, {last}] out of bounds for {self.size} shards"
            )
        total = 0.0
        for level, block in dyadic_decompose(first, last, self.depth):
            total += float(self.levels[level][block])
        return total

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def check_invariant(self) -> bool:
        """Whether every node equals the sum of its two children.

        Also checks that the padding slots beyond :attr:`size` are
        exactly zero (a corrupted pad would silently shift every
        aligned answer).  Used by the property suites and by catalog
        loading to verify persisted trees.
        """
        if np.any(self.levels[0][self.size :] != 0.0):
            return False
        for level in range(1, self.depth + 1):
            below = self.levels[level - 1]
            if not np.array_equal(self.levels[level], below[0::2] + below[1::2]):
                return False
        return True
