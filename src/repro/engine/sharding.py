"""Sharded synopses: partitioned domains with mergeable range answers.

The ROADMAP's next scaling axis.  A :class:`ShardedSynopsis` partitions
a column's frequency-vector domain ``[0, n)`` into ``S`` contiguous
shards, builds an independent synopsis per shard (any builder from
:data:`repro.core.builders.BUILDER_REGISTRY`, with the word budget split
across shards proportionally to per-shard mass), and answers a range sum
``s[a, b]`` by the paper's own decomposition identity
(``s[a, b] = P[b] - P[a - 1]``, Section 2):

    s[a, b]  =  sum of exact totals of fully-covered interior shards
              + estimated partial sums from the <= 2 boundary shards

Shard-aligned cuts therefore answer *exactly* (no interior error, no
partials), and an arbitrary range pays only the usual synopsis error
inside the at-most-two boundary shards.  Because the class implements
the :class:`~repro.queries.estimators.RangeSumEstimator` protocol, it
drops into every existing engine path — scalar execute, the vectorised
batch pipeline, quantile inversion, and the online auditor — unchanged.

The payoff beyond accuracy is *incremental maintenance*: appends that
touch only some shards dirty only those shards, and the engine rebuilds
exactly the dirty ones (see
:meth:`repro.engine.engine.ApproximateQueryEngine.refresh_stale`),
turning the O(n^2 B)-per-column rebuild cliff of the OPT-A/SAP DPs into
an O((n/S)^2 B)-per-dirty-shard cost.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.builders import (
    BUILDER_REGISTRY,
    POOL_AWARE_BUILDERS,
    build_by_name,
    merge_shard_budgets,
    predict_sse_per_query,
    split_budget_by_mass,
)
from repro.engine.shard_tree import DyadicShardTree
from repro.errors import InvalidParameterError
from repro.internal.faults import fault_point
from repro.queries.estimators import RangeSumEstimator

#: Interior-answering modes: ``"tree"`` resolves fully-covered shards
#: through the :class:`~repro.engine.shard_tree.DyadicShardTree`
#: (O(log S) per query, O(log S) maintenance per rebuilt shard);
#: ``"flat"`` keeps the legacy cumulative-prefix array (O(S) to rebuild
#: on every refresh).  Answers are bit-identical on integer-valued
#: totals — the differential suites pin that.
INTERIOR_MODES = ("tree", "flat")


class _kernel_pool:
    """Context manager yielding builder kwargs with a shared kernel pool.

    When ``method`` is pool-aware and ``kernel_workers >= 2``, one
    ``ThreadPoolExecutor`` is shared by every shard's row precompute
    (see :func:`repro.internal.parallel.map_rows`) so concurrent shard
    rebuilds overlap kernel work without multiplying thread counts.
    Otherwise the kwargs pass through untouched.
    """

    def __init__(self, method: str, kernel_workers, builder_kwargs) -> None:
        if kernel_workers is not None and (
            not isinstance(kernel_workers, int)
            or isinstance(kernel_workers, bool)
            or kernel_workers < 0
        ):
            raise InvalidParameterError(
                f"kernel_workers must be a non-negative int, got {kernel_workers!r}"
            )
        self.method = method
        self.kernel_workers = kernel_workers
        self.builder_kwargs = builder_kwargs
        self.executor = None

    def __enter__(self):
        if (
            self.kernel_workers is not None
            and self.kernel_workers >= 2
            and self.method in POOL_AWARE_BUILDERS
            and "pool" not in self.builder_kwargs
        ):
            from concurrent.futures import ThreadPoolExecutor

            self.executor = ThreadPoolExecutor(max_workers=self.kernel_workers)
            return {**self.builder_kwargs, "pool": self.executor}
        return self.builder_kwargs

    def __exit__(self, *exc_info):
        if self.executor is not None:
            self.executor.shutdown()
        return False


def shard_boundaries(n: int, shards: int) -> np.ndarray:
    """Start offsets of ``shards`` contiguous, non-empty partitions of
    ``[0, n)``: an ``int64`` array of length ``shards + 1`` with
    ``starts[0] == 0`` and ``starts[-1] == n``.
    """
    if n < 1:
        raise InvalidParameterError(f"domain size must be >= 1, got {n}")
    if shards < 1:
        raise InvalidParameterError(f"shards must be >= 1, got {shards}")
    shards = min(int(shards), int(n))
    return (np.arange(shards + 1, dtype=np.int64) * n) // shards


class ShardedSynopsis(RangeSumEstimator):
    """A range-sum estimator composed of per-shard synopses.

    Parameters
    ----------
    starts:
        Shard start offsets (length ``S + 1``, see
        :func:`shard_boundaries`).
    estimators:
        One :class:`RangeSumEstimator` per shard, each over its shard's
        slice of the frequency vector.
    totals:
        Exact per-shard totals (``data[starts[i]:starts[i+1]].sum()``),
        frozen at build time — these answer fully-covered shards.
    budgets:
        The word budget each shard was allotted (recorded so a dirty
        shard can be rebuilt with its original allocation).
    method:
        Registry name of the per-shard builder.
    shard_predictions:
        Optional per-shard :class:`~repro.core.builders.ErrorPrediction`
        list (``None`` entries allowed), frozen at build time so an
        incremental refresh can reuse the untouched shards' models.
    """

    def __init__(
        self,
        starts,
        estimators,
        totals,
        budgets,
        method: str,
        shard_predictions=None,
        *,
        interior: str = "tree",
        tree: DyadicShardTree | None = None,
        lineage=None,
    ) -> None:
        self.starts = np.asarray(starts, dtype=np.int64)
        if self.starts.ndim != 1 or self.starts.size < 2:
            raise InvalidParameterError("starts must be a 1-D array of length >= 2")
        if int(self.starts[0]) != 0 or np.any(np.diff(self.starts) < 1):
            raise InvalidParameterError(
                "starts must begin at 0 and be strictly increasing"
            )
        self.estimators = list(estimators)
        if len(self.estimators) != self.num_shards:
            raise InvalidParameterError(
                f"{self.num_shards} shards need {self.num_shards} estimators, "
                f"got {len(self.estimators)}"
            )
        self.totals = np.asarray(totals, dtype=np.float64)
        if self.totals.shape != (self.num_shards,):
            raise InvalidParameterError("totals must have one entry per shard")
        self.budgets = np.asarray(budgets, dtype=np.int64)
        if self.budgets.shape != (self.num_shards,):
            raise InvalidParameterError("budgets must have one entry per shard")
        self.method = str(method)
        if shard_predictions is not None and len(shard_predictions) != self.num_shards:
            raise InvalidParameterError(
                "shard_predictions must have one entry per shard"
            )
        self.shard_predictions = (
            list(shard_predictions) if shard_predictions is not None else None
        )
        if interior not in INTERIOR_MODES:
            raise InvalidParameterError(
                f"interior must be one of {INTERIOR_MODES}, got {interior!r}"
            )
        self.interior = interior
        if tree is None:
            tree = DyadicShardTree(self.totals)
        elif tree.size != self.num_shards:
            raise InvalidParameterError(
                f"tree indexes {tree.size} shards, synopsis has {self.num_shards}"
            )
        #: Dyadic index over the frozen totals; the interior-answering
        #: engine in ``"tree"`` mode and the maintenance fast path of
        #: :meth:`with_rebuilt_shards` both live here.  Derived state —
        #: reconstructible from ``totals`` — so it is excluded from the
        #: paper's storage accounting, like the prefix array before it.
        self.tree = tree
        #: Compaction history: one record per :meth:`with_compacted_runs`
        #: generation (persisted by catalog format v4).
        self.lineage: list[dict] = list(lineage) if lineage is not None else []
        self.n = int(self.starts[-1])
        self._totals_prefix = np.concatenate(([0.0], np.cumsum(self.totals)))

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return int(self.starts.size - 1)

    def shard_of(self, indices) -> np.ndarray:
        """Shard id containing each 0-indexed domain position."""
        return np.searchsorted(self.starts, np.asarray(indices), side="right") - 1

    def shard_slice(self, shard: int) -> slice:
        """The half-open domain slice covered by one shard."""
        return slice(int(self.starts[shard]), int(self.starts[shard + 1]))

    @property
    def tree_depth(self) -> int:
        """Depth of the dyadic interior index (``ceil(log2(S))``)."""
        return self.tree.depth

    @property
    def compaction_generation(self) -> int:
        """How many compaction passes produced this geometry (0 = none)."""
        return len(self.lineage)

    def interior_sum_many(self, firsts, lasts) -> np.ndarray:
        """Exact sums over fully-covered shard runs ``[first..last]``.

        ``"tree"`` mode walks the dyadic index (O(log S) per query,
        vectorised across the batch); ``"flat"`` mode keeps the legacy
        cumulative-prefix difference.  On integer-valued totals the two
        are bit-identical (every partial sum is an exact float64
        integer); the differential suite pins that equivalence for
        every builder in the registry.
        """
        firsts = np.asarray(firsts, dtype=np.int64)
        lasts = np.asarray(lasts, dtype=np.int64)
        if self.interior == "tree":
            return self.tree.range_sum_many(firsts, lasts)
        return self._totals_prefix[lasts + 1] - self._totals_prefix[firsts]

    def _coverage(self, lows: np.ndarray, highs: np.ndarray):
        """Decompose ranges into interior shards and boundary partials.

        Returns ``(left, right, left_full, right_full)`` where ``left``/
        ``right`` are the shard ids containing each range's endpoints and
        the ``*_full`` masks say whether that endpoint shard is fully
        covered (and therefore answered exactly from its frozen total).
        """
        left = np.searchsorted(self.starts, lows, side="right") - 1
        right = np.searchsorted(self.starts, highs, side="right") - 1
        left_full = (lows <= self.starts[left]) & (highs >= self.starts[left + 1] - 1)
        right_full = (lows <= self.starts[right]) & (highs >= self.starts[right + 1] - 1)
        return left, right, left_full, right_full

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def estimate_many(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Vectorised merge of exact interior totals and boundary estimates."""
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        left, right, left_full, right_full = self._coverage(lows, highs)
        first_full = np.where(left_full, left, left + 1)
        last_full = np.where(right_full, right, right - 1)
        has_interior = first_full <= last_full
        estimates = np.zeros(lows.shape, dtype=np.float64)
        if np.any(has_interior):
            estimates[has_interior] = self.interior_sum_many(
                first_full[has_interior], last_full[has_interior]
            )

        # Boundary partials: the left endpoint's shard when not fully
        # covered (its local range also caps at the query's high when the
        # whole query sits inside one shard), and the right endpoint's
        # shard when distinct and not fully covered.
        left_mask = ~left_full
        right_mask = ~right_full & (right != left)
        partial_shards = np.concatenate((left[left_mask], right[right_mask]))
        if partial_shards.size:
            shard_starts = self.starts[:-1]
            shard_ends = self.starts[1:] - 1
            partial_lows = np.concatenate(
                (
                    np.maximum(lows[left_mask], shard_starts[left[left_mask]])
                    - shard_starts[left[left_mask]],
                    np.zeros(int(right_mask.sum()), dtype=np.int64),
                )
            )
            partial_highs = np.concatenate(
                (
                    np.minimum(highs[left_mask], shard_ends[left[left_mask]])
                    - shard_starts[left[left_mask]],
                    highs[right_mask] - shard_starts[right[right_mask]],
                )
            )
            out_positions = np.concatenate(
                (np.nonzero(left_mask)[0], np.nonzero(right_mask)[0])
            )
            for shard in np.unique(partial_shards):
                mask = partial_shards == shard
                values = np.asarray(
                    self.estimators[shard].estimate_many(
                        partial_lows[mask], partial_highs[mask]
                    ),
                    dtype=np.float64,
                )
                np.add.at(estimates, out_positions[mask], values)
        return estimates

    def partial_shards(self, low: int, high: int) -> list[int]:
        """Shard ids answered by *estimation* for one clipped range.

        The range's interior shards are answered exactly from frozen
        totals, so the only estimated mass sits in the (at most two)
        partially-covered endpoint shards returned here.  Shard-aligned
        ranges return ``[]`` — their answers carry no synopsis error.
        """
        lows = np.asarray([low], dtype=np.int64)
        highs = np.asarray([high], dtype=np.int64)
        left, right, left_full, right_full = self._coverage(lows, highs)
        shards: list[int] = []
        if not bool(left_full[0]):
            shards.append(int(left[0]))
        if not bool(right_full[0]) and int(right[0]) != int(left[0]):
            shards.append(int(right[0]))
        return shards

    def boundary_sse(self, low: int, high: int) -> float | None:
        """Summed frozen SSE-per-query of one range's partial shards.

        The progressive serving tier derives its initial confidence
        interval from this: a range's error is the sum of its boundary
        partials' errors, and each partial shard's frozen
        :class:`~repro.core.builders.ErrorPrediction` models that
        shard's local range error.  Returns ``None`` when any involved
        shard lacks a frozen model (the caller falls back to the
        entry-level prediction); 0.0 for shard-aligned ranges.
        """
        if self.shard_predictions is None:
            return None
        total = 0.0
        for shard in self.partial_shards(low, high):
            prediction = self.shard_predictions[shard]
            if prediction is None:
                return None
            total += float(prediction.sse_per_query)
        return total

    def boundary_stats(self, lows, highs) -> tuple[int, int]:
        """``(queries touching a partial shard, partial estimates issued)``.

        The engine's boundary-shard hit-rate metrics are derived from
        these counts; shard-aligned queries contribute zero to both.
        """
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        left, right, left_full, right_full = self._coverage(lows, highs)
        left_partial = ~left_full
        right_partial = ~right_full & (right != left)
        partials = int(left_partial.sum()) + int(right_partial.sum())
        boundary_queries = int((left_partial | right_partial).sum())
        return boundary_queries, partials

    # ------------------------------------------------------------------
    # Accounting / protocol
    # ------------------------------------------------------------------
    def storage_words(self) -> int:
        """Per-shard synopses plus the shard directory.

        The directory follows the paper's accounting: one word per shard
        boundary (``S + 1``) and one per frozen exact total (``S``).
        """
        return (
            sum(estimator.storage_words() for estimator in self.estimators)
            + self.starts.size
            + self.totals.size
        )

    @property
    def name(self) -> str:
        inner = self.estimators[0].name if self.estimators else self.method
        return f"sharded[{self.num_shards}]x{inner}"

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def with_rebuilt_shards(
        self,
        dirty,
        data,
        *,
        predict: bool | None = None,
        on_shard_built=None,
        kernel_workers: int | None = None,
        budgets=None,
        **builder_kwargs,
    ) -> "ShardedSynopsis":
        """A new synopsis with only ``dirty`` shards rebuilt from ``data``.

        ``data`` is the *whole* refreshed frequency vector (same domain
        as this synopsis).  Untouched shards keep their estimators and
        frozen predictions by reference; dirty shards rebuild with their
        originally-allotted word budgets, unless ``budgets`` (a full
        per-shard vector) overrides them — entries for shards *not* in
        ``dirty`` must equal the current budgets, since those shards'
        estimators are kept as-is.  ``predict`` defaults to whether this
        synopsis carries predictions at all.  ``kernel_workers >= 2``
        shares one thread pool across the dirty rebuilds' row
        precomputes when the method is pool-aware (results bit-identical
        either way).
        """
        data = np.asarray(data, dtype=np.float64)
        if data.size != self.n:
            raise InvalidParameterError(
                f"refresh data has length {data.size}, expected {self.n}"
            )
        dirty = sorted({int(shard) for shard in dirty})
        if dirty and (dirty[0] < 0 or dirty[-1] >= self.num_shards):
            raise InvalidParameterError(
                f"dirty shard ids must be in [0, {self.num_shards}), got {dirty}"
            )
        if budgets is None:
            budgets = self.budgets
        else:
            budgets = np.asarray(budgets, dtype=np.int64)
            if budgets.shape != self.budgets.shape:
                raise InvalidParameterError(
                    f"budget override must have one entry per shard "
                    f"({self.num_shards}), got shape {budgets.shape}"
                )
            untouched = np.ones(self.num_shards, dtype=bool)
            untouched[dirty] = False
            if np.any(budgets[untouched] != self.budgets[untouched]):
                changed = np.nonzero(
                    untouched & (budgets != self.budgets)
                )[0].tolist()
                raise InvalidParameterError(
                    f"budget override changes shards {changed} that are not "
                    "being rebuilt; their estimators would no longer match "
                    "their budgets"
                )
        if predict is None:
            predict = self.shard_predictions is not None
        estimators = list(self.estimators)
        predictions = (
            list(self.shard_predictions)
            if self.shard_predictions is not None
            else [None] * self.num_shards
        )
        totals = self.totals.copy()
        with _kernel_pool(self.method, kernel_workers, builder_kwargs) as kwargs:
            for shard in dirty:
                piece = data[self.shard_slice(shard)]
                fault_point("shard_rebuild", method=self.method, shard=shard)
                start = time.perf_counter()
                estimators[shard] = build_by_name(
                    self.method, piece, int(budgets[shard]), **kwargs
                )
                elapsed = time.perf_counter() - start
                totals[shard] = float(piece.sum())
                if predict:
                    predictions[shard] = predict_sse_per_query(estimators[shard], piece)
                if on_shard_built is not None:
                    on_shard_built(shard, elapsed)
        # O(log S) per rebuilt shard: copy the dyadic index and rewrite
        # only the changed leaves' ancestor paths, instead of
        # recomputing an O(S) prefix from scratch.
        tree, _ = self.tree.updated(dirty, totals[dirty])
        return ShardedSynopsis(
            self.starts,
            estimators,
            totals,
            budgets,
            self.method,
            shard_predictions=predictions if predict else None,
            interior=self.interior,
            tree=tree,
            lineage=self.lineage,
        )

    def with_compacted_runs(
        self,
        runs,
        data,
        *,
        predict: bool | None = None,
        on_shard_built=None,
        kernel_workers: int | None = None,
        **builder_kwargs,
    ) -> "ShardedSynopsis":
        """A new synopsis with each run of adjacent shards merged into one.

        ``runs`` is a sorted list of non-overlapping inclusive shard-id
        pairs ``(first, last)`` (each spanning at least two shards);
        ``data`` is the whole frozen frequency vector the synopsis
        summarises.  Every run collapses into a single coarser shard
        whose synopsis is rebuilt over the merged slice with the *sum*
        of the run's word budgets
        (:func:`repro.core.builders.merge_shard_budgets` — the
        mass-proportional split run in reverse), so total storage
        allocation is conserved.  Untouched shards keep their
        estimators, frozen totals, and predictions by reference —
        copy-on-write exactly like :meth:`with_rebuilt_shards` — and
        the compaction is appended to :attr:`lineage`.

        The t-digest "continuous aggregate" move: cold history collapses
        into coarser mergeable summaries while hot shards stay fine,
        without ever blocking ingest (callers swap the returned synopsis
        in atomically; see
        :meth:`repro.engine.engine.ApproximateQueryEngine.compact_shards`).
        """
        data = np.asarray(data, dtype=np.float64)
        if data.size != self.n:
            raise InvalidParameterError(
                f"compaction data has length {data.size}, expected {self.n}"
            )
        runs = [(int(first), int(last)) for first, last in runs]
        if not runs:
            raise InvalidParameterError("need at least one run to compact")
        # Validates bounds, ordering, non-overlap, and run length >= 2,
        # and pools the merged budgets.
        budgets = merge_shard_budgets(self.budgets, runs)
        merged = {
            shard for first, last in runs for shard in range(first, last + 1)
        }
        run_of_first = {first: (first, last) for first, last in runs}

        starts: list[int] = []
        estimators = []
        totals: list[float] = []
        predictions = []
        if predict is None:
            predict = self.shard_predictions is not None
        old_predictions = (
            self.shard_predictions
            if self.shard_predictions is not None
            else [None] * self.num_shards
        )
        with _kernel_pool(self.method, kernel_workers, builder_kwargs) as kwargs:
            shard = 0
            new_budget_cursor = 0
            while shard < self.num_shards:
                starts.append(int(self.starts[shard]))
                if shard in run_of_first:
                    first, last = run_of_first[shard]
                    piece = data[int(self.starts[first]) : int(self.starts[last + 1])]
                    fault_point("shard_compact", method=self.method, shard=first)
                    begin = time.perf_counter()
                    estimator = build_by_name(
                        self.method, piece, int(budgets[new_budget_cursor]), **kwargs
                    )
                    elapsed = time.perf_counter() - begin
                    estimators.append(estimator)
                    totals.append(float(piece.sum()))
                    predictions.append(
                        predict_sse_per_query(estimator, piece) if predict else None
                    )
                    if on_shard_built is not None:
                        on_shard_built(first, elapsed)
                    shard = last + 1
                elif shard in merged:  # pragma: no cover - guarded by run map
                    raise InvalidParameterError("runs must start at their first shard")
                else:
                    estimators.append(self.estimators[shard])
                    totals.append(float(self.totals[shard]))
                    predictions.append(old_predictions[shard])
                    shard += 1
                new_budget_cursor += 1
        starts.append(self.n)
        lineage = self.lineage + [
            {
                "generation": self.compaction_generation + 1,
                "runs": [[first, last] for first, last in runs],
                "shards_before": self.num_shards,
                "shards_after": len(estimators),
            }
        ]
        return ShardedSynopsis(
            np.asarray(starts, dtype=np.int64),
            estimators,
            np.asarray(totals, dtype=np.float64),
            budgets,
            self.method,
            shard_predictions=predictions if predict else None,
            interior=self.interior,
            lineage=lineage,
        )

    def touched_shards(self, values_axis: np.ndarray, values) -> set[int] | None:
        """Shard ids a batch of appended raw values lands in.

        ``values_axis`` maps frequency-vector indices to raw attribute
        values (see :class:`~repro.engine.column.ColumnStatistics`).
        Returns ``None`` when any value falls outside the axis — the
        domain itself would change, so every shard must be considered
        dirty.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return set()
        axis = np.asarray(values_axis, dtype=np.float64)
        positions = np.searchsorted(axis, values, side="left")
        if np.any(positions >= axis.size):
            return None
        if not np.allclose(axis[positions], values):
            return None
        return {int(shard) for shard in np.unique(self.shard_of(positions))}


def build_sharded(
    method: str,
    data,
    budget_words: int,
    shards: int,
    *,
    parallel: bool = True,
    max_workers: int | None = None,
    predict: bool = False,
    on_shard_built=None,
    kernel_workers: int | None = None,
    interior: str = "tree",
    **builder_kwargs,
) -> ShardedSynopsis:
    """Build a :class:`ShardedSynopsis` over a frequency vector.

    The domain is cut into ``shards`` contiguous, equal-width index
    partitions (clamped to the domain size) and ``budget_words`` is
    split across them proportionally to per-shard absolute mass (see
    :func:`repro.core.builders.split_budget_by_mass`).  ``parallel``
    builds the per-shard synopses on a thread pool — they are
    independent and the numpy DP kernels release the GIL — with results
    identical to a serial build.  ``predict`` freezes a per-shard
    :class:`~repro.core.builders.ErrorPrediction` for the engine's
    online auditor; ``on_shard_built(shard, seconds)`` observes each
    shard's build wall-time (the engine points it at a metrics
    histogram).  ``kernel_workers >= 2`` additionally shares one thread
    pool across every shard's row-kernel precompute when the method is
    pool-aware (see :data:`repro.core.builders.POOL_AWARE_BUILDERS`);
    results are bit-identical with or without it.
    """
    if method not in BUILDER_REGISTRY:
        raise InvalidParameterError(
            f"unknown builder {method!r}; available: {sorted(BUILDER_REGISTRY)}"
        )
    data = np.asarray(data, dtype=np.float64)
    starts = shard_boundaries(data.size, shards)
    budgets = split_budget_by_mass(method, data, starts, budget_words)
    shard_count = starts.size - 1

    with _kernel_pool(method, kernel_workers, builder_kwargs) as kwargs:

        def _build_one(shard: int):
            piece = data[starts[shard] : starts[shard + 1]]
            fault_point("shard_build", method=method, shard=shard)
            begin = time.perf_counter()
            estimator = build_by_name(method, piece, int(budgets[shard]), **kwargs)
            elapsed = time.perf_counter() - begin
            prediction = predict_sse_per_query(estimator, piece) if predict else None
            return estimator, float(piece.sum()), prediction, elapsed

        if parallel and shard_count > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                built = list(pool.map(_build_one, range(shard_count)))
        else:
            built = [_build_one(shard) for shard in range(shard_count)]

    estimators = [item[0] for item in built]
    totals = np.asarray([item[1] for item in built], dtype=np.float64)
    predictions = [item[2] for item in built] if predict else None
    if on_shard_built is not None:
        for shard, item in enumerate(built):
            on_shard_built(shard, item[3])
    return ShardedSynopsis(
        starts,
        estimators,
        totals,
        budgets,
        method,
        shard_predictions=predictions,
        interior=interior,
    )
