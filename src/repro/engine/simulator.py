"""Query-traffic simulation against the engine.

System-level evaluation: replay a stream of aggregates (optionally
interleaved with inserts) against an engine and summarise the error
profile — the view an operator cares about, as opposed to the
per-synopsis SSE the construction benchmarks report.  Used by the
``workload_replay`` example and the engine benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.engine import AggregateQuery, ApproximateQueryEngine
from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class TrafficSpec:
    """Shape of a synthetic query stream over one table column."""

    table: str
    column: str
    query_count: int = 500
    aggregates: tuple = ("count", "count", "sum", "avg")  # weighted mix
    insert_every: int | None = None  # insert a row batch every k queries
    insert_batch: int = 100
    seed: int = 0


@dataclass
class SimulationReport:
    """Error profile of one replay."""

    queries: int = 0
    inserts: int = 0
    rebuilds: int = 0
    relative_errors: list = field(default_factory=list)

    @property
    def mean_relative_error(self) -> float:
        """Raw mean — can explode when queries hit near-empty ranges
        (tiny exact answers make relative error unbounded); prefer the
        median/p95 for headline comparisons."""
        return float(np.mean(self.relative_errors)) if self.relative_errors else 0.0

    @property
    def median_relative_error(self) -> float:
        return float(np.median(self.relative_errors)) if self.relative_errors else 0.0

    @property
    def p95_relative_error(self) -> float:
        return (
            float(np.percentile(self.relative_errors, 95))
            if self.relative_errors
            else 0.0
        )

    @property
    def max_relative_error(self) -> float:
        return float(np.max(self.relative_errors)) if self.relative_errors else 0.0

    def summary(self) -> str:
        return (
            f"{self.queries} queries, {self.inserts} inserts, "
            f"{self.rebuilds} rebuilds | rel.err median "
            f"{self.median_relative_error:.2%} p95 {self.p95_relative_error:.2%}"
        )


def simulate_traffic(
    engine: ApproximateQueryEngine,
    spec: TrafficSpec,
    *,
    on_stale: str = "serve",
    audit_rate: float = 0.0,
) -> SimulationReport:
    """Replay a synthetic stream and collect the error profile.

    Ranges are drawn uniformly over the column's observed raw domain;
    inserts draw from the same empirical distribution (so the data
    drifts in volume but not in shape).  ``on_stale`` and ``audit_rate``
    are forwarded to
    :meth:`~repro.engine.engine.ApproximateQueryEngine.execute`, which
    is what makes the staleness policies comparable and lets a replay
    exercise the online error auditor end to end.
    """
    if spec.query_count < 1:
        raise InvalidParameterError("query_count must be >= 1")
    rng = np.random.default_rng(spec.seed)
    table = engine.table(spec.table)
    values = table.column(spec.column)
    lo, hi = float(values.min()), float(values.max())
    report = SimulationReport()

    for step in range(spec.query_count):
        if (
            spec.insert_every
            and step > 0
            and step % spec.insert_every == 0
        ):
            sample = rng.choice(values, size=spec.insert_batch)
            rows = {
                name: (
                    sample
                    if name == spec.column
                    else rng.choice(engine.table(spec.table).column(name), spec.insert_batch)
                )
                for name in engine.table(spec.table).column_names()
            }
            engine.append_rows(spec.table, rows)
            report.inserts += spec.insert_batch
        was_stale = (spec.table, spec.column) in set(engine.stale_synopses())
        low, high = sorted(rng.uniform(lo, hi, 2).tolist())
        aggregate = spec.aggregates[int(rng.integers(0, len(spec.aggregates)))]
        result = engine.execute(
            AggregateQuery(spec.table, spec.column, aggregate, low, high),
            with_exact=True,
            on_stale=on_stale,
            audit_rate=audit_rate,
        )
        if was_stale and on_stale == "rebuild":
            report.rebuilds += 1
        report.queries += 1
        report.relative_errors.append(result.relative_error)
    return report
