"""A small SQL dialect for range aggregates.

Grammar (case-insensitive keywords)::

    SELECT COUNT(*) | SUM(col) | AVG(col)
    FROM <table>
    [WHERE <col> BETWEEN <low> AND <high>
         | <col> >= <low> [AND <col> <= <high>]
         | <col> <= <high>
         | <col> = <value>]

The predicate column must match the aggregated column for SUM/AVG (the
synopses summarise one attribute at a time, as in the paper's
one-dimensional model).  COUNT(*) requires a predicate to name the
column.  Raises :class:`~repro.errors.SQLSyntaxError` with a pointed
message on anything else.
"""

from __future__ import annotations

import re

from repro.engine.engine import AggregateQuery
from repro.errors import SQLSyntaxError

_IDENT = r"[A-Za-z_][A-Za-z_0-9]*"
_NUM = r"[-+]?\d+(?:\.\d+)?"

_QUANTILE_RE = re.compile(
    rf"^\s*select\s+(?:median\s*\(\s*(?P<med_col>{_IDENT})\s*\)"
    rf"|quantile\s*\(\s*(?P<q_col>{_IDENT})\s*,\s*(?P<q_val>{_NUM})\s*\))"
    rf"\s+from\s+(?P<table>{_IDENT})"
    rf"(?:\s+where\s+(?P<where>.+?))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)

_QUERY_RE = re.compile(
    rf"^\s*select\s+(?P<agg>count\s*\(\s*\*\s*\)|(?:sum|avg)\s*\(\s*(?P<agg_col>{_IDENT})\s*\))"
    rf"\s+from\s+(?P<table>{_IDENT})"
    rf"(?:\s+where\s+(?P<where>.+?))?"
    rf"(?:\s+group\s+by\s+(?P<group_by>{_IDENT}))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)

_BETWEEN_RE = re.compile(
    rf"^(?P<col>{_IDENT})\s+between\s+(?P<low>{_NUM})\s+and\s+(?P<high>{_NUM})$",
    re.IGNORECASE,
)
_DOUBLE_BETWEEN_RE = re.compile(
    rf"^(?P<col1>{_IDENT})\s+between\s+(?P<low1>{_NUM})\s+and\s+(?P<high1>{_NUM})"
    rf"\s+and\s+"
    rf"(?P<col2>{_IDENT})\s+between\s+(?P<low2>{_NUM})\s+and\s+(?P<high2>{_NUM})$",
    re.IGNORECASE,
)
_EQ_RE = re.compile(rf"^(?P<col>{_IDENT})\s*=\s*(?P<value>{_NUM})$", re.IGNORECASE)
_GE_LE_RE = re.compile(
    rf"^(?P<col1>{_IDENT})\s*>=\s*(?P<low>{_NUM})\s+and\s+(?P<col2>{_IDENT})\s*<=\s*(?P<high>{_NUM})$",
    re.IGNORECASE,
)
_GE_RE = re.compile(rf"^(?P<col>{_IDENT})\s*>=\s*(?P<low>{_NUM})$", re.IGNORECASE)
_LE_RE = re.compile(rf"^(?P<col>{_IDENT})\s*<=\s*(?P<high>{_NUM})$", re.IGNORECASE)


def _parse_number(text: str) -> float:
    value = float(text)
    return value


def _parse_predicate(where: str) -> tuple[str, float | None, float | None]:
    where = where.strip()
    match = _BETWEEN_RE.match(where)
    if match:
        return match["col"], _parse_number(match["low"]), _parse_number(match["high"])
    match = _EQ_RE.match(where)
    if match:
        value = _parse_number(match["value"])
        return match["col"], value, value
    match = _GE_LE_RE.match(where)
    if match:
        if match["col1"].lower() != match["col2"].lower():
            raise SQLSyntaxError(
                f"predicate mixes columns {match['col1']!r} and {match['col2']!r}; "
                "only single-column range predicates are supported"
            )
        return match["col1"], _parse_number(match["low"]), _parse_number(match["high"])
    match = _GE_RE.match(where)
    if match:
        return match["col"], _parse_number(match["low"]), None
    match = _LE_RE.match(where)
    if match:
        return match["col"], None, _parse_number(match["high"])
    raise SQLSyntaxError(
        f"unsupported WHERE clause {where!r}; use BETWEEN, =, >=, <= on one column"
    )


def parse_query(statement: str):
    """Parse one dialect statement into an aggregate or quantile query."""
    if not isinstance(statement, str) or not statement.strip():
        raise SQLSyntaxError("empty statement")
    quantile = _QUANTILE_RE.match(statement)
    if quantile:
        from repro.engine.engine import QuantileQuery

        column = quantile["med_col"] or quantile["q_col"]
        q = 0.5 if quantile["med_col"] else float(quantile["q_val"])
        low = high = None
        if quantile["where"] is not None:
            where_col, low, high = _parse_predicate(quantile["where"])
            if where_col.lower() != column.lower():
                raise SQLSyntaxError(
                    f"quantile predicate column {where_col!r} must match "
                    f"the aggregated column {column!r}"
                )
        return QuantileQuery(
            table=quantile["table"], column=column, q=q, low=low, high=high
        )
    match = _QUERY_RE.match(statement)
    if not match:
        raise SQLSyntaxError(
            f"could not parse {statement!r}; expected "
            "SELECT COUNT(*)|SUM(col)|AVG(col) FROM table [WHERE ...]"
        )
    agg_text = match["agg"].lower()
    if agg_text.startswith("count"):
        aggregate = "count"
        agg_column = None
    else:
        aggregate = "sum" if agg_text.startswith("sum") else "avg"
        agg_column = match["agg_col"]

    where = match["where"]
    if where is not None:
        joint = _DOUBLE_BETWEEN_RE.match(where.strip())
        if joint and joint["col1"].lower() != joint["col2"].lower():
            if aggregate != "count":
                raise SQLSyntaxError(
                    "two-column predicates support COUNT(*) only "
                    "(joint synopses summarise the count distribution)"
                )
            from repro.engine.joint import JointAggregateQuery

            return JointAggregateQuery(
                table=match["table"],
                column_x=joint["col1"],
                column_y=joint["col2"],
                x_low=_parse_number(joint["low1"]),
                x_high=_parse_number(joint["high1"]),
                y_low=_parse_number(joint["low2"]),
                y_high=_parse_number(joint["high2"]),
            )
    if where is None:
        if aggregate == "count":
            raise SQLSyntaxError(
                "COUNT(*) needs a WHERE predicate to name the summarised column"
            )
        column, low, high = agg_column, None, None
    else:
        column, low, high = _parse_predicate(where)
        if agg_column is not None and column.lower() != agg_column.lower():
            raise SQLSyntaxError(
                f"aggregate column {agg_column!r} must match predicate column "
                f"{column!r} (one-dimensional synopses)"
            )
    if match["group_by"] is not None:
        from repro.engine.grouped import GroupedAggregateQuery

        if column is None:
            raise SQLSyntaxError(
                "grouped COUNT(*) needs a WHERE predicate to name the column"
            )
        return GroupedAggregateQuery(
            table=match["table"],
            column=column,
            aggregate=aggregate,
            group_by=match["group_by"],
            low=low,
            high=high,
        )
    return AggregateQuery(
        table=match["table"], column=column, aggregate=aggregate, low=low, high=high
    )
