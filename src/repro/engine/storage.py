"""Binary (de)serialisation of synopses.

A synopsis catalog is only useful if it can persist across engine
restarts; this module gives every estimator family a compact, versioned
binary encoding.  Layout: a 4-byte magic ``RPR1``, a one-byte type tag,
then type-specific fields; arrays are a ``uint32`` length followed by
little-endian payload.  Corrupt or unknown input raises
:class:`~repro.errors.SerializationError`.
"""

from __future__ import annotations

import io
import struct

import numpy as np

from repro.core.histogram import AverageHistogram, SapHistogram
from repro.core.sap_poly import PolySapHistogram
from repro.errors import SerializationError
from repro.wavelets.haar import next_power_of_two
from repro.wavelets.point_topb import PointTopBWavelet
from repro.wavelets.range_optimal import RangeOptimalWavelet

_MAGIC = b"RPR1"
_TAG_AVERAGE = 1
_TAG_SAP = 2
_TAG_WAVELET_POINT = 3
_TAG_WAVELET_RANGE = 4
_TAG_POLY_SAP = 5

_ROUNDING_CODES = {"per_piece": 0, "total": 1, "none": 2}
_ROUNDING_NAMES = {code: name for name, code in _ROUNDING_CODES.items()}


def _write_array(buffer: io.BytesIO, array: np.ndarray, dtype: str) -> None:
    data = np.ascontiguousarray(array, dtype=dtype)
    buffer.write(struct.pack("<I", data.size))
    buffer.write(data.tobytes())


def _read_array(buffer: io.BytesIO, dtype: str) -> np.ndarray:
    raw = buffer.read(4)
    if len(raw) != 4:
        raise SerializationError("truncated stream: missing array length")
    (size,) = struct.unpack("<I", raw)
    item = np.dtype(dtype).itemsize
    payload = buffer.read(size * item)
    if len(payload) != size * item:
        raise SerializationError("truncated stream: missing array payload")
    return np.frombuffer(payload, dtype=dtype).copy()


def _write_string(buffer: io.BytesIO, text: str) -> None:
    encoded = text.encode("utf-8")
    buffer.write(struct.pack("<H", len(encoded)))
    buffer.write(encoded)


def _read_string(buffer: io.BytesIO) -> str:
    raw = buffer.read(2)
    if len(raw) != 2:
        raise SerializationError("truncated stream: missing string length")
    (size,) = struct.unpack("<H", raw)
    payload = buffer.read(size)
    if len(payload) != size:
        raise SerializationError("truncated stream: missing string payload")
    return payload.decode("utf-8")


def serialize_estimator(estimator) -> bytes:
    """Encode a supported estimator to bytes."""
    buffer = io.BytesIO()
    buffer.write(_MAGIC)
    if isinstance(estimator, PolySapHistogram):
        buffer.write(
            struct.pack("<BQB", _TAG_POLY_SAP, estimator.n, estimator.degree)
        )
        _write_array(buffer, estimator.lefts, "<i8")
        _write_array(buffer, estimator.averages, "<f8")
        _write_array(buffer, estimator.suffix_coeffs.ravel(), "<f8")
        _write_array(buffer, estimator.prefix_coeffs.ravel(), "<f8")
    elif isinstance(estimator, SapHistogram):
        buffer.write(struct.pack("<BQB", _TAG_SAP, estimator.n, estimator.order))
        _write_string(buffer, estimator.name)
        _write_array(buffer, estimator.lefts, "<i8")
        for array in (
            estimator.averages,
            estimator.suffix_slopes,
            estimator.suffix_intercepts,
            estimator.prefix_slopes,
            estimator.prefix_intercepts,
        ):
            _write_array(buffer, array, "<f8")
    elif isinstance(estimator, AverageHistogram):
        buffer.write(
            struct.pack(
                "<BQB", _TAG_AVERAGE, estimator.n, _ROUNDING_CODES[estimator.rounding]
            )
        )
        _write_string(buffer, estimator.name)
        _write_array(buffer, estimator.lefts, "<i8")
        _write_array(buffer, estimator.values, "<f8")
    elif isinstance(estimator, PointTopBWavelet):
        buffer.write(struct.pack("<BQ", _TAG_WAVELET_POINT, estimator.n))
        _write_array(buffer, estimator.indices, "<i8")
        _write_array(buffer, estimator.coefficients, "<f8")
    elif isinstance(estimator, RangeOptimalWavelet):
        buffer.write(struct.pack("<BQ", _TAG_WAVELET_RANGE, estimator.n))
        _write_array(buffer, estimator.row_indices, "<i8")
        _write_array(buffer, estimator.col_indices, "<i8")
        _write_array(buffer, estimator.coefficients, "<f8")
    else:
        raise SerializationError(
            f"cannot serialise estimators of type {type(estimator).__name__}"
        )
    return buffer.getvalue()


def deserialize_estimator(blob: bytes):
    """Decode an estimator previously written by :func:`serialize_estimator`."""
    buffer = io.BytesIO(blob)
    if buffer.read(4) != _MAGIC:
        raise SerializationError("bad magic: not a repro synopsis blob")
    header = buffer.read(1)
    if len(header) != 1:
        raise SerializationError("truncated stream: missing type tag")
    tag = header[0]
    if tag == _TAG_AVERAGE:
        raw = buffer.read(9)
        if len(raw) != 9:
            raise SerializationError("truncated AverageHistogram header")
        n, rounding_code = struct.unpack("<QB", raw)
        if rounding_code not in _ROUNDING_NAMES:
            raise SerializationError(f"unknown rounding code {rounding_code}")
        label = _read_string(buffer)
        lefts = _read_array(buffer, "<i8")
        values = _read_array(buffer, "<f8")
        return AverageHistogram(
            lefts, values, int(n), rounding=_ROUNDING_NAMES[rounding_code], label=label
        )
    if tag == _TAG_SAP:
        raw = buffer.read(9)
        if len(raw) != 9:
            raise SerializationError("truncated SapHistogram header")
        n, order = struct.unpack("<QB", raw)
        label = _read_string(buffer)
        lefts = _read_array(buffer, "<i8")
        arrays = [_read_array(buffer, "<f8") for _ in range(5)]
        return SapHistogram(lefts, *arrays, int(n), order=int(order), label=label)
    if tag == _TAG_POLY_SAP:
        raw = buffer.read(9)
        if len(raw) != 9:
            raise SerializationError("truncated PolySapHistogram header")
        n, degree = struct.unpack("<QB", raw)
        lefts = _read_array(buffer, "<i8")
        averages = _read_array(buffer, "<f8")
        suffix = _read_array(buffer, "<f8").reshape(lefts.size, degree + 1)
        prefix = _read_array(buffer, "<f8").reshape(lefts.size, degree + 1)
        return PolySapHistogram(lefts, averages, suffix, prefix, int(n), degree=int(degree))
    if tag == _TAG_WAVELET_POINT:
        raw = buffer.read(8)
        if len(raw) != 8:
            raise SerializationError("truncated wavelet header")
        (n,) = struct.unpack("<Q", raw)
        estimator = PointTopBWavelet.__new__(PointTopBWavelet)
        estimator.n = int(n)
        estimator.padded_n = next_power_of_two(int(n))
        estimator.indices = _read_array(buffer, "<i8")
        estimator.coefficients = _read_array(buffer, "<f8")
        return estimator
    if tag == _TAG_WAVELET_RANGE:
        raw = buffer.read(8)
        if len(raw) != 8:
            raise SerializationError("truncated wavelet header")
        (n,) = struct.unpack("<Q", raw)
        estimator = RangeOptimalWavelet.__new__(RangeOptimalWavelet)
        estimator.n = int(n)
        estimator.padded_n = next_power_of_two(int(n))
        estimator.row_indices = _read_array(buffer, "<i8")
        estimator.col_indices = _read_array(buffer, "<i8")
        estimator.coefficients = _read_array(buffer, "<f8")
        return estimator
    raise SerializationError(f"unknown synopsis type tag {tag}")
