"""Minimal in-memory column store.

Just enough of a storage layer to host realistic end-to-end examples:
named tables of equal-length numpy columns, with exact scans used as
ground truth against the synopsis estimates.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidDataError, InvalidQueryError


class Table:
    """A named collection of equal-length columns."""

    def __init__(self, name: str, columns: dict[str, np.ndarray]) -> None:
        if not name or not isinstance(name, str):
            raise InvalidDataError("table name must be a non-empty string")
        if not columns:
            raise InvalidDataError(f"table {name!r} must have at least one column")
        self.name = name
        self.columns: dict[str, np.ndarray] = {}
        length = None
        for column_name, values in columns.items():
            values = np.asarray(values)
            if values.ndim != 1:
                raise InvalidDataError(f"column {column_name!r} must be 1-D")
            if length is None:
                length = values.size
            elif values.size != length:
                raise InvalidDataError(
                    f"column {column_name!r} has {values.size} rows, expected {length}"
                )
            self.columns[column_name] = values
        self.row_count = int(length or 0)

    def with_appended(self, rows: dict[str, np.ndarray]) -> "Table":
        """A new table with ``rows`` appended to every column.

        ``rows`` must cover exactly this table's columns with
        equal-length arrays.
        """
        if set(rows) != set(self.columns):
            raise InvalidDataError(
                f"appended rows must cover exactly the columns "
                f"{self.column_names()}, got {sorted(rows)}"
            )
        merged = {
            name: np.concatenate((values, np.asarray(rows[name])))
            for name, values in self.columns.items()
        }
        return Table(self.name, merged)

    def column(self, name: str) -> np.ndarray:
        if name not in self.columns:
            raise InvalidQueryError(
                f"table {self.name!r} has no column {name!r}; "
                f"available: {sorted(self.columns)}"
            )
        return self.columns[name]

    def column_names(self) -> list[str]:
        return sorted(self.columns)

    def __len__(self) -> int:
        return self.row_count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Table {self.name!r} rows={self.row_count} cols={self.column_names()}>"
