"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subtypes distinguish
user-input problems from resource-budget problems so that an
approximate-query engine can, e.g., retry a synopsis build with a
coarser configuration when it sees :class:`BudgetExceededError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class InvalidDataError(ReproError, ValueError):
    """The input frequency vector is unusable (empty, negative, NaN...)."""


class InvalidParameterError(ReproError, ValueError):
    """A configuration parameter is out of its documented domain."""


class InvalidQueryError(ReproError, ValueError):
    """A range query's endpoints are malformed or out of bounds."""


class BudgetExceededError(ReproError):
    """A space or state budget cannot accommodate the requested build.

    Raised, for example, when the OPT-A dynamic program's sparse state
    table would exceed ``max_states`` (the documented remedy is to use
    :func:`repro.core.opt_a_rounded.build_opt_a_rounded` with a coarser
    rounding parameter), or when a synopsis does not fit in the word
    budget handed to the builder registry.
    """


class BuildTimeoutError(ReproError):
    """A cooperative build deadline expired inside a builder.

    Raised by the DP inner loops (OPT-A, the SAP interval DP, the
    rounded variants) when the ambient
    :class:`repro.internal.deadline.Deadline` is exceeded, so a build
    that would blow its time budget stops promptly instead of hanging.
    A :class:`repro.engine.resilience.FallbackChain` catches this and
    degrades to a cheaper builder.
    """


class BuildFailedError(ReproError):
    """One or more synopsis builds failed after exhausting their options.

    ``failures`` maps a human-readable key (``"table.column"`` for
    catalog builds, ``"method"`` for chain rungs) to the underlying
    exception, so callers can report a per-key error summary instead of
    losing everything to the first failure.
    """

    def __init__(self, message: str, failures: dict | None = None) -> None:
        super().__init__(message)
        self.failures: dict = dict(failures or {})


class FaultInjectedError(ReproError):
    """A deterministic fault injected by the chaos-testing harness.

    Only ever raised when a :class:`repro.internal.faults.FaultInjector`
    is active; production code paths never construct it themselves.
    """


class SerializationError(ReproError):
    """A synopsis byte-stream is corrupt or has an unsupported version."""


class ServerOverloadedError(ReproError):
    """Admission control refused a query and no shed rung could answer.

    Raised by :class:`repro.serving.QueryServer` when the pending queue
    is at ``max_pending`` and the degradation policy admits neither a
    stale cached answer nor the fallback estimator.  Clients should
    back off and retry; the server itself stays healthy.

    ``retry_after_ms`` is the server's best estimate of when capacity
    frees up — the time until the oldest queued batch must flush (queue
    drain is what reopens admission).  ``None`` when the server cannot
    estimate (e.g. the refusal did not come from queue pressure).
    """

    def __init__(self, message: str, *, retry_after_ms: float | None = None) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class ServerClosedError(ReproError):
    """A query was submitted to a server that is not running."""


class RefinementInvalidatedError(ReproError):
    """A progressive refinement's consistency token no longer validates.

    Raised by :class:`repro.serving.progressive.RefinementSession` when
    the catalog mutated (append, rebuild, staleness transition) between
    refinement stages.  The interval chain computed so far describes a
    table state that no longer exists, so the session refuses to
    publish further stages; callers restart from a fresh stage-0
    answer against the new token.
    """


class SQLSyntaxError(ReproError, ValueError):
    """The mini SQL dialect parser rejected a statement."""
