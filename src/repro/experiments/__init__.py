"""Experiment harnesses reproducing the paper's evaluation (Section 4).

``figure1``   the SSE-vs-storage sweep of Figure 1
``claims``    the quantitative in-text claims (POINT-OPT ratios, SAP1
              ratios, SAP0 inferiority, the 41% reopt gain)
``runtimes``  the construction-time study the paper omitted
``batching``  throughput of scalar vs batched engine execution
``sharding``  incremental dirty-shard refresh vs full synopsis rebuild
``reporting`` plain-text table rendering shared by the benchmarks
"""

from repro.experiments.batching import BatchBenchmarkResult, run_batch_benchmark
from repro.experiments.sharding import RefreshBenchmarkResult, run_refresh_benchmark
from repro.experiments.figure1 import FigureOnePoint, figure1_table, run_figure1
from repro.experiments.claims import (
    claim_opta_vs_sap1,
    claim_pointopt_vs_opta,
    claim_reopt_gain,
    claim_sap0_inferior,
)
from repro.experiments.runtimes import run_construction_timing
from repro.experiments.report import generate_report
from repro.experiments.reporting import format_table

__all__ = [
    "run_figure1",
    "figure1_table",
    "FigureOnePoint",
    "claim_pointopt_vs_opta",
    "claim_opta_vs_sap1",
    "claim_sap0_inferior",
    "claim_reopt_gain",
    "run_construction_timing",
    "run_batch_benchmark",
    "BatchBenchmarkResult",
    "run_refresh_benchmark",
    "RefreshBenchmarkResult",
    "format_table",
    "generate_report",
]
