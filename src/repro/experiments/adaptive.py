"""Adaptive-budget study: workload-aware reallocation vs the mass split.

``split_budget_by_mass`` spends the shard budget where the *data* is,
which is the right prior when every range is equally likely (the
all-ranges objective the paper optimises).  Real workloads are skewed:
queries concentrate on a band of the domain, and the mass split starves
exactly the shards that are answering them whenever that band is
data-light.  This harness constructs the pathology deliberately:

* the bulk of the domain is heavy and *flat* (constant frequency 50) —
  trivially captured by one bucket, yet it soaks up nearly all of the
  mass-proportional budget;
* a data-light hot band carries a staircase ramp (64 levels of width 2)
  — cheap to approximate well with many buckets, hopeless with the one
  or two the mass split affords it;
* every query lands inside the hot band.

The engine answers the skewed batch with ``audit_rate=1.0`` so the
:class:`~repro.engine.optimizer.ObservedWorkload` recorder sees every
range, then ``optimize_budgets`` reallocates the *same* total budget
toward the hot shards through the dirty-shard rebuild path.  The
benchmark gate requires the observed-workload SSE to drop by at least
2x; the measured run lands well above that.  Backs the ``optimize``
CLI command and ``benchmarks/test_adaptive.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.batch import BatchQuery
from repro.engine.engine import ApproximateQueryEngine
from repro.engine.table import Table
from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class AdaptiveBenchmarkResult:
    """Outcome of one observe -> optimise -> re-measure cycle."""

    row_count: int
    domain: int
    shards: int
    budget_words: int
    query_count: int
    seed: int
    method: str
    hot_low: int
    hot_high: int
    uniform_sse: float
    optimized_sse: float
    shards_rebuilt: int
    hot_budget_before: int
    hot_budget_after: int
    budget_total_before: int
    budget_total_after: int

    @property
    def improvement(self) -> float:
        """Observed-workload SSE ratio, uniform mass split / optimised."""
        return self.uniform_sse / max(self.optimized_sse, 1e-12)

    def summary(self) -> str:
        return (
            f"{self.query_count} queries in [{self.hot_low}, {self.hot_high}] "
            f"over domain {self.domain} ({self.shards} shards, "
            f"{self.budget_words} words): SSE {self.uniform_sse:.2f} -> "
            f"{self.optimized_sse:.2f} ({self.improvement:.1f}x) after "
            f"rebuilding {self.shards_rebuilt} shard(s); hot-band budget "
            f"{self.hot_budget_before} -> {self.hot_budget_after} words "
            f"(total {self.budget_total_before} -> {self.budget_total_after})"
        )

    def to_dict(self) -> dict:
        return {
            "row_count": self.row_count,
            "domain": self.domain,
            "shards": self.shards,
            "budget_words": self.budget_words,
            "query_count": self.query_count,
            "seed": self.seed,
            "method": self.method,
            "hot_low": self.hot_low,
            "hot_high": self.hot_high,
            "uniform_sse": self.uniform_sse,
            "optimized_sse": self.optimized_sse,
            "improvement": self.improvement,
            "shards_rebuilt": self.shards_rebuilt,
            "hot_budget_before": self.hot_budget_before,
            "hot_budget_after": self.hot_budget_after,
            "budget_total_before": self.budget_total_before,
            "budget_total_after": self.budget_total_after,
        }


def _skewed_frequencies(domain: int, hot_low: int, hot_high: int) -> np.ndarray:
    """Flat heavy bulk with a data-light staircase ramp in the hot band."""
    frequencies = np.full(domain, 50, dtype=np.int64)
    width = hot_high - hot_low + 1
    frequencies[hot_low : hot_high + 1] = np.arange(width) // 2
    return frequencies


def run_adaptive_benchmark(
    *,
    domain: int = 1024,
    shards: int = 16,
    budget_words: int = 192,
    queries: int = 400,
    seed: int = 0,
    method: str = "a0",
) -> AdaptiveBenchmarkResult:
    """Measure workload-adaptive reallocation against the mass split.

    Builds one sharded column whose frequency mass and query mass
    disagree, answers a hot-band batch with full audit sampling so the
    observed-workload recorder captures every range, runs
    ``optimize_budgets`` (shard reallocation only — there is a single
    column, so cross-column moves are moot), and replays the same batch.
    Both SSE figures are means over the identical query set, so the
    ratio isolates the budget placement.  Total budget conservation is
    asserted here as well as in the benchmark gate.
    """
    if domain < 256 or domain % shards != 0:
        raise InvalidParameterError(
            "need domain >= 256 and domain divisible by shards"
        )
    if shards < 8 or queries < 32 or budget_words < 8 * shards:
        raise InvalidParameterError(
            "need shards >= 8, queries >= 32, and budget_words >= 8 * shards"
        )
    rng = np.random.default_rng(seed)
    shard_width = domain // shards
    # Hot band: the two shards at 3/4 of the domain.
    hot_low = (shards * 3 // 4) * shard_width
    hot_high = hot_low + 2 * shard_width - 1
    frequencies = _skewed_frequencies(domain, hot_low, hot_high)
    values = np.repeat(np.arange(domain), frequencies)

    engine = ApproximateQueryEngine()
    engine.register_table(Table("events", {"value": values}))
    engine.build_synopsis(
        "events", "value", method=method, budget_words=budget_words, shards=shards
    )
    entry = engine._synopses[("events", "value")]
    budgets_before = entry.count_estimator.budgets.copy()
    hot_first = hot_low // shard_width
    hot_budget_before = int(budgets_before[hot_first : hot_first + 2].sum())

    lows = rng.integers(hot_low, hot_high - 5, queries)
    highs = np.minimum(lows + rng.integers(1, 2 * shard_width // 4, queries), hot_high)
    batch = BatchQuery(
        "events", "value", "count", lows.astype(float), highs.astype(float)
    )

    def _batch_sse() -> float:
        results = engine.execute_batch(batch, with_exact=True, audit_rate=1.0)
        return float(
            np.mean([(r.estimate - r.exact) ** 2 for r in results])
        )

    uniform_sse = _batch_sse()
    report = engine.optimize_budgets(
        min_samples=min(32, queries),
        max_shard_rebuilds=shards,
        reallocate_columns=False,
    )
    entry = engine._synopses[("events", "value")]
    budgets_after = entry.count_estimator.budgets
    optimized_sse = _batch_sse()

    if int(budgets_after.sum()) != int(budgets_before.sum()):
        raise InvalidParameterError(
            "optimizer failed budget conservation: "
            f"{int(budgets_before.sum())} -> {int(budgets_after.sum())}"
        )
    return AdaptiveBenchmarkResult(
        row_count=int(values.size),
        domain=domain,
        shards=shards,
        budget_words=budget_words,
        query_count=queries,
        seed=seed,
        method=method,
        hot_low=int(hot_low),
        hot_high=int(hot_high),
        uniform_sse=uniform_sse,
        optimized_sse=optimized_sse,
        shards_rebuilt=int(report["shards_rebuilt"]),
        hot_budget_before=hot_budget_before,
        hot_budget_after=int(budgets_after[hot_first : hot_first + 2].sum()),
        budget_total_before=int(budgets_before.sum()),
        budget_total_after=int(budgets_after.sum()),
    )
