"""Batch-vs-scalar execution study.

The engine's scalar :meth:`~repro.engine.engine.ApproximateQueryEngine.execute`
pays python overhead per query; :meth:`execute_batch` amortises it into
one vectorised synopsis call per (table, column, aggregate) group.  This
harness measures both paths on the same workload — the throughput
counterpart of the construction-time study in :mod:`runtimes` — and is
what the ``bench-batch`` CLI command and the batch-pipeline benchmark
report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.engine.engine import AggregateQuery, ApproximateQueryEngine
from repro.engine.table import Table
from repro.errors import InvalidParameterError
from repro.queries.workload import random_ranges


@dataclass(frozen=True)
class BatchBenchmarkResult:
    """Timings of one scalar-vs-batch comparison on a shared workload."""

    row_count: int
    domain: int
    query_count: int
    shards: int
    scalar_seconds: float
    batch_seconds: float
    max_abs_difference: float

    @property
    def speedup(self) -> float:
        return self.scalar_seconds / self.batch_seconds if self.batch_seconds else 0.0

    @property
    def scalar_qps(self) -> float:
        return self.query_count / self.scalar_seconds if self.scalar_seconds else 0.0

    @property
    def batch_qps(self) -> float:
        return self.query_count / self.batch_seconds if self.batch_seconds else 0.0

    def summary(self) -> str:
        return (
            f"{self.query_count} queries over {self.row_count} rows: "
            f"scalar {self.scalar_seconds:.3f}s ({self.scalar_qps:,.0f} q/s), "
            f"batch {self.batch_seconds:.4f}s ({self.batch_qps:,.0f} q/s), "
            f"speedup {self.speedup:.1f}x"
        )


def run_batch_benchmark(
    *,
    row_count: int = 100_000,
    domain: int = 1024,
    query_count: int = 10_000,
    method: str = "sap1",
    budget_words: int = 128,
    aggregates: tuple = ("count", "sum"),
    seed: int = 11,
    shards: int = 1,
    fallback=None,
    deadline_ms: float | None = None,
) -> BatchBenchmarkResult:
    """Time a scalar ``execute`` loop against one ``execute_batch`` call.

    Builds one synopsis over a uniform integer column (sharded when
    ``shards > 1``), draws ``query_count`` random ranges, assigns the
    ``aggregates`` mix round-robin, and runs the identical query list
    down both paths.  ``max_abs_difference`` is the largest estimate
    discrepancy between the two (zero: they share the synopsis code
    path, sharded or not).
    """
    if query_count < 1 or row_count < 1:
        raise InvalidParameterError("row_count and query_count must be >= 1")
    if shards < 1:
        raise InvalidParameterError("shards must be >= 1")
    rng = np.random.default_rng(seed)
    values = rng.integers(0, domain, row_count)
    engine = ApproximateQueryEngine()
    engine.register_table(Table("traffic", {"value": values}))
    engine.build_synopsis(
        "traffic",
        "value",
        method=method,
        budget_words=budget_words,
        shards=shards,
        fallback=fallback,
        deadline_ms=deadline_ms,
    )

    workload = random_ranges(domain, query_count, seed=seed + 1)
    queries = [
        AggregateQuery(
            "traffic",
            "value",
            aggregates[index % len(aggregates)],
            float(low),
            float(high),
        )
        for index, (low, high) in enumerate(workload)
    ]

    start = time.perf_counter()
    scalar_results = [engine.execute(query) for query in queries]
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch_results = engine.execute_batch(queries)
    batch_seconds = time.perf_counter() - start

    max_abs_difference = max(
        abs(scalar.estimate - batched.estimate)
        for scalar, batched in zip(scalar_results, batch_results)
    )
    return BatchBenchmarkResult(
        row_count=row_count,
        domain=domain,
        query_count=query_count,
        shards=shards,
        scalar_seconds=scalar_seconds,
        batch_seconds=batch_seconds,
        max_abs_difference=max_abs_difference,
    )
