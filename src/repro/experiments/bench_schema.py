"""Schema validation for the committed ``BENCH_*.json`` artifacts.

Benchmark jobs write JSON artifacts (``BENCH_serve.json``,
``BENCH_pool.json``, ``BENCH_shard_tree.json``,
``BENCH_build_kernels.json``, ``BENCH_adaptive.json``, and the
coverage study's ``BENCH_coverage_intervals.json``) that CI uploads and
later jobs/dashboards consume.  A benchmark refactor that silently
drops or retypes a field breaks those consumers long after the PR
merged, so CI validates every artifact against the schemas here —
pure-python, no external JSON-Schema dependency.

A schema is a mapping ``field -> FieldSpec``; validation reports *all*
violations (missing, unknown, mistyped, out-of-range fields) rather
than stopping at the first, so one CI run shows the full repair list.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "FieldSpec",
    "SCHEMAS",
    "validate_payload",
    "validate_artifact",
    "validate_bench_artifacts",
]

_TYPE_NAMES = {bool: "bool", int: "int", float: "number", str: "str"}


@dataclass(frozen=True)
class FieldSpec:
    """One artifact field: accepted types plus an optional range."""

    types: tuple
    required: bool = True
    minimum: float | None = None
    exclusive_minimum: bool = False

    def describe(self) -> str:
        names = "|".join(_TYPE_NAMES.get(t, t.__name__) for t in self.types)
        if self.minimum is not None:
            op = ">" if self.exclusive_minimum else ">="
            return f"{names} {op} {self.minimum:g}"
        return names

    def violations(self, field: str, value) -> list[str]:
        # bool is an int subclass: only accept it where bool is listed.
        if isinstance(value, bool) and bool not in self.types:
            return [f"{field}: expected {self.describe()}, got bool"]
        if not isinstance(value, self.types):
            return [
                f"{field}: expected {self.describe()}, "
                f"got {type(value).__name__}"
            ]
        if isinstance(value, float) and not math.isfinite(value):
            return [f"{field}: must be finite, got {value!r}"]
        if self.minimum is not None and not isinstance(value, (str, bool)):
            if self.exclusive_minimum:
                if not value > self.minimum:
                    return [f"{field}: must be > {self.minimum:g}, got {value!r}"]
            elif not value >= self.minimum:
                return [f"{field}: must be >= {self.minimum:g}, got {value!r}"]
        return []


def _positive_int(required: bool = True) -> FieldSpec:
    return FieldSpec((int,), required, minimum=1)


def _count(required: bool = True) -> FieldSpec:
    return FieldSpec((int,), required, minimum=0)


def _positive_number(required: bool = True) -> FieldSpec:
    return FieldSpec((int, float), required, minimum=0.0, exclusive_minimum=True)


def _nonnegative_number(required: bool = True) -> FieldSpec:
    return FieldSpec((int, float), required, minimum=0.0)


_STAGE_SCHEMA = {
    "stage": FieldSpec((str,)),
    "answers": _positive_int(),
    "covered": _count(),
    "coverage": _nonnegative_number(),
    "mean_width": _nonnegative_number(),
    "max_width": _nonnegative_number(),
}

#: Per-artifact schemas, keyed by file name.
SCHEMAS: dict[str, dict[str, FieldSpec]] = {
    "BENCH_serve.json": {
        "row_count": _positive_int(),
        "domain": _positive_int(),
        "query_count": _positive_int(),
        "thread_count": _positive_int(),
        "max_batch": _positive_int(),
        "max_delay_ms": _nonnegative_number(),
        "naive_seconds": _positive_number(),
        "served_seconds": _positive_number(),
        "naive_qps": _positive_number(),
        "served_qps": _positive_number(),
        "speedup": _positive_number(),
        "batches": _count(),
        "mean_batch_size": _nonnegative_number(),
        "cache_hits": _count(),
        "max_abs_difference": _nonnegative_number(),
    },
    "BENCH_pool.json": {
        "row_count": _positive_int(),
        "domain": _positive_int(),
        "shards": _positive_int(),
        "budget_words": _positive_int(),
        "query_count": _positive_int(),
        "thread_count": _positive_int(),
        "single_workers": _positive_int(),
        "single_seconds": _positive_number(),
        "single_qps": _positive_number(),
        "pool_workers": _positive_int(),
        "pool_seconds": _positive_number(),
        "pool_qps": _positive_number(),
        "speedup": _positive_number(),
        "max_abs_difference": _nonnegative_number(),
        "engine_pickle_free": FieldSpec((bool,)),
        "segment_bytes": _positive_int(),
        "cache_hits": _count(),
    },
    "BENCH_shard_tree.json": {
        "shards": _positive_int(),
        "queries": _positive_int(),
        "tree_depth": _count(),
        "tree_seconds": _positive_number(),
        "flat_seconds": _positive_number(),
        "prefix_seconds": _nonnegative_number(),
        "bit_identical": FieldSpec((bool,)),
        "speedup": _positive_number(),
    },
    "BENCH_build_kernels.json": {
        "benchmark": FieldSpec((str,)),
        "n": _positive_int(),
        "seed": FieldSpec((int,)),
        "scalar_precompute_seconds": _positive_number(),
        "vectorised_precompute_seconds": _positive_number(),
        "speedup": _positive_number(),
        "gate": _positive_number(),
        "bit_identical": FieldSpec((bool,)),
    },
    "BENCH_adaptive.json": {
        "row_count": _positive_int(),
        "domain": _positive_int(),
        "shards": _positive_int(),
        "budget_words": _positive_int(),
        "query_count": _positive_int(),
        "seed": FieldSpec((int,)),
        "method": FieldSpec((str,)),
        "hot_low": _count(),
        "hot_high": _count(),
        "uniform_sse": _nonnegative_number(),
        "optimized_sse": _nonnegative_number(),
        "improvement": _positive_number(),
        "shards_rebuilt": _count(),
        "hot_budget_before": _count(),
        "hot_budget_after": _count(),
        "budget_total_before": _positive_int(),
        "budget_total_after": _positive_int(),
    },
    "BENCH_coverage_intervals.json": {
        "row_count": _positive_int(),
        "domain": _positive_int(),
        "query_count": _positive_int(),
        "shards": _positive_int(),
        "confidence": _positive_number(),
        "seed": FieldSpec((int,)),
        "append_rows": _count(),
        "stages": FieldSpec((list,)),
        "min_stage_coverage": _nonnegative_number(),
        "final_stage_bitwise": FieldSpec((bool,)),
    },
}


def validate_payload(payload, schema: dict[str, FieldSpec]) -> list[str]:
    """Every violation of ``schema`` in ``payload`` (empty = valid)."""
    if not isinstance(payload, dict):
        return [f"artifact must be a JSON object, got {type(payload).__name__}"]
    problems: list[str] = []
    for field, spec in schema.items():
        if field not in payload:
            if spec.required:
                problems.append(f"{field}: missing required field")
            continue
        problems.extend(spec.violations(field, payload[field]))
    for field in sorted(set(payload) - set(schema)):
        problems.append(f"{field}: unknown field")
    return problems


def _validate_coverage_artifact(payload) -> list[str]:
    """Coverage artifacts are a *list* of per-seed study dicts."""
    if not isinstance(payload, list) or not payload:
        return ["artifact must be a non-empty JSON array of studies"]
    problems: list[str] = []
    for index, study in enumerate(payload):
        for problem in validate_payload(
            study, SCHEMAS["BENCH_coverage_intervals.json"]
        ):
            problems.append(f"study[{index}].{problem}")
        if isinstance(study, dict):
            for stage_index, stage in enumerate(study.get("stages") or []):
                for problem in validate_payload(stage, _STAGE_SCHEMA):
                    problems.append(
                        f"study[{index}].stages[{stage_index}].{problem}"
                    )
    return problems


def validate_artifact(path) -> list[str]:
    """Validate one ``BENCH_*.json`` file; returns its violations.

    Unknown artifact names are themselves a violation: a new benchmark
    must register a schema here before CI will accept its output.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return [f"unreadable artifact: {exc}"]
    if path.name == "BENCH_coverage_intervals.json":
        return _validate_coverage_artifact(payload)
    schema = SCHEMAS.get(path.name)
    if schema is None:
        return [
            f"no schema registered for {path.name!r}; add one to "
            "repro.experiments.bench_schema.SCHEMAS"
        ]
    return validate_payload(payload, schema)


def validate_bench_artifacts(root) -> dict[str, list[str]]:
    """Validate every ``BENCH_*.json`` under ``root`` (non-recursive).

    Returns ``{file name: violations}`` for all artifacts found; an
    empty violation list means that artifact passed.
    """
    root = Path(root)
    return {
        path.name: validate_artifact(path)
        for path in sorted(root.glob("BENCH_*.json"))
    }
