"""The quantitative in-text claims of Sections 4 and 5.

Each function returns a small result record with the measured numbers
and the paper's reported band, so the benchmark layer can both print the
comparison and assert the qualitative direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.builders import build_by_name
from repro.core.opt_a import opt_a_search
from repro.core.reopt import reoptimize_values
from repro.data.datasets import paper_dataset
from repro.queries.evaluation import sse


@dataclass(frozen=True)
class RatioClaim:
    """Measured per-budget SSE ratios against a paper-reported band."""

    description: str
    budgets: tuple
    ratios: tuple
    paper_band: str

    @property
    def max_ratio(self) -> float:
        return max(self.ratios)

    @property
    def mean_ratio(self) -> float:
        return float(np.mean(self.ratios))


def _sse_by_budget(method: str, data, budgets, **kwargs):
    return {
        budget: sse(build_by_name(method, data, budget, **kwargs), data)
        for budget in budgets
    }


def claim_pointopt_vs_opta(data=None, budgets=(16, 24, 32, 40, 48)) -> RatioClaim:
    """Section 4: POINT-OPT up to 8x worse than OPT-A, >3x on average."""
    if data is None:
        data = paper_dataset()
    point = _sse_by_budget("point-opt", data, budgets)
    opt = _sse_by_budget("opt-a", data, budgets)
    ratios = tuple(point[b] / max(opt[b], 1e-12) for b in budgets)
    return RatioClaim(
        description="POINT-OPT SSE / OPT-A SSE at equal storage",
        budgets=tuple(budgets),
        ratios=ratios,
        paper_band="up to 8x, >3x on average",
    )


def claim_opta_vs_sap1(data=None, budgets=(20, 30, 40, 50)) -> RatioClaim:
    """Section 4: OPT-A 2-4x better than SAP1 at equal storage.

    At equal words, SAP1 affords 2.5x fewer buckets (5 words/bucket vs
    2), which is why more buckets beats richer per-bucket statistics.
    """
    if data is None:
        data = paper_dataset()
    sap1 = _sse_by_budget("sap1", data, budgets)
    opt = _sse_by_budget("opt-a", data, budgets)
    ratios = tuple(sap1[b] / max(opt[b], 1e-12) for b in budgets)
    return RatioClaim(
        description="SAP1 SSE / OPT-A SSE at equal storage",
        budgets=tuple(budgets),
        ratios=ratios,
        paper_band="2-4x",
    )


def claim_sap0_inferior(data=None, budgets=(18, 30, 42, 54)) -> dict:
    """Section 4: SAP0 was inferior (SSE per unit storage) to the other
    range-query histograms tested (OPT-A, A0, SAP1)."""
    if data is None:
        data = paper_dataset()
    rows = {}
    for budget in budgets:
        rows[budget] = {
            method: sse(build_by_name(method, data, budget), data)
            for method in ("sap0", "sap1", "a0", "opt-a")
        }
    worst_count = sum(
        1
        for budget, row in rows.items()
        if row["sap0"] >= max(row["sap1"], row["a0"], row["opt-a"]) - 1e-9
    )
    return {
        "rows": rows,
        "budgets": tuple(budgets),
        "sap0_worst_at": worst_count,
        "paper_band": "SAP0 inferior to all other range histograms per word",
    }


@dataclass(frozen=True)
class ReoptClaim:
    budgets: tuple
    base_sse: dict
    reopt_sse: dict
    improvements_pct: dict = field(default_factory=dict)
    paper_band: str = "A-reopt up to 41% better than OPT-A"

    @property
    def max_improvement_pct(self) -> float:
        return max(self.improvements_pct.values())


def claim_reopt_gain(data=None, budgets=(16, 24, 32, 40)) -> ReoptClaim:
    """Section 5: re-optimising stored values was up to 41% better than
    OPT-A with respect to SSE.

    Note the comparison in the paper pits the re-optimised (un-rounded)
    histogram against OPT-A's rounded answering; we measure both against
    the all-ranges SSE exactly as defined.
    """
    if data is None:
        data = paper_dataset()
    base_sse, reopt_sse, improvements = {}, {}, {}
    for budget in budgets:
        result = opt_a_search(data, budget // 2)
        base = sse(result.histogram, data)
        improved = reoptimize_values(result.histogram, data)
        improved_sse = sse(improved, data)
        base_sse[budget] = base
        reopt_sse[budget] = improved_sse
        improvements[budget] = 100.0 * (base - improved_sse) / base if base > 0 else 0.0
    return ReoptClaim(
        budgets=tuple(budgets),
        base_sse=base_sse,
        reopt_sse=reopt_sse,
        improvements_pct=improvements,
    )
