"""Figure 1: SSE (log scale) against storage, per representation.

The paper plots, for the 127-key randomly-rounded Zipf(1.8) dataset, the
all-ranges SSE of NAIVE, POINT-OPT, OPT-A, SAP0, SAP1, A0 and the TOPBB
wavelet synopsis as a function of the storage budget in words.  This
harness regenerates that series for any dataset and budget grid, using
the exact pseudo-polynomial OPT-A dynamic program by default (the
pruning of :mod:`repro.core.opt_a` makes that feasible at the paper's
scale).

Absolute numbers depend on the random dataset instance; the qualitative
shape the reproduction checks is the method *ordering* per budget and
the ratio bands the paper reports (see benchmarks/test_claims.py).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.builders import BUILDER_REGISTRY, build_by_name
from repro.data.datasets import paper_dataset
from repro.errors import BudgetExceededError
from repro.experiments.reporting import format_table
from repro.queries.evaluation import sse

#: The methods plotted in Figure 1 (plus the Theorem 9 wavelet, which
#: the paper computes but does not plot).
FIGURE1_METHODS = (
    "naive",
    "point-opt",
    "opt-a",
    "a0",
    "sap0",
    "sap1",
    "wavelet-point",
)

#: Default storage budgets (words).  The paper's x-axis spans roughly
#: this range for a 127-value domain.
DEFAULT_BUDGETS = (12, 20, 28, 36, 44, 52, 60)


@dataclass(frozen=True)
class FigureOnePoint:
    """One (method, budget) measurement in the Figure 1 sweep."""

    method: str
    budget_words: int
    actual_words: int
    units: int
    sse: float


def run_figure1(
    data=None,
    budgets=DEFAULT_BUDGETS,
    methods=FIGURE1_METHODS,
    **builder_kwargs,
) -> list[FigureOnePoint]:
    """Measure the all-ranges SSE of every method at every budget.

    ``builder_kwargs`` maps method name -> dict of extra arguments (e.g.
    ``{"opt-a": {"max_states": 10**7}}``).
    """
    if data is None:
        data = paper_dataset()
    data = np.asarray(data, dtype=np.float64)
    points: list[FigureOnePoint] = []
    for method in methods:
        spec = BUILDER_REGISTRY[method]
        for budget in budgets:
            kwargs = builder_kwargs.get(method, {})
            try:
                estimator = build_by_name(method, data, budget, **kwargs)
            except BudgetExceededError:
                continue
            points.append(
                FigureOnePoint(
                    method=method,
                    budget_words=budget,
                    actual_words=estimator.storage_words(),
                    units=estimator.storage_words() // spec.words_per_unit,
                    sse=sse(estimator, data),
                )
            )
            if method == "naive":
                break  # NAIVE's footprint is fixed; one point suffices.
    return points


def figure1_table(points: list[FigureOnePoint]) -> str:
    """Render the sweep as the series Figure 1 plots (one row per budget)."""
    methods = []
    for point in points:
        if point.method not in methods:
            methods.append(point.method)
    budgets = sorted({point.budget_words for point in points if point.method != "naive"})
    by_key = {(p.method, p.budget_words): p for p in points}
    naive_points = [p for p in points if p.method == "naive"]

    headers = ["budget(words)", *methods]
    rows = []
    for budget in budgets:
        row: list[object] = [budget]
        for method in methods:
            if method == "naive" and naive_points:
                row.append(naive_points[0].sse)
                continue
            point = by_key.get((method, budget))
            row.append(point.sse if point else "-")
        rows.append(row)
    return format_table(headers, rows, title="Figure 1: all-ranges SSE by storage budget")
