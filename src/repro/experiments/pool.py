"""Multi-process pool throughput study: N workers vs one.

The pool's pitch is horizontal scaling of the serve plane: the parent
publishes one shared-memory catalog snapshot and every worker answers
batches against its own attach of those bytes — no engine pickling, no
per-worker rebuild.  This harness quantifies the scaling claim:

* the same threaded client workload runs against a
  :class:`~repro.serving.PoolServer` with ``single_workers`` (the
  1-worker baseline keeps dispatch/IPC overhead in both measurements)
  and again with ``pool_workers``;
* every pooled estimate is compared against the in-process engine's
  answer for the same queries (``max_abs_difference`` — the pool may
  never buy throughput with accuracy);
* ``engine_pickle_free`` certifies the zero-copy claim: the engine is
  *unpicklable by construction* (it holds locks), so the fact that
  workers come up at all proves the snapshot path never pickles it.

The per-query work must dwarf the ~microseconds of pipe round-trip for
process fan-out to pay, so the default workload uses a heavily sharded
synopsis (per-query shard scatter/gather) — the same regime where a
production deployment would reach for worker processes.

``benchmarks/test_pool.py`` gates the speedup and writes
``BENCH_pool.json``; the ``bench-pool`` CLI command prints the table.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.engine.engine import AggregateQuery, ApproximateQueryEngine
from repro.engine.table import Table
from repro.errors import InvalidParameterError
from repro.queries.workload import random_ranges
from repro.serving import PoolServer


@dataclass(frozen=True)
class PoolBenchmarkResult:
    """Timings of one single-worker vs multi-worker pool comparison."""

    row_count: int
    domain: int
    shards: int
    budget_words: int
    query_count: int
    thread_count: int
    single_workers: int
    single_seconds: float
    pool_workers: int
    pool_seconds: float
    max_abs_difference: float
    engine_pickle_free: bool
    segment_bytes: int
    cache_hits: int

    @property
    def speedup(self) -> float:
        return self.single_seconds / self.pool_seconds if self.pool_seconds else 0.0

    @property
    def single_qps(self) -> float:
        return self.query_count / self.single_seconds if self.single_seconds else 0.0

    @property
    def pool_qps(self) -> float:
        return self.query_count / self.pool_seconds if self.pool_seconds else 0.0

    def summary(self) -> str:
        return (
            f"{self.query_count} queries x {self.thread_count} threads: "
            f"{self.single_workers} worker {self.single_seconds:.3f}s "
            f"({self.single_qps:,.0f} q/s), "
            f"{self.pool_workers} workers {self.pool_seconds:.3f}s "
            f"({self.pool_qps:,.0f} q/s), speedup {self.speedup:.2f}x, "
            f"snapshot {self.segment_bytes / 1024:.0f} KiB shared"
        )

    def as_dict(self) -> dict:
        return {
            "row_count": self.row_count,
            "domain": self.domain,
            "shards": self.shards,
            "budget_words": self.budget_words,
            "query_count": self.query_count,
            "thread_count": self.thread_count,
            "single_workers": self.single_workers,
            "single_seconds": self.single_seconds,
            "single_qps": self.single_qps,
            "pool_workers": self.pool_workers,
            "pool_seconds": self.pool_seconds,
            "pool_qps": self.pool_qps,
            "speedup": self.speedup,
            "max_abs_difference": self.max_abs_difference,
            "engine_pickle_free": self.engine_pickle_free,
            "segment_bytes": self.segment_bytes,
            "cache_hits": self.cache_hits,
        }


def _build_engine(
    row_count: int, domain: int, shards: int, budget_words: int, seed: int
) -> ApproximateQueryEngine:
    rng = np.random.default_rng(seed)
    engine = ApproximateQueryEngine()
    engine.register_table(
        Table("bench", {"v": rng.integers(0, domain, row_count)})
    )
    engine.build_synopsis(
        "bench", "v", method="sap1", budget_words=budget_words, shards=shards
    )
    return engine


def _drive(server: PoolServer, queries, thread_count: int, chunk: int):
    """Fan ``queries`` in from ``thread_count`` threads.

    Returns ``(elapsed_seconds, results)`` with results in query order.
    """
    slices = [
        queries[start : start + chunk] for start in range(0, len(queries), chunk)
    ]

    def submit_and_wait(block):
        return [future.result(timeout=120.0) for future in server.submit_many(block)]

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=thread_count) as executor:
        answers = list(executor.map(submit_and_wait, slices))
    elapsed = time.perf_counter() - started
    flattened = [result for block in answers for result in block]
    return elapsed, flattened


def run_pool_benchmark(
    *,
    row_count: int = 200_000,
    domain: int = 4096,
    shards: int = 256,
    budget_words: int = 4096,
    query_count: int = 8_000,
    thread_count: int = 4,
    single_workers: int = 1,
    pool_workers: int = 4,
    seed: int = 23,
    max_batch: int = 64,
    max_delay_ms: float = 1.0,
) -> PoolBenchmarkResult:
    """Time a 1-worker pool against a ``pool_workers``-worker pool.

    Both measurements run through :class:`PoolServer` so dispatch and
    IPC overhead cancel; only the compute fan-out differs.  ``max_batch``
    is kept small so a single coalesced flush cannot swallow the whole
    workload (many in-flight batches are what the extra workers eat).
    Estimates from both runs are compared against the plain in-process
    engine — ``max_abs_difference`` must come out 0.0.
    """
    if pool_workers <= single_workers:
        raise InvalidParameterError(
            f"pool_workers ({pool_workers}) must exceed "
            f"single_workers ({single_workers})"
        )
    engine = _build_engine(row_count, domain, shards, budget_words, seed)
    workload = random_ranges(domain, query_count, seed=seed + 1)
    queries = [
        AggregateQuery("bench", "v", "sum" if i % 2 else "count", int(low), int(high))
        for i, (low, high) in enumerate(zip(workload.lows, workload.highs))
    ]
    expected = [
        result.estimate for result in engine.execute_batch(queries, on_stale="serve")
    ]

    try:
        pickle.dumps(engine)
        engine_pickle_free = False
    except Exception:  # noqa: BLE001 — any refusal proves the claim
        engine_pickle_free = True

    timings = {}
    divergence = 0.0
    cache_hits = 0
    segment_bytes = 0
    for workers in (single_workers, pool_workers):
        server = PoolServer(
            engine,
            workers=workers,
            max_batch=max_batch,
            max_delay_ms=max_delay_ms,
            max_pending=query_count + 1,
            cache_capacity=1,
        )
        with server:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                snapshot = server.supervisor.snapshot()
                if sum(1 for s in snapshot.values() if s["heartbeats"] >= 1) >= workers:
                    break
                time.sleep(0.01)
            segment_bytes = server.shared.current.payload_bytes
            # Warm-up pass so neither run pays first-touch costs.
            _drive(server, queries[: max_batch * workers], thread_count, max_batch)
            elapsed, results = _drive(server, queries, thread_count, max_batch)
            timings[workers] = elapsed
            divergence = max(
                divergence,
                max(
                    abs(result.estimate - want)
                    for result, want in zip(results, expected)
                ),
            )
            cache_hits += server.stats()["cache_hits"]
    return PoolBenchmarkResult(
        row_count=row_count,
        domain=domain,
        shards=shards,
        budget_words=budget_words,
        query_count=query_count,
        thread_count=thread_count,
        single_workers=single_workers,
        single_seconds=timings[single_workers],
        pool_workers=pool_workers,
        pool_seconds=timings[pool_workers],
        max_abs_difference=float(divergence),
        engine_pickle_free=engine_pickle_free,
        segment_bytes=int(segment_bytes),
        cache_hits=int(cache_hits),
    )


__all__ = ["PoolBenchmarkResult", "run_pool_benchmark"]
