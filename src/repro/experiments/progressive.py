"""Statistical coverage study for progressive (anytime) answers.

A claimed 95% interval is only worth shipping if it actually covers.
This harness measures that empirically: over a seeded randomized
workload it drives every query's
:class:`~repro.serving.progressive.RefinementSession` to completion and
checks, *per refinement stage*, how often the live exact answer fell
inside the claimed interval — plus whether the final stage reproduced
the exact path bitwise.

The distribution-free Chebyshev/Markov multiplier
(:func:`repro.core.builders.confidence_multiplier`) is deliberately
conservative, so empirical coverage should sit well above the claimed
confidence; the acceptance gate (``coverage-intervals`` CLI command,
``tests/serving/test_progressive_coverage.py``, and the CI artifact
step) allows a small tolerance below it for sampling noise on finite
workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.engine import AggregateQuery, ApproximateQueryEngine
from repro.engine.table import Table
from repro.errors import InvalidParameterError
from repro.queries.workload import random_ranges
from repro.serving.progressive import STAGES, RefinementSession


@dataclass(frozen=True)
class StageCoverage:
    """Empirical coverage of one refinement stage over a workload."""

    stage: str
    answers: int
    covered: int
    mean_width: float
    max_width: float

    @property
    def coverage(self) -> float:
        return self.covered / self.answers if self.answers else 1.0

    def as_dict(self) -> dict:
        return {
            "stage": self.stage,
            "answers": self.answers,
            "covered": self.covered,
            "coverage": self.coverage,
            "mean_width": self.mean_width,
            "max_width": self.max_width,
        }


@dataclass(frozen=True)
class CoverageStudyResult:
    """One seeded coverage run: per-stage coverage plus exactness."""

    row_count: int
    domain: int
    query_count: int
    shards: int
    confidence: float
    seed: int
    append_rows: int
    stages: list = field(default_factory=list)
    exact_matches: int = 0
    exact_answers: int = 0

    @property
    def min_stage_coverage(self) -> float:
        return min((stage.coverage for stage in self.stages), default=1.0)

    @property
    def final_stage_bitwise(self) -> bool:
        return self.exact_matches == self.exact_answers

    def stage(self, name: str) -> StageCoverage:
        for stage in self.stages:
            if stage.stage == name:
                return stage
        raise KeyError(name)

    def summary(self) -> str:
        parts = ", ".join(
            f"{stage.stage}={stage.coverage:.3f}" for stage in self.stages
        )
        return (
            f"{self.query_count} queries @ {self.confidence:.0%} claimed "
            f"(seed {self.seed}): coverage {parts}; final bitwise "
            f"{self.exact_matches}/{self.exact_answers}"
        )

    def as_dict(self) -> dict:
        return {
            "row_count": self.row_count,
            "domain": self.domain,
            "query_count": self.query_count,
            "shards": self.shards,
            "confidence": self.confidence,
            "seed": self.seed,
            "append_rows": self.append_rows,
            "stages": [stage.as_dict() for stage in self.stages],
            "min_stage_coverage": self.min_stage_coverage,
            "final_stage_bitwise": self.final_stage_bitwise,
        }


def run_coverage_study(
    *,
    row_count: int = 20_000,
    domain: int = 512,
    query_count: int = 2000,
    shards: int = 8,
    method: str = "sap1",
    budget_words: int = 256,
    aggregates: tuple = ("count", "sum", "avg"),
    confidence: float = 0.95,
    seed: int = 0,
    append_rows: int = 0,
) -> CoverageStudyResult:
    """Measure per-stage empirical coverage over a random workload.

    Builds one sharded synopsis, optionally appends ``append_rows``
    extra rows *after* the build (so every session also exercises the
    exact append-delta path against a stale entry), then refines every
    query to completion and scores each published stage against the
    live exact answer.  Fully deterministic in ``seed``.
    """
    if query_count < 1 or row_count < 1:
        raise InvalidParameterError("row_count and query_count must be >= 1")
    if append_rows < 0:
        raise InvalidParameterError(f"append_rows must be >= 0, got {append_rows}")
    rng = np.random.default_rng(seed)
    values = rng.integers(0, domain, row_count)
    engine = ApproximateQueryEngine()
    engine.register_table(Table("traffic", {"value": values}))
    engine.build_synopsis(
        "traffic",
        "value",
        method=method,
        budget_words=budget_words,
        shards=shards,
    )
    if append_rows:
        engine.append_rows(
            "traffic", {"value": rng.integers(0, domain, append_rows)}
        )

    workload = random_ranges(domain, query_count, seed=seed + 1)
    answers_by_stage = {stage: 0 for stage in STAGES}
    covered_by_stage = {stage: 0 for stage in STAGES}
    widths_by_stage: dict = {stage: [] for stage in STAGES}
    exact_matches = 0
    exact_answers = 0
    for index, (low, high) in enumerate(workload):
        query = AggregateQuery(
            "traffic",
            "value",
            aggregates[index % len(aggregates)],
            float(low),
            float(high),
        )
        exact = engine.execute_exact(query)
        chain = RefinementSession(
            engine, query, confidence=confidence
        ).run_to_exact()
        for answer in chain:
            answers_by_stage[answer.stage] += 1
            if answer.contains(exact):
                covered_by_stage[answer.stage] += 1
            widths_by_stage[answer.stage].append(answer.width)
        exact_answers += 1
        if chain[-1].stage == "exact" and chain[-1].estimate == exact:
            exact_matches += 1

    stages = [
        StageCoverage(
            stage=stage,
            answers=answers_by_stage[stage],
            covered=covered_by_stage[stage],
            mean_width=float(np.mean(widths_by_stage[stage]))
            if widths_by_stage[stage]
            else 0.0,
            max_width=float(np.max(widths_by_stage[stage]))
            if widths_by_stage[stage]
            else 0.0,
        )
        for stage in STAGES
        if answers_by_stage[stage]
    ]
    return CoverageStudyResult(
        row_count=row_count,
        domain=domain,
        query_count=query_count,
        shards=shards,
        confidence=confidence,
        seed=seed,
        append_rows=append_rows,
        stages=stages,
        exact_matches=exact_matches,
        exact_answers=exact_answers,
    )
