"""One-command reproduction report.

``generate_report()`` runs the complete evaluation — the Figure 1 sweep
and every quantitative claim — on the reproduced paper dataset and
renders a self-contained markdown report with the measured numbers next
to the paper's bands.  The CLI exposes it as ``python -m repro report``;
CI can diff successive reports to catch behavioural drift.
"""

from __future__ import annotations

import platform
import time

import numpy as np

from repro.data.datasets import PAPER_ALPHA, PAPER_DOMAIN, PAPER_SEED, paper_dataset
from repro.experiments.claims import (
    claim_opta_vs_sap1,
    claim_pointopt_vs_opta,
    claim_reopt_gain,
    claim_sap0_inferior,
)
from repro.experiments.figure1 import figure1_table, run_figure1
from repro.experiments.reporting import format_table


def generate_report(data=None, *, include_figure1: bool = True) -> str:
    """Run the evaluation and render the markdown report."""
    started = time.time()
    if data is None:
        data = paper_dataset()
    sections: list[str] = []
    sections.append("# Reproduction report — PODS 2001 range-aggregate synopses\n")
    sections.append(
        f"Dataset: {PAPER_DOMAIN}-key randomly-rounded Zipf({PAPER_ALPHA}), "
        f"seed {PAPER_SEED}, total mass {np.asarray(data).sum():.0f}.  "
        f"Environment: Python {platform.python_version()}, numpy {np.__version__}.\n"
    )

    if include_figure1:
        points = run_figure1(data)
        sections.append("## Figure 1 — SSE vs storage\n")
        sections.append("```\n" + figure1_table(points) + "\n```\n")

    claim_1 = claim_pointopt_vs_opta(data)
    sections.append("## Claim C1 — POINT-OPT vs OPT-A\n")
    sections.append(
        f"Paper: {claim_1.paper_band}.  Measured: max "
        f"{claim_1.max_ratio:.2f}x, mean {claim_1.mean_ratio:.2f}x "
        f"(budgets {list(claim_1.budgets)}).\n"
    )

    claim_2 = claim_opta_vs_sap1(data)
    sections.append("## Claim C2 — OPT-A vs SAP1 at equal storage\n")
    ratio_text = ", ".join(f"{ratio:.1f}x" for ratio in claim_2.ratios)
    sections.append(
        f"Paper: {claim_2.paper_band}.  Measured ratios: {ratio_text}.\n"
    )

    claim_3 = claim_sap0_inferior(data)
    sections.append("## Claim C3 — SAP0 inferior per word\n")
    rows = [
        [budget, row["sap0"], row["sap1"], row["a0"], row["opt-a"]]
        for budget, row in claim_3["rows"].items()
    ]
    sections.append(
        "```\n"
        + format_table(["budget", "sap0", "sap1", "a0", "opt-a"], rows)
        + "\n```\n"
        + f"SAP0 worst at {claim_3['sap0_worst_at']} of "
        + f"{len(claim_3['budgets'])} budgets (paper: {claim_3['paper_band']}).\n"
    )

    claim_4 = claim_reopt_gain(data)
    sections.append("## Claim C4 — value re-optimisation\n")
    improvements = ", ".join(
        f"{claim_4.improvements_pct[budget]:.1f}%" for budget in claim_4.budgets
    )
    sections.append(
        f"Paper: {claim_4.paper_band}.  Measured improvements: {improvements} "
        f"(peak {claim_4.max_improvement_pct:.1f}%).\n"
    )

    sections.append(
        f"---\nGenerated in {time.time() - started:.1f}s by "
        "`repro.experiments.report.generate_report`.\n"
    )
    return "\n".join(sections)
