"""Plain-text table rendering for experiment output.

Every benchmark prints its series through :func:`format_table`, so the
regenerated "figures" are readable in a terminal and diff-able in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _render(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1e5 or abs(cell) < 1e-3:
            return f"{cell:.4g}"
        return f"{cell:,.2f}"
    return str(cell)


def ascii_log_chart(
    series: dict[str, dict[int, float]],
    *,
    width: int = 72,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Render budget -> value series as a log-scale ASCII scatter chart.

    ``series`` maps a label to ``{x: y}`` points; each label is plotted
    with its own marker (its first character).  The y-axis is log10,
    which is how the paper draws Figure 1.
    """
    import math

    points = [
        (x, y, label[0].upper())
        for label, xs in series.items()
        for x, y in xs.items()
        if y > 0
    ]
    if not points:
        return "(no positive data to plot)"
    xs = [p[0] for p in points]
    ys = [math.log10(p[1]) for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = max(x_hi - x_lo, 1e-9)
    y_span = max(y_hi - y_lo, 1e-9)
    grid = [[" "] * width for _ in range(height)]
    for (x, y, marker), ly in zip(points, ys):
        column = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((ly - y_lo) / y_span * (height - 1))
        grid[row][column] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"log10(SSE)  {y_hi:.1f}")
    for row in grid:
        lines.append("  | " + "".join(row))
    lines.append(f"  +{'-' * width}  {y_lo:.1f}")
    lines.append(f"    words: {x_lo} .. {x_hi}")
    legend = "    legend: " + "  ".join(
        f"{label[0].upper()}={label}" for label in series
    )
    lines.append(legend)
    return "\n".join(lines)
