"""Construction-time study.

The paper says it omits runtimes "due to space constraints" and only
notes that the wavelet algorithms are faster than the histogram DPs and
that OPT-A's pseudo-polynomial construction "will be infeasible for
realistic datasets".  This harness measures construction time for every
builder across domain sizes so those statements can be checked against
the reproduction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.builders import build_by_name
from repro.data.distributions import zipf_frequencies


@dataclass(frozen=True)
class TimingPoint:
    method: str
    n: int
    buckets_budget_words: int
    seconds: float


#: Methods safe to run at every size (polynomial time).
POLYNOMIAL_METHODS = ("point-opt", "a0", "sap0", "sap1", "wavelet-point", "wavelet-range")


def run_construction_timing(
    sizes=(64, 127, 256, 512),
    budget_words: int = 32,
    include_opt_a_up_to: int = 127,
    seed: int = 99,
) -> list[TimingPoint]:
    """Time one build per (method, n); OPT-A only up to the given n."""
    points: list[TimingPoint] = []
    for n in sizes:
        data = zipf_frequencies(n, alpha=1.8, scale=1000, seed=seed)
        methods = list(POLYNOMIAL_METHODS)
        if n <= include_opt_a_up_to:
            methods.append("opt-a")
        for method in methods:
            start = time.perf_counter()
            build_by_name(method, data, budget_words)
            points.append(
                TimingPoint(
                    method=method,
                    n=n,
                    buckets_budget_words=budget_words,
                    seconds=time.perf_counter() - start,
                )
            )
    return points
