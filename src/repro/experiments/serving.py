"""Serve-path throughput study: coalesced server vs naive per-query loop.

The serving tier's pitch is that concurrent clients submitting one
query at a time can still ride the engine's vectorised
``execute_batch`` path, because the
:class:`~repro.serving.coalescer.RequestCoalescer` merges in-flight
requests into batches.  This harness quantifies that: ``thread_count``
client threads each push their slice of a shared workload through

* the **naive** path — every thread calls scalar ``engine.execute``
  per query (what an unbatched service would do), and
* the **coalesced** path — every thread submits to one
  :class:`~repro.serving.QueryServer` and waits on futures,

and reports queries/second for both plus the answer agreement.  The
``bench-serve`` CLI command and ``benchmarks/test_serve.py`` (which
gates a >=5x speedup and writes ``BENCH_serve.json``) both run through
here.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.engine.engine import AggregateQuery, ApproximateQueryEngine
from repro.engine.table import Table
from repro.errors import InvalidParameterError
from repro.queries.workload import random_ranges
from repro.serving import QueryServer


@dataclass(frozen=True)
class ServeBenchmarkResult:
    """Timings of one naive-vs-coalesced serve comparison."""

    row_count: int
    domain: int
    query_count: int
    thread_count: int
    max_batch: int
    max_delay_ms: float
    naive_seconds: float
    served_seconds: float
    max_abs_difference: float
    batches: int
    cache_hits: int

    @property
    def speedup(self) -> float:
        return self.naive_seconds / self.served_seconds if self.served_seconds else 0.0

    @property
    def naive_qps(self) -> float:
        return self.query_count / self.naive_seconds if self.naive_seconds else 0.0

    @property
    def served_qps(self) -> float:
        return self.query_count / self.served_seconds if self.served_seconds else 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.query_count / self.batches if self.batches else 0.0

    def summary(self) -> str:
        return (
            f"{self.query_count} queries x {self.thread_count} threads: "
            f"naive {self.naive_seconds:.3f}s ({self.naive_qps:,.0f} q/s), "
            f"coalesced {self.served_seconds:.4f}s ({self.served_qps:,.0f} q/s), "
            f"speedup {self.speedup:.1f}x, "
            f"mean batch {self.mean_batch_size:.0f}"
        )

    def as_dict(self) -> dict:
        return {
            "row_count": self.row_count,
            "domain": self.domain,
            "query_count": self.query_count,
            "thread_count": self.thread_count,
            "max_batch": self.max_batch,
            "max_delay_ms": self.max_delay_ms,
            "naive_seconds": self.naive_seconds,
            "served_seconds": self.served_seconds,
            "naive_qps": self.naive_qps,
            "served_qps": self.served_qps,
            "speedup": self.speedup,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "cache_hits": self.cache_hits,
            "max_abs_difference": self.max_abs_difference,
        }


def run_serve_benchmark(
    *,
    row_count: int = 100_000,
    domain: int = 1024,
    query_count: int = 20_000,
    thread_count: int = 4,
    method: str = "sap1",
    budget_words: int = 128,
    aggregates: tuple = ("count", "sum"),
    seed: int = 17,
    max_batch: int = 2048,
    max_delay_ms: float = 2.0,
) -> ServeBenchmarkResult:
    """Time per-query serving against the coalescing server.

    The same workload runs down both paths with the same thread fan-in.
    The server's ``max_pending`` is set above the workload size so the
    study measures coalescing throughput, never admission-control
    shedding (shed answers come from the fallback rung and would
    diverge from the naive path's synopsis answers).  Repeated ranges
    may legitimately hit the answer cache, exactly as they would in
    production; ``cache_hits`` reports how often.
    ``max_abs_difference`` compares both paths' estimates query-by-query
    (zero: both ride the same synopsis estimators).
    """
    if query_count < 1 or row_count < 1:
        raise InvalidParameterError("row_count and query_count must be >= 1")
    if thread_count < 1:
        raise InvalidParameterError(f"thread_count must be >= 1, got {thread_count}")
    rng = np.random.default_rng(seed)
    values = rng.integers(0, domain, row_count)
    engine = ApproximateQueryEngine()
    engine.register_table(Table("traffic", {"value": values}))
    engine.build_synopsis(
        "traffic", "value", method=method, budget_words=budget_words
    )

    workload = random_ranges(domain, query_count, seed=seed + 1)
    queries = [
        AggregateQuery(
            "traffic",
            "value",
            aggregates[index % len(aggregates)],
            float(low),
            float(high),
        )
        for index, (low, high) in enumerate(workload)
    ]
    slices = [queries[index::thread_count] for index in range(thread_count)]

    def naive_worker(slice_queries):
        return [engine.execute(query) for query in slice_queries]

    with ThreadPoolExecutor(max_workers=thread_count) as pool:
        start = time.perf_counter()
        naive_slices = list(pool.map(naive_worker, slices))
        naive_seconds = time.perf_counter() - start

    server = QueryServer(
        engine,
        max_batch=max_batch,
        max_delay_ms=max_delay_ms,
        max_pending=query_count + thread_count,
    )

    def served_worker(slice_queries):
        futures = server.submit_many(slice_queries)
        return [future.result() for future in futures]

    with server, ThreadPoolExecutor(max_workers=thread_count) as pool:
        start = time.perf_counter()
        served_slices = list(pool.map(served_worker, slices))
        served_seconds = time.perf_counter() - start
    stats = server.stats()

    max_abs_difference = max(
        abs(naive.estimate - served.estimate)
        for naive_slice, served_slice in zip(naive_slices, served_slices)
        for naive, served in zip(naive_slice, served_slice)
    )
    return ServeBenchmarkResult(
        row_count=row_count,
        domain=domain,
        query_count=query_count,
        thread_count=thread_count,
        max_batch=max_batch,
        max_delay_ms=max_delay_ms,
        naive_seconds=naive_seconds,
        served_seconds=served_seconds,
        max_abs_difference=max_abs_difference,
        batches=stats["batches"],
        cache_hits=stats["cache_hits"],
    )
