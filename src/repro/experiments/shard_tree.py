"""Shard-tree study: O(log S) dyadic answering vs. O(S) flat summation.

The dyadic shard tree exists for one reason: a sharded synopsis's
interior — the run of fully-covered shards inside ``s[a, b]`` — should
not cost O(S) per query once S reaches the tens of thousands the
streaming-ingest leg targets.  This harness times the three interior
strategies over the same frozen totals and random interior ranges:

* ``flat`` — the pre-tree baseline: one python-level ``.sum()`` over
  the covered slice per query, O(S) each;
* ``tree`` — the dyadic tree's batched ``range_sum_many``, O(log S)
  node gathers per query, fully vectorised across the batch;
* ``prefix`` — a cumulative-prefix difference, O(1) per query but O(S)
  to rebuild on *every* shard refresh (the maintenance cost the tree
  exists to avoid), reported for context and not gated.

Totals are integer-valued, so all three orders of float64 summation are
exact and the answers must be **bit-identical** — the run asserts it.
This backs the ``bench-shard-tree`` CLI command and the
``benchmarks/test_shard_tree.py`` CI gate; ``run_compaction_demo``
backs the ``compact`` CLI command.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.engine.compaction import CompactionPolicy
from repro.engine.engine import AggregateQuery, ApproximateQueryEngine
from repro.engine.shard_tree import DyadicShardTree
from repro.engine.table import Table
from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class ShardTreeBenchmarkResult:
    """Timings of one tree-vs-flat interior-answering comparison."""

    shards: int
    queries: int
    tree_depth: int
    tree_seconds: float
    flat_seconds: float
    prefix_seconds: float
    bit_identical: bool

    @property
    def speedup(self) -> float:
        """Tree batched answering vs the O(S)-per-query flat loop."""
        return self.flat_seconds / self.tree_seconds if self.tree_seconds else 0.0

    def summary(self) -> str:
        return (
            f"S={self.shards} (depth {self.tree_depth}), "
            f"{self.queries} interior ranges: flat loop "
            f"{self.flat_seconds:.4f}s, dyadic tree {self.tree_seconds:.4f}s "
            f"(prefix {self.prefix_seconds:.4f}s), speedup "
            f"{self.speedup:.1f}x, bit-identical={self.bit_identical}"
        )

    def to_dict(self) -> dict:
        return {
            "shards": self.shards,
            "queries": self.queries,
            "tree_depth": self.tree_depth,
            "tree_seconds": self.tree_seconds,
            "flat_seconds": self.flat_seconds,
            "prefix_seconds": self.prefix_seconds,
            "bit_identical": self.bit_identical,
            "speedup": self.speedup,
        }


def run_shard_tree_benchmark(
    *,
    shards: int = 4096,
    queries: int = 4096,
    repeats: int = 3,
    seed: int = 23,
) -> ShardTreeBenchmarkResult:
    """Time dyadic-tree interior answering against the flat-sum baseline.

    Integer-valued per-shard totals (what COUNT shards always hold)
    make every summation order exact in float64, so beyond the timing
    the run *asserts* the three strategies agree bitwise — speed never
    comes at the price of a different answer.  Each strategy is timed
    over ``repeats`` passes and the best pass is kept (standard
    min-of-N to shed scheduler noise).
    """
    if shards < 2 or queries < 1 or repeats < 1:
        raise InvalidParameterError(
            "need shards >= 2, queries >= 1, and repeats >= 1"
        )
    rng = np.random.default_rng(seed)
    totals = rng.integers(0, 10_000, shards).astype(np.float64)
    firsts = rng.integers(0, shards, queries)
    lasts = firsts + rng.integers(0, shards, queries) % (shards - firsts)
    tree = DyadicShardTree(totals)
    prefix = np.concatenate(([0.0], np.cumsum(totals)))

    def _flat() -> np.ndarray:
        return np.asarray(
            [totals[first : last + 1].sum() for first, last in zip(firsts, lasts)]
        )

    def _tree() -> np.ndarray:
        return tree.range_sum_many(firsts, lasts)

    def _prefix() -> np.ndarray:
        return prefix[lasts + 1] - prefix[firsts]

    def _best(fn) -> tuple[float, np.ndarray]:
        best = float("inf")
        answers = None
        for _ in range(repeats):
            begin = time.perf_counter()
            answers = fn()
            best = min(best, time.perf_counter() - begin)
        return best, answers

    flat_seconds, flat_answers = _best(_flat)
    tree_seconds, tree_answers = _best(_tree)
    prefix_seconds, prefix_answers = _best(_prefix)
    bit_identical = bool(
        np.array_equal(tree_answers, flat_answers)
        and np.array_equal(prefix_answers, flat_answers)
    )
    return ShardTreeBenchmarkResult(
        shards=shards,
        queries=queries,
        tree_depth=tree.depth,
        tree_seconds=tree_seconds,
        flat_seconds=flat_seconds,
        prefix_seconds=prefix_seconds,
        bit_identical=bit_identical,
    )


@dataclass(frozen=True)
class CompactionDemoResult:
    """Outcome of one policy-driven compaction pass over a hot-tail workload."""

    shards_before: int
    shards_after: int
    shards_merged: int
    generation: int
    runs: list
    heat: list
    max_abs_drift: float

    def summary(self) -> str:
        return (
            f"compacted {self.shards_before} -> {self.shards_after} shards "
            f"({self.shards_merged} merged across {len(self.runs)} run(s), "
            f"generation {self.generation}); max |answer drift| "
            f"{self.max_abs_drift:.3g}"
        )

    def to_dict(self) -> dict:
        return {
            "shards_before": self.shards_before,
            "shards_after": self.shards_after,
            "shards_merged": self.shards_merged,
            "generation": self.generation,
            "runs": self.runs,
            "heat": self.heat,
            "max_abs_drift": self.max_abs_drift,
        }


def run_compaction_demo(
    *,
    row_count: int = 50_000,
    domain: int = 1024,
    shards: int = 32,
    append_count: int = 2_000,
    method: str = "a0",
    budget_words: int = 8192,
    hot_tail_shards: int = 4,
    max_run_length: int = 8,
    seed: int = 29,
) -> CompactionDemoResult:
    """Append into the domain tail, then compact the cold head.

    Builds one sharded column, streams ``append_count`` rows whose
    values live in the last shard's range (the classic time-series
    hot tail), and runs the heat-driven compaction policy: the cold
    head shards merge into coarser runs while the hot tail keeps its
    resolution.  ``max_abs_drift`` compares shard-aligned answers on
    the *surviving* boundaries before and after the compaction swap —
    with an exact builder (the ``a0`` default at a generous budget) it
    is ``0.0``.
    """
    if shards < 4 or domain < shards:
        raise InvalidParameterError("need shards >= 4 and domain >= shards")
    rng = np.random.default_rng(seed)
    values = rng.integers(0, domain, row_count)
    values[0], values[1] = 0, domain - 1
    engine = ApproximateQueryEngine(predict_errors=False)
    engine.register_table(Table("events", {"value": values}))
    engine.build_synopsis(
        "events", "value", method=method, budget_words=budget_words, shards=shards
    )
    synopsis = engine._synopses[("events", "value")].count_estimator
    tail_low = int(synopsis.starts[-2])
    engine.append_rows(
        "events", {"value": rng.integers(tail_low, domain, append_count)}
    )
    heat = engine.shard_heat()["events.value"]

    policy = CompactionPolicy(
        hot_tail_shards=hot_tail_shards, max_run_length=max_run_length
    )
    before = engine._synopses[("events", "value")].count_estimator
    queries = [
        AggregateQuery("events", "value", "count", int(low), int(high))
        for low, high in zip(before.starts[:-1:4], before.starts[4::4] - 1)
    ]
    answers_before = [
        engine.execute(q, on_stale="serve").estimate for q in queries
    ]
    report = engine.compact_shards("events", "value", policy=policy)
    if report is None:
        raise InvalidParameterError(
            "workload produced no cold runs; lower hot_tail_shards"
        )
    after = engine._synopses[("events", "value")].count_estimator
    answers_after = [
        engine.execute(q, on_stale="serve").estimate for q in queries
    ]
    drift = float(
        np.max(np.abs(np.asarray(answers_after) - np.asarray(answers_before)))
    )
    return CompactionDemoResult(
        shards_before=report["shards_before"],
        shards_after=after.num_shards,
        shards_merged=report["shards_merged"],
        generation=report["generation"],
        runs=report["runs"],
        heat=heat,
        max_abs_drift=drift,
    )
