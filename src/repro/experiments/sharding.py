"""Incremental-refresh study: dirty-shard rebuild vs. full rebuild.

The point of sharding the synopsis catalog is maintenance cost: a
steady append workload invalidates synopses continuously, and the
monolithic ``refresh_stale`` pays the full O(n^2 B) DP rebuild each
time.  This harness appends a batch of rows confined to one shard's
value range and times the sharded engine's dirty-shard refresh against
the monolithic engine's full rebuild of the same column — the workload
behind the ``bench-refresh`` CLI command and the sharded-refresh
benchmark gate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.engine.engine import AggregateQuery, ApproximateQueryEngine
from repro.engine.table import Table
from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class RefreshBenchmarkResult:
    """Timings of one incremental-vs-full refresh comparison."""

    row_count: int
    domain: int
    shards: int
    append_count: int
    method: str
    budget_words: int
    monolithic_seconds: float
    incremental_seconds: float
    shards_rebuilt: int
    aligned_max_abs_error: float

    @property
    def speedup(self) -> float:
        return (
            self.monolithic_seconds / self.incremental_seconds
            if self.incremental_seconds
            else 0.0
        )

    def summary(self) -> str:
        return (
            f"{self.shards}-shard {self.method} over domain {self.domain} "
            f"({self.row_count} rows, {self.append_count} appended): "
            f"full rebuild {self.monolithic_seconds:.3f}s, incremental "
            f"refresh {self.incremental_seconds:.4f}s "
            f"({self.shards_rebuilt} shard(s) rebuilt), "
            f"speedup {self.speedup:.1f}x"
        )

    def to_dict(self) -> dict:
        return {
            "row_count": self.row_count,
            "domain": self.domain,
            "shards": self.shards,
            "append_count": self.append_count,
            "method": self.method,
            "budget_words": self.budget_words,
            "monolithic_seconds": self.monolithic_seconds,
            "incremental_seconds": self.incremental_seconds,
            "shards_rebuilt": self.shards_rebuilt,
            "aligned_max_abs_error": self.aligned_max_abs_error,
            "speedup": self.speedup,
        }


def run_refresh_benchmark(
    *,
    row_count: int = 200_000,
    domain: int = 2048,
    shards: int = 64,
    append_count: int = 2_000,
    method: str = "sap1",
    budget_words: int = 1024,
    seed: int = 17,
    fallback=None,
    deadline_ms: float | None = None,
) -> RefreshBenchmarkResult:
    """Time an incremental dirty-shard refresh against a full rebuild.

    Two engines summarise the same uniform integer column — one
    monolithic, one with ``shards`` shards — then both receive the same
    append batch whose values are confined to a single shard's value
    range, and both call ``refresh_stale()``.  The monolithic engine
    rebuilds the whole synopsis; the sharded engine rebuilds exactly the
    dirty shard.  ``aligned_max_abs_error`` checks the refreshed sharded
    synopsis still answers shard-aligned COUNT ranges exactly.
    """
    if row_count < 1 or domain < shards or shards < 2:
        raise InvalidParameterError(
            "need row_count >= 1, shards >= 2, and domain >= shards"
        )
    rng = np.random.default_rng(seed)
    values = rng.integers(0, domain, row_count)
    # Pin the extremes so appends cannot widen the domain.
    values[0], values[1] = 0, domain - 1

    monolithic = ApproximateQueryEngine(predict_errors=False)
    sharded = ApproximateQueryEngine(predict_errors=False)
    for engine, shard_count in ((monolithic, 1), (sharded, shards)):
        engine.register_table(Table("traffic", {"value": values.copy()}))
        engine.build_synopsis(
            "traffic",
            "value",
            method=method,
            budget_words=budget_words,
            shards=shard_count,
            fallback=fallback,
            deadline_ms=deadline_ms,
        )

    entry = sharded._synopses[("traffic", "value")]
    starts = entry.count_estimator.starts
    target_shard = int(shards // 2)
    axis = entry.statistics.values_axis
    shard_lo = float(axis[int(starts[target_shard])])
    shard_hi = float(axis[int(starts[target_shard + 1]) - 1])
    appended = rng.integers(int(shard_lo), int(shard_hi) + 1, append_count)

    monolithic.append_rows("traffic", {"value": appended})
    sharded.append_rows("traffic", {"value": appended})

    begin = time.perf_counter()
    monolithic.refresh_stale(fallback=fallback, deadline_ms=deadline_ms)
    monolithic_seconds = time.perf_counter() - begin

    begin = time.perf_counter()
    sharded.refresh_stale(fallback=fallback, deadline_ms=deadline_ms)
    incremental_seconds = time.perf_counter() - begin
    shards_rebuilt = int(sharded.stats()["dirty_shards_rebuilt"])

    # Shard-aligned ranges must stay exact after the refresh.
    refreshed = sharded._synopses[("traffic", "value")]
    aligned_max_abs_error = 0.0
    probe_starts = refreshed.count_estimator.starts
    for shard in range(0, refreshed.count_estimator.num_shards, max(shards // 8, 1)):
        low = float(axis[int(probe_starts[shard])])
        high = float(axis[int(probe_starts[-1]) - 1])
        result = sharded.execute(
            AggregateQuery("traffic", "value", "count", low, high), with_exact=True
        )
        aligned_max_abs_error = max(aligned_max_abs_error, result.absolute_error)

    return RefreshBenchmarkResult(
        row_count=row_count,
        domain=domain,
        shards=shards,
        append_count=append_count,
        method=method,
        budget_words=budget_words,
        monolithic_seconds=monolithic_seconds,
        incremental_seconds=incremental_seconds,
        shards_rebuilt=shards_rebuilt,
        aligned_max_abs_error=aligned_max_abs_error,
    )
