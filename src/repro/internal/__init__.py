"""Internal helpers shared by the public subpackages.

Nothing in this package is part of the supported API; import from
:mod:`repro` or its documented subpackages instead.
"""
