"""Cooperative build deadlines.

The paper's pseudo-polynomial DPs (OPT-A, Theorems 1-2) can blow any
interactive time budget on heavy instances, and even the polynomial
``O(n^2 B)`` interval DP gets expensive at large domains.  A
:class:`Deadline` is a tiny clock-backed budget that those inner loops
poll cooperatively: when the budget is spent, the build raises
:class:`~repro.errors.BuildTimeoutError` instead of hanging, and the
engine's fallback chain can degrade to a cheaper builder (A0, Theorem
10, or OPT-A-ROUNDED, Theorem 4 — the paper's own cheap substitutes).

The deadline travels *ambiently* in a thread-local rather than through
every builder signature: callers wrap the build in
:func:`deadline_scope` and the DP loops call :func:`check_deadline`.
Builders that never look stay oblivious; results are bit-identical with
or without an unexpired deadline because the checks only ever raise.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.errors import BuildTimeoutError, InvalidParameterError


class Deadline:
    """A point in time after which cooperative work must stop.

    ``clock`` is any object with a ``now() -> float`` method (the
    engine passes its own clock so tests can drive deadlines with
    ``FakeClock``); the default reads ``time.perf_counter``.
    """

    __slots__ = ("seconds", "_clock", "_expires_at")

    def __init__(self, seconds: float, clock=None) -> None:
        seconds = float(seconds)
        if not seconds > 0:
            raise InvalidParameterError(
                f"deadline must be a positive number of seconds, got {seconds}"
            )
        self.seconds = seconds
        self._clock = clock
        self._expires_at = self._now() + seconds

    @classmethod
    def from_ms(cls, milliseconds: float, clock=None) -> "Deadline":
        """A deadline ``milliseconds`` from now (CLI-flavoured constructor)."""
        return cls(float(milliseconds) / 1000.0, clock=clock)

    def _now(self) -> float:
        if self._clock is None:
            return time.perf_counter()
        return self._clock.now()

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self._expires_at - self._now()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, context: str = "") -> None:
        """Raise :class:`BuildTimeoutError` if the budget is spent."""
        if self.expired():
            where = f" in {context}" if context else ""
            raise BuildTimeoutError(
                f"build deadline of {self.seconds:.6g}s exceeded{where}"
            )


_local = threading.local()


def current_deadline() -> Deadline | None:
    """The ambient deadline of this thread, if any."""
    return getattr(_local, "deadline", None)


@contextmanager
def deadline_scope(deadline: Deadline | None):
    """Install ``deadline`` as this thread's ambient deadline.

    ``None`` is a no-op scope (convenient for call sites that take an
    optional deadline).  Scopes nest; the previous deadline is restored
    on exit, so a bounded build inside an unbounded caller never leaks
    its budget outward.
    """
    previous = current_deadline()
    _local.deadline = deadline if deadline is not None else previous
    try:
        yield deadline
    finally:
        _local.deadline = previous


def check_deadline(context: str = "") -> None:
    """Poll the ambient deadline; cheap no-op when none is installed."""
    deadline = current_deadline()
    if deadline is not None:
        deadline.check(context)
