"""Generic interval dynamic program for additive histogram objectives.

Every polynomial-time construction in the paper (point-optimal [6],
SAP0/SAP1 via the Decomposition Lemma, and the A0 heuristic) minimises a
sum of independent per-bucket costs.  This module implements the shared
``O(n^2 B)`` dynamic program once, vectorised row-by-row with numpy:

    D[k][i] = min cost of covering the prefix of length i with at most k
              buckets = min_{0 <= j < i} D[k-1][j] + cost(j, i-1)

``cost_row(a)`` must return the costs of all buckets ``[a, b]`` for
``b = a..n-1`` in one array, which the closed forms in
:mod:`repro.internal.prefix` provide in O(n) per row.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.internal.deadline import check_deadline


def interval_dp(
    n: int,
    max_buckets: int,
    cost_row: Callable[[int], np.ndarray],
    combine: str = "sum",
) -> tuple[np.ndarray, float]:
    """Optimal partition of ``[0, n)`` into at most ``max_buckets`` buckets.

    Parameters
    ----------
    n:
        Domain size.
    max_buckets:
        Upper bound on the number of buckets (using fewer is allowed and
        happens when it is not worse).
    cost_row:
        Callback returning ``cost(a, b)`` for ``b = a..n-1`` as a float
        array of length ``n - a``.
    combine:
        How bucket costs aggregate: ``"sum"`` (SSE-style objectives) or
        ``"max"`` (minimax objectives — minimise the worst bucket).

    Returns
    -------
    (lefts, total_cost):
        Bucket start indices (``lefts[0] == 0``) and the optimal total.
    """
    if combine not in ("sum", "max"):
        raise ValueError(f"combine must be 'sum' or 'max', got {combine!r}")
    merge = np.add if combine == "sum" else np.maximum
    cost = np.full((n, n), np.inf)
    for a in range(n):
        check_deadline("interval DP cost precompute")
        row = np.asarray(cost_row(a), dtype=np.float64)
        if row.shape != (n - a,):
            raise ValueError(f"cost_row({a}) must have length {n - a}, got {row.shape}")
        cost[a, a:] = row

    best = np.full((max_buckets + 1, n + 1), np.inf)
    parent = np.zeros((max_buckets + 1, n + 1), dtype=np.int64)
    best[:, 0] = 0.0 if combine == "sum" else -np.inf
    for k in range(1, max_buckets + 1):
        prev = best[k - 1]
        check_deadline("interval DP layer fill")
        for i in range(1, n + 1):
            candidates = merge(prev[:i], cost[:i, i - 1])
            j = int(np.argmin(candidates))
            best[k, i] = candidates[j]
            parent[k, i] = j

    lefts: list[int] = []
    i, k = n, max_buckets
    while i > 0:
        j = int(parent[k, i])
        lefts.append(j)
        i, k = j, k - 1
    lefts.reverse()
    return np.asarray(lefts, dtype=np.int64), float(best[max_buckets, n])
