"""Generic interval dynamic program for additive histogram objectives.

Every polynomial-time construction in the paper (point-optimal [6],
SAP0/SAP1 via the Decomposition Lemma, and the A0 heuristic) minimises a
sum of independent per-bucket costs.  This module implements the shared
``O(n^2 B)`` dynamic program once, fully vectorised with numpy:

    D[k][i] = min cost of covering the prefix of length i with at most k
              buckets = min_{0 <= j < i} D[k-1][j] + cost(j, i-1)

``cost_row(a)`` must return the costs of all buckets ``[a, b]`` for
``b = a..n-1`` in one array, which the closed forms in
:mod:`repro.internal.prefix` provide in O(n) per row; rows are
independent, so an optional ``pool`` fans the precompute out (see
:mod:`repro.internal.parallel`).

Each DP layer is filled as one whole-layer kernel: the candidate matrix
``merge(prev[j], cost[j, i-1])`` is formed by a single broadcast and
reduced with a column-wise argmin — no per-prefix Python loop.  The
upper triangle of ``cost`` is ``+inf``, which makes the out-of-range
candidates (``j >= i``) inert under both ``sum`` and ``max`` combines,
so the vectorised fill selects from exactly the same candidate set, with
the same first-smallest-``j`` tie-break, as the scalar recurrence.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.internal.deadline import check_deadline
from repro.internal.parallel import map_rows


def _fill_layer_vectorised(prev: np.ndarray, cost: np.ndarray, merge):
    """One DP layer: ``(values, parents)`` for every prefix ``i = 1..n``.

    ``prev`` is the previous layer over prefixes ``0..n`` and ``cost``
    the full ``(n, n)`` bucket-cost matrix (``+inf`` above the
    diagonal's mirror, i.e. where ``a > b``).
    """
    candidates = merge(prev[:-1, None], cost)
    parents = np.argmin(candidates, axis=0)
    values = candidates[parents, np.arange(cost.shape[0])]
    return values, parents


def _fill_layer_scalar(prev: np.ndarray, cost: np.ndarray, merge):
    """Reference per-prefix fill; kept for differential testing."""
    n = cost.shape[0]
    values = np.empty(n)
    parents = np.empty(n, dtype=np.int64)
    for i in range(1, n + 1):
        candidates = merge(prev[:i], cost[:i, i - 1])
        j = int(np.argmin(candidates))
        values[i - 1] = candidates[j]
        parents[i - 1] = j
    return values, parents


#: The active layer-fill kernel; tests swap in the scalar reference.
_fill_layer = _fill_layer_vectorised


def interval_dp(
    n: int,
    max_buckets: int,
    cost_row: Callable[[int], np.ndarray],
    combine: str = "sum",
    *,
    pool=None,
) -> tuple[np.ndarray, float]:
    """Optimal partition of ``[0, n)`` into at most ``max_buckets`` buckets.

    Parameters
    ----------
    n:
        Domain size.
    max_buckets:
        Upper bound on the number of buckets (using fewer is allowed and
        happens when it is not worse).
    cost_row:
        Callback returning ``cost(a, b)`` for ``b = a..n-1`` as a float
        array of length ``n - a``.
    combine:
        How bucket costs aggregate: ``"sum"`` (SSE-style objectives) or
        ``"max"`` (minimax objectives — minimise the worst bucket).
    pool:
        Optional row-precompute parallelism: ``None`` (serial), an int
        worker count, or an executor (see
        :func:`repro.internal.parallel.map_rows`).  Thread pools only —
        ``cost_row`` is usually a closure over the algebra, which does
        not pickle into a process pool.

    Returns
    -------
    (lefts, total_cost):
        Bucket start indices (``lefts[0] == 0``) and the optimal total.
        The final state is the best over *all* layers ``k <=
        max_buckets`` (ties prefer fewer buckets), so objectives with a
        per-bucket overhead — where splitting can hurt — still resolve
        to the true optimum.
    """
    if combine not in ("sum", "max"):
        raise ValueError(f"combine must be 'sum' or 'max', got {combine!r}")
    if max_buckets < 1:
        raise ValueError(f"max_buckets must be >= 1, got {max_buckets}")
    merge = np.add if combine == "sum" else np.maximum

    def one_row(a: int) -> np.ndarray:
        row = np.asarray(cost_row(a), dtype=np.float64)
        if row.shape != (n - a,):
            raise ValueError(f"cost_row({a}) must have length {n - a}, got {row.shape}")
        return row

    cost = np.full((n, n), np.inf)
    rows = map_rows(one_row, range(n), pool=pool, context="interval DP cost precompute")
    for a, row in enumerate(rows):
        cost[a, a:] = row

    best = np.full((max_buckets + 1, n + 1), np.inf)
    parent = np.zeros((max_buckets + 1, n + 1), dtype=np.int64)
    best[:, 0] = 0.0 if combine == "sum" else -np.inf
    for k in range(1, max_buckets + 1):
        check_deadline("interval DP layer fill")
        values, parents = _fill_layer(best[k - 1], cost, merge)
        best[k, 1:] = values
        parent[k, 1:] = parents

    # Final state: best over every bucket count k <= max_buckets (the
    # same selection opt_a_search performs), not just the last layer.
    k_best = 1 + int(np.argmin(best[1:, n]))

    lefts: list[int] = []
    i, k = n, k_best
    while i > 0:
        j = int(parent[k, i])
        lefts.append(j)
        i, k = j, k - 1
    lefts.reverse()
    return np.asarray(lefts, dtype=np.int64), float(best[k_best, n])
