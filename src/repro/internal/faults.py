"""Deterministic fault injection for chaos testing.

Resilience claims are only as good as the faults they were tested
against.  A :class:`FaultInjector` holds a seeded set of rules —
fail / slow / corrupt, scoped to named *sites* with attribute matching —
and production code paths expose cheap hook points:

* :func:`fault_point` — may raise :class:`~repro.errors.FaultInjectedError`
  (``fail`` rules) or sleep (``slow`` rules, deadline-aware);
* :func:`transform_bytes` — may flip bits in a byte payload
  (``corrupt`` rules; persistence uses it on serialized blobs);
* ``kill`` rules terminate the *process* on the spot via ``os._exit``
  — indistinguishable from a SIGKILL to the parent, which is the point:
  the serving pool's worker processes use them to simulate hard crashes
  mid-batch.  Because forked workers copy rule state at fork time, a
  restarted worker would re-fire the same rule; kill rules therefore
  usually match on the worker's ``generation`` attribute (generation 0
  dies, its replacement lives).

Sites currently instrumented:

``builder``            every :func:`repro.core.builders.build_by_name` call
``shard_rebuild``      per-shard builds in :mod:`repro.engine.sharding`
``persistence_write``  :func:`repro.engine.persistence.save_catalog` I/O
``persistence_read``   :func:`repro.engine.persistence.load_catalog` I/O
``serve_flush``        :meth:`repro.serving.server.QueryServer` batch flush
``worker_batch``       pool worker per-batch execution (kill/slow targets)
``worker_heartbeat``   pool worker heartbeat emission (silence via slow)
``shared_attach``      shared-memory catalog attach in pool workers

When no injector is active (the production default) every hook is a
single global read — effectively free.  Determinism: rules draw from
one seeded generator in hook-call order, so a fixed workload replays
identically; parallel builds should use ``probability=1.0`` with a
``times`` budget rather than coin flips.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.errors import FaultInjectedError, InvalidParameterError
from repro.internal.deadline import check_deadline

FAULT_MODES = ("fail", "slow", "corrupt", "kill")

#: Injected slowdowns sleep in slices this long so an ambient build
#: deadline interrupts a slow fault promptly (the 2x-deadline bound).
_SLEEP_SLICE_SECONDS = 0.005

#: Exit status used by ``kill`` rules — distinctive enough that a test
#: watching ``Process.exitcode`` can tell an injected kill from a real
#: crash (negative codes) or a clean exit (0).
_KILL_EXIT_CODE = 77


@dataclass
class FaultRule:
    """One armed fault: where it fires, how, and how often."""

    site: str
    mode: str
    match: dict = field(default_factory=dict)
    probability: float = 1.0
    times: int | None = None  # remaining firings; None = unlimited
    seconds: float = 0.0  # slow-mode sleep
    message: str = ""
    fired: int = 0

    def matches(self, site: str, attrs: dict) -> bool:
        if self.site != site:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        return all(attrs.get(key) == value for key, value in self.match.items())


class FaultInjector:
    """A seeded, inspectable set of fault rules.

    Use as a context manager (or call :meth:`activate`) to install the
    injector globally; every fired fault is appended to :attr:`events`
    as ``{"site", "mode", "attrs", "rule"}`` so chaos tests can assert
    exactly what happened.
    """

    def __init__(self, seed: int = 0, sleep=time.sleep) -> None:
        self._rng = np.random.default_rng(seed)
        self._sleep = sleep
        self.rules: list[FaultRule] = []
        self.events: list[dict] = []

    # -- rule builders -------------------------------------------------
    def _add(self, rule: FaultRule) -> FaultRule:
        if rule.mode not in FAULT_MODES:
            raise InvalidParameterError(
                f"fault mode must be one of {FAULT_MODES}, got {rule.mode!r}"
            )
        if not 0.0 <= rule.probability <= 1.0:
            raise InvalidParameterError(
                f"probability must be in [0, 1], got {rule.probability}"
            )
        self.rules.append(rule)
        return rule

    def fail(
        self,
        site: str,
        *,
        probability: float = 1.0,
        times: int | None = None,
        message: str = "",
        **match,
    ) -> FaultRule:
        """Arm a rule raising :class:`FaultInjectedError` at ``site``."""
        return self._add(
            FaultRule(
                site=site,
                mode="fail",
                match=match,
                probability=probability,
                times=times,
                message=message,
            )
        )

    def slow(
        self,
        site: str,
        seconds: float,
        *,
        probability: float = 1.0,
        times: int | None = None,
        **match,
    ) -> FaultRule:
        """Arm a rule sleeping ``seconds`` at ``site`` (deadline-aware)."""
        if seconds < 0:
            raise InvalidParameterError(f"slowdown must be >= 0, got {seconds}")
        return self._add(
            FaultRule(
                site=site,
                mode="slow",
                match=match,
                probability=probability,
                times=times,
                seconds=float(seconds),
            )
        )

    def corrupt(
        self,
        site: str,
        *,
        probability: float = 1.0,
        times: int | None = None,
        **match,
    ) -> FaultRule:
        """Arm a rule flipping bits in byte payloads at ``site``."""
        return self._add(
            FaultRule(
                site=site,
                mode="corrupt",
                match=match,
                probability=probability,
                times=times,
            )
        )

    def kill(
        self,
        site: str,
        *,
        probability: float = 1.0,
        times: int | None = None,
        **match,
    ) -> FaultRule:
        """Arm a rule hard-terminating the current process at ``site``.

        Fires ``os._exit`` — no cleanup handlers, no exception
        propagation — so the parent sees the same thing a SIGKILL
        produces: a dead child with unflushed pipes.  Only meaningful
        inside pool worker processes; match on ``generation=0`` so the
        supervisor's replacement worker survives.
        """
        return self._add(
            FaultRule(
                site=site,
                mode="kill",
                match=match,
                probability=probability,
                times=times,
            )
        )

    # -- firing --------------------------------------------------------
    def _roll(self, rule: FaultRule) -> bool:
        if rule.probability >= 1.0:
            return True
        return float(self._rng.random()) < rule.probability

    def _record(self, rule: FaultRule, site: str, attrs: dict) -> None:
        rule.fired += 1
        self.events.append(
            {"site": site, "mode": rule.mode, "attrs": dict(attrs), "rule": rule}
        )

    def event_counts(self) -> dict[str, int]:
        """Fired-event tally keyed by ``"site:mode"``."""
        counts: dict[str, int] = {}
        for event in self.events:
            key = f"{event['site']}:{event['mode']}"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def on_point(self, site: str, attrs: dict) -> None:
        """Hook body for :func:`fault_point`."""
        for rule in self.rules:
            if rule.mode == "corrupt" or not rule.matches(site, attrs):
                continue
            if not self._roll(rule):
                continue
            self._record(rule, site, attrs)
            if rule.mode == "kill":
                os._exit(_KILL_EXIT_CODE)
            if rule.mode == "fail":
                detail = rule.message or f"injected fault at {site} ({attrs})"
                raise FaultInjectedError(detail)
            remaining = rule.seconds
            while remaining > 0:
                check_deadline(f"injected slowdown at {site}")
                slice_ = min(remaining, _SLEEP_SLICE_SECONDS)
                self._sleep(slice_)
                remaining -= slice_
            check_deadline(f"injected slowdown at {site}")

    def on_bytes(self, site: str, data: bytes, attrs: dict) -> bytes:
        """Hook body for :func:`transform_bytes`."""
        for rule in self.rules:
            if rule.mode != "corrupt" or not rule.matches(site, attrs):
                continue
            if not self._roll(rule):
                continue
            self._record(rule, site, attrs)
            if not data:
                continue
            corrupted = bytearray(data)
            flips = max(1, len(corrupted) // 64)
            positions = self._rng.integers(0, len(corrupted), size=flips)
            masks = self._rng.integers(1, 256, size=flips)
            for position, mask in zip(positions.tolist(), masks.tolist()):
                corrupted[position] ^= mask
            data = bytes(corrupted)
        return data

    # -- activation ----------------------------------------------------
    def activate(self):
        """Install globally; returns a context manager."""
        return _activation(self)

    def __enter__(self) -> "FaultInjector":
        _install(self)
        return self

    def __exit__(self, *exc_info) -> None:
        _uninstall(self)


_lock = threading.Lock()
_active: FaultInjector | None = None


def _install(injector: FaultInjector) -> None:
    global _active
    with _lock:
        if _active is not None and _active is not injector:
            raise InvalidParameterError(
                "another FaultInjector is already active; deactivate it first"
            )
        _active = injector


def _uninstall(injector: FaultInjector) -> None:
    global _active
    with _lock:
        if _active is injector:
            _active = None


@contextmanager
def _activation(injector: FaultInjector):
    _install(injector)
    try:
        yield injector
    finally:
        _uninstall(injector)


def active_injector() -> FaultInjector | None:
    return _active


def fault_point(site: str, **attrs) -> None:
    """Production hook: may raise or sleep when an injector is active."""
    injector = _active
    if injector is not None:
        injector.on_point(site, attrs)


def transform_bytes(site: str, data: bytes, **attrs) -> bytes:
    """Production hook: may corrupt ``data`` when an injector is active."""
    injector = _active
    if injector is not None:
        return injector.on_bytes(site, data, attrs)
    return data
