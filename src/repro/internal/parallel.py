"""Pooled row-precompute for the build kernels.

The vectorised construction kernels (:meth:`repro.internal.prefix.
PrefixAlgebra.rounded_bucket_terms_row`, the interval-DP cost rows) are
embarrassingly parallel across row starts ``a``, and numpy releases the
GIL inside them, so a thread pool overlaps real work — notably when a
sharded build or refresh reconstructs several shards at once and every
shard wants the kernel (see :func:`repro.engine.sharding.build_sharded`).

:func:`map_rows` is the one entry point.  ``pool`` may be:

* ``None`` (or ``0``/``1``) — serial, the default; results are the
  baseline every other mode must match bitwise,
* an ``int >= 2`` — a private ``ThreadPoolExecutor`` with that many
  workers, created and torn down inside the call,
* any executor with ``map`` (``ThreadPoolExecutor``,
  ``ProcessPoolExecutor``, or a shared pool owned by the caller).

Thread-backed pools inherit the caller's ambient build deadline
(:mod:`repro.internal.deadline` is thread-local, so it is re-installed
inside each worker).  Process pools cannot see the parent's clock at
all; the deadline is then polled between dispatch and collection in the
parent, and the mapped callable must be picklable (the OPT-A precompute
passes a module-level function, closures won't do).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.internal.deadline import check_deadline, current_deadline, deadline_scope


def resolve_pool(pool):
    """Normalise a ``pool`` argument to ``(executor_or_None, owned)``."""
    if pool is None:
        return None, False
    if isinstance(pool, bool):
        raise TypeError("pool must be None, an int worker count, or an executor")
    if isinstance(pool, int):
        if pool < 0:
            raise ValueError(f"pool worker count must be >= 0, got {pool}")
        if pool <= 1:
            return None, False
        return ThreadPoolExecutor(max_workers=pool), True
    if not hasattr(pool, "map"):
        raise TypeError(
            f"pool must be None, an int worker count, or an executor with "
            f"a map method, got {type(pool).__name__}"
        )
    return pool, False


def map_rows(fn, items, *, pool=None, context: str = ""):
    """``[fn(item) for item in items]``, optionally fanned out on a pool.

    Serial execution polls the ambient deadline before every row;
    pooled execution re-installs the caller's deadline inside each
    worker thread (see module docstring for process pools).  Results
    are returned in input order and are bitwise independent of the
    execution mode — the rows never interact.
    """
    executor, owned = resolve_pool(pool)
    if executor is None:
        results = []
        for item in items:
            check_deadline(context)
            results.append(fn(item))
        return results

    try:
        if isinstance(executor, ProcessPoolExecutor):
            # Child processes cannot observe this thread's deadline;
            # poll it around the fan-out instead.
            check_deadline(context)
            results = list(executor.map(fn, items))
            check_deadline(context)
            return results

        deadline = current_deadline()

        def run(item):
            with deadline_scope(deadline):
                check_deadline(context)
                return fn(item)

        return list(executor.map(run, items))
    finally:
        if owned:
            executor.shutdown()
