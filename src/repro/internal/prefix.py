"""Prefix-sum algebra with O(1) per-bucket statistics.

This module is the numeric backbone of every histogram construction in
the library.  For a fixed frequency vector ``A[0..n-1]`` it precomputes
a handful of cumulative arrays and then answers, in constant time per
bucket ``[a, b]`` (0-indexed, inclusive):

* the exact intra-bucket sum-squared error of the bucket-average
  estimator over all sub-ranges of the bucket,
* first and second moments of the *suffix errors*
  ``delta_suf(l) = s(l, b) - (b - l + 1) * mean`` and the *prefix errors*
  ``delta_pre(r) = s(a, r) - (r - a + 1) * mean``,
* the SAP0 statistics (mean suffix/prefix sums and their variances), and
* the SAP1 statistics (least-squares linear fits of suffix/prefix sums
  against piece length, with residual sums of squares).

Derivations are written out in DESIGN.md section 4.  The key identities:
with ``p`` the prefix-sum array (``p[0] = 0``) and
``v_t = p[t] - p[a] - (t - a) * mean`` for ``t = a..b+1``, every
sub-range error of the average estimator is a difference ``v_{r+1} -
v_l``, so the intra-bucket SSE over all pairs equals
``m * sum(v^2) - (sum v)^2`` with ``m = L + 1`` values.

Every statistic accepts the right endpoint ``b`` as either a scalar or a
numpy array (with ``a`` scalar), so the dynamic programs can evaluate a
whole row of candidate buckets in one vectorised call.

A second family of methods (``rounded_*``) supports the paper's OPT-A
answering procedure, which rounds every partial-bucket contribution to a
nearby integer; those errors are integral, which is what makes the
pseudo-polynomial dynamic program of Section 2.1 well-defined.  Rounded
statistics cost O(L) per bucket rather than O(1).  The scalar
:meth:`PrefixAlgebra.rounded_bucket_terms` serves one bucket at a time;
:meth:`PrefixAlgebra.rounded_bucket_terms_row` is the build kernel the
OPT-A precompute uses — it evaluates every bucket ``[a, a..n-1]`` of a
row in one batch of numpy passes, collapsing the O(n^2) scalar calls of
the old precompute (each O(L)) into O(n) vectorised kernel dispatches.

On integral data every rounded statistic is an exact integer, and both
the scalar and the row paths compute them purely with integer-valued
float64 arithmetic, so their results are bit-identical (any summation
order is exact below 2**53).  That invariant is what lets the OPT-A
differential tests demand equality, not closeness, between the scalar
and vectorised builds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.internal.validation import as_frequency_vector


def round_half_up(values):
    """Round to the nearest integer, ties upward (x.5 -> x+1).

    The paper allows "rounding to a nearby integer in an arbitrary way";
    we fix half-up so builds are deterministic across platforms
    (``np.rint`` would use banker's rounding).
    """
    return np.floor(np.asarray(values, dtype=np.float64) + 0.5)


@dataclass(frozen=True)
class SuffixPrefixFit:
    """Least-squares fit of piece sums against piece length (SAP1).

    ``estimate(length) = slope * length + intercept``; ``ssr`` is the
    residual sum of squares of the fit over the bucket.
    """

    slope: float
    intercept: float
    ssr: float


class PrefixAlgebra:
    """Constant-time bucket statistics over a fixed array.

    Parameters
    ----------
    data:
        One-dimensional non-negative frequency vector.

    Notes
    -----
    All bucket arguments are 0-indexed inclusive pairs ``(a, b)`` with
    ``0 <= a <= b < n``; ``b`` may be an integer array.  Bounds are *not*
    re-checked here (this is an internal hot path); public builders
    validate once at their boundary.
    """

    def __init__(self, data) -> None:
        self.data = as_frequency_vector(data)
        self.n = int(self.data.size)
        # p[t] = sum of data[0..t-1]; length n+1.
        self.p = np.concatenate(([0.0], np.cumsum(self.data)))
        # Cumulative sums over the prefix array itself, with a leading 0
        # so that sum_{t=a..b} f(t) == F[b+1] - F[a].
        t_idx = np.arange(self.n + 1, dtype=np.float64)
        self._cum_p = np.concatenate(([0.0], np.cumsum(self.p)))
        self._cum_p2 = np.concatenate(([0.0], np.cumsum(self.p * self.p)))
        self._cum_tp = np.concatenate(([0.0], np.cumsum(t_idx * self.p)))
        # Lazily-built shared scratch for the row kernel (see
        # rounded_bucket_terms_row): the full-size Toeplitz index matrix
        # and its invalid-triangle mask, identical for every row start.
        self._toeplitz = None

    def __getstate__(self):
        # Drop the O(n^2) scratch when pickling into process-pool
        # workers; each worker rebuilds it lazily on first use.
        state = self.__dict__.copy()
        state["_toeplitz"] = None
        return state

    def _toeplitz_indices(self):
        if self._toeplitz is None:
            offsets = np.arange(self.n)
            gather = offsets[:, None] - offsets[None, :]  # = L - m per cell
            invalid = gather < 0
            np.maximum(gather, 0, out=gather)
            self._toeplitz = (gather, invalid)
        return self._toeplitz

    # ------------------------------------------------------------------
    # Elementary range sums
    # ------------------------------------------------------------------
    def range_sum(self, low: int, high: int) -> float:
        """Exact ``sum(data[low..high])`` (inclusive)."""
        return float(self.p[high + 1] - self.p[low])

    def total(self) -> float:
        """Sum of the whole array, ``s[1, n]`` in the paper's notation."""
        return float(self.p[self.n])

    def bucket_mean(self, a: int, b):
        """Average value inside bucket ``[a, b]`` (``b`` may be an array)."""
        return (self.p[np.asarray(b) + 1] - self.p[a]) / (np.asarray(b) - a + 1)

    # ------------------------------------------------------------------
    # Internal raw moments of suffix / prefix sums
    # ------------------------------------------------------------------
    def _sum_p(self, lo, hi):
        """``sum_{t=lo..hi} p[t]`` (inclusive in t)."""
        return self._cum_p[np.asarray(hi) + 1] - self._cum_p[lo]

    def _sum_p2(self, lo, hi):
        return self._cum_p2[np.asarray(hi) + 1] - self._cum_p2[lo]

    def _sum_tp(self, lo, hi):
        return self._cum_tp[np.asarray(hi) + 1] - self._cum_tp[lo]

    def suffix_raw_moments(self, a: int, b):
        """Return ``(Y1, Y2, MY)`` for suffix sums ``y_l = s(l, b)``.

        ``Y1 = sum y_l``, ``Y2 = sum y_l^2``, ``MY = sum m_l * y_l`` with
        ``m_l = b - l + 1`` the piece length, over ``l = a..b``.
        """
        b = np.asarray(b)
        L = b - a + 1
        pb = self.p[b + 1]
        sp = self._sum_p(a, b)
        sp2 = self._sum_p2(a, b)
        stp = self._sum_tp(a, b)
        y1 = L * pb - sp
        y2 = L * pb * pb - 2.0 * pb * sp + sp2
        t1 = L * (L + 1) / 2.0
        my = pb * t1 - ((b + 1) * sp - stp)
        return y1, y2, my

    def prefix_raw_moments(self, a: int, b):
        """Return ``(Z1, Z2, MZ)`` for prefix sums ``z_r = s(a, r)``.

        ``MZ = sum m_r * z_r`` with ``m_r = r - a + 1``, over ``r = a..b``.
        """
        b = np.asarray(b)
        L = b - a + 1
        pa = self.p[a]
        sp = self._sum_p(a + 1, b + 1)
        sp2 = self._sum_p2(a + 1, b + 1)
        stp = self._sum_tp(a + 1, b + 1)
        z1 = sp - L * pa
        z2 = sp2 - 2.0 * pa * sp + L * pa * pa
        t1 = L * (L + 1) / 2.0
        mz = (stp - a * sp) - pa * t1
        return z1, z2, mz

    @staticmethod
    def _length_moments(L):
        """``(sum_{m=1..L} m, sum_{m=1..L} m^2)``."""
        t1 = L * (L + 1) / 2.0
        t2 = L * (L + 1) * (2 * L + 1) / 6.0
        return t1, t2

    # ------------------------------------------------------------------
    # Errors about the bucket average (OPT-A / A0 style, un-rounded)
    # ------------------------------------------------------------------
    def suffix_error_moments(self, a: int, b):
        """``(S1, S2)``: sum and sum of squares of un-rounded suffix errors."""
        b = np.asarray(b)
        L = b - a + 1
        mean = self.bucket_mean(a, b)
        y1, y2, my = self.suffix_raw_moments(a, b)
        t1, t2 = self._length_moments(L)
        s1 = y1 - mean * t1
        s2 = np.maximum(y2 - 2.0 * mean * my + mean * mean * t2, 0.0)
        return s1, s2

    def prefix_error_moments(self, a: int, b):
        """``(P1, P2)``: sum and sum of squares of un-rounded prefix errors."""
        b = np.asarray(b)
        L = b - a + 1
        mean = self.bucket_mean(a, b)
        z1, z2, mz = self.prefix_raw_moments(a, b)
        t1, t2 = self._length_moments(L)
        p1 = z1 - mean * t1
        p2 = np.maximum(z2 - 2.0 * mean * mz + mean * mean * t2, 0.0)
        return p1, p2

    def intra_sse(self, a: int, b):
        """Exact SSE of the average estimator over all sub-ranges of ``[a,b]``.

        Uses the pair identity on the centred prefix values ``v_t`` (see
        module docstring); O(1) per bucket, vectorised over ``b``.
        """
        b = np.asarray(b)
        L = b - a + 1
        mean = self.bucket_mean(a, b)
        pa = self.p[a]
        m = L + 1
        spv = self._sum_p(a, b + 1)
        sp2v = self._sum_p2(a, b + 1)
        stpv = self._sum_tp(a, b + 1)
        t1, t2 = self._length_moments(L)
        sum_v = spv - m * pa - mean * t1
        centred2 = sp2v - 2.0 * pa * spv + m * pa * pa
        cross = (stpv - a * spv) - pa * t1
        sum_v2 = centred2 - 2.0 * mean * cross + mean * mean * t2
        return np.maximum(m * sum_v2 - sum_v * sum_v, 0.0)

    # ------------------------------------------------------------------
    # SAP0 statistics
    # ------------------------------------------------------------------
    def sap0_suffix(self, a: int, b):
        """``(suff_value, var)``: mean suffix sum and its total squared deviation.

        ``suff_value`` is the optimal SAP0 suffix summary (Lemma 5.2) and
        ``var = sum_l (y_l - suff_value)^2`` the per-occurrence error mass.
        """
        b = np.asarray(b)
        L = b - a + 1
        y1, y2, _ = self.suffix_raw_moments(a, b)
        return y1 / L, np.maximum(y2 - y1 * y1 / L, 0.0)

    def sap0_prefix(self, a: int, b):
        """``(pref_value, var)`` analogous to :meth:`sap0_suffix`."""
        b = np.asarray(b)
        L = b - a + 1
        z1, z2, _ = self.prefix_raw_moments(a, b)
        return z1 / L, np.maximum(z2 - z1 * z1 / L, 0.0)

    # ------------------------------------------------------------------
    # SAP1 statistics (linear fits against piece length)
    # ------------------------------------------------------------------
    def _ssr(self, L, w1, w2, mw):
        """Residual sum of squares of the best linear fit, vectorised."""
        t1, t2 = self._length_moments(L)
        syy = np.maximum(w2 - w1 * w1 / L, 0.0)
        sxx = t2 - t1 * t1 / L
        sxy = mw - t1 * w1 / L
        safe_sxx = np.where(L > 1, sxx, 1.0)
        return np.where(L > 1, np.maximum(syy - sxy * sxy / safe_sxx, 0.0), 0.0)

    def sap1_suffix_ssr(self, a: int, b):
        """Residual SSE of the best linear suffix fit (vectorised over ``b``)."""
        b = np.asarray(b)
        y1, y2, my = self.suffix_raw_moments(a, b)
        return self._ssr(b - a + 1, y1, y2, my)

    def sap1_prefix_ssr(self, a: int, b):
        """Residual SSE of the best linear prefix fit (vectorised over ``b``)."""
        b = np.asarray(b)
        z1, z2, mz = self.prefix_raw_moments(a, b)
        return self._ssr(b - a + 1, z1, z2, mz)

    def _fit(self, L: int, w1: float, w2: float, mw: float) -> SuffixPrefixFit:
        if L == 1:
            # A single point is fit exactly; represent as slope 0 through it.
            return SuffixPrefixFit(slope=0.0, intercept=float(w1), ssr=0.0)
        t1, t2 = self._length_moments(L)
        syy = max(w2 - w1 * w1 / L, 0.0)
        sxx = t2 - t1 * t1 / L
        sxy = mw - t1 * w1 / L
        slope = sxy / sxx
        intercept = (w1 - slope * t1) / L
        return SuffixPrefixFit(
            slope=float(slope),
            intercept=float(intercept),
            ssr=float(max(syy - sxy * sxy / sxx, 0.0)),
        )

    def sap1_suffix_fit(self, a: int, b: int) -> SuffixPrefixFit:
        """Best linear fit of suffix sums ``s(l, b)`` against length ``b-l+1``."""
        y1, y2, my = self.suffix_raw_moments(a, int(b))
        return self._fit(int(b) - a + 1, float(y1), float(y2), float(my))

    def sap1_prefix_fit(self, a: int, b: int) -> SuffixPrefixFit:
        """Best linear fit of prefix sums ``s(a, r)`` against length ``r-a+1``."""
        z1, z2, mz = self.prefix_raw_moments(a, int(b))
        return self._fit(int(b) - a + 1, float(z1), float(z2), float(mz))

    # ------------------------------------------------------------------
    # Rounded (integer-answer) statistics for the OPT-A dynamic program
    # ------------------------------------------------------------------
    def rounded_suffix_errors(self, a: int, b: int) -> np.ndarray:
        """Integer suffix errors ``s(l,b) - round((b-l+1)*mean)`` for ``l=a..b``."""
        mean = self.bucket_mean(a, b)
        lengths = np.arange(b - a + 1, 0, -1, dtype=np.float64)
        exact = self.p[b + 1] - self.p[a : b + 1]
        return exact - round_half_up(lengths * mean)

    def rounded_prefix_errors(self, a: int, b: int) -> np.ndarray:
        """Integer prefix errors ``s(a,r) - round((r-a+1)*mean)`` for ``r=a..b``."""
        mean = self.bucket_mean(a, b)
        lengths = np.arange(1, b - a + 2, dtype=np.float64)
        exact = self.p[a + 1 : b + 2] - self.p[a]
        return exact - round_half_up(lengths * mean)

    def rounded_intra_sse(self, a: int, b: int) -> float:
        """Intra-bucket SSE with per-query integer rounding, in O(L) time.

        With ``q_t = s(a, a+t-1)`` the centred prefix sums (``q_0 = 0``),
        every sub-range sum is a difference ``q_j - q_i`` and its rounded
        estimate depends only on the gap ``m = j - i``, so the SSE splits
        into the all-pairs identity plus gap-grouped rounding terms:

            sum_{i<j} (q_j - q_i)^2
            - 2 * sum_m r_m * g_m  +  sum_m (L+1-m) * r_m^2

        with ``r_m = round(m * mean)`` and ``g_m`` the sum of ``q_j -
        q_i`` over pairs at gap ``m`` (DESIGN.md section 4).  On integral
        data every term is an exact integer, which keeps this bit-
        identical to the vectorised row kernel.
        """
        L = b - a + 1
        mean = self.bucket_mean(a, b)
        q = self.p[a : b + 2] - self.p[a]
        lengths = np.arange(1, L + 1, dtype=np.float64)
        r = round_half_up(lengths * mean)
        cum_q = np.concatenate(([0.0], np.cumsum(q)))
        total_q = cum_q[L + 1]
        total_q2 = float((q * q).sum())
        pairs_all = (L + 1) * total_q2 - total_q * total_q
        # g[m-1] = (sum_{t=m..L} q_t) - (sum_{t=0..L-m} q_t).
        g = (total_q - cum_q[1 : L + 1]) - cum_q[L:0:-1]
        counts = np.arange(L, 0, -1, dtype=np.float64)
        value = pairs_all - 2.0 * float((r * g).sum()) + float((counts * r * r).sum())
        return max(value, 0.0)

    def rounded_bucket_terms(self, a: int, b: int) -> tuple[float, float, float, float, float]:
        """All rounded statistics the OPT-A DP needs for bucket ``[a, b]``.

        Returns ``(S1, S2, P1, P2, intra)``: sums / sums of squares of the
        rounded suffix and prefix errors, and the rounded intra-bucket
        SSE.  All five are exact integers (stored in float64).
        """
        suf = self.rounded_suffix_errors(a, b)
        pre = self.rounded_prefix_errors(a, b)
        return (
            float(suf.sum()),
            float((suf * suf).sum()),
            float(pre.sum()),
            float((pre * pre).sum()),
            self.rounded_intra_sse(a, b),
        )

    def rounded_bucket_terms_row(
        self, a: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised :meth:`rounded_bucket_terms` for all ``b = a..n-1``.

        This is the hot build kernel behind the OPT-A precompute: one
        call evaluates the whole row of candidate buckets ``[a, b]`` with
        a constant number of numpy passes over ``(n-a)``-sized (and one
        family of ``(n-a)^2``-sized) arrays, instead of ``n - a``
        separate O(L) scalar calls through the Python interpreter.

        Returns ``(S1, S2, P1, P2, intra)``, each an array of length
        ``n - a`` indexed by ``b - a``.  On integral data the results
        are bit-identical to the scalar method (all statistics are exact
        integers, see the module docstring); on non-integral data —
        which the OPT-A DP rejects anyway — they agree only to floating-
        point accuracy because the two paths order their sums
        differently.

        Derivation sketch: with ``q_t = s(a, a+t-1)`` (``q_0 = 0``) and
        ``r_{b,m} = round(m * mean_b)``, the suffix error of the length-
        ``m`` piece of ``[a, b]`` is ``(S_b - q_{L-m}) - r_{b,m}`` and
        the prefix error is ``q_m - r_{b,m}``, so every first and second
        moment expands into prefix sums of ``q``/``q^2`` (O(1) per
        bucket) plus reductions of the rounding matrix ``r`` against
        ``q`` — the only genuinely two-dimensional objects.  The intra
        term uses the same all-pairs + gap-grouped split as
        :meth:`rounded_intra_sse`.
        """
        n = self.n
        nb = n - a
        # q[t] = s(a, a+t-1), t = 0..nb; integers on integral data.
        q = self.p[a : n + 1] - self.p[a]
        lengths = np.arange(1, nb + 1, dtype=np.float64)  # L for b = a..n-1
        totals = q[1:]  # S_b
        mean = totals / lengths  # elementwise == bucket_mean(a, b)
        cum_q = np.concatenate(([0.0], np.cumsum(q)))  # cum_q[i] = sum_{t<i} q_t
        cum_q2 = np.concatenate(([0.0], np.cumsum(q * q)))

        # Rounding matrix R[b-a, m-1] = round_half_up(m * mean_b), zeroed
        # outside the valid triangle m <= L.  The Toeplitz index matrix
        # (i - j, clamped at 0) and its invalid-triangle mask are shared
        # by every row start: build them once at full size and slice.
        gather, invalid = self._toeplitz_indices()
        gather = gather[:nb, :nb]
        invalid = invalid[:nb, :nb]
        rounded = lengths[None, :] * mean[:, None]
        rounded += 0.5
        np.floor(rounded, out=rounded)
        rounded[invalid] = 0.0
        rounded2 = rounded * rounded

        piece_q = q[gather]  # q_{L-m} per cell (clamped; masked via R = 0)
        piece_cum = cum_q[1:][gather]  # cum_q[L-m+1] per cell

        sum_r = rounded.sum(axis=1)  # sum_m r_m
        sum_r2 = rounded2.sum(axis=1)
        cross_suffix = np.einsum("ij,ij->i", piece_q, rounded)  # sum_m q_{L-m} r_m
        cross_prefix = rounded @ q[1:]  # sum_m q_m r_m
        sum_m_r2 = rounded2 @ lengths  # sum_m m r_m^2

        cq_L = cum_q[1 : nb + 1]  # sum_{t<L} q_t
        cq_L1 = cum_q[2 : nb + 2]  # sum_{t<=L} q_t
        cq2_L = cum_q2[1 : nb + 1]
        cq2_L1 = cum_q2[2 : nb + 2]

        s1 = (lengths * totals - cq_L) - sum_r
        s2 = (
            (lengths * totals * totals - 2.0 * totals * cq_L + cq2_L)
            - 2.0 * (totals * sum_r - cross_suffix)
            + sum_r2
        )
        p1 = cq_L1 - sum_r
        p2 = cq2_L1 - 2.0 * cross_prefix + sum_r2

        pairs_all = (lengths + 1.0) * cq2_L1 - cq_L1 * cq_L1
        # g[b, m] = sum over pairs at gap m of (q_{t+m} - q_t)
        #         = cq_L1[b] - cum_q[m] - cum_q[L-m+1], so the reduction
        # sum_m r_m g_m splits into three 1-D/matvec terms (no gap
        # matrix is materialised; every summand is an exact integer on
        # integral data, so the split keeps bit-identity).
        cross_intra = (
            cq_L1 * sum_r
            - rounded @ cum_q[1 : nb + 1]
            - np.einsum("ij,ij->i", rounded, piece_cum)
        )
        count_term = (lengths + 1.0) * sum_r2 - sum_m_r2
        intra = pairs_all - 2.0 * cross_intra + count_term
        return s1, s2, p1, p2, np.maximum(intra, 0.0)


class WeightedPointCost:
    """O(1) weighted point-variance bucket costs for V-optimal histograms.

    The cost of a bucket ``[a, b]`` is ``sum_i w_i * (A_i - mu_w)^2``
    where ``mu_w`` is the *weighted* bucket mean — the value that
    minimises the weighted point-query SSE.  Used by POINT-OPT with
    weights proportional to the probability that index ``i`` is covered
    by a uniformly random range, ``w_i ∝ (i + 1) * (n - i)``.
    """

    def __init__(self, data, weights=None) -> None:
        self.data = as_frequency_vector(data)
        self.n = int(self.data.size)
        if weights is None:
            weights = np.ones(self.n, dtype=np.float64)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != self.data.shape:
                raise ValueError("weights must have the same shape as data")
        self.weights = weights
        self._cw = np.concatenate(([0.0], np.cumsum(weights)))
        self._cwa = np.concatenate(([0.0], np.cumsum(weights * self.data)))
        self._cwa2 = np.concatenate(([0.0], np.cumsum(weights * self.data * self.data)))
        self._ca = np.concatenate(([0.0], np.cumsum(self.data)))

    def bucket_value(self, a: int, b):
        """Weighted mean of the bucket — the optimal stored value.

        Falls back to the plain mean where the bucket's weight is zero
        (any value is then optimal for the weighted objective).
        """
        b = np.asarray(b)
        w = self._cw[b + 1] - self._cw[a]
        wa = self._cwa[b + 1] - self._cwa[a]
        plain = self.bucket_plain_mean(a, b)
        safe_w = np.where(w > 0.0, w, 1.0)
        return np.where(w > 0.0, wa / safe_w, plain)

    def bucket_plain_mean(self, a: int, b):
        """Unweighted bucket mean (used as the zero-weight fallback)."""
        b = np.asarray(b)
        return (self._ca[b + 1] - self._ca[a]) / (b - a + 1)

    def bucket_cost(self, a: int, b):
        """Minimum weighted point SSE of bucket ``[a, b]``."""
        b = np.asarray(b)
        w = self._cw[b + 1] - self._cw[a]
        wa = self._cwa[b + 1] - self._cwa[a]
        wa2 = self._cwa2[b + 1] - self._cwa2[a]
        safe_w = np.where(w > 0.0, w, 1.0)
        return np.where(w > 0.0, np.maximum(wa2 - wa * wa / safe_w, 0.0), 0.0)
