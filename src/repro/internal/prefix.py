"""Prefix-sum algebra with O(1) per-bucket statistics.

This module is the numeric backbone of every histogram construction in
the library.  For a fixed frequency vector ``A[0..n-1]`` it precomputes
a handful of cumulative arrays and then answers, in constant time per
bucket ``[a, b]`` (0-indexed, inclusive):

* the exact intra-bucket sum-squared error of the bucket-average
  estimator over all sub-ranges of the bucket,
* first and second moments of the *suffix errors*
  ``delta_suf(l) = s(l, b) - (b - l + 1) * mean`` and the *prefix errors*
  ``delta_pre(r) = s(a, r) - (r - a + 1) * mean``,
* the SAP0 statistics (mean suffix/prefix sums and their variances), and
* the SAP1 statistics (least-squares linear fits of suffix/prefix sums
  against piece length, with residual sums of squares).

Derivations are written out in DESIGN.md section 4.  The key identities:
with ``p`` the prefix-sum array (``p[0] = 0``) and
``v_t = p[t] - p[a] - (t - a) * mean`` for ``t = a..b+1``, every
sub-range error of the average estimator is a difference ``v_{r+1} -
v_l``, so the intra-bucket SSE over all pairs equals
``m * sum(v^2) - (sum v)^2`` with ``m = L + 1`` values.

Every statistic accepts the right endpoint ``b`` as either a scalar or a
numpy array (with ``a`` scalar), so the dynamic programs can evaluate a
whole row of candidate buckets in one vectorised call.

A second family of methods (``rounded_*``) supports the paper's OPT-A
answering procedure, which rounds every partial-bucket contribution to a
nearby integer; those errors are integral, which is what makes the
pseudo-polynomial dynamic program of Section 2.1 well-defined.  Rounded
statistics cost O(L) per bucket rather than O(1) and are scalar-only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.internal.validation import as_frequency_vector


def round_half_up(values):
    """Round to the nearest integer, ties upward (x.5 -> x+1).

    The paper allows "rounding to a nearby integer in an arbitrary way";
    we fix half-up so builds are deterministic across platforms
    (``np.rint`` would use banker's rounding).
    """
    return np.floor(np.asarray(values, dtype=np.float64) + 0.5)


@dataclass(frozen=True)
class SuffixPrefixFit:
    """Least-squares fit of piece sums against piece length (SAP1).

    ``estimate(length) = slope * length + intercept``; ``ssr`` is the
    residual sum of squares of the fit over the bucket.
    """

    slope: float
    intercept: float
    ssr: float


class PrefixAlgebra:
    """Constant-time bucket statistics over a fixed array.

    Parameters
    ----------
    data:
        One-dimensional non-negative frequency vector.

    Notes
    -----
    All bucket arguments are 0-indexed inclusive pairs ``(a, b)`` with
    ``0 <= a <= b < n``; ``b`` may be an integer array.  Bounds are *not*
    re-checked here (this is an internal hot path); public builders
    validate once at their boundary.
    """

    def __init__(self, data) -> None:
        self.data = as_frequency_vector(data)
        self.n = int(self.data.size)
        # p[t] = sum of data[0..t-1]; length n+1.
        self.p = np.concatenate(([0.0], np.cumsum(self.data)))
        # Cumulative sums over the prefix array itself, with a leading 0
        # so that sum_{t=a..b} f(t) == F[b+1] - F[a].
        t_idx = np.arange(self.n + 1, dtype=np.float64)
        self._cum_p = np.concatenate(([0.0], np.cumsum(self.p)))
        self._cum_p2 = np.concatenate(([0.0], np.cumsum(self.p * self.p)))
        self._cum_tp = np.concatenate(([0.0], np.cumsum(t_idx * self.p)))

    # ------------------------------------------------------------------
    # Elementary range sums
    # ------------------------------------------------------------------
    def range_sum(self, low: int, high: int) -> float:
        """Exact ``sum(data[low..high])`` (inclusive)."""
        return float(self.p[high + 1] - self.p[low])

    def total(self) -> float:
        """Sum of the whole array, ``s[1, n]`` in the paper's notation."""
        return float(self.p[self.n])

    def bucket_mean(self, a: int, b):
        """Average value inside bucket ``[a, b]`` (``b`` may be an array)."""
        return (self.p[np.asarray(b) + 1] - self.p[a]) / (np.asarray(b) - a + 1)

    # ------------------------------------------------------------------
    # Internal raw moments of suffix / prefix sums
    # ------------------------------------------------------------------
    def _sum_p(self, lo, hi):
        """``sum_{t=lo..hi} p[t]`` (inclusive in t)."""
        return self._cum_p[np.asarray(hi) + 1] - self._cum_p[lo]

    def _sum_p2(self, lo, hi):
        return self._cum_p2[np.asarray(hi) + 1] - self._cum_p2[lo]

    def _sum_tp(self, lo, hi):
        return self._cum_tp[np.asarray(hi) + 1] - self._cum_tp[lo]

    def suffix_raw_moments(self, a: int, b):
        """Return ``(Y1, Y2, MY)`` for suffix sums ``y_l = s(l, b)``.

        ``Y1 = sum y_l``, ``Y2 = sum y_l^2``, ``MY = sum m_l * y_l`` with
        ``m_l = b - l + 1`` the piece length, over ``l = a..b``.
        """
        b = np.asarray(b)
        L = b - a + 1
        pb = self.p[b + 1]
        sp = self._sum_p(a, b)
        sp2 = self._sum_p2(a, b)
        stp = self._sum_tp(a, b)
        y1 = L * pb - sp
        y2 = L * pb * pb - 2.0 * pb * sp + sp2
        t1 = L * (L + 1) / 2.0
        my = pb * t1 - ((b + 1) * sp - stp)
        return y1, y2, my

    def prefix_raw_moments(self, a: int, b):
        """Return ``(Z1, Z2, MZ)`` for prefix sums ``z_r = s(a, r)``.

        ``MZ = sum m_r * z_r`` with ``m_r = r - a + 1``, over ``r = a..b``.
        """
        b = np.asarray(b)
        L = b - a + 1
        pa = self.p[a]
        sp = self._sum_p(a + 1, b + 1)
        sp2 = self._sum_p2(a + 1, b + 1)
        stp = self._sum_tp(a + 1, b + 1)
        z1 = sp - L * pa
        z2 = sp2 - 2.0 * pa * sp + L * pa * pa
        t1 = L * (L + 1) / 2.0
        mz = (stp - a * sp) - pa * t1
        return z1, z2, mz

    @staticmethod
    def _length_moments(L):
        """``(sum_{m=1..L} m, sum_{m=1..L} m^2)``."""
        t1 = L * (L + 1) / 2.0
        t2 = L * (L + 1) * (2 * L + 1) / 6.0
        return t1, t2

    # ------------------------------------------------------------------
    # Errors about the bucket average (OPT-A / A0 style, un-rounded)
    # ------------------------------------------------------------------
    def suffix_error_moments(self, a: int, b):
        """``(S1, S2)``: sum and sum of squares of un-rounded suffix errors."""
        b = np.asarray(b)
        L = b - a + 1
        mean = self.bucket_mean(a, b)
        y1, y2, my = self.suffix_raw_moments(a, b)
        t1, t2 = self._length_moments(L)
        s1 = y1 - mean * t1
        s2 = np.maximum(y2 - 2.0 * mean * my + mean * mean * t2, 0.0)
        return s1, s2

    def prefix_error_moments(self, a: int, b):
        """``(P1, P2)``: sum and sum of squares of un-rounded prefix errors."""
        b = np.asarray(b)
        L = b - a + 1
        mean = self.bucket_mean(a, b)
        z1, z2, mz = self.prefix_raw_moments(a, b)
        t1, t2 = self._length_moments(L)
        p1 = z1 - mean * t1
        p2 = np.maximum(z2 - 2.0 * mean * mz + mean * mean * t2, 0.0)
        return p1, p2

    def intra_sse(self, a: int, b):
        """Exact SSE of the average estimator over all sub-ranges of ``[a,b]``.

        Uses the pair identity on the centred prefix values ``v_t`` (see
        module docstring); O(1) per bucket, vectorised over ``b``.
        """
        b = np.asarray(b)
        L = b - a + 1
        mean = self.bucket_mean(a, b)
        pa = self.p[a]
        m = L + 1
        spv = self._sum_p(a, b + 1)
        sp2v = self._sum_p2(a, b + 1)
        stpv = self._sum_tp(a, b + 1)
        t1, t2 = self._length_moments(L)
        sum_v = spv - m * pa - mean * t1
        centred2 = sp2v - 2.0 * pa * spv + m * pa * pa
        cross = (stpv - a * spv) - pa * t1
        sum_v2 = centred2 - 2.0 * mean * cross + mean * mean * t2
        return np.maximum(m * sum_v2 - sum_v * sum_v, 0.0)

    # ------------------------------------------------------------------
    # SAP0 statistics
    # ------------------------------------------------------------------
    def sap0_suffix(self, a: int, b):
        """``(suff_value, var)``: mean suffix sum and its total squared deviation.

        ``suff_value`` is the optimal SAP0 suffix summary (Lemma 5.2) and
        ``var = sum_l (y_l - suff_value)^2`` the per-occurrence error mass.
        """
        b = np.asarray(b)
        L = b - a + 1
        y1, y2, _ = self.suffix_raw_moments(a, b)
        return y1 / L, np.maximum(y2 - y1 * y1 / L, 0.0)

    def sap0_prefix(self, a: int, b):
        """``(pref_value, var)`` analogous to :meth:`sap0_suffix`."""
        b = np.asarray(b)
        L = b - a + 1
        z1, z2, _ = self.prefix_raw_moments(a, b)
        return z1 / L, np.maximum(z2 - z1 * z1 / L, 0.0)

    # ------------------------------------------------------------------
    # SAP1 statistics (linear fits against piece length)
    # ------------------------------------------------------------------
    def _ssr(self, L, w1, w2, mw):
        """Residual sum of squares of the best linear fit, vectorised."""
        t1, t2 = self._length_moments(L)
        syy = np.maximum(w2 - w1 * w1 / L, 0.0)
        sxx = t2 - t1 * t1 / L
        sxy = mw - t1 * w1 / L
        safe_sxx = np.where(L > 1, sxx, 1.0)
        return np.where(L > 1, np.maximum(syy - sxy * sxy / safe_sxx, 0.0), 0.0)

    def sap1_suffix_ssr(self, a: int, b):
        """Residual SSE of the best linear suffix fit (vectorised over ``b``)."""
        b = np.asarray(b)
        y1, y2, my = self.suffix_raw_moments(a, b)
        return self._ssr(b - a + 1, y1, y2, my)

    def sap1_prefix_ssr(self, a: int, b):
        """Residual SSE of the best linear prefix fit (vectorised over ``b``)."""
        b = np.asarray(b)
        z1, z2, mz = self.prefix_raw_moments(a, b)
        return self._ssr(b - a + 1, z1, z2, mz)

    def _fit(self, L: int, w1: float, w2: float, mw: float) -> SuffixPrefixFit:
        if L == 1:
            # A single point is fit exactly; represent as slope 0 through it.
            return SuffixPrefixFit(slope=0.0, intercept=float(w1), ssr=0.0)
        t1, t2 = self._length_moments(L)
        syy = max(w2 - w1 * w1 / L, 0.0)
        sxx = t2 - t1 * t1 / L
        sxy = mw - t1 * w1 / L
        slope = sxy / sxx
        intercept = (w1 - slope * t1) / L
        return SuffixPrefixFit(
            slope=float(slope),
            intercept=float(intercept),
            ssr=float(max(syy - sxy * sxy / sxx, 0.0)),
        )

    def sap1_suffix_fit(self, a: int, b: int) -> SuffixPrefixFit:
        """Best linear fit of suffix sums ``s(l, b)`` against length ``b-l+1``."""
        y1, y2, my = self.suffix_raw_moments(a, int(b))
        return self._fit(int(b) - a + 1, float(y1), float(y2), float(my))

    def sap1_prefix_fit(self, a: int, b: int) -> SuffixPrefixFit:
        """Best linear fit of prefix sums ``s(a, r)`` against length ``r-a+1``."""
        z1, z2, mz = self.prefix_raw_moments(a, int(b))
        return self._fit(int(b) - a + 1, float(z1), float(z2), float(mz))

    # ------------------------------------------------------------------
    # Rounded (integer-answer) statistics for the OPT-A dynamic program
    # ------------------------------------------------------------------
    def rounded_suffix_errors(self, a: int, b: int) -> np.ndarray:
        """Integer suffix errors ``s(l,b) - round((b-l+1)*mean)`` for ``l=a..b``."""
        mean = self.bucket_mean(a, b)
        lengths = np.arange(b - a + 1, 0, -1, dtype=np.float64)
        exact = self.p[b + 1] - self.p[a : b + 1]
        return exact - round_half_up(lengths * mean)

    def rounded_prefix_errors(self, a: int, b: int) -> np.ndarray:
        """Integer prefix errors ``s(a,r) - round((r-a+1)*mean)`` for ``r=a..b``."""
        mean = self.bucket_mean(a, b)
        lengths = np.arange(1, b - a + 2, dtype=np.float64)
        exact = self.p[a + 1 : b + 2] - self.p[a]
        return exact - round_half_up(lengths * mean)

    def rounded_intra_sse(self, a: int, b: int) -> float:
        """Intra-bucket SSE with per-query integer rounding, in O(L) time.

        Every sub-range error is ``(v_{r+1} - v_l) + t(r-l+1)`` with
        ``t(m) = m*mean - round(m*mean)``; grouping pairs by gap ``m``
        gives an O(L) evaluation (DESIGN.md section 4).
        """
        L = b - a + 1
        mean = self.bucket_mean(a, b)
        t_idx = np.arange(a, b + 2, dtype=np.float64)
        v = (self.p[a : b + 2] - self.p[a]) - (t_idx - a) * mean
        m_count = L + 1
        sum_v = float(v.sum())
        sum_v2 = float((v * v).sum())
        base = m_count * sum_v2 - sum_v * sum_v
        lengths = np.arange(1, L + 1, dtype=np.float64)
        t_m = lengths * mean - round_half_up(lengths * mean)
        cum_v = np.concatenate(([0.0], np.cumsum(v)))
        # g[m-1] = sum over pairs at gap m of (v_{t1+m} - v_{t1}).
        gaps = np.arange(1, L + 1)
        upper = cum_v[m_count] - cum_v[gaps]
        lower = cum_v[m_count - gaps] - cum_v[0]
        g = upper - lower
        counts = m_count - gaps
        value = base + 2.0 * float((t_m * g).sum()) + float((counts * t_m * t_m).sum())
        return max(value, 0.0)

    def rounded_bucket_terms(self, a: int, b: int) -> tuple[float, float, float, float, float]:
        """All rounded statistics the OPT-A DP needs for bucket ``[a, b]``.

        Returns ``(S1, S2, P1, P2, intra)``: sums / sums of squares of the
        rounded suffix and prefix errors, and the rounded intra-bucket
        SSE.  All five are exact integers (stored in float64).
        """
        suf = self.rounded_suffix_errors(a, b)
        pre = self.rounded_prefix_errors(a, b)
        return (
            float(suf.sum()),
            float((suf * suf).sum()),
            float(pre.sum()),
            float((pre * pre).sum()),
            self.rounded_intra_sse(a, b),
        )


class WeightedPointCost:
    """O(1) weighted point-variance bucket costs for V-optimal histograms.

    The cost of a bucket ``[a, b]`` is ``sum_i w_i * (A_i - mu_w)^2``
    where ``mu_w`` is the *weighted* bucket mean — the value that
    minimises the weighted point-query SSE.  Used by POINT-OPT with
    weights proportional to the probability that index ``i`` is covered
    by a uniformly random range, ``w_i ∝ (i + 1) * (n - i)``.
    """

    def __init__(self, data, weights=None) -> None:
        self.data = as_frequency_vector(data)
        self.n = int(self.data.size)
        if weights is None:
            weights = np.ones(self.n, dtype=np.float64)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != self.data.shape:
                raise ValueError("weights must have the same shape as data")
        self.weights = weights
        self._cw = np.concatenate(([0.0], np.cumsum(weights)))
        self._cwa = np.concatenate(([0.0], np.cumsum(weights * self.data)))
        self._cwa2 = np.concatenate(([0.0], np.cumsum(weights * self.data * self.data)))
        self._ca = np.concatenate(([0.0], np.cumsum(self.data)))

    def bucket_value(self, a: int, b):
        """Weighted mean of the bucket — the optimal stored value.

        Falls back to the plain mean where the bucket's weight is zero
        (any value is then optimal for the weighted objective).
        """
        b = np.asarray(b)
        w = self._cw[b + 1] - self._cw[a]
        wa = self._cwa[b + 1] - self._cwa[a]
        plain = self.bucket_plain_mean(a, b)
        safe_w = np.where(w > 0.0, w, 1.0)
        return np.where(w > 0.0, wa / safe_w, plain)

    def bucket_plain_mean(self, a: int, b):
        """Unweighted bucket mean (used as the zero-weight fallback)."""
        b = np.asarray(b)
        return (self._ca[b + 1] - self._ca[a]) / (b - a + 1)

    def bucket_cost(self, a: int, b):
        """Minimum weighted point SSE of bucket ``[a, b]``."""
        b = np.asarray(b)
        w = self._cw[b + 1] - self._cw[a]
        wa = self._cwa[b + 1] - self._cwa[a]
        wa2 = self._cwa2[b + 1] - self._cwa2[a]
        safe_w = np.where(w > 0.0, w, 1.0)
        return np.where(w > 0.0, np.maximum(wa2 - wa * wa / safe_w, 0.0), 0.0)
