"""Argument checking shared across the library.

These helpers normalise user input once at the API boundary so that the
numeric kernels can assume well-formed ``float64`` arrays and in-bounds
indices.  They raise the library's typed errors (never bare
``ValueError``) so callers can catch :class:`repro.errors.ReproError`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidDataError, InvalidParameterError, InvalidQueryError


def as_frequency_vector(data, *, name: str = "data") -> np.ndarray:
    """Validate and convert ``data`` to a 1-D non-negative float64 array.

    The paper's model is an attribute-value distribution: ``data[v]`` is
    the number of records with attribute value ``v``.  Counts are
    conceptually non-negative integers, but we accept any finite
    non-negative reals so the library also works on pre-scaled data.
    """
    array = np.asarray(data, dtype=np.float64)
    if array.ndim != 1:
        raise InvalidDataError(f"{name} must be one-dimensional, got shape {array.shape}")
    if array.size == 0:
        raise InvalidDataError(f"{name} must be non-empty")
    if not np.all(np.isfinite(array)):
        raise InvalidDataError(f"{name} contains NaN or infinite entries")
    if np.any(array < 0):
        raise InvalidDataError(f"{name} contains negative entries; frequencies must be >= 0")
    return array


def check_bucket_count(n_buckets: int, n: int, *, name: str = "n_buckets") -> int:
    """Validate a bucket/coefficient count against the array length."""
    if not isinstance(n_buckets, (int, np.integer)):
        raise InvalidParameterError(f"{name} must be an integer, got {type(n_buckets).__name__}")
    n_buckets = int(n_buckets)
    if n_buckets < 1:
        raise InvalidParameterError(f"{name} must be >= 1, got {n_buckets}")
    if n_buckets > n:
        raise InvalidParameterError(f"{name} must be <= array length {n}, got {n_buckets}")
    return n_buckets


def check_range(low: int, high: int, n: int) -> tuple[int, int]:
    """Validate an inclusive, 0-indexed query range ``[low, high]``."""
    if not isinstance(low, (int, np.integer)) or not isinstance(high, (int, np.integer)):
        raise InvalidQueryError(f"range endpoints must be integers, got ({low!r}, {high!r})")
    low, high = int(low), int(high)
    if low > high:
        raise InvalidQueryError(f"range low must be <= high, got [{low}, {high}]")
    if low < 0 or high >= n:
        raise InvalidQueryError(f"range [{low}, {high}] out of bounds for length-{n} array")
    return low, high


def check_positive(value: float, *, name: str) -> float:
    """Validate a strictly positive scalar parameter."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise InvalidParameterError(f"{name} must be a positive finite number, got {value}")
    return value
