"""Two-dimensional range aggregates — the paper's footnote-2 extension.

The paper focuses on one attribute but notes that "straightforward
extension of our results to higher dimensions are possible".  This
package carries the constructions over to joint distributions of two
attributes (a 2-D frequency grid):

``base``             estimator protocol + exact 2-D prefix-sum oracle
``workload``         rectangle workloads and SSE evaluation
``haar2d``           2-D tensor Haar transform and the point top-B synopsis
``range_optimal2d``  Theorem 9 in 2-D: the virtual 4-D tensor
                     ``AA(x1,y1,x2,y2) = s[x1..x2, y1..y2]`` has nonzero
                     tensor-Haar coefficients only on four N^2 planes,
                     all computable from 2-D transforms of the prefix-sum
                     grid — near-quadratic instead of Omega(N^4)
``grid_histogram``   bucket-grid histogram built from the marginals
"""

from repro.multidim.base import Estimator2D, ExactRangeSum2D
from repro.multidim.workload import (
    Workload2D,
    all_rectangles,
    random_rectangles,
)
from repro.multidim.evaluation import sse_2d
from repro.multidim.haar2d import (
    PointTopBWavelet2D,
    haar_transform_2d,
    inverse_haar_transform_2d,
)
from repro.multidim.range_optimal2d import RangeOptimalWavelet2D, aa_tensor_coefficients_2d
from repro.multidim.grid_histogram import GridHistogram, build_grid_histogram
from repro.multidim.reopt2d import reoptimize_grid_values

__all__ = [
    "Estimator2D",
    "ExactRangeSum2D",
    "Workload2D",
    "all_rectangles",
    "random_rectangles",
    "sse_2d",
    "haar_transform_2d",
    "inverse_haar_transform_2d",
    "PointTopBWavelet2D",
    "RangeOptimalWavelet2D",
    "aa_tensor_coefficients_2d",
    "GridHistogram",
    "build_grid_histogram",
    "reoptimize_grid_values",
]
