"""2-D estimator protocol and the exact rectangle-sum oracle."""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import InvalidDataError, InvalidQueryError


def as_frequency_grid(data, *, name: str = "data") -> np.ndarray:
    """Validate a 2-D non-negative frequency grid."""
    grid = np.asarray(data, dtype=np.float64)
    if grid.ndim != 2 or grid.size == 0:
        raise InvalidDataError(f"{name} must be a non-empty 2-D array, got shape {grid.shape}")
    if not np.all(np.isfinite(grid)):
        raise InvalidDataError(f"{name} contains NaN or infinite entries")
    if np.any(grid < 0):
        raise InvalidDataError(f"{name} contains negative entries")
    return grid


class Estimator2D(abc.ABC):
    """Rectangle-sum estimator over a 2-D frequency grid.

    A query is an inclusive rectangle ``[x1..x2] x [y1..y2]`` (0-indexed
    rows and columns); the answer approximates
    ``sum(grid[x1:x2+1, y1:y2+1])``.
    """

    shape: tuple[int, int]

    @abc.abstractmethod
    def estimate_many(self, x1, y1, x2, y2) -> np.ndarray:
        """Vectorised estimates for parallel rectangle arrays."""

    @abc.abstractmethod
    def storage_words(self) -> int:
        """Storage footprint in words (paper accounting)."""

    def estimate(self, x1: int, y1: int, x2: int, y2: int) -> float:
        rows, cols = self.shape
        if not (0 <= x1 <= x2 < rows and 0 <= y1 <= y2 < cols):
            raise InvalidQueryError(
                f"rectangle ({x1},{y1})-({x2},{y2}) out of bounds for shape {self.shape}"
            )
        result = self.estimate_many(
            np.asarray([x1]), np.asarray([y1]), np.asarray([x2]), np.asarray([y2])
        )
        return float(result[0])

    @property
    def name(self) -> str:
        return type(self).__name__


class ExactRangeSum2D(Estimator2D):
    """Exact rectangle sums via a 2-D prefix-sum grid."""

    def __init__(self, data) -> None:
        grid = as_frequency_grid(data)
        self.shape = grid.shape
        self._prefix = np.zeros((grid.shape[0] + 1, grid.shape[1] + 1))
        self._prefix[1:, 1:] = np.cumsum(np.cumsum(grid, axis=0), axis=1)

    def estimate_many(self, x1, y1, x2, y2) -> np.ndarray:
        x1 = np.asarray(x1, dtype=np.int64)
        y1 = np.asarray(y1, dtype=np.int64)
        x2 = np.asarray(x2, dtype=np.int64)
        y2 = np.asarray(y2, dtype=np.int64)
        p = self._prefix
        return p[x2 + 1, y2 + 1] - p[x1, y2 + 1] - p[x2 + 1, y1] + p[x1, y1]

    def storage_words(self) -> int:
        return int(self._prefix.size)

    @property
    def name(self) -> str:
        return "EXACT-2D"
