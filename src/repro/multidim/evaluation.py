"""SSE evaluation of 2-D estimators."""

from __future__ import annotations

import numpy as np

from repro.multidim.base import Estimator2D, ExactRangeSum2D
from repro.multidim.workload import Workload2D, all_rectangles


def sse_2d(estimator: Estimator2D, data, workload: Workload2D | None = None) -> float:
    """Weighted SSE of ``estimator`` over a rectangle workload.

    Defaults to *all* rectangles, which is only enumerable on tiny
    grids; pass a sampled workload for larger domains.
    """
    exact = ExactRangeSum2D(data)
    if exact.shape != tuple(estimator.shape):
        raise ValueError(
            f"estimator shape {estimator.shape} does not match data shape {exact.shape}"
        )
    if workload is None:
        workload = all_rectangles(exact.shape)
    truth = exact.estimate_many(workload.x1, workload.y1, workload.x2, workload.y2)
    approx = estimator.estimate_many(workload.x1, workload.y1, workload.x2, workload.y2)
    err = np.asarray(approx, dtype=np.float64) - truth
    return float((workload.weights * err * err).sum())
