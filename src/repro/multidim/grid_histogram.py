"""Bucket-grid histograms for 2-D frequency data.

The natural 2-D generalisation of the average histogram: partition each
axis into buckets and store one average per grid cell.  Optimal
*arbitrary* 2-D bucketings are NP-hard (Muthukrishnan et al.), so the
standard engineering compromise — and what the paper's footnote
anticipates — is to pick each axis's boundaries with a 1-D construction
on the corresponding *marginal* distribution, then take the product
grid.  Any registered 1-D builder can drive the axis partitioning.

Answering is the 2-D analogue of the un-rounded equation (1): the
estimated rectangle sum is the coverage-weighted sum of cell averages,
``sum_cells overlap_x * overlap_y * cell_average`` — evaluated with two
axis-aligned coverage matrices, so a batch of Q queries costs
``O(Q * (Bx + By) + Q * Bx * By)`` flops in vectorised form.
"""

from __future__ import annotations

import numpy as np

from repro.core.builders import BUILDER_REGISTRY
from repro.errors import InvalidParameterError
from repro.internal.validation import check_bucket_count
from repro.multidim.base import Estimator2D, as_frequency_grid


class GridHistogram(Estimator2D):
    """Product-grid histogram with per-cell averages."""

    def __init__(self, data, row_lefts, col_lefts) -> None:
        grid = as_frequency_grid(data)
        self.shape = grid.shape
        rows, cols = grid.shape
        self.row_lefts = np.asarray(row_lefts, dtype=np.int64)
        self.col_lefts = np.asarray(col_lefts, dtype=np.int64)
        if self.row_lefts[0] != 0 or self.col_lefts[0] != 0:
            raise InvalidParameterError("axis partitions must start at 0")
        self.row_rights = np.concatenate((self.row_lefts[1:] - 1, [rows - 1]))
        self.col_rights = np.concatenate((self.col_lefts[1:] - 1, [cols - 1]))
        prefix = np.zeros((rows + 1, cols + 1))
        prefix[1:, 1:] = np.cumsum(np.cumsum(grid, axis=0), axis=1)
        cell_sums = (
            prefix[self.row_rights[:, None] + 1, self.col_rights[None, :] + 1]
            - prefix[self.row_lefts[:, None], self.col_rights[None, :] + 1]
            - prefix[self.row_rights[:, None] + 1, self.col_lefts[None, :]]
            + prefix[self.row_lefts[:, None], self.col_lefts[None, :]]
        )
        areas = (self.row_rights - self.row_lefts + 1)[:, None] * (
            self.col_rights - self.col_lefts + 1
        )[None, :]
        self.cell_averages = cell_sums / areas

    @property
    def name(self) -> str:
        return "GRID-HIST"

    def storage_words(self) -> int:
        """Axis boundaries plus one average per cell."""
        return (
            self.row_lefts.size
            + self.col_lefts.size
            + self.cell_averages.size
        )

    def _axis_coverage(self, lows, highs, lefts, rights) -> np.ndarray:
        """Per-query overlap lengths with each axis bucket: (Q, B)."""
        overlap = np.minimum(highs[:, None], rights[None, :]) - np.maximum(
            lows[:, None], lefts[None, :]
        ) + 1
        return np.maximum(overlap, 0).astype(np.float64)

    def estimate_many(self, x1, y1, x2, y2) -> np.ndarray:
        x1 = np.asarray(x1, dtype=np.int64)
        y1 = np.asarray(y1, dtype=np.int64)
        x2 = np.asarray(x2, dtype=np.int64)
        y2 = np.asarray(y2, dtype=np.int64)
        row_cov = self._axis_coverage(x1, x2, self.row_lefts, self.row_rights)
        col_cov = self._axis_coverage(y1, y2, self.col_lefts, self.col_rights)
        # sum_ij row_cov[q, i] * avg[i, j] * col_cov[q, j]
        return np.einsum("qi,ij,qj->q", row_cov, self.cell_averages, col_cov)


def build_grid_histogram(
    data,
    row_buckets: int,
    col_buckets: int,
    method: str = "sap1",
) -> GridHistogram:
    """Grid histogram with axis partitions from 1-D builds on the marginals.

    ``method`` names any 1-D builder in the registry that produces a
    bucketed histogram (``sap1`` by default; ``a0``, ``point-opt``,
    ``equi-depth``... — not the wavelet methods).
    """
    grid = as_frequency_grid(data)
    rows, cols = grid.shape
    row_buckets = check_bucket_count(row_buckets, rows, name="row_buckets")
    col_buckets = check_bucket_count(col_buckets, cols, name="col_buckets")
    spec = BUILDER_REGISTRY.get(method)
    if spec is None or method.startswith("wavelet"):
        raise InvalidParameterError(
            f"method {method!r} is not a bucketed 1-D histogram builder"
        )
    row_marginal = grid.sum(axis=1)
    col_marginal = grid.sum(axis=0)
    row_hist = spec.build(row_marginal, row_buckets)
    col_hist = spec.build(col_marginal, col_buckets)
    return GridHistogram(grid, row_hist.lefts, col_hist.lefts)
