"""2-D tensor Haar transform and the point top-B synopsis.

The 2-D transform applies the 1-D orthonormal transform to every row,
then to every column of the result (the "standard" tensor
decomposition); the basis vectors are products
``psi_cr(x) * psi_cc(y)``, so the transform is orthonormal and Parseval
carries over: keeping the B largest coefficients minimises the
point-reconstruction SSE of the grid.  A rectangle sum of the
reconstruction factorises into the product of the two 1-D basis prefix
integrals, so queries cost O(B) without materialising the grid.
"""

from __future__ import annotations

import numpy as np

from repro.internal.validation import check_bucket_count
from repro.multidim.base import Estimator2D, as_frequency_grid
from repro.wavelets.haar import (
    basis_prefix,
    haar_transform,
    inverse_haar_transform,
    next_power_of_two,
)


def haar_transform_2d(matrix) -> np.ndarray:
    """Orthonormal 2-D Haar transform (rows, then columns)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    rows_done = np.apply_along_axis(haar_transform, 1, matrix)
    return np.apply_along_axis(haar_transform, 0, rows_done)


def inverse_haar_transform_2d(spectrum) -> np.ndarray:
    """Inverse of :func:`haar_transform_2d`."""
    spectrum = np.asarray(spectrum, dtype=np.float64)
    cols_done = np.apply_along_axis(inverse_haar_transform, 0, spectrum)
    return np.apply_along_axis(inverse_haar_transform, 1, cols_done)


class PointTopBWavelet2D(Estimator2D):
    """2-D Haar synopsis retaining the B largest-magnitude coefficients."""

    def __init__(self, data, n_coefficients: int) -> None:
        grid = as_frequency_grid(data)
        self.shape = grid.shape
        n_coefficients = check_bucket_count(
            n_coefficients, grid.size, name="n_coefficients"
        )
        self.padded_rows = next_power_of_two(grid.shape[0])
        self.padded_cols = next_power_of_two(grid.shape[1])
        padded = np.zeros((self.padded_rows, self.padded_cols))
        padded[: grid.shape[0], : grid.shape[1]] = grid
        spectrum = haar_transform_2d(padded)
        flat = np.abs(spectrum).ravel()
        order = np.argsort(-flat, kind="stable")[:n_coefficients]
        self.row_indices, self.col_indices = np.unravel_index(order, spectrum.shape)
        self.coefficients = spectrum[self.row_indices, self.col_indices]

    @property
    def name(self) -> str:
        return "TOPBB-2D"

    def storage_words(self) -> int:
        """Two words per coefficient: packed (row, col) index + value."""
        return 2 * int(self.coefficients.size)

    def estimate_many(self, x1, y1, x2, y2) -> np.ndarray:
        x1 = np.asarray(x1, dtype=np.int64)
        y1 = np.asarray(y1, dtype=np.int64)
        x2 = np.asarray(x2, dtype=np.int64)
        y2 = np.asarray(y2, dtype=np.int64)
        result = np.zeros(x1.shape, dtype=np.float64)
        for row, col, coefficient in zip(
            self.row_indices.tolist(), self.col_indices.tolist(), self.coefficients.tolist()
        ):
            row_term = basis_prefix(row, x2, self.padded_rows) - basis_prefix(
                row, x1 - 1, self.padded_rows
            )
            col_term = basis_prefix(col, y2, self.padded_cols) - basis_prefix(
                col, y1 - 1, self.padded_cols
            )
            result += coefficient * row_term * col_term
        return result
