"""Theorem 9 in two dimensions: range-optimal wavelet selection.

A 2-D rectangle sum is a four-term inclusion-exclusion over the prefix
grid ``PP``:

    AA(x1, y1, x2, y2) = PP[x2+1, y2+1] - PP[x1, y2+1]
                       - PP[x2+1, y1]  + PP[x1, y1]

Treat ``AA`` as a virtual 4-D tensor over all query corners and expand
it in the tensor Haar basis ``psi_a(x1) psi_b(y1) psi_c(x2) psi_d(y2)``.
Each inclusion-exclusion term depends on only two of the four
coordinates, so its coefficient factorises through ``sum(psi) = 0``
for every detail vector: term 1 needs ``a = b = 0``, term 2 ``b = c = 0``,
term 3 ``a = d = 0``, term 4 ``c = d = 0``.  The N^2·M^2-coefficient 4-D
transform therefore collapses onto **four 2-D planes** — each a plain
2-D Haar transform of a (shifted) prefix grid — computable in
O(NM log NM) total.  Keeping the top-B by magnitude is, by
orthonormality, the point-wise optimal size-B reconstruction of the
full rectangle-sum tensor: the 2-D analogue of the paper's Theorem 9.
"""

from __future__ import annotations

import numpy as np

from repro.internal.validation import check_bucket_count
from repro.multidim.base import Estimator2D, as_frequency_grid
from repro.multidim.haar2d import haar_transform_2d
from repro.wavelets.haar import basis_value, next_power_of_two


def aa_tensor_coefficients_2d(data):
    """All nonzero 4-D tensor-Haar coefficients of the virtual ``AA``.

    Returns ``(keys, values)`` where ``keys`` is an ``(n_coeffs, 4)``
    integer array of ``(a, b, c, d)`` basis indices (x1, y1, x2, y2
    axes) and ``values`` the coefficients, duplicates merged.
    """
    grid = as_frequency_grid(data)
    n = next_power_of_two(grid.shape[0])
    m = next_power_of_two(grid.shape[1])
    padded = np.zeros((n, m))
    padded[: grid.shape[0], : grid.shape[1]] = grid
    pp = np.zeros((n + 1, m + 1))
    pp[1:, 1:] = np.cumsum(np.cumsum(padded, axis=0), axis=1)
    scale = np.sqrt(n * m)

    # The four planes (see module docstring).
    tq = haar_transform_2d(pp[1:, 1:])        # (x2, y2) -> (c, d), needs a=b=0
    tr = haar_transform_2d(pp[:n, 1:])        # (x1, y2) -> (a, d), needs b=c=0
    ts = haar_transform_2d(pp[1:, :m].T)      # (y1, x2) -> (b, c), needs a=d=0
    tt = haar_transform_2d(pp[:n, :m])        # (x1, y1) -> (a, b), needs c=d=0

    c_idx, d_idx = np.meshgrid(np.arange(n), np.arange(m), indexing="ij")
    a_idx, b_idx = c_idx, d_idx  # same shapes per axis pairing

    zeros_nm = np.zeros(n * m, dtype=np.int64)
    planes = [
        # (a, b, c, d, value)
        (zeros_nm, zeros_nm, c_idx.ravel(), d_idx.ravel(), (scale * tq).ravel()),
        (a_idx.ravel(), zeros_nm, zeros_nm, d_idx.ravel(), (-scale * tr).ravel()),
        # ts is indexed (b, c) with b over the y-axis (size m), c over x (size n).
        (
            np.zeros(m * n, dtype=np.int64),
            np.repeat(np.arange(m), n),
            np.tile(np.arange(n), m),
            np.zeros(m * n, dtype=np.int64),
            (-scale * ts).ravel(),
        ),
        (a_idx.ravel(), b_idx.ravel(), zeros_nm, zeros_nm, (scale * tt).ravel()),
    ]

    all_a = np.concatenate([p[0] for p in planes])
    all_b = np.concatenate([p[1] for p in planes])
    all_c = np.concatenate([p[2] for p in planes])
    all_d = np.concatenate([p[3] for p in planes])
    all_v = np.concatenate([p[4] for p in planes])

    packed = ((all_a * m + all_b) * n + all_c) * m + all_d
    unique, inverse = np.unique(packed, return_inverse=True)
    merged = np.zeros(unique.size)
    np.add.at(merged, inverse, all_v)

    d = unique % m
    rest = unique // m
    c = rest % n
    rest //= n
    b = rest % m
    a = rest // m
    keys = np.stack([a, b, c, d], axis=1).astype(np.int64)
    return keys, merged


class RangeOptimalWavelet2D(Estimator2D):
    """2-D rectangle-sum synopsis with AA-tensor-optimal coefficients."""

    def __init__(self, data, n_coefficients: int) -> None:
        grid = as_frequency_grid(data)
        self.shape = grid.shape
        self.padded_rows = next_power_of_two(grid.shape[0])
        self.padded_cols = next_power_of_two(grid.shape[1])
        n_coefficients = check_bucket_count(
            n_coefficients,
            4 * self.padded_rows * self.padded_cols,
            name="n_coefficients",
        )
        keys, values = aa_tensor_coefficients_2d(grid)
        order = np.argsort(-np.abs(values), kind="stable")[:n_coefficients]
        self.keys = keys[order]
        self.coefficients = values[order]

    @property
    def name(self) -> str:
        return "WAVE-RANGE-2D"

    def storage_words(self) -> int:
        """Two words per coefficient: packed 4-index + value."""
        return 2 * int(self.coefficients.size)

    def estimate_many(self, x1, y1, x2, y2) -> np.ndarray:
        x1 = np.asarray(x1, dtype=np.int64)
        y1 = np.asarray(y1, dtype=np.int64)
        x2 = np.asarray(x2, dtype=np.int64)
        y2 = np.asarray(y2, dtype=np.int64)
        result = np.zeros(x1.shape, dtype=np.float64)
        rows, cols = self.padded_rows, self.padded_cols
        for (a, b, c, d), coefficient in zip(self.keys.tolist(), self.coefficients.tolist()):
            term = (
                basis_value(a, x1, rows)
                * basis_value(b, y1, cols)
                * basis_value(c, x2, rows)
                * basis_value(d, y2, cols)
            )
            result += coefficient * term
        return result
