"""Section 5's value re-optimisation, generalised to 2-D grids.

A grid histogram's rectangle answer is bilinear in the cell values:
``s~ = Σ_ij cov_x(i) · cov_y(j) · x_ij``, so for fixed axis partitions
the workload SSE is again a convex quadratic in the flattened cell
vector — one least-squares solve finds the optimal cells, exactly as in
1-D.  Useful because the product-grid construction fixes cell values to
plain averages, which are optimal for no particular workload.
"""

from __future__ import annotations

import numpy as np

from repro.multidim.base import ExactRangeSum2D, as_frequency_grid
from repro.multidim.grid_histogram import GridHistogram
from repro.multidim.workload import Workload2D, random_rectangles


def grid_coverage_design(
    histogram: GridHistogram, workload: Workload2D
) -> np.ndarray:
    """Design matrix: query q's coefficient for each (row, col) cell."""
    row_cov = histogram._axis_coverage(
        workload.x1, workload.x2, histogram.row_lefts, histogram.row_rights
    )
    col_cov = histogram._axis_coverage(
        workload.y1, workload.y2, histogram.col_lefts, histogram.col_rights
    )
    # (Q, Bx, By) -> flatten the cell axes.
    design = row_cov[:, :, None] * col_cov[:, None, :]
    return design.reshape(len(workload), -1)


def reoptimize_grid_values(
    histogram: GridHistogram,
    data,
    *,
    workload: Workload2D | None = None,
    sample_queries: int = 4000,
    seed: int = 0,
) -> GridHistogram:
    """Re-optimise a grid histogram's cell values for a rectangle workload.

    Defaults to a sampled rectangle workload (the all-rectangles domain
    is quartic); the returned histogram shares the axis partitions and
    is never worse than the input on the optimised workload.
    """
    grid = as_frequency_grid(data)
    if workload is None:
        workload = random_rectangles(grid.shape, sample_queries, seed=seed)
    design = grid_coverage_design(histogram, workload)
    truth = ExactRangeSum2D(grid).estimate_many(
        workload.x1, workload.y1, workload.x2, workload.y2
    )
    weights = np.sqrt(workload.weights)
    values, *_ = np.linalg.lstsq(
        design * weights[:, None], truth * weights, rcond=None
    )
    improved = GridHistogram(grid, histogram.row_lefts, histogram.col_lefts)
    improved.cell_averages = values.reshape(histogram.cell_averages.shape)
    return improved
