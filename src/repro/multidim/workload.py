"""Rectangle workloads over a 2-D domain."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvalidParameterError, InvalidQueryError


@dataclass(frozen=True)
class Workload2D:
    """A weighted multiset of inclusive rectangles over ``shape``."""

    shape: tuple[int, int]
    x1: np.ndarray
    y1: np.ndarray
    x2: np.ndarray
    y2: np.ndarray
    weights: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        arrays = [np.asarray(a, dtype=np.int64) for a in (self.x1, self.y1, self.x2, self.y2)]
        if len({a.shape for a in arrays}) != 1 or arrays[0].ndim != 1:
            raise InvalidQueryError("rectangle coordinate arrays must be parallel 1-D")
        x1, y1, x2, y2 = arrays
        rows, cols = self.shape
        if x1.size and (
            x1.min() < 0
            or y1.min() < 0
            or x2.max() >= rows
            or y2.max() >= cols
            or np.any(x1 > x2)
            or np.any(y1 > y2)
        ):
            raise InvalidQueryError("workload contains out-of-bounds or inverted rectangles")
        weights = self.weights
        if weights is None:
            weights = np.ones(x1.size, dtype=np.float64)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != x1.shape or np.any(weights < 0):
                raise InvalidQueryError("weights must parallel the rectangles, >= 0")
        for attribute, value in zip(("x1", "y1", "x2", "y2", "weights"), (*arrays, weights)):
            object.__setattr__(self, attribute, value)

    def __len__(self) -> int:
        return int(self.x1.size)


def all_rectangles(shape: tuple[int, int]) -> Workload2D:
    """Every rectangle — Theta(rows^2 cols^2) queries; tiny grids only."""
    rows, cols = shape
    if rows * cols > 64 * 64:
        raise InvalidParameterError(
            "all_rectangles enumerates O((rows*cols)^2) queries; "
            f"shape {shape} is too large — use random_rectangles"
        )
    xl, xh = np.triu_indices(rows)
    yl, yh = np.triu_indices(cols)
    x1 = np.repeat(xl, yl.size)
    x2 = np.repeat(xh, yl.size)
    y1 = np.tile(yl, xl.size)
    y2 = np.tile(yh, xl.size)
    return Workload2D(shape=shape, x1=x1, y1=y1, x2=x2, y2=y2)


def random_rectangles(shape: tuple[int, int], count: int, seed=None) -> Workload2D:
    """``count`` rectangles with uniformly chosen corner pairs."""
    if count < 1:
        raise InvalidParameterError(f"count must be >= 1, got {count}")
    rows, cols = shape
    rng = np.random.default_rng(seed)
    xa = rng.integers(0, rows, count)
    xb = rng.integers(0, rows, count)
    ya = rng.integers(0, cols, count)
    yb = rng.integers(0, cols, count)
    return Workload2D(
        shape=shape,
        x1=np.minimum(xa, xb),
        y1=np.minimum(ya, yb),
        x2=np.maximum(xa, xb),
        y2=np.maximum(ya, yb),
    )
