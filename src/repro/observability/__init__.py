"""Observability for the approximate query engine.

Three cooperating pieces, all dependency-free and cheap enough to stay
on the hot path:

* :mod:`tracing` — nested build/query/batch/rebuild spans with parent
  linkage, recorded into a bounded ring buffer;
* :mod:`metrics` — a registry of counters, gauges, and error/latency
  histograms with JSON and Prometheus-text exports;
* :mod:`audit` — rolling windows of observed-vs-exact error per
  ``(table, column, aggregate)``, the substrate of
  :meth:`~repro.engine.engine.ApproximateQueryEngine.error_report`.

:mod:`clock` supplies the time source; tests inject
:class:`~repro.observability.clock.FakeClock` for deterministic spans.
"""

from repro.observability.audit import AuditObservation, ErrorAuditor
from repro.observability.clock import FakeClock, SystemClock
from repro.observability.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.observability.tracing import Span, TraceRecorder

__all__ = [
    "AuditObservation",
    "ErrorAuditor",
    "FakeClock",
    "SystemClock",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TraceRecorder",
]
