"""Online error auditing: observed vs builder-predicted error.

The paper's builders minimise SSE over all ranges *at build time*; this
module is the production-side check that the promise still holds.  The
engine samples a fraction of live queries (``audit_rate``), runs the
exact answer alongside the estimate, and feeds the pair into an
:class:`ErrorAuditor`, which keeps a rolling window of squared errors
per ``(table, column, aggregate)``.  Comparing the windowed mean squared
error against the builder's predicted SSE-per-query is how the engine
notices a synopsis that has started lying — corrupted bytes, drifted
data, a builder bug — before users do.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError

#: Default rolling-window size per audited key.
DEFAULT_WINDOW = 4096


@dataclass(frozen=True)
class AuditObservation:
    """Windowed error statistics for one audited key."""

    samples: int
    sse_per_query: float
    mean_abs_error: float
    max_abs_error: float
    mean_relative_error: float


class ErrorAuditor:
    """Rolling observed-error windows keyed by ``(table, column, aggregate)``."""

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window < 1:
            raise InvalidParameterError(f"window must be >= 1, got {window}")
        self.window = int(window)
        self._errors: dict[tuple, deque] = {}
        self._exacts: dict[tuple, deque] = {}
        self.total_audited = 0

    def record(self, key: tuple, estimate: float, exact: float) -> float:
        """Add one audited (estimate, exact) pair; returns the abs error."""
        error = float(estimate) - float(exact)
        self._errors.setdefault(key, deque(maxlen=self.window)).append(error)
        self._exacts.setdefault(key, deque(maxlen=self.window)).append(float(exact))
        self.total_audited += 1
        return abs(error)

    def record_many(self, key: tuple, estimates, exacts) -> np.ndarray:
        """Vectorised :meth:`record`; returns the abs errors."""
        estimates = np.asarray(estimates, dtype=np.float64)
        exacts = np.asarray(exacts, dtype=np.float64)
        if estimates.shape != exacts.shape:
            raise InvalidParameterError("estimates and exacts must be parallel arrays")
        errors = estimates - exacts
        error_window = self._errors.setdefault(key, deque(maxlen=self.window))
        exact_window = self._exacts.setdefault(key, deque(maxlen=self.window))
        error_window.extend(errors.tolist())
        exact_window.extend(exacts.tolist())
        self.total_audited += int(estimates.size)
        return np.abs(errors)

    def keys(self) -> list[tuple]:
        return sorted(self._errors)

    def observed(self, key: tuple) -> AuditObservation | None:
        """Windowed statistics for one key; None if never audited."""
        errors = self._errors.get(key)
        if not errors:
            return None
        err = np.asarray(errors, dtype=np.float64)
        exact = np.asarray(self._exacts[key], dtype=np.float64)
        abs_err = np.abs(err)
        rel = abs_err / np.maximum(np.abs(exact), 1.0)
        return AuditObservation(
            samples=int(err.size),
            sse_per_query=float(np.mean(err * err)),
            mean_abs_error=float(abs_err.mean()),
            max_abs_error=float(abs_err.max()),
            mean_relative_error=float(rel.mean()),
        )

    def clear(self, key: tuple | None = None) -> None:
        """Drop one key's window (or every window)."""
        if key is None:
            self._errors.clear()
            self._exacts.clear()
            return
        self._errors.pop(key, None)
        self._exacts.pop(key, None)
