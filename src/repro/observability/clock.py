"""Clocks for the observability layer.

Every duration and staleness age in :mod:`repro.observability` flows
through a clock object with a single ``now()`` method, so tests can
substitute :class:`FakeClock` and assert on exact span durations —
there is no wall-clock flakiness anywhere in the span/metrics tests.
"""

from __future__ import annotations

import time

from repro.errors import InvalidParameterError


class SystemClock:
    """Monotonic wall clock (``time.perf_counter``)."""

    def now(self) -> float:
        return time.perf_counter()


class FakeClock:
    """Deterministic clock for tests: time moves only via :meth:`advance`.

    Optionally ``tick`` seconds elapse on every ``now()`` call, so code
    that brackets work with two ``now()`` reads observes a positive
    duration without any explicit ``advance``.
    """

    def __init__(self, start: float = 0.0, tick: float = 0.0) -> None:
        if tick < 0:
            raise InvalidParameterError(f"tick must be >= 0, got {tick}")
        self._now = float(start)
        self.tick = float(tick)

    def now(self) -> float:
        current = self._now
        self._now += self.tick
        return current

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise InvalidParameterError(f"cannot advance by {seconds} (< 0)")
        self._now += float(seconds)
