"""Pluggable metrics: counters, gauges, and histograms with exports.

A :class:`MetricsRegistry` is a flat namespace of named, labelled
instruments.  ``snapshot()`` returns a JSON-ready dict; and
``render_prometheus()`` emits the Prometheus text exposition format, so
``repro dump-metrics`` (and any scraper pointed at its output) can watch
the engine without new dependencies.

Instruments are plain python objects — looking one up is a dict access,
updating one is an attribute increment — cheap enough to sit on the
query path.
"""

from __future__ import annotations

import math
import threading

from repro.errors import InvalidParameterError

#: Default histogram buckets (seconds-flavoured exponential ladder).
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Buckets sized for absolute/relative error magnitudes.
ERROR_BUCKETS = (
    0.001, 0.01, 0.1, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0,
    64.0, 256.0, 1024.0, 4096.0, 65536.0,
)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _render_labels(labels: tuple) -> str:
    if not labels:
        return ""
    body = ",".join(f'{name}="{value}"' for name, value in labels)
    return "{" + body + "}"


class Counter:
    """Monotonically increasing count.

    Updates are serialised by a per-instrument lock: ``value += amount``
    is a read-modify-write, so two threads incrementing concurrently
    (the server's worker plus direct engine callers) could otherwise
    lose updates.
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise InvalidParameterError(f"counters only go up, got {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (e.g. staleness age)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Fixed-bucket histogram tracking count/sum/min/max.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``
    (cumulative at render time, per Prometheus convention; stored
    per-bucket here).  The last implicit bucket is ``+Inf``.
    """

    __slots__ = (
        "bounds", "bucket_counts", "count", "total", "minimum", "maximum", "_lock",
    )

    def __init__(self, bounds=DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(bound) for bound in bounds)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise InvalidParameterError("histogram bounds must be strictly increasing")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        position = 0
        for bound in self.bounds:
            if value <= bound:
                break
            position += 1
        with self._lock:
            self.bucket_counts[position] += 1
            self.count += 1
            self.total += value
            self.minimum = min(self.minimum, value)
            self.maximum = max(self.maximum, value)

    def observe_many(self, values) -> None:
        """Record many observations under one lock acquisition.

        The hot serve path records a whole batch's latencies at once;
        taking the instrument lock per value would add a lock round per
        query.
        """
        values = [float(value) for value in values]
        if not values:
            return
        positions = []
        for value in values:
            position = 0
            for bound in self.bounds:
                if value <= bound:
                    break
                position += 1
            positions.append(position)
        with self._lock:
            for position in positions:
                self.bucket_counts[position] += 1
            self.count += len(values)
            self.total += sum(values)
            self.minimum = min(self.minimum, min(values))
            self.maximum = max(self.maximum, max(values))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "count": self.count,
                "sum": self.total,
                "mean": self.mean,
                "min": self.minimum if self.count else None,
                "max": self.maximum if self.count else None,
                "buckets": {
                    "le": list(self.bounds),
                    "counts": list(self.bucket_counts),
                },
            }


class MetricsRegistry:
    """Named, labelled instruments with JSON and Prometheus exports.

    Instrument lookup-or-create and whole-registry reads (``snapshot``,
    ``render_prometheus``, ``reset``) hold a registry lock, so threads
    racing to create the same labelled instrument always share one
    object and a concurrent snapshot never sees a dict mid-mutation
    (``RuntimeError: dictionary changed size during iteration``).
    Updates on an already-created instrument only take that
    instrument's own lock.
    """

    def __init__(self, prefix: str = "repro") -> None:
        self.prefix = prefix
        self._lock = threading.Lock()
        self._counters: dict[str, dict[tuple, Counter]] = {}
        self._gauges: dict[str, dict[tuple, Gauge]] = {}
        self._histograms: dict[str, dict[tuple, Histogram]] = {}

    def counter(self, name: str, **labels) -> Counter:
        with self._lock:
            series = self._counters.setdefault(name, {})
            key = _label_key(labels)
            if key not in series:
                series[key] = Counter()
            return series[key]

    def gauge(self, name: str, **labels) -> Gauge:
        with self._lock:
            series = self._gauges.setdefault(name, {})
            key = _label_key(labels)
            if key not in series:
                series[key] = Gauge()
            return series[key]

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS, **labels) -> Histogram:
        with self._lock:
            series = self._histograms.setdefault(name, {})
            key = _label_key(labels)
            if key not in series:
                series[key] = Histogram(buckets)
            return series[key]

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def snapshot(self) -> dict:
        """All instruments as one JSON-ready dict (a deep copy)."""

        def series_map(series, render):
            return {
                name: {
                    _render_labels(key) or "": render(instrument)
                    for key, instrument in sorted(instruments.items())
                }
                for name, instruments in sorted(series.items())
            }

        with self._lock:
            return {
                "counters": series_map(self._counters, lambda c: c.value),
                "gauges": series_map(self._gauges, lambda g: g.value),
                "histograms": series_map(self._histograms, lambda h: h.as_dict()),
            }

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            return self._render_prometheus_locked()

    def _render_prometheus_locked(self) -> str:
        lines: list[str] = []
        for name, instruments in sorted(self._counters.items()):
            metric = f"{self.prefix}_{name}"
            lines.append(f"# TYPE {metric} counter")
            for key, counter in sorted(instruments.items()):
                lines.append(f"{metric}{_render_labels(key)} {counter.value:g}")
        for name, instruments in sorted(self._gauges.items()):
            metric = f"{self.prefix}_{name}"
            lines.append(f"# TYPE {metric} gauge")
            for key, gauge in sorted(instruments.items()):
                lines.append(f"{metric}{_render_labels(key)} {gauge.value:g}")
        for name, instruments in sorted(self._histograms.items()):
            metric = f"{self.prefix}_{name}"
            lines.append(f"# TYPE {metric} histogram")
            for key, histogram in sorted(instruments.items()):
                cumulative = 0
                for bound, bucket in zip(
                    histogram.bounds, histogram.bucket_counts
                ):
                    cumulative += bucket
                    bucket_labels = _render_labels(key + (("le", f"{bound:g}"),))
                    lines.append(f"{metric}_bucket{bucket_labels} {cumulative}")
                inf_labels = _render_labels(key + (("le", "+Inf"),))
                lines.append(f"{metric}_bucket{inf_labels} {histogram.count}")
                lines.append(
                    f"{metric}_sum{_render_labels(key)} {histogram.total:g}"
                )
                lines.append(
                    f"{metric}_count{_render_labels(key)} {histogram.count}"
                )
        return "\n".join(lines) + ("\n" if lines else "")
