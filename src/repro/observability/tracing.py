"""Lightweight span/trace recording for the query path.

A :class:`TraceRecorder` hands out :class:`Span` objects through a
context manager; spans opened while another span is active become its
children (``parent_id`` linkage), giving nested build → query → rebuild
traces without any external dependency.  Finished spans land in a
bounded ring buffer so a long-lived engine never grows its trace memory
without bound.

The recorder is deliberately tiny — opening a span is two clock reads
and a list append — so it can stay enabled on the hot path; disable it
(``enabled = False``) to reduce the cost to a single branch.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import InvalidParameterError
from repro.observability.clock import SystemClock

#: Default capacity of the finished-span ring buffer.
DEFAULT_SPAN_CAPACITY = 2048


@dataclass
class Span:
    """One timed operation, optionally nested under a parent span."""

    name: str
    span_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    attributes: dict = field(default_factory=dict)

    @property
    def duration(self) -> float | None:
        """Seconds between start and end; ``None`` while still open."""
        if self.end is None:
            return None
        return self.end - self.start

    def set(self, **attributes) -> None:
        """Attach attributes discovered while the span is running."""
        self.attributes.update(attributes)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }


class _NullSpan:
    """Stand-in yielded while recording is disabled."""

    __slots__ = ()
    attributes: dict = {}

    def set(self, **attributes) -> None:
        del attributes


NULL_SPAN = _NullSpan()


class TraceRecorder:
    """Collects nested spans into a bounded ring buffer.

    Thread-compatible: the parent stack is thread-local, so spans
    opened by different threads (the serving tier's worker next to
    direct engine callers) nest correctly within their own thread and
    never corrupt each other's parentage.  The finished ring buffer is
    shared; its appends are atomic.  Parallel builders
    (``build_all_synopses(parallel=True)``) still record only their
    enclosing span plus per-phase metrics, never per-thread child
    spans.
    """

    def __init__(self, clock=None, capacity: int = DEFAULT_SPAN_CAPACITY) -> None:
        if capacity < 1:
            raise InvalidParameterError(f"capacity must be >= 1, got {capacity}")
        self.clock = clock if clock is not None else SystemClock()
        self.enabled = True
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._finished: deque[Span] = deque(maxlen=capacity)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **attributes):
        """Open a span; nested calls become children of the current span."""
        if not self.enabled:
            yield NULL_SPAN
            return
        stack = self._stack()
        parent = stack[-1] if stack else None
        record = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            start=self.clock.now(),
            attributes=dict(attributes),
        )
        stack.append(record)
        try:
            yield record
        finally:
            record.end = self.clock.now()
            stack.pop()
            self._finished.append(record)

    def spans(self, name: str | None = None) -> list[Span]:
        """Finished spans in completion order, optionally filtered by name."""
        if name is None:
            return list(self._finished)
        return [span for span in self._finished if span.name == name]

    def export(self) -> list[dict]:
        """Finished spans as JSON-ready dicts."""
        return [span.as_dict() for span in self._finished]

    def clear(self) -> None:
        self._finished.clear()

    def __len__(self) -> int:
        return len(self._finished)
