"""Range-query machinery: estimator protocol, workloads, evaluation.

The paper's quality measure is the sum-squared error over *all*
``n(n+1)/2`` range queries; :func:`repro.queries.evaluation.sse` with the
default workload computes exactly that.  Other workloads (random ranges,
prefix ranges, equality/point queries) support the comparisons the
paper's introduction motivates.
"""

from repro.queries.estimators import RangeSumEstimator
from repro.queries.exact import ExactRangeSum
from repro.queries.workload import (
    Workload,
    all_ranges,
    fixed_length_ranges,
    point_queries,
    prefix_ranges,
    random_ranges,
)
from repro.queries.evaluation import EvaluationReport, evaluate, sse
from repro.queries.bounds import ErrorEnvelope, compute_error_envelope, guaranteed_bounds
from repro.queries.joins import estimate_join_size, exact_join_size, join_size_from_engine
from repro.queries.online import OnlineEstimate, OnlineRangeEstimator
from repro.queries.quantiles import estimate_median, estimate_quantile

__all__ = [
    "RangeSumEstimator",
    "ExactRangeSum",
    "Workload",
    "all_ranges",
    "random_ranges",
    "prefix_ranges",
    "point_queries",
    "fixed_length_ranges",
    "EvaluationReport",
    "evaluate",
    "sse",
    "ErrorEnvelope",
    "compute_error_envelope",
    "guaranteed_bounds",
    "estimate_quantile",
    "estimate_median",
    "estimate_join_size",
    "exact_join_size",
    "join_size_from_engine",
    "OnlineRangeEstimator",
    "OnlineEstimate",
]
