"""Deterministic per-query error envelopes for average histograms.

An approximate answer is far more useful to an optimiser or a user with
a guaranteed interval around it.  For equation-(1) histograms the error
of any query decomposes bucket-by-bucket, so per-bucket envelopes give a
sound per-query bound:

* inter-bucket query ``(l, r)``:
  ``|error| <= max_suffix_error[bucket(l)] + max_prefix_error[bucket(r)]
              + sum of middle-bucket deviations strictly between them``
  (the middle term vanishes when the stored values are the exact bucket
  averages — OPT-A, A0 — but not for reopt or POINT-OPT values);
* intra-bucket query: ``|error| <= max_intra_error[bucket]``;
* ``rounding="total"`` adds the final rounding slack of 1/2.

All envelopes are exact maxima computed in O(L) per bucket from the
centred prefix values (the same algebra the builders use), including the
per-piece integer rounding when the histogram rounds per piece.  The
suffix/prefix/intra maxima are *tight*: some query attains each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.internal.prefix import round_half_up

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.histogram import AverageHistogram


@dataclass(frozen=True)
class ErrorEnvelope:
    """Per-bucket error maxima for one average histogram."""

    max_suffix_error: np.ndarray
    max_prefix_error: np.ndarray
    max_intra_error: np.ndarray
    #: |length * value - true bucket sum| per bucket (middle-piece error).
    middle_error: np.ndarray
    #: extra slack from rounding the final sum once (``"total"`` mode).
    final_rounding_slack: float

    def bound(self, histogram: "AverageHistogram", lows, highs) -> np.ndarray:
        """Sound upper bounds on ``|answer - truth|`` per query."""
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        bucket_low = histogram.bucket_of(lows)
        bucket_high = histogram.bucket_of(highs)
        same = bucket_low == bucket_high
        cumulative_middle = np.concatenate(([0.0], np.cumsum(self.middle_error)))
        middle = cumulative_middle[bucket_high] - cumulative_middle[
            np.minimum(bucket_low + 1, bucket_high)
        ]
        inter = (
            self.max_suffix_error[bucket_low]
            + self.max_prefix_error[bucket_high]
            + middle
        )
        intra = self.max_intra_error[bucket_low]
        return np.where(same, intra, inter) + self.final_rounding_slack


def compute_error_envelope(histogram: "AverageHistogram", data) -> ErrorEnvelope:
    """Exact per-bucket error maxima of ``histogram`` against ``data``."""
    data = np.asarray(data, dtype=np.float64)
    prefix = np.concatenate(([0.0], np.cumsum(data)))
    per_piece = histogram.rounding == "per_piece"
    max_suffix = np.empty(histogram.bucket_count)
    max_prefix = np.empty(histogram.bucket_count)
    max_intra = np.empty(histogram.bucket_count)
    middle = np.empty(histogram.bucket_count)
    for index, (a, b) in enumerate(histogram.bucket_ranges()):
        value = histogram.values[index]
        length = b - a + 1
        lengths = np.arange(1, length + 1, dtype=np.float64)
        estimates = lengths * value
        if per_piece:
            estimates = round_half_up(estimates)
        suffix_exact = prefix[b + 1] - prefix[a : b + 1]
        prefix_exact = prefix[a + 1 : b + 2] - prefix[a]
        max_suffix[index] = np.abs(suffix_exact - estimates[::-1]).max()
        max_prefix[index] = np.abs(prefix_exact - estimates).max()
        middle[index] = abs(length * value - (prefix[b + 1] - prefix[a]))
        # Intra: error of (l, r) is (v_{r+1} - v_l) + correction(length);
        # take the exact maximum over all pairs, grouped by length.
        v = (prefix[a : b + 2] - prefix[a]) - np.arange(length + 1) * value
        worst = 0.0
        for piece in range(1, length + 1):
            diffs = v[piece:] - v[: v.size - piece]
            correction = piece * value - estimates[piece - 1]
            worst = max(worst, float(np.abs(diffs + correction).max()))
        max_intra[index] = worst
    return ErrorEnvelope(
        max_suffix_error=max_suffix,
        max_prefix_error=max_prefix,
        max_intra_error=max_intra,
        middle_error=middle,
        final_rounding_slack=0.5 if histogram.rounding == "total" else 0.0,
    )


def guaranteed_bounds(histogram: "AverageHistogram", data, lows, highs) -> np.ndarray:
    """One-call convenience: envelopes + per-query bounds."""
    envelope = compute_error_envelope(histogram, data)
    return envelope.bound(histogram, lows, highs)
