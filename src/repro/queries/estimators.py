"""The estimator protocol every synopsis in this library implements.

A *range-sum estimator* answers ``estimate(low, high)`` — an
approximation of ``sum(data[low..high])`` for an inclusive, 0-indexed
range — and reports its storage footprint in words, the unit the paper
uses on the x-axis of Figure 1 (one word per stored boundary, summary
value, or coefficient index/value).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.internal.validation import check_range


class RangeSumEstimator(abc.ABC):
    """Abstract base class for range-sum synopses.

    Subclasses must set :attr:`n` (the domain size) and implement
    :meth:`estimate_many`; the scalar :meth:`estimate` and storage
    accounting are provided here.
    """

    #: Domain size (number of attribute values); set by subclasses.
    n: int

    @abc.abstractmethod
    def estimate_many(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Vectorised estimates for parallel arrays of inclusive ranges.

        Implementations may assume the ranges were validated; public
        entry points go through :meth:`estimate` or the evaluation
        helpers, which validate once.
        """

    @abc.abstractmethod
    def storage_words(self) -> int:
        """Number of machine words this synopsis occupies.

        Follows the paper's accounting: bucket boundaries and summary
        values are one word each; a retained wavelet coefficient is two
        (index + value).
        """

    def estimate(self, low: int, high: int) -> float:
        """Approximate ``sum(data[low..high])`` (inclusive, 0-indexed)."""
        low, high = check_range(low, high, self.n)
        result = self.estimate_many(np.asarray([low]), np.asarray([high]))
        return float(result[0])

    @property
    def name(self) -> str:
        """Short display name; subclasses override for the paper's labels."""
        return type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.name} n={self.n} words={self.storage_words()}>"
