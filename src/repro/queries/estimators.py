"""The estimator protocol every synopsis in this library implements.

A *range-sum estimator* answers ``estimate(low, high)`` — an
approximation of ``sum(data[low..high])`` for an inclusive, 0-indexed
range — and reports its storage footprint in words, the unit the paper
uses on the x-axis of Figure 1 (one word per stored boundary, summary
value, or coefficient index/value).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.internal.validation import check_range


class RangeSumEstimator(abc.ABC):
    """Abstract base class for range-sum synopses.

    Subclasses must set :attr:`n` (the domain size) and override at
    least one of :meth:`estimate` / :meth:`estimate_many`; each has a
    default written in terms of the other, so a vectorised synopsis gets
    the scalar entry point for free and a scalar-only synopsis still
    qualifies for the engine's batch execution path (via a per-range
    fallback loop).
    """

    #: Domain size (number of attribute values); set by subclasses.
    n: int

    def estimate_many(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Vectorised estimates for parallel arrays of inclusive ranges.

        Implementations may assume the ranges were validated; public
        entry points go through :meth:`estimate` or the evaluation
        helpers, which validate once.

        The default falls back to one :meth:`estimate` call per range,
        so subclasses that only answer scalar queries still satisfy the
        batch protocol (at scalar speed).
        """
        if type(self).estimate is RangeSumEstimator.estimate:
            raise NotImplementedError(
                f"{type(self).__name__} must override estimate() or estimate_many()"
            )
        lows = np.asarray(lows)
        highs = np.asarray(highs)
        return np.asarray(
            [
                self.estimate(int(low), int(high))
                for low, high in zip(lows.tolist(), highs.tolist())
            ],
            dtype=np.float64,
        )

    @abc.abstractmethod
    def storage_words(self) -> int:
        """Number of machine words this synopsis occupies.

        Follows the paper's accounting: bucket boundaries and summary
        values are one word each; a retained wavelet coefficient is two
        (index + value).
        """

    def estimate(self, low: int, high: int) -> float:
        """Approximate ``sum(data[low..high])`` (inclusive, 0-indexed)."""
        low, high = check_range(low, high, self.n)
        result = self.estimate_many(np.asarray([low]), np.asarray([high]))
        return float(result[0])

    @property
    def name(self) -> str:
        """Short display name; subclasses override for the paper's labels."""
        return type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.name} n={self.n} words={self.storage_words()}>"
