"""Error evaluation of range-sum estimators against exact answers.

The headline metric is the paper's SSE: the sum of squared errors over
all ranges (or over any other :class:`~repro.queries.workload.Workload`).
:func:`evaluate` returns a full report with several standard metrics so
experiments and the approximate-query engine can report quality without
re-deriving ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.queries.estimators import RangeSumEstimator
from repro.queries.exact import ExactRangeSum
from repro.queries.workload import Workload, all_ranges


@dataclass(frozen=True)
class EvaluationReport:
    """Error metrics of one estimator over one workload.

    ``sse`` is the paper's objective (weighted when the workload carries
    weights); the remaining fields are standard derived metrics.
    """

    estimator_name: str
    storage_words: int
    query_count: int
    sse: float
    mse: float
    rmse: float
    max_abs_error: float
    mean_abs_error: float
    total_relative_error: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.estimator_name}: words={self.storage_words} "
            f"SSE={self.sse:.6g} RMSE={self.rmse:.6g} max|e|={self.max_abs_error:.6g}"
        )


def _errors(estimator: RangeSumEstimator, data, workload: Workload) -> np.ndarray:
    exact = ExactRangeSum(data)
    if exact.n != estimator.n:
        raise ValueError(
            f"estimator domain ({estimator.n}) does not match data length ({exact.n})"
        )
    truth = exact.estimate_many(workload.lows, workload.highs)
    approx = estimator.estimate_many(workload.lows, workload.highs)
    return np.asarray(approx, dtype=np.float64) - truth, truth


def sse(estimator: RangeSumEstimator, data, workload: Workload | None = None) -> float:
    """Weighted sum-squared error of ``estimator`` over ``workload``.

    With the default workload (all ranges, unit weights) this is exactly
    the paper's objective ``SSE = sum_{a<=b} (s[a,b] - s̃[a,b])^2``.
    """
    if workload is None:
        workload = all_ranges(estimator.n)
    err, _ = _errors(estimator, data, workload)
    return float(np.sum(workload.weights * err * err))


def evaluate(
    estimator: RangeSumEstimator, data, workload: Workload | None = None
) -> EvaluationReport:
    """Full error report of ``estimator`` against exact answers."""
    if workload is None:
        workload = all_ranges(estimator.n)
    err, truth = _errors(estimator, data, workload)
    weights = workload.weights
    total_weight = float(weights.sum())
    sq = weights * err * err
    sse_value = float(sq.sum())
    abs_err = np.abs(err)
    # Relative error uses a sanity floor of 1 in the denominator, the
    # usual convention for count queries whose true answer may be 0.
    rel = abs_err / np.maximum(np.abs(truth), 1.0)
    mse = sse_value / total_weight if total_weight > 0 else 0.0
    return EvaluationReport(
        estimator_name=estimator.name,
        storage_words=estimator.storage_words(),
        query_count=len(workload),
        sse=sse_value,
        mse=mse,
        rmse=float(np.sqrt(mse)),
        max_abs_error=float(abs_err.max(initial=0.0)),
        mean_abs_error=float((weights * abs_err).sum() / total_weight) if total_weight else 0.0,
        total_relative_error=float((weights * rel).sum()),
    )
