"""Exact range-sum oracle backed by prefix sums.

Used as ground truth by the evaluation helpers and the approximate query
engine's exact executor.  It is itself a :class:`RangeSumEstimator`
(with zero error and ``n + 1`` words of storage), which keeps the
evaluation code uniform.
"""

from __future__ import annotations

import numpy as np

from repro.internal.validation import as_frequency_vector
from repro.queries.estimators import RangeSumEstimator


class ExactRangeSum(RangeSumEstimator):
    """Answers every range-sum query exactly via a prefix-sum array."""

    def __init__(self, data) -> None:
        self.data = as_frequency_vector(data)
        self.n = int(self.data.size)
        self._prefix = np.concatenate(([0.0], np.cumsum(self.data)))

    def estimate_many(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        return self._prefix[np.asarray(highs) + 1] - self._prefix[np.asarray(lows)]

    def storage_words(self) -> int:
        return self.n + 1

    @property
    def name(self) -> str:
        return "EXACT"
