"""Equi-join size estimation from histograms.

The second classical consumer of attribute-value synopses (after range
selectivity): the size of an equi-join ``R ⋈_v S`` is the inner product
of the two attribute-value distributions, ``Σ_v f_R(v) · f_S(v)``.
Piecewise-constant histograms admit a closed form: over each maximal
segment where both are constant, the contribution is
``segment_length · value_R · value_S``, so the estimate costs
``O(B_R + B_S)`` — the Ioannidis-style analysis query optimisers run
per candidate join.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.histogram import AverageHistogram
from repro.errors import InvalidParameterError


def exact_join_size(freq_r: np.ndarray, freq_s: np.ndarray) -> float:
    """``Σ_v f_R(v) * f_S(v)`` over a shared domain (ground truth)."""
    freq_r = np.asarray(freq_r, dtype=np.float64)
    freq_s = np.asarray(freq_s, dtype=np.float64)
    if freq_r.shape != freq_s.shape:
        raise InvalidParameterError(
            f"frequency vectors must share a domain, got {freq_r.shape} vs {freq_s.shape}"
        )
    return float(freq_r @ freq_s)


def estimate_join_size(hist_r: "AverageHistogram", hist_s: "AverageHistogram") -> float:
    """Inner product of two piecewise-constant histograms (same domain).

    Merges the two boundary sets and sums ``len * value_R * value_S``
    per merged segment — O(B_R + B_S).
    """
    if hist_r.n != hist_s.n:
        raise InvalidParameterError(
            f"histograms must share a domain, got n={hist_r.n} vs n={hist_s.n}"
        )
    boundaries = np.union1d(hist_r.lefts, hist_s.lefts)
    ends = np.concatenate((boundaries[1:], [hist_r.n]))
    lengths = ends - boundaries
    values_r = hist_r.values[hist_r.bucket_of(boundaries)]
    values_s = hist_s.values[hist_s.bucket_of(boundaries)]
    return float((lengths * values_r * values_s).sum())


def join_size_from_engine(
    engine,
    table_r: str,
    column_r: str,
    table_s: str,
    column_s: str,
    *,
    with_exact: bool = False,
) -> tuple[float, float | None]:
    """Estimate ``|R ⋈ S|`` on two engine columns from their synopses.

    Both columns must have 1-D synopses built with an average-histogram
    method (OPT-A/A0/POINT-OPT families); the two value domains are
    aligned on their raw-value overlap.  Returns ``(estimate, exact)``
    (``exact`` is None unless requested).
    """
    entry_r = engine._synopses.get((table_r, column_r))
    entry_s = engine._synopses.get((table_s, column_s))
    if entry_r is None or entry_s is None:
        from repro.errors import InvalidQueryError

        raise InvalidQueryError(
            "both columns need 1-D synopses before estimating a join size"
        )
    stats_r, stats_s = entry_r.statistics, entry_s.statistics
    if stats_r.layout != "dense" or stats_s.layout != "dense":
        raise InvalidParameterError(
            "join-size estimation requires dense column layouts "
            "(integer domains of moderate span)"
        )
    est_r = entry_r.count_estimator
    est_s = entry_s.count_estimator
    from repro.core.histogram import AverageHistogram

    if not isinstance(est_r, AverageHistogram) or not isinstance(est_s, AverageHistogram):
        raise InvalidParameterError(
            "join-size estimation needs average-histogram synopses "
            "(e.g. method='a0' or 'opt-a-auto')"
        )
    lo = max(stats_r.lo, stats_s.lo)
    hi = min(stats_r.hi, stats_s.hi)
    if lo > hi:
        return 0.0, (0.0 if with_exact else None)

    # Reconstruct per-value densities over the overlap and inner-product
    # them; O(overlap) here keeps the alignment logic obvious (the
    # O(B_R + B_S) merge of estimate_join_size applies when the domains
    # coincide exactly).
    overlap = np.arange(int(lo), int(hi) + 1)
    idx_r = overlap - int(stats_r.lo)
    idx_s = overlap - int(stats_s.lo)
    density_r = est_r.values[est_r.bucket_of(idx_r)]
    density_s = est_s.values[est_s.bucket_of(idx_s)]
    estimate = float((density_r * density_s).sum())
    exact = None
    if with_exact:
        exact = float(
            (
                stats_r.count_frequencies[idx_r] * stats_s.count_frequencies[idx_s]
            ).sum()
        )
    return estimate, exact
