"""Online (progressive) range aggregation.

The paper's introduction motivates "online query processing wherein
fast estimates are provided and they get refined over time at rates
controlled by the user" [7].  This module implements that loop on top
of any average histogram: answer instantly from the synopsis with a
*deterministic* error interval, then scan the base data left-to-right
in chunks, replacing the synopsis's contribution with exact partial
sums — the estimate converges to the truth and the guaranteed interval
shrinks to zero.

Every yielded estimate is *anytime-valid*: the true answer always lies
within ``estimate ± bound`` (soundness inherited from
:mod:`repro.queries.bounds`), so a user can stop the refinement the
moment the interval is tight enough.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.histogram import AverageHistogram
from repro.errors import InvalidParameterError
from repro.internal.validation import as_frequency_vector, check_range
from repro.queries.bounds import compute_error_envelope


@dataclass(frozen=True)
class OnlineEstimate:
    """One step of a progressive answer."""

    estimate: float
    bound: float
    fraction_scanned: float

    @property
    def interval(self) -> tuple[float, float]:
        return (self.estimate - self.bound, self.estimate + self.bound)


class OnlineRangeEstimator:
    """Progressively-refined range sums with deterministic intervals."""

    def __init__(self, data, histogram: "AverageHistogram", chunk: int = 64) -> None:
        if chunk < 1:
            raise InvalidParameterError(f"chunk must be >= 1, got {chunk}")
        self.data = as_frequency_vector(data)
        if histogram.n != self.data.size:
            raise InvalidParameterError(
                f"histogram domain ({histogram.n}) does not match data ({self.data.size})"
            )
        self.histogram = histogram
        self.chunk = int(chunk)
        self._prefix = np.concatenate(([0.0], np.cumsum(self.data)))
        self._envelope = compute_error_envelope(histogram, self.data)

    def _synopsis_piece(self, low: int, high: int) -> tuple[float, float]:
        """Synopsis estimate and sound bound for ``[low, high]``."""
        if low > high:
            return 0.0, 0.0
        estimate = self.histogram.estimate_many(
            np.asarray([low]), np.asarray([high])
        )[0]
        bound = self._envelope.bound(
            self.histogram, np.asarray([low]), np.asarray([high])
        )[0]
        return float(estimate), float(bound)

    def refine(self, low: int, high: int) -> Iterator[OnlineEstimate]:
        """Yield successively better ``(estimate, bound)`` answers.

        The first yield is the pure synopsis answer (no data touched);
        each subsequent yield has scanned one more chunk of the range
        exactly.  The final yield is exact with bound 0.
        """
        low, high = check_range(low, high, self.data.size)
        length = high - low + 1
        scanned_until = low  # exclusive position: [low, scanned_until) is exact
        estimate, bound = self._synopsis_piece(low, high)
        yield OnlineEstimate(estimate=estimate, bound=bound, fraction_scanned=0.0)
        while scanned_until <= high:
            scanned_until = min(scanned_until + self.chunk, high + 1)
            exact_part = float(self._prefix[scanned_until] - self._prefix[low])
            rest_estimate, rest_bound = self._synopsis_piece(scanned_until, high)
            yield OnlineEstimate(
                estimate=exact_part + rest_estimate,
                bound=rest_bound,
                fraction_scanned=(scanned_until - low) / length,
            )

    def answer(self, low: int, high: int, tolerance: float) -> OnlineEstimate:
        """Refine until the guaranteed bound drops to ``tolerance``."""
        last = None
        for step in self.refine(low, high):
            last = step
            if step.bound <= tolerance:
                break
        return last
