"""Quantile estimation from range-sum synopses.

A count synopsis induces an approximate CDF — ``F(r) = s~[0, r] /
s~[0, n-1]`` — so quantiles come from inverting it: the ``q``-quantile
estimate is the smallest index whose estimated prefix mass reaches
``q`` of the estimated total.  This is how AQUA-style engines answer
MEDIAN/PERCENTILE from the same synopses that serve range counts.

Histogram prefix estimates are monotone (non-negative averages), but
wavelet reconstructions need not be; the inversion therefore runs on the
running maximum of the prefix estimates, which is sound for any
estimator and exact for monotone ones.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.queries.estimators import RangeSumEstimator


def prefix_estimates(estimator: RangeSumEstimator, low: int = 0, high: int | None = None) -> np.ndarray:
    """Estimated prefix masses ``s~[low, r]`` for ``r = low..high``."""
    if high is None:
        high = estimator.n - 1
    highs = np.arange(low, high + 1, dtype=np.int64)
    lows = np.full(highs.shape, low, dtype=np.int64)
    return estimator.estimate_many(lows, highs)


def estimate_quantile(
    estimator: RangeSumEstimator,
    q: float,
    *,
    low: int = 0,
    high: int | None = None,
) -> int:
    """Index of the estimated ``q``-quantile within ``[low, high]``.

    Returns the smallest index ``r`` whose estimated cumulative mass
    (within the window) reaches ``q`` times the estimated window total.
    """
    if not 0.0 <= q <= 1.0:
        raise InvalidParameterError(f"q must be in [0, 1], got {q}")
    if high is None:
        high = estimator.n - 1
    masses = np.maximum.accumulate(prefix_estimates(estimator, low, high))
    total = max(float(masses[-1]), 0.0)
    if total <= 0.0:
        return low
    target = q * total
    index = int(np.searchsorted(masses, target, side="left"))
    return low + min(index, high - low)


def estimate_median(estimator: RangeSumEstimator, *, low: int = 0, high: int | None = None) -> int:
    """Index of the estimated median within ``[low, high]``."""
    return estimate_quantile(estimator, 0.5, low=low, high=high)
