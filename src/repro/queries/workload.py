"""Range-query workloads.

A :class:`Workload` is a weighted multiset of inclusive, 0-indexed
ranges.  The paper's objective weights every possible range equally
(:func:`all_ranges`); the other factories cover the query families the
paper contrasts against — equality/point queries (what POINT-OPT and
classic V-optimal histograms optimise [6]), prefix ranges (the
hierarchically-restricted case of [9]), and sampled workloads for large
domains where enumerating all ``n(n+1)/2`` ranges is wasteful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvalidParameterError, InvalidQueryError


@dataclass(frozen=True)
class Workload:
    """A weighted set of inclusive range queries over ``[0, n)``.

    Attributes
    ----------
    n:
        Domain size the ranges refer to.
    lows, highs:
        Parallel integer arrays; each query is ``[lows[i], highs[i]]``.
    weights:
        Per-query weights used by weighted error metrics; defaults to 1.
    """

    n: int
    lows: np.ndarray
    highs: np.ndarray
    weights: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        lows = np.asarray(self.lows, dtype=np.int64)
        highs = np.asarray(self.highs, dtype=np.int64)
        if lows.shape != highs.shape or lows.ndim != 1:
            raise InvalidQueryError("lows and highs must be parallel 1-D arrays")
        if lows.size and (lows.min() < 0 or highs.max() >= self.n or np.any(lows > highs)):
            raise InvalidQueryError("workload contains out-of-bounds or inverted ranges")
        weights = self.weights
        if weights is None:
            weights = np.ones(lows.size, dtype=np.float64)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != lows.shape:
                raise InvalidQueryError("weights must parallel lows/highs")
            if np.any(weights < 0):
                raise InvalidQueryError("weights must be non-negative")
        object.__setattr__(self, "lows", lows)
        object.__setattr__(self, "highs", highs)
        object.__setattr__(self, "weights", weights)

    def __len__(self) -> int:
        return int(self.lows.size)

    def __iter__(self):
        for low, high in zip(self.lows.tolist(), self.highs.tolist()):
            yield low, high

    def lengths(self) -> np.ndarray:
        """Range lengths ``high - low + 1`` per query."""
        return self.highs - self.lows + 1

    def as_batch(self, table: str, column: str, aggregate: str = "count",
                 values_axis=None):
        """The workload as an engine batch over ``table.column``.

        The bridge from the paper's index-space workloads to the
        engine's raw-value queries: each range becomes one query of a
        :class:`~repro.engine.batch.BatchQuery`, with the endpoints
        taken verbatim (when the column's values *are* the 0-indexed
        domain) or mapped through ``values_axis`` (e.g. a
        :class:`~repro.engine.column.ColumnStatistics` ``values_axis``)
        otherwise.
        """
        from repro.engine.batch import BatchQuery

        if values_axis is None:
            lows = self.lows.astype(np.float64)
            highs = self.highs.astype(np.float64)
        else:
            axis = np.asarray(values_axis, dtype=np.float64)
            if self.highs.size and int(self.highs.max()) >= axis.size:
                raise InvalidQueryError(
                    f"workload ranges exceed the {axis.size}-value axis"
                )
            lows = axis[self.lows]
            highs = axis[self.highs]
        return BatchQuery(
            table=table, column=column, aggregate=aggregate, lows=lows, highs=highs
        )


def _check_n(n: int) -> int:
    if not isinstance(n, (int, np.integer)) or n < 1:
        raise InvalidParameterError(f"domain size n must be a positive integer, got {n!r}")
    return int(n)


def all_ranges(n: int) -> Workload:
    """Every range ``[a, b]`` with ``0 <= a <= b < n`` — the paper's SSE domain."""
    n = _check_n(n)
    lows, highs = np.triu_indices(n)
    return Workload(n=n, lows=lows, highs=highs)


def point_queries(n: int, weights=None) -> Workload:
    """All equality queries ``[i, i]``; the classic V-optimal objective."""
    n = _check_n(n)
    idx = np.arange(n, dtype=np.int64)
    return Workload(n=n, lows=idx, highs=idx, weights=weights)


def prefix_ranges(n: int) -> Workload:
    """All prefix ranges ``[0, b]`` (the hierarchical/prefix-restricted case)."""
    n = _check_n(n)
    highs = np.arange(n, dtype=np.int64)
    return Workload(n=n, lows=np.zeros(n, dtype=np.int64), highs=highs)


def fixed_length_ranges(n: int, length: int) -> Workload:
    """All ranges of a fixed ``length`` — sliding-window aggregates."""
    n = _check_n(n)
    if not 1 <= length <= n:
        raise InvalidParameterError(f"length must be in [1, {n}], got {length}")
    lows = np.arange(n - length + 1, dtype=np.int64)
    return Workload(n=n, lows=lows, highs=lows + length - 1)


def random_ranges(n: int, count: int, seed: int | None = None) -> Workload:
    """``count`` ranges sampled uniformly from all ``n(n+1)/2`` ranges.

    Sampling is uniform over the *set of distinct ranges* (matching the
    all-ranges SSE in expectation), not over independent endpoint pairs.
    """
    n = _check_n(n)
    if count < 1:
        raise InvalidParameterError(f"count must be >= 1, got {count}")
    rng = np.random.default_rng(seed)
    total = n * (n + 1) // 2
    flat = rng.integers(0, total, size=count)
    # Invert the triangular enumeration: range id = low * n - low(low-1)/2 + (high - low).
    lows = np.empty(count, dtype=np.int64)
    highs = np.empty(count, dtype=np.int64)
    # Vectorised inversion via the quadratic formula on the row offsets.
    # Row `a` starts at offset f(a) = a*n - a*(a-1)/2 and has n-a entries.
    a = np.floor((2 * n + 1 - np.sqrt((2 * n + 1) ** 2 - 8.0 * flat)) / 2.0).astype(np.int64)
    # Guard boundary rounding of the float square root.
    def row_start(row):
        return row * n - row * (row - 1) // 2

    a = np.clip(a, 0, n - 1)
    too_big = row_start(a) > flat
    a[too_big] -= 1
    too_small = row_start(a + 1) <= flat
    a[too_small] += 1
    lows[:] = a
    highs[:] = a + (flat - row_start(a))
    return Workload(n=n, lows=lows, highs=highs)


def biased_ranges(n: int, count: int, seed: int | None = None, short_bias: float = 2.0) -> Workload:
    """Ranges whose lengths follow a power-law favouring short ranges.

    Realistic query logs hit short ranges far more often than long ones;
    ``short_bias`` is the decay exponent of ``P(length = L) ∝ L^-bias``.
    """
    n = _check_n(n)
    if count < 1:
        raise InvalidParameterError(f"count must be >= 1, got {count}")
    rng = np.random.default_rng(seed)
    lengths = np.arange(1, n + 1, dtype=np.float64)
    probs = lengths ** (-float(short_bias))
    probs /= probs.sum()
    chosen = rng.choice(np.arange(1, n + 1), size=count, p=probs)
    lows = np.array([rng.integers(0, n - L + 1) for L in chosen], dtype=np.int64)
    return Workload(n=n, lows=lows, highs=lows + chosen - 1)
