"""The serve plane: concurrent, coalescing, cache-backed query serving.

Splits answering queries (this package) from building and maintaining
synopses (:mod:`repro.engine`).  :class:`QueryServer` is the front
door; the pieces compose and are usable on their own:

* :class:`CatalogView` — read-only window into an engine's catalog,
  home of the :meth:`~CatalogView.answer_token` consistency tokens.
* :class:`AnswerCache` — token-validated, stage-aware LRU of query
  answers that can never serve a pre-mutation answer after
  ``append_rows`` and never regresses a refined interval to a coarser
  one.
* :class:`RequestCoalescer` — size/age-triggered batching of pending
  requests onto the engine's vectorised ``execute_batch`` path.
* :class:`QueryServer` — worker thread, admission control, and the
  overload shed ladder tying the above together.
* :mod:`repro.serving.progressive` — anytime answers:
  :class:`RefinementSession` (the synchronous interval-tightening
  machine), :class:`Refiner` (its background driver), and
  :class:`ProgressiveHandle` (the caller's streaming view).
"""

from repro.serving.answer_cache import AnswerCache, cache_key
from repro.serving.catalog import CatalogView
from repro.serving.coalescer import PendingRequest, RequestCoalescer
from repro.serving.progressive import (
    STAGES,
    IntervalAnswer,
    ProgressiveHandle,
    Refiner,
    RefinementSession,
)
from repro.serving.server import QueryServer

__all__ = [
    "AnswerCache",
    "CatalogView",
    "IntervalAnswer",
    "PendingRequest",
    "ProgressiveHandle",
    "QueryServer",
    "Refiner",
    "RefinementSession",
    "RequestCoalescer",
    "STAGES",
    "cache_key",
]
