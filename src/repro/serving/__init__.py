"""The serve plane: concurrent, coalescing, cache-backed query serving.

Splits answering queries (this package) from building and maintaining
synopses (:mod:`repro.engine`).  :class:`QueryServer` is the front
door; the pieces compose and are usable on their own:

* :class:`CatalogView` — read-only window into an engine's catalog,
  home of the :meth:`~CatalogView.answer_token` consistency tokens.
* :class:`AnswerCache` — token-validated, stage-aware LRU of query
  answers that can never serve a pre-mutation answer after
  ``append_rows`` and never regresses a refined interval to a coarser
  one.
* :class:`RequestCoalescer` — size/age-triggered batching of pending
  requests onto the engine's vectorised ``execute_batch`` path.
* :class:`QueryServer` — worker thread, admission control, and the
  overload shed ladder tying the above together.
* :mod:`repro.serving.progressive` — anytime answers:
  :class:`RefinementSession` (the synchronous interval-tightening
  machine), :class:`Refiner` (its background driver), and
  :class:`ProgressiveHandle` (the caller's streaming view).
* :mod:`repro.serving.pool` — the multi-process tier:
  :class:`SharedCatalog` publishes catalog epochs into shared memory,
  :class:`WorkerSupervisor` is the pure liveness state machine, and
  :class:`PoolServer` runs N supervised worker processes behind the
  same coalescing front door.
"""

from repro.serving.answer_cache import AnswerCache, cache_key
from repro.serving.catalog import CatalogView
from repro.serving.coalescer import PendingRequest, RequestCoalescer
from repro.serving.pool import PoolServer
from repro.serving.progressive import (
    STAGES,
    IntervalAnswer,
    ProgressiveHandle,
    Refiner,
    RefinementSession,
)
from repro.serving.server import QueryServer
from repro.serving.shared_catalog import (
    AttachedCatalog,
    CatalogEpoch,
    SharedCatalog,
    attach_catalog,
    catalog_digest,
)
from repro.serving.supervisor import SupervisorAction, WorkerSupervisor

__all__ = [
    "AnswerCache",
    "AttachedCatalog",
    "CatalogEpoch",
    "CatalogView",
    "IntervalAnswer",
    "PendingRequest",
    "PoolServer",
    "ProgressiveHandle",
    "QueryServer",
    "Refiner",
    "RefinementSession",
    "RequestCoalescer",
    "STAGES",
    "SharedCatalog",
    "SupervisorAction",
    "WorkerSupervisor",
    "attach_catalog",
    "cache_key",
    "catalog_digest",
]
