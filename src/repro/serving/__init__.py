"""The serve plane: concurrent, coalescing, cache-backed query serving.

Splits answering queries (this package) from building and maintaining
synopses (:mod:`repro.engine`).  :class:`QueryServer` is the front
door; the pieces compose and are usable on their own:

* :class:`CatalogView` — read-only window into an engine's catalog,
  home of the :meth:`~CatalogView.answer_token` consistency tokens.
* :class:`AnswerCache` — token-validated LRU of query answers that can
  never serve a pre-mutation answer after ``append_rows``.
* :class:`RequestCoalescer` — size/age-triggered batching of pending
  requests onto the engine's vectorised ``execute_batch`` path.
* :class:`QueryServer` — worker thread, admission control, and the
  overload shed ladder tying the above together.
"""

from repro.serving.answer_cache import AnswerCache, cache_key
from repro.serving.catalog import CatalogView
from repro.serving.coalescer import PendingRequest, RequestCoalescer
from repro.serving.server import QueryServer

__all__ = [
    "AnswerCache",
    "CatalogView",
    "PendingRequest",
    "QueryServer",
    "RequestCoalescer",
    "cache_key",
]
