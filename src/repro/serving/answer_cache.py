"""Staleness-aware answer cache for range-aggregate queries.

The paper's estimators are already O(1) per query, but a production
serve path still pays python dispatch, clipping, and tracing per
answer; repeated dashboard queries are better served straight from a
dict.  The catch is consistency: a cached answer must die the moment
``append_rows`` (or a rebuild, or a drift-driven ``mark_stale``) could
change it.

This cache solves that with *validation tokens* instead of push
invalidation: every entry stores the
:meth:`~repro.serving.catalog.CatalogView.answer_token` that was
current **before** its answer was computed, and a lookup only hits when
the stored token equals the current one.  Because every engine-side
mutation (append, register, build, shard refresh, staleness
transition) changes the token, an entry recorded under an older state
can never validate — even if the mutation raced the answer's
computation.  Outdated entries stay resident (feeding the overload
path's explicitly-tagged stale answers) until overwritten or aged out.

Entries additionally carry an optional *stage rank* for progressive
answers (:mod:`repro.serving.progressive`): a refinement stage may
upgrade a cached coarser interval for the same token but a late or
re-ordered coarse stage can never overwrite a finer one — refinement
is monotone in the cache exactly as it is on the wire.

Entries are kept in LRU order under a single lock; capacity eviction
drops the least recently used.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.errors import InvalidParameterError


def cache_key(query) -> tuple:
    """The canonical cache key of one aggregate query.

    Open bounds are normalised to infinities so ``low=None`` and an
    explicit out-of-domain bound that clips identically still share an
    entry only when they are literally the same query shape.
    """
    return (
        query.table,
        query.column,
        query.aggregate,
        float("-inf") if query.low is None else float(query.low),
        float("inf") if query.high is None else float(query.high),
    )


class AnswerCache:
    """Token-validated, stage-aware LRU cache of query answers.

    Each entry is ``(token, stage_rank, result)``; ``stage_rank`` is
    ``None`` for ordinary point answers (which always overwrite) and a
    :data:`repro.serving.progressive.STAGE_RANK` value for progressive
    interval answers, enforcing the never-regress rule per token.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise InvalidParameterError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, tuple[tuple, int | None, object]] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.invalidated = 0
        self.evictions = 0
        self.regressions_blocked = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple, token: tuple):
        """The cached answer for ``key`` if it validates, else ``None``.

        An entry whose stored token differs from ``token`` was recorded
        under an older catalog state and must never be served as fresh:
        the lookup misses (counted in ``invalidated``).  The entry is
        deliberately *left in place* — versions and build ids only go
        up, so an outdated token can never validate again, and keeping
        the answer lets the overload path (:meth:`get_even_stale`)
        serve it explicitly tagged stale.  It is overwritten by the
        recomputed answer's :meth:`put` or aged out by the LRU.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            stored_token, _, result = entry
            if stored_token != token:
                self.invalidated += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    def get_many(self, keys: list, tokens: list) -> list:
        """Vector form of :meth:`get`: one lock round for a whole batch.

        Returns a list parallel to ``keys`` whose entries are the cached
        answer or ``None``, with identical validation and accounting.
        """
        with self._lock:
            results = []
            for key, token in zip(keys, tokens):
                entry = self._entries.get(key)
                if entry is None:
                    self.misses += 1
                    results.append(None)
                    continue
                stored_token, _, result = entry
                if stored_token != token:
                    self.invalidated += 1
                    self.misses += 1
                    results.append(None)
                    continue
                self._entries.move_to_end(key)
                self.hits += 1
                results.append(result)
            return results

    def get_even_stale(self, key: tuple):
        """The cached answer regardless of token validity, or ``None``.

        The overload-shedding path uses this: under admission control a
        policy that admits the ``stale`` rung may serve a possibly
        outdated answer *explicitly tagged as stale* rather than queue
        without bound.  The entry is left in place (it keeps absorbing
        shed load until capacity or an on-path lookup evicts it) and is
        never counted as a hit.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            return entry[2]

    def stage_rank(self, key: tuple) -> int | None:
        """The stored refinement stage rank of an entry (``None`` for
        point answers or missing keys)."""
        with self._lock:
            entry = self._entries.get(key)
            return None if entry is None else entry[1]

    def _store(self, key: tuple, token: tuple, stage_rank, result) -> None:
        """Insert under the never-regress rule (caller holds the lock).

        A ranked write only replaces a ranked entry *with the same
        token* when its stage is at least as refined; everything else
        (unranked writes, token changes, upgrades) overwrites.
        """
        entry = self._entries.get(key)
        if (
            entry is not None
            and stage_rank is not None
            and entry[1] is not None
            and entry[0] == token
            and stage_rank < entry[1]
        ):
            self.regressions_blocked += 1
            self._entries.move_to_end(key)
            return
        self._entries[key] = (token, stage_rank, result)
        self._entries.move_to_end(key)

    def put(self, key: tuple, token: tuple, result, stage_rank: int | None = None) -> None:
        """Record an answer computed under ``token`` (read pre-compute).

        ``stage_rank`` marks progressive interval answers; for the same
        token a coarser stage never overwrites a finer one (the write is
        dropped and counted in ``regressions_blocked``), so a slow
        stage-0 publish racing a finished refinement cannot regress the
        cache.
        """
        with self._lock:
            self._store(key, token, stage_rank, result)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def put_many(self, entries: list) -> None:
        """Record ``(key, token, result[, stage_rank])`` tuples under one
        lock round; the three-element form stores an unranked answer."""
        with self._lock:
            for entry in entries:
                key, token, result = entry[0], entry[1], entry[2]
                stage_rank = entry[3] if len(entry) > 3 else None
                self._store(key, token, stage_rank, result)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate_table(self, table_name: str) -> int:
        """Eagerly drop every entry of one table; returns the count.

        Token validation already guarantees correctness without this;
        eager invalidation just reclaims capacity promptly after bulk
        mutations.
        """
        with self._lock:
            doomed = [key for key in self._entries if key[0] == table_name]
            for key in doomed:
                del self._entries[key]
            self.invalidated += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "invalidated": self.invalidated,
                "evictions": self.evictions,
                "regressions_blocked": self.regressions_blocked,
            }
