"""Read-only catalog view — the serve plane's only window into the engine.

The serving tier must never mutate the catalog: builds, appends, and
refreshes belong to the build plane (:mod:`repro.engine.engine`), while
the server only *answers*.  :class:`CatalogView` encodes that split as
an object capability: it wraps an engine but exposes nothing that can
change it, so handing a ``CatalogView`` to the cache, the coalescer, or
an operator dashboard cannot corrupt the catalog.

It is also where cache consistency lives.  :meth:`answer_token`
condenses everything that could change a (table, column)'s answers into
one comparable value:

* the table's **data version** (bumped by ``register_table`` and
  ``append_rows``),
* the synopsis's **build id** (bumped by every build/rebuild, including
  incremental dirty-shard refreshes),
* the **staleness flag** (set by appends and by drift-driven
  ``error_report(mark_stale=True)``; the dirty-shard set rides on it).

Two equal tokens guarantee the engine would produce the same answer; a
token read *before* computing an answer therefore certifies that answer
for exactly as long as the token validates.  This is pull-based
invalidation — no event subscription, no missed callbacks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidQueryError


class CatalogView:
    """Thin read-only facade over an :class:`ApproximateQueryEngine`.

    The view deliberately reaches into the engine's private catalog
    state (it is the one blessed friend of the engine); everything it
    returns is a copy or an immutable value.
    """

    def __init__(self, engine) -> None:
        self._engine = engine

    # -- catalog shape -------------------------------------------------
    def table_names(self) -> list[str]:
        return sorted(self._engine._tables)

    def column_names(self, table_name: str) -> list[str]:
        return list(self._engine.table(table_name).column_names())

    def has_table(self, table_name: str) -> bool:
        return table_name in self._engine._tables

    def has_synopsis(self, table_name: str, column_name: str) -> bool:
        return (table_name, column_name) in self._engine._synopses

    def synopsis_catalog(self) -> list[dict]:
        return self._engine.synopsis_catalog()

    # -- staleness -----------------------------------------------------
    def is_stale(self, table_name: str, column_name: str) -> bool:
        return (table_name, column_name) in self._engine._stale

    def stale_synopses(self) -> list[tuple[str, str]]:
        return self._engine.stale_synopses()

    def dirty_shards(self) -> dict[str, list[int] | None]:
        return self._engine.dirty_shards()

    # -- cache consistency ---------------------------------------------
    def table_version(self, table_name: str) -> int:
        return self._engine.table_version(table_name)

    def answer_token(self, table_name: str, column_name: str) -> tuple:
        """The consistency token certifying answers for one column.

        Any engine-side change that could alter an answer — appended or
        replaced data, a (re)build, a staleness transition — changes the
        token.  Cached answers store the token that was current *before*
        they were computed and are served only while it still matches.
        """
        key = (table_name, column_name)
        meta = self._engine._build_meta.get(key)
        return (
            self._engine.table_version(table_name),
            meta.get("build_id", 0) if meta is not None else 0,
            key in self._engine._stale,
            key in self._engine._quarantined,
        )

    # -- degraded answering (synopsis-free rungs) ----------------------
    def fallback_estimate(self, query) -> float:
        """O(1) uniform-model answer — the ladder's ``fallback`` rung.

        Raises :class:`~repro.errors.InvalidQueryError` for unknown
        tables/columns, exactly like the engine proper: admission
        control may shed load, but never invents columns.
        """
        if not self.has_table(query.table):
            raise InvalidQueryError(
                f"unknown table {query.table!r}; registered: {self.table_names()}"
            )
        low = query.low if query.low is not None else -np.inf
        high = query.high if query.high is not None else np.inf
        return float(
            self._engine._fallback_estimate_many(
                query.table,
                query.column,
                query.aggregate,
                np.asarray([low]),
                np.asarray([high]),
            )[0]
        )

    # -- observability passthrough -------------------------------------
    @property
    def metrics(self):
        return self._engine.metrics

    @property
    def tracer(self):
        return self._engine.tracer

    def observability_snapshot(self) -> dict:
        return self._engine.observability_snapshot()
