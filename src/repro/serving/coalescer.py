"""Request coalescing — turning concurrent trickle into vectorised batches.

The engine's ``execute_batch`` answers a thousand range aggregates in a
handful of vectorised ``estimate_many`` calls, but concurrent clients
submit one query at a time.  The coalescer bridges the two: requests
accumulate in an ordered pending list, and a batch is released as soon
as either

* **size** — ``max_batch`` requests are waiting (a full vector is the
  cheapest thing the engine can do), or
* **age** — the oldest waiting request has been queued for
  ``max_delay_seconds`` (bounding the latency a lone query pays for the
  chance of sharing a batch).

The policy mirrors group-commit in storage engines: under load batches
fill instantly and the delay never triggers; when idle a query waits at
most one delay window.  All decisions are O(1) and the structure is
thread-safe; blocking waits ride a condition variable so the server's
worker sleeps exactly until there is something to flush.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import InvalidParameterError


class ServeFuture:
    """A slim future sized for tens of thousands of requests per second.

    :class:`concurrent.futures.Future` allocates a fresh
    ``Condition`` (and its ``RLock``) per instance — roughly 5 us each,
    which dominated the serve path when every query carries a future.
    ``ServeFuture`` instances instead share one class-level condition:
    construction is three attribute stores, a resolved future's
    ``result()`` is one attribute check, and a whole batch resolves
    under a single lock round via :meth:`resolve_batch`.

    The API is the useful subset of the stdlib future — ``result``,
    ``exception``, ``done``, ``set_result``, ``set_exception`` — with
    identical semantics (``result`` re-raises a stored exception and
    honours ``timeout``).
    """

    __slots__ = ("_result", "_exception", "_done")

    _cond = threading.Condition()

    def __init__(self) -> None:
        self._result = None
        self._exception = None
        self._done = False

    @classmethod
    def resolved(cls, result) -> "ServeFuture":
        """A future born completed (cache hits, shed answers)."""
        future = cls()
        future._result = result
        future._done = True
        return future

    def done(self) -> bool:
        return self._done

    def set_result(self, result) -> None:
        with ServeFuture._cond:
            self._result = result
            self._done = True
            ServeFuture._cond.notify_all()

    def set_exception(self, exception: BaseException) -> None:
        with ServeFuture._cond:
            self._exception = exception
            self._done = True
            ServeFuture._cond.notify_all()

    @classmethod
    def resolve_batch(cls, pairs) -> None:
        """Complete many ``(future, result)`` pairs, one lock, one wake."""
        with cls._cond:
            for future, result in pairs:
                future._result = result
                future._done = True
            cls._cond.notify_all()

    def result(self, timeout: float | None = None):
        if not self._done:
            with ServeFuture._cond:
                if not ServeFuture._cond.wait_for(lambda: self._done, timeout):
                    raise TimeoutError("request not answered within timeout")
        if self._exception is not None:
            raise self._exception
        return self._result

    def exception(self, timeout: float | None = None):
        if not self._done:
            with ServeFuture._cond:
                if not ServeFuture._cond.wait_for(lambda: self._done, timeout):
                    raise TimeoutError("request not answered within timeout")
        return self._exception


@dataclass
class PendingRequest:
    """One enqueued query awaiting its batch."""

    query: object
    future: ServeFuture = field(default_factory=ServeFuture)
    enqueued_at: float = 0.0
    #: Consistency token read at admission (pre-compute), stored so the
    #: flusher caches the eventual answer under the pre-answer state.
    token: tuple = ()
    cache_key: tuple = ()


class RequestCoalescer:
    """Accumulates pending requests and decides when to flush.

    ``clock`` is injectable (monotonic seconds) so the size/timeout
    policy is unit-testable without real sleeps.
    """

    def __init__(
        self,
        *,
        max_batch: int = 512,
        max_delay_seconds: float = 0.002,
        clock=time.monotonic,
    ) -> None:
        if max_batch < 1:
            raise InvalidParameterError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_seconds < 0:
            raise InvalidParameterError(
                f"max_delay_seconds must be >= 0, got {max_delay_seconds}"
            )
        self.max_batch = int(max_batch)
        self.max_delay_seconds = float(max_delay_seconds)
        self._clock = clock
        self._cond = threading.Condition()
        self._pending: list[PendingRequest] = []

    def __len__(self) -> int:
        return len(self._pending)

    def add(self, request: PendingRequest) -> int:
        """Enqueue one request; returns the new queue depth."""
        with self._cond:
            request.enqueued_at = self._clock()
            self._pending.append(request)
            self._cond.notify()
            return len(self._pending)

    def add_many(self, requests: list[PendingRequest]) -> int:
        """Enqueue several requests under one lock acquisition."""
        with self._cond:
            now = self._clock()
            for request in requests:
                request.enqueued_at = now
            self._pending.extend(requests)
            self._cond.notify()
            return len(self._pending)

    def oldest_age_seconds(self) -> float:
        """How long the oldest pending request has waited (0.0 when empty).

        Admission control uses it to derive ``retry_after_ms`` hints:
        the oldest request must flush within
        ``max_delay_seconds - oldest_age_seconds()``, and a drained
        queue is what reopens admission.
        """
        with self._cond:
            if not self._pending:
                return 0.0
            return max(0.0, self._clock() - self._pending[0].enqueued_at)

    def flush_due(self) -> bool:
        """Is a batch releasable right now (size or age trigger)?"""
        with self._cond:
            return self._due_locked()

    def _due_locked(self) -> bool:
        if not self._pending:
            return False
        if len(self._pending) >= self.max_batch:
            return True
        age = self._clock() - self._pending[0].enqueued_at
        return age >= self.max_delay_seconds

    def drain(self) -> list[PendingRequest]:
        """Take up to ``max_batch`` requests off the queue (oldest first)."""
        with self._cond:
            batch = self._pending[: self.max_batch]
            del self._pending[: len(batch)]
            return batch

    def drain_all(self) -> list[PendingRequest]:
        """Take *everything* — used at shutdown so no future is orphaned."""
        with self._cond:
            batch = self._pending
            self._pending = []
            return batch

    def next_batch(self, stop: threading.Event) -> list[PendingRequest]:
        """Block until a batch is due (or ``stop`` is set), then drain it.

        Returns an empty list only when stopping with nothing pending.
        The wait is precise: with pending requests the worker sleeps
        until the oldest one's delay deadline; idle it sleeps in short
        slices so a ``stop`` is honoured promptly even under injected
        clock skew.
        """
        with self._cond:
            while not stop.is_set():
                if self._pending:
                    if len(self._pending) >= self.max_batch:
                        break
                    deadline = (
                        self._pending[0].enqueued_at + self.max_delay_seconds
                    )
                    remaining = deadline - self._clock()
                    if remaining <= 0:
                        break
                    self._cond.wait(min(remaining, 0.05))
                else:
                    self._cond.wait(0.05)
            batch = self._pending[: self.max_batch]
            del self._pending[: len(batch)]
            return batch

    def wake(self) -> None:
        """Nudge a blocked :meth:`next_batch` (used on shutdown)."""
        with self._cond:
            self._cond.notify_all()
