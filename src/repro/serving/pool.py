"""Supervised multi-process serving pool over a shared read-only catalog.

:class:`PoolServer` scales the serve plane across *processes*: N worker
processes each hold a private engine decoded from one shared-memory
catalog snapshot (:mod:`repro.serving.shared_catalog` — no engine
pickling, no per-worker rebuild), and the parent keeps the pieces the
single-process :class:`~repro.serving.server.QueryServer` already
proved out — the coalescer, the token-validated answer cache, and the
shed ladder.  The parent's dispatcher hands each coalesced batch to one
worker over a private pipe pair; a collector thread merges results,
heartbeats, and process exits.

The headline is the robustness layer, not the fan-out:

* **Supervision** — a :class:`~repro.serving.supervisor.WorkerSupervisor`
  tracks per-slot heartbeats; silent workers are declared wedged and
  SIGKILLed, dead workers restart with jittered exponential backoff,
  and a crash-looping slot's circuit breaker parks it for a cool-down
  instead of burning CPU.
* **Per-request deadlines** — every batch carries a deadline; a batch
  stranded on a killed worker is retried on a surviving one, and a
  batch that cannot complete in time degrades through the shed ladder
  (*explicitly* — never a silent wrong answer, never a hang).  Optional
  hedging duplicates a slow batch onto an idle worker and takes the
  first answer.
* **Epoch swaps** — :meth:`PoolServer.republish` publishes the current
  engine state as a new shared segment; workers roll over between
  batches without dropping requests.  Every worker answer is
  revalidated against the *admission-time* token before being served
  fresh: a request admitted after a catalog mutation can never receive
  a pre-mutation answer (it is retagged stale or recomputed instead).
* **Graceful drain** — :meth:`PoolServer.drain` stops intake, lets
  in-flight batches finish (re-queueing those stranded on dead
  workers), then stops workers; a drain that exceeds its budget
  force-kills survivors and reports itself unclean (the CLI maps that
  to a distinct exit code).

Consistency contract.  Workers answer from an immutable snapshot, so a
worker answer equals the single-process engine's answer for the same
snapshot bit-for-bit (the estimators are deterministic).  The parent
serves a worker answer as ``fresh``/``stale`` only when the column's
frozen publish-time token equals the token read at admission; on any
mismatch (append, rebuild, or swap raced the request) the answer is
recomputed on the parent's live engine under the server's degradation
policy.  Cache entries are written only for token-matched answers, so
the cache inherits the single-process proof: no pre-mutation answer is
ever served after the mutation.

Policy contract.  A worker engine holds only synopses (no base
tables), so it serves exactly the ladder rungs a frozen snapshot can
honestly provide: ``fresh`` always, ``stale`` only when the server's
:class:`~repro.engine.resilience.DegradationPolicy` allows it.  Every
other case — missing synopsis, stale under a stale-forbidding policy —
is *deferred* to the parent, whose live engine runs the full ladder
(fallback, progressive, exact) with the same semantics as
:class:`~repro.serving.server.QueryServer`.  ``audit_rate`` likewise
applies on the parent's recompute path only: worker answers come from
the frozen snapshot whose build-time error predictions already cover
them, and a worker-side audit would feed an auditor that dies with the
worker process.

Liveness contract.  Workers answer big coalesced batches in chunks and
heartbeat between chunks, so a legitimately heavy batch is never
mistaken for a wedged worker; only silence longer than
``hang_timeout_ms`` with no chunk progress draws a SIGKILL.  On the
parent, the collector thread — the only thread servicing results,
exits, deadlines, and hedges — survives unexpected exceptions by
counting and skipping the failed pass; if it fails many passes in a
row it resolves every open flight through the shed ladder and marks
the pool unhealthy (``stats()["pool"]["collector_failed"]``) instead
of leaving callers blocked.

Fault sites (chaos suite): ``worker_batch`` (kill → SIGKILL mid-batch,
slow → wedged worker), ``worker_heartbeat`` (fail → heartbeat
silence), ``shared_attach`` (corrupt → torn attach).  Forked workers
inherit the installed :class:`~repro.internal.faults.FaultInjector`,
and rules match on the worker's ``generation`` so a crashed worker's
replacement survives.
"""

from __future__ import annotations

import collections
import os
import random
import signal
import threading
import time
from dataclasses import dataclass, field

import multiprocessing
from multiprocessing import connection

from repro.engine.engine import AggregateQuery, QueryResult
from repro.errors import (
    FaultInjectedError,
    InvalidParameterError,
    ServerClosedError,
)
from repro.internal.faults import fault_point
from repro.serving.coalescer import PendingRequest, ServeFuture
from repro.serving.server import QueryServer
from repro.serving.shared_catalog import SharedCatalog, attach_catalog
from repro.serving.supervisor import (
    ACTION_KILL,
    ACTION_SPAWN,
    WorkerSupervisor,
)

#: Worker exit codes (positive, distinct from signal deaths < 0).
EXIT_OK = 0
EXIT_ATTACH_FAILED = 3

_POLL_SECONDS = 0.05

#: Queries answered per worker chunk.  A coalesced batch is answered in
#: chunks with a heartbeat between them, so a legitimately heavy batch
#: keeps proving liveness instead of tripping the supervisor's hang
#: detection — only a worker stuck *inside* one chunk goes silent long
#: enough to be declared wedged.  Large enough that the vectorised
#: ``estimate_many`` path still amortises per-call overhead.
_CHUNK_QUERIES = 64

#: Consecutive collector-loop failures tolerated before the pool gives
#: up on the collector, fails every open flight through the shed
#: ladder, and marks itself unhealthy (``stats()["pool"]
#: ["collector_failed"]``).  Transient errors just skip one pass.
_COLLECTOR_FAILURE_LIMIT = 25


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _send_heartbeat(result_w, slot: int, generation: int) -> bool:
    """Emit one heartbeat; injected faults silence it (never crash)."""
    try:
        fault_point("worker_heartbeat", worker=slot, generation=generation)
    except FaultInjectedError:
        return False
    try:
        result_w.send(("hb", slot, generation))
    except OSError:
        os._exit(EXIT_OK)
    return True


def _answer_specs(engine, specs: list, serve_stale: bool) -> list:
    """Answer one chunk of plain-tuple query specs against ``engine``.

    Returns parallel plain tuples — ``("ok", estimate, name, words,
    degradation)``, ``("defer", reason)``, or ``("err", exc_type_name,
    message)`` — so nothing engine-shaped ever crosses the pipe.

    The worker engine holds *only* the snapshot's synopses (no base
    tables), so it can serve exactly two rungs of the server's
    degradation ladder: ``fresh``, and ``stale`` when the policy admits
    it (``serve_stale`` is the parent policy's ``allow_stale``
    projection).  Everything else — missing synopsis, stale under a
    stale-forbidding policy — is returned as ``("defer", ...)`` and the
    parent answers it on its live engine under the full ladder, which
    is what keeps :class:`PoolServer` semantics identical to
    :class:`~repro.serving.server.QueryServer` instead of silently
    serving stale under every policy.  A whole-chunk failure falls back
    to per-query answering so one malformed query cannot poison its
    batchmates.
    """
    queries = [
        AggregateQuery(
            table=table, column=column, aggregate=aggregate, low=low, high=high
        )
        for table, column, aggregate, low, high in specs
    ]
    answers: list = [None] * len(queries)
    answerable = []
    for index, query in enumerate(queries):
        key = (query.table, query.column)
        if key not in engine._synopses:  # noqa: SLF001 — snapshot introspection
            answers[index] = ("defer", "no synopsis in snapshot")
        elif key in engine._stale and not serve_stale:  # noqa: SLF001
            answers[index] = ("defer", "stale synopsis; policy forbids stale")
        else:
            answerable.append(index)
    if not answerable:
        return answers
    subset = [queries[index] for index in answerable]
    try:
        results = engine.execute_batch(subset, on_stale="serve")
    except Exception:  # noqa: BLE001 — isolate per query below
        results = None
    if results is not None:
        for index, result in zip(answerable, results):
            answers[index] = (
                "ok",
                result.estimate,
                result.synopsis_name,
                result.synopsis_words,
                result.degradation,
            )
        return answers
    for index in answerable:
        try:
            result = engine.execute(queries[index], on_stale="serve")
            answers[index] = (
                "ok",
                result.estimate,
                result.synopsis_name,
                result.synopsis_words,
                result.degradation,
            )
        except Exception as error:  # noqa: BLE001 — per-query isolation
            answers[index] = ("err", type(error).__name__, str(error))
    return answers


def _answer_batch(engine, specs: list, serve_stale: bool, heartbeat) -> list:
    """Answer one coalesced batch in chunks, heartbeating between them.

    ``heartbeat`` is called after every chunk but the last, so a large
    batch emits liveness at a bounded interval (one chunk's compute
    time) instead of going silent for the whole batch and being
    mistaken for a wedged worker.
    """
    answers: list = []
    for start in range(0, len(specs), _CHUNK_QUERIES):
        answers.extend(
            _answer_specs(engine, specs[start : start + _CHUNK_QUERIES], serve_stale)
        )
        if start + _CHUNK_QUERIES < len(specs):
            heartbeat()
    return answers


def _mark_stale(engine, stale_keys) -> None:
    """Restore publish-time staleness onto an attached snapshot engine.

    Monolithic staleness is a session property the persistence format
    drops, so the parent ships the stale key set alongside the segment;
    without it a worker would tag stale answers ``fresh`` (and serve
    them under stale-forbidding policies).
    """
    for key in stale_keys:
        engine._stale.add(tuple(key))  # noqa: SLF001 — snapshot restore


def _worker_main(
    slot: int,
    generation: int,
    segment_name: str,
    stale_keys: tuple,
    task_r,
    result_w,
    heartbeat_seconds: float,
    serve_stale: bool,
) -> None:
    """Worker process body: attach the shared catalog, answer batches.

    Exits via ``os._exit`` everywhere — a worker must never run the
    parent's (inherited, forked) atexit/finalizer state.
    """
    try:
        attached = attach_catalog(segment_name, worker=slot, generation=generation)
    except Exception as error:  # noqa: BLE001 — report, then die
        try:
            result_w.send(
                ("attach_error", slot, generation, f"{type(error).__name__}: {error}")
            )
        except OSError:
            pass
        os._exit(EXIT_ATTACH_FAILED)
    engine = attached.engine
    _mark_stale(engine, stale_keys)
    epoch = attached.epoch
    try:
        result_w.send(("attached", slot, generation, epoch, attached.restored))
    except OSError:
        os._exit(EXIT_OK)
    _send_heartbeat(result_w, slot, generation)
    last_heartbeat = time.monotonic()
    sequence = 0
    while True:
        try:
            ready = task_r.poll(heartbeat_seconds)
        except OSError:
            os._exit(EXIT_OK)
        now = time.monotonic()
        if now - last_heartbeat >= heartbeat_seconds:
            _send_heartbeat(result_w, slot, generation)
            last_heartbeat = now
        if not ready:
            continue
        try:
            message = task_r.recv()
        except (EOFError, OSError):
            os._exit(EXIT_OK)
        kind = message[0]
        if kind == "stop":
            try:
                result_w.send(("bye", slot, generation))
            except OSError:
                pass
            os._exit(EXIT_OK)
        elif kind == "swap":
            new_segment = message[1]
            new_stale_keys = message[2] if len(message) > 2 else ()
            try:
                attached = attach_catalog(
                    new_segment, worker=slot, generation=generation
                )
            except Exception as error:  # noqa: BLE001 — report, then die
                try:
                    result_w.send(
                        (
                            "attach_error",
                            slot,
                            generation,
                            f"{type(error).__name__}: {error}",
                        )
                    )
                except OSError:
                    pass
                os._exit(EXIT_ATTACH_FAILED)
            engine = attached.engine
            _mark_stale(engine, new_stale_keys)
            epoch = attached.epoch
            try:
                result_w.send(("swapped", slot, generation, epoch))
            except OSError:
                os._exit(EXIT_OK)
        elif kind == "batch":
            batch_id, specs = message[1], message[2]
            sequence += 1
            # The chaos hook: "kill" rules SIGKILL-equivalent the worker
            # mid-batch, "slow" rules wedge it past the hang timeout.
            try:
                fault_point(
                    "worker_batch",
                    worker=slot,
                    generation=generation,
                    seq=sequence,
                )
                answers = _answer_batch(
                    engine,
                    specs,
                    serve_stale,
                    lambda: _send_heartbeat(result_w, slot, generation),
                )
            except FaultInjectedError as error:
                answers = [("err", type(error).__name__, str(error))] * len(specs)
            try:
                result_w.send(("result", batch_id, epoch, answers))
            except OSError:
                os._exit(EXIT_OK)
            last_heartbeat = time.monotonic()
            _send_heartbeat(result_w, slot, generation)


# ----------------------------------------------------------------------
# Parent-side bookkeeping
# ----------------------------------------------------------------------
@dataclass
class _WorkerHandle:
    slot: int
    generation: int
    process: object
    task_w: object
    result_r: object
    epoch: int | None = None
    busy: int | None = None  # batch_id currently assigned, if any
    reaped: bool = False


@dataclass
class _Flight:
    """One coalesced batch moving through the pool."""

    flight_id: int
    requests: list
    specs: list
    deadline: float | None
    created_at: float
    attempts: int = 0
    hedged: bool = False
    done: bool = False
    #: batch_id -> slot for every dispatch of this flight still alive.
    dispatches: dict = field(default_factory=dict)


class PoolServer(QueryServer):
    """Multi-process :class:`QueryServer`: same front door, N engines.

    Construction does not touch processes; :meth:`start` publishes the
    catalog snapshot, spawns the workers, and starts the dispatcher and
    collector threads.  All :class:`QueryServer` knobs apply; the pool
    adds supervision, deadline, and hedging knobs.
    """

    def __init__(
        self,
        engine,
        *,
        workers: int = 2,
        heartbeat_interval_ms: float = 50.0,
        heartbeat_timeout_ms: float = 500.0,
        hang_timeout_ms: float = 2000.0,
        deadline_ms: float | None = 5000.0,
        hedge_ms: float | None = None,
        max_retries: int = 2,
        drain_timeout_ms: float = 5000.0,
        restart_backoff_ms: float = 50.0,
        restart_backoff_max_ms: float = 2000.0,
        worker_breaker_threshold: int = 5,
        worker_breaker_cooldown_ms: float = 30000.0,
        supervisor_seed: int | None = None,
        mp_context: str | None = None,
        **server_kwargs,
    ) -> None:
        super().__init__(engine, **server_kwargs)
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        if deadline_ms is not None and deadline_ms <= 0:
            raise InvalidParameterError(
                f"deadline_ms must be > 0 or None, got {deadline_ms}"
            )
        if hedge_ms is not None and hedge_ms <= 0:
            raise InvalidParameterError(
                f"hedge_ms must be > 0 or None, got {hedge_ms}"
            )
        if max_retries < 0:
            raise InvalidParameterError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        self.workers = int(workers)
        self.heartbeat_interval_seconds = heartbeat_interval_ms / 1000.0
        self.deadline_seconds = (
            deadline_ms / 1000.0 if deadline_ms is not None else None
        )
        self.hedge_seconds = hedge_ms / 1000.0 if hedge_ms is not None else None
        self.max_retries = int(max_retries)
        self.drain_timeout_ms = float(drain_timeout_ms)
        self._mp = multiprocessing.get_context(
            mp_context
            if mp_context is not None
            else ("fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn")
        )
        self._supervisor_seed = supervisor_seed
        self._supervisor_kwargs = dict(
            heartbeat_timeout_seconds=heartbeat_timeout_ms / 1000.0,
            hang_timeout_seconds=hang_timeout_ms / 1000.0,
            restart_backoff_seconds=restart_backoff_ms / 1000.0,
            restart_backoff_max_seconds=restart_backoff_max_ms / 1000.0,
            breaker_threshold=worker_breaker_threshold,
            breaker_cooldown_seconds=worker_breaker_cooldown_ms / 1000.0,
        )
        self.supervisor = WorkerSupervisor(
            workers,
            rng=random.Random(supervisor_seed),
            **self._supervisor_kwargs,
        )
        self.shared = SharedCatalog()
        self._epoch_tokens: dict[int, dict] = {}
        self._current_epoch = None
        self._handles: dict[int, _WorkerHandle] = {}
        self._flights: dict[int, _Flight] = {}
        self._by_batch: dict[int, tuple[_Flight, int]] = {}
        self._ready: collections.deque = collections.deque()
        self._pool_lock = threading.RLock()
        self._flight_seq = 0
        self._batch_seq = 0
        self._collector: threading.Thread | None = None
        self._collector_stop = threading.Event()
        self._collector_failed = False
        self._draining = False
        self._drain_clean: bool | None = None
        self._drain_lock = threading.Lock()
        self._sigterm_drain_started = threading.Event()
        self._wake_r, self._wake_w = self._mp.Pipe(duplex=False)
        self._pool_counters = {
            "dispatched": 0,
            "retries": 0,
            "hedges": 0,
            "hedge_wins": 0,
            "deadline_expired": 0,
            "degraded_batches": 0,
            "worker_exits": 0,
            "spawns": 0,
            "kills": 0,
            "epoch_swaps": 0,
            "token_mismatch_recomputed": 0,
            "worker_deferred": 0,
            "parent_recomputed": 0,
            "collector_errors": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "PoolServer":
        if self.running:
            return self
        if self._drain_clean is not None:
            # Restart after a drain: the old supervisor's slot states
            # describe processes that no longer exist, and the wake
            # pipe was closed with the collector.
            self.supervisor = WorkerSupervisor(
                self.workers,
                rng=random.Random(self._supervisor_seed),
                **self._supervisor_kwargs,
            )
            self._wake_r, self._wake_w = self._mp.Pipe(duplex=False)
        self._draining = False
        self._drain_clean = None
        self._collector_failed = False
        self._sigterm_drain_started.clear()
        epoch = self.shared.publish(self.engine)
        self._epoch_tokens[epoch.epoch] = epoch.tokens
        self._current_epoch = epoch
        self.metrics.gauge("pool_current_epoch").set(epoch.epoch)
        for action in self.supervisor.tick():
            if action.kind == ACTION_SPAWN:
                self._spawn(action.slot)
        self._collector_stop.clear()
        self._collector = threading.Thread(
            target=self._collector_loop, name="repro-pool-collector", daemon=True
        )
        self._collector.start()
        return super().start()  # dispatcher thread (QueryServer worker loop)

    def stop(self) -> None:
        """Graceful drain with the configured budget, then teardown."""
        if self._thread is None and self._collector is None:
            return
        self.drain(timeout_ms=self.drain_timeout_ms)

    def drain(self, timeout_ms: float | None = None) -> bool:
        """Stop intake, finish in-flight work, stop workers.

        Returns ``True`` for a clean drain (every admitted request
        answered, every worker exited on request) and ``False`` when
        the budget expired and survivors were force-killed.  Also
        recorded as :attr:`drain_was_clean` for the CLI's exit code.

        Serialised: concurrent callers (the SIGTERM drain thread racing
        an explicit ``stop()``, say) block until the first drain
        finishes and then get its recorded outcome instead of tearing
        down twice.
        """
        with self._drain_lock:
            if self._drain_clean is not None:
                return self._drain_clean
            return self._drain_locked(timeout_ms)

    def _drain_locked(self, timeout_ms: float | None) -> bool:
        budget = (
            timeout_ms / 1000.0
            if timeout_ms is not None
            else self.drain_timeout_ms / 1000.0
        )
        deadline = time.monotonic() + budget
        clean = True
        # 1. Stop intake: new submits raise ServerClosedError.
        self._draining = True
        if self._refiner is not None:
            self._refiner.stop()
            self._refiner = None
        # 2. Let the dispatcher flush what is queued, then stop it.
        while time.monotonic() < deadline and (
            len(self.coalescer) or self._has_open_flights()
        ):
            time.sleep(0.005)
        if len(self.coalescer) or self._has_open_flights():
            clean = False
        if self._thread is not None:
            self._stop.set()
            self.coalescer.wake()
            self._thread.join()
            self._thread = None
        # 3. Ask workers to exit; the collector observes their exits.
        with self._pool_lock:
            for handle in self._handles.values():
                try:
                    handle.task_w.send(("stop",))
                except OSError:
                    pass
        while time.monotonic() < deadline and any(
            handle.process.is_alive() for handle in self._handles.values()
        ):
            time.sleep(0.005)
        # 4. Force-kill survivors past the budget.
        for handle in self._handles.values():
            if handle.process.is_alive():
                clean = False
                handle.process.kill()
        for handle in self._handles.values():
            handle.process.join(timeout=1.0)
        # 5. Stop the collector and fail anything still unanswered.
        self._collector_stop.set()
        self._notify_collector()
        if self._collector is not None:
            self._collector.join()
            self._collector = None
        leftovers = list(self.coalescer.drain_all())
        with self._pool_lock:
            for flight in self._flights.values():
                if not flight.done:
                    flight.done = True
                    leftovers.extend(flight.requests)
            self._flights.clear()
            self._by_batch.clear()
            self._ready.clear()
            for handle in self._handles.values():
                self._close_handle(handle)
            self._handles.clear()
        for request in leftovers:
            if not request.future.done():
                clean = False
                request.future.set_exception(
                    ServerClosedError("server drained before answering")
                )
        for conn in (self._wake_r, self._wake_w):
            try:
                conn.close()
            except OSError:
                pass
        self.shared.close()
        self._epoch_tokens.clear()
        self._stop.set()
        self._drain_clean = clean
        self.metrics.counter(
            "pool_drains_total", clean=str(clean).lower()
        ).inc()
        return clean

    @property
    def drain_was_clean(self) -> bool | None:
        """Outcome of the last :meth:`drain` (None before any drain)."""
        return self._drain_clean

    def install_sigterm_handler(self):
        """Drain gracefully on SIGTERM (main thread only).

        The handler only hands the drain off to a dedicated thread:
        ``drain()`` acquires the coalescer condition and the pool lock,
        both non-reentrant, and a signal arriving while the main thread
        holds either (inside ``submit_many``, say) would deadlock the
        process if the handler drained inline.  Repeated SIGTERMs are
        coalesced into the one drain already running.

        Returns the previous handler so callers can restore it.
        """

        def _handler(signum, frame):  # noqa: ARG001 — signal signature
            if self._sigterm_drain_started.is_set():
                return
            self._sigterm_drain_started.set()
            threading.Thread(
                target=self.drain,
                kwargs={"timeout_ms": self.drain_timeout_ms},
                name="repro-pool-sigterm-drain",
            ).start()

        return signal.signal(signal.SIGTERM, _handler)

    # ------------------------------------------------------------------
    # Admission (parent side)
    # ------------------------------------------------------------------
    def _admit(self, queries: list) -> list[ServeFuture]:
        if self._draining:
            raise ServerClosedError("server is draining; no new requests")
        return super()._admit(queries)

    # ------------------------------------------------------------------
    # Epoch swaps
    # ------------------------------------------------------------------
    def republish(self):
        """Publish the engine's current state as a new catalog epoch.

        Call after catalog mutations (appends + refresh, rebuilds,
        compactions) so workers serve the new state.  Live workers roll
        over between batches; until a worker swaps, its answers are
        token-revalidated and can only be served stale or recomputed —
        never passed off as fresh.
        """
        epoch = self.shared.publish(self.engine)
        with self._pool_lock:
            self._epoch_tokens[epoch.epoch] = epoch.tokens
            self._current_epoch = epoch
            self._pool_counters["epoch_swaps"] += 1
            for handle in self._handles.values():
                try:
                    handle.task_w.send(
                        ("swap", epoch.segment_name, epoch.stale_keys)
                    )
                except OSError:
                    pass
        self.metrics.counter("pool_epoch_swaps_total").inc()
        self.metrics.gauge("pool_current_epoch").set(epoch.epoch)
        self._notify_collector()
        return epoch

    # ------------------------------------------------------------------
    # Dispatch (runs on the QueryServer worker thread)
    # ------------------------------------------------------------------
    def _flush(self, batch: list[PendingRequest]) -> None:
        """Turn one coalesced batch into a flight and hand it out."""
        now = time.monotonic()
        specs = [
            (
                request.query.table,
                request.query.column,
                request.query.aggregate,
                request.query.low,
                request.query.high,
            )
            for request in batch
        ]
        with self._pool_lock:
            # Checked under the same lock that files the flight, so no
            # batch can slip in between the failure sweep and the flag.
            if self._collector_failed:
                flight = None
            else:
                self._flight_seq += 1
                flight = _Flight(
                    flight_id=self._flight_seq,
                    requests=batch,
                    specs=specs,
                    deadline=(
                        now + self.deadline_seconds
                        if self.deadline_seconds is not None
                        else None
                    ),
                    created_at=now,
                )
                self._flights[flight.flight_id] = flight
                self._ready.append(flight)
                self._pump_locked()
        if flight is None:
            # Nobody is left to collect results; answer through the
            # ladder immediately rather than parking the batch forever.
            for request in batch:
                if not request.future.done():
                    self._complete_degraded(request, "collector failed")
            return
        self._notify_collector()

    def _pump_locked(self) -> None:
        """Assign ready flights to idle live workers (pool lock held)."""
        while self._ready:
            slot = self._idle_live_slot_locked()
            if slot is None:
                return
            flight = self._ready.popleft()
            if flight.done:
                continue
            self._dispatch_locked(flight, slot)

    def _idle_live_slot_locked(self) -> int | None:
        for slot in self.supervisor.live_slots():
            handle = self._handles.get(slot)
            if handle is not None and handle.busy is None:
                return slot
        return None

    def _dispatch_locked(self, flight: _Flight, slot: int) -> None:
        handle = self._handles[slot]
        self._batch_seq += 1
        batch_id = self._batch_seq
        try:
            handle.task_w.send(("batch", batch_id, flight.specs))
        except OSError:
            # Worker died between the liveness check and the send.  Mark
            # the handle unusable (so this loop does not retry the same
            # corpse forever) and requeue; the sentinel wakes the
            # collector, which observes the exit and pumps again.
            handle.busy = -1
            self._ready.appendleft(flight)
            return
        handle.busy = batch_id
        flight.attempts += 1
        flight.dispatches[batch_id] = slot
        self._by_batch[batch_id] = (flight, slot)
        self._pool_counters["dispatched"] += 1
        self.metrics.counter("pool_batches_dispatched_total").inc()

    # ------------------------------------------------------------------
    # Worker process management
    # ------------------------------------------------------------------
    def _spawn(self, slot: int) -> None:
        task_r, task_w = self._mp.Pipe(duplex=False)
        result_r, result_w = self._mp.Pipe(duplex=False)
        with self._pool_lock:
            segment_name = self._current_epoch.segment_name
            stale_keys = self._current_epoch.stale_keys
        generation = self.supervisor.generation(slot) + 1
        process = self._mp.Process(
            target=_worker_main,
            args=(
                slot,
                generation,
                segment_name,
                stale_keys,
                task_r,
                result_w,
                self.heartbeat_interval_seconds,
                # The degradation policy's projection onto what a
                # table-less snapshot engine can serve; every other
                # ladder rung defers to the parent (see _answer_specs).
                self.policy.allow_stale,
            ),
            name=f"repro-pool-worker-{slot}",
            daemon=True,
        )
        process.start()
        # The child's ends live in the child now; keeping parent copies
        # would defeat EOF detection and leak fds across respawns.
        task_r.close()
        result_w.close()
        self.supervisor.observe_spawn(slot, pid=process.pid)
        with self._pool_lock:
            old = self._handles.get(slot)
            if old is not None:
                self._close_handle(old)
            self._handles[slot] = _WorkerHandle(
                slot=slot,
                generation=generation,
                process=process,
                task_w=task_w,
                result_r=result_r,
            )
            self._pool_counters["spawns"] += 1
            if generation > 0:
                self.metrics.counter("pool_worker_restarts_total").inc()
        self.metrics.counter("pool_worker_spawns_total").inc()
        self._update_liveness_gauge()

    def _close_handle(self, handle: _WorkerHandle) -> None:
        for conn in (handle.task_w, handle.result_r):
            try:
                conn.close()
            except OSError:
                pass

    def _update_liveness_gauge(self) -> None:
        self.metrics.gauge("pool_live_workers").set(
            len(self.supervisor.live_slots())
        )

    # ------------------------------------------------------------------
    # Collector (single thread: results, heartbeats, exits, timers)
    # ------------------------------------------------------------------
    def _notify_collector(self) -> None:
        try:
            self._wake_w.send(b"")
        except OSError:
            pass

    def _collector_loop(self) -> None:
        """Run collector passes until stopped; never die silently.

        The collector is the only thread servicing results, worker
        exits, deadlines, and hedges — an unhandled exception here
        would strand every pending request forever.  A failed pass is
        counted and skipped; ``_COLLECTOR_FAILURE_LIMIT`` *consecutive*
        failures mean the loop itself is broken (not a transient), so
        the pool fails every open flight through the shed ladder and
        marks itself unhealthy instead of hanging its callers.
        """
        consecutive_failures = 0
        while not self._collector_stop.is_set():
            try:
                self._collector_pass()
                consecutive_failures = 0
            except Exception:  # noqa: BLE001 — the loop must survive
                consecutive_failures += 1
                with self._pool_lock:
                    self._pool_counters["collector_errors"] += 1
                self.metrics.counter("pool_collector_errors_total").inc()
                if consecutive_failures >= _COLLECTOR_FAILURE_LIMIT:
                    self._fail_open_flights("collector failed repeatedly")
                    return
                time.sleep(_POLL_SECONDS)

    def _collector_pass(self) -> None:
        with self._pool_lock:
            waitables: list = [self._wake_r]
            routes: dict = {}
            for handle in self._handles.values():
                waitables.append(handle.result_r)
                routes[handle.result_r] = ("pipe", handle)
                if not handle.reaped:
                    sentinel = handle.process.sentinel
                    waitables.append(sentinel)
                    routes[sentinel] = ("exit", handle)
        try:
            ready = connection.wait(waitables, timeout=_POLL_SECONDS)
        except OSError:
            ready = []
        for item in ready:
            if item is self._wake_r:
                try:
                    while self._wake_r.poll(0):
                        self._wake_r.recv()
                except (EOFError, OSError):
                    pass
                continue
            kind, handle = routes.get(item, (None, None))
            if kind == "pipe":
                self._drain_result_pipe(handle)
            elif kind == "exit":
                self._handle_worker_exit(handle)
        self._service_timers()

    def _fail_open_flights(self, reason: str) -> None:
        """Last resort: resolve everything in flight through the ladder.

        Called when the collector cannot continue.  Every open flight's
        unanswered request is completed degraded (or failed explicitly)
        so no caller is left blocked; :meth:`_flush` degrades later
        batches inline while :attr:`_collector_failed` stands.
        """
        with self._pool_lock:
            # Flag and sweep under one lock acquisition: _flush checks
            # the flag under this same lock when it files a flight, so
            # no flight can slip in between the sweep and the flag.
            self._collector_failed = True
            open_flights = [
                flight for flight in self._flights.values() if not flight.done
            ]
            for flight in open_flights:
                flight.done = True
            self._flights.clear()
            self._by_batch.clear()
            self._ready.clear()
        for flight in open_flights:
            for request in flight.requests:
                if not request.future.done():
                    self._complete_degraded(request, reason)

    def _drain_result_pipe(self, handle: _WorkerHandle) -> None:
        while True:
            try:
                if not handle.result_r.poll(0):
                    return
                message = handle.result_r.recv()
            except (EOFError, OSError):
                return
            self._handle_message(handle, message)

    def _handle_message(self, handle: _WorkerHandle, message: tuple) -> None:
        kind = message[0]
        if kind == "hb":
            self.supervisor.observe_heartbeat(handle.slot)
            self.metrics.counter("pool_heartbeats_total").inc()
            self._update_liveness_gauge()
        elif kind == "attached":
            _, slot, generation, epoch, restored = message
            handle.epoch = epoch
            self.supervisor.observe_heartbeat(slot)
            self.metrics.counter("pool_worker_attaches_total").inc()
            self._update_liveness_gauge()
            with self._pool_lock:
                self._pump_locked()
        elif kind == "swapped":
            _, slot, generation, epoch = message
            handle.epoch = epoch
            with self._pool_lock:
                self._maybe_retire_locked()
        elif kind == "result":
            _, batch_id, epoch, answers = message
            self._handle_result(handle, batch_id, epoch, answers)
        elif kind == "attach_error":
            # The worker exits right after reporting; the sentinel path
            # handles restart.  Record why for the chaos artifacts.
            self.metrics.counter("pool_attach_errors_total").inc()
        elif kind == "bye":
            handle.reaped = True

    def _handle_result(
        self, handle: _WorkerHandle, batch_id: int, epoch: int, answers: list
    ) -> None:
        with self._pool_lock:
            entry = self._by_batch.pop(batch_id, None)
            if handle.busy == batch_id:
                handle.busy = None
            if entry is None:
                self._pump_locked()
                return
            flight, _slot = entry
            flight.dispatches.pop(batch_id, None)
            if flight.done:
                # A hedge twin (or the deadline path) already answered.
                self._pump_locked()
                return
            flight.done = True
            if flight.hedged:
                self._pool_counters["hedge_wins"] += 1
                self.metrics.counter("pool_hedge_wins_total").inc()
            self._flights.pop(flight.flight_id, None)
            tokens = self._epoch_tokens.get(epoch, {})
            self._pump_locked()
        self._resolve_flight(flight, tokens, answers)
        with self._pool_lock:
            self._maybe_retire_locked()

    def _resolve_flight(
        self, flight: _Flight, epoch_tokens: dict, answers: list
    ) -> None:
        """Validate and publish one flight's worker answers."""
        to_cache = []
        to_resolve = []
        served = 0
        for request, answer in zip(flight.requests, answers):
            if answer[0] == "err":
                _, type_name, detail = answer
                if type_name == "InvalidQueryError":
                    from repro.errors import InvalidQueryError

                    request.future.set_exception(InvalidQueryError(detail))
                else:
                    self._complete_degraded(request, detail)
                continue
            if answer[0] == "defer":
                # The snapshot engine cannot serve this rung (missing
                # synopsis, or stale under a stale-forbidding policy);
                # the parent's live engine runs the full ladder.
                self._recompute_on_parent(request, reason="worker_deferred")
                continue
            _, estimate, synopsis_name, synopsis_words, degradation = answer
            column = (request.query.table, request.query.column)
            if epoch_tokens.get(column) != request.token:
                # The worker answered from a snapshot older (or newer)
                # than the state this request was admitted under; a
                # fresh tag would be a lie and a cache write would
                # poison future hits.  Recompute on the live engine.
                self._recompute_on_parent(request)
                continue
            result = QueryResult(
                query=request.query,
                estimate=estimate,
                exact=None,
                synopsis_name=synopsis_name,
                synopsis_words=synopsis_words,
                degradation=degradation,
            )
            to_cache.append((request.cache_key, request.token, result, None))
            to_resolve.append((request.future, result))
            served += 1
        if to_cache:
            self.cache.put_many(to_cache)
        if to_resolve:
            ServeFuture.resolve_batch(to_resolve)
        now = time.monotonic()
        self.metrics.histogram("serve_latency_seconds").observe_many(
            [max(now - request.enqueued_at, 0.0) for request in flight.requests]
        )
        with self._lock:
            self._counters["batches"] += 1
            self._counters["served"] += served
        self.metrics.counter("serve_batches_total").inc()
        self.metrics.counter("serve_coalesced_total").inc(len(flight.requests))

    def _recompute_on_parent(
        self, request: PendingRequest, *, reason: str = "token_mismatch"
    ) -> None:
        """Answer one request on the live engine.

        Two callers: token mismatch (a mutation raced the request) and
        worker deferral (the snapshot engine lacks the rung).  The
        parent has the base tables, so this is the one place the full
        degradation ladder — and the server's ``audit_rate`` — applies;
        worker answers come from the frozen snapshot their build-time
        predictions already cover.
        """
        with self._pool_lock:
            self._pool_counters["parent_recomputed"] += 1
            if reason == "token_mismatch":
                self._pool_counters["token_mismatch_recomputed"] += 1
            else:
                self._pool_counters["worker_deferred"] += 1
        if reason == "token_mismatch":
            self.metrics.counter("pool_token_mismatches_total").inc()
        self.metrics.counter("pool_parent_recomputes_total", reason=reason).inc()
        try:
            result = self.engine.execute(
                request.query,
                on_stale=self.on_stale,
                audit_rate=self.audit_rate,
                degradation=self.policy,
            )
        except Exception as error:  # noqa: BLE001 — per-query isolation
            request.future.set_exception(error)
            return
        # Cache under a token re-read *before* this recompute would be
        # needed for validity; the admission token predates the mutation
        # that caused the mismatch, so skip the cache entirely.
        request.future.set_result(result)

    def _complete_degraded(self, request: PendingRequest, reason: str) -> None:
        """Finish one request through the shed ladder (never hang).

        This is the collector's last line of defence, so it must not
        raise: a shed-rung failure (an estimator error on the fallback
        rung, say) becomes the request's exception, never an escape
        that would kill the thread servicing every other request.
        """
        try:
            outcome, rung = self._shed_resolution(request.query, request.cache_key)
        except Exception as error:  # noqa: BLE001 — never kill the caller
            outcome, rung = error, "error"
        self.metrics.counter("pool_degraded_total", rung=rung).inc()
        if isinstance(outcome, BaseException):
            request.future.set_exception(outcome)
        else:
            request.future.set_result(outcome)

    # ------------------------------------------------------------------
    # Timers: supervision, deadlines, hedging, epoch retirement
    # ------------------------------------------------------------------
    def _service_timers(self) -> None:
        for action in self.supervisor.tick():
            if action.kind == ACTION_SPAWN and not (
                self._draining or self._collector_stop.is_set()
            ):
                self._spawn(action.slot)
            elif action.kind == ACTION_KILL:
                handle = self._handles.get(action.slot)
                if handle is not None and handle.process.is_alive():
                    with self._pool_lock:
                        self._pool_counters["kills"] += 1
                    self.metrics.counter("pool_worker_kills_total").inc()
                    handle.process.kill()
        self._update_liveness_gauge()
        now = time.monotonic()
        expired: list[_Flight] = []
        degrade_all = False
        with self._pool_lock:
            if self._ready and (
                self._all_slots_hopeless_locked()
                or (self._draining and not self.supervisor.live_slots())
            ):
                # Nothing will ever pick these flights up — every slot
                # is parked (crash-looping past its breaker), or we are
                # draining (no respawns) and the last worker died.
                # Degrade now rather than waiting out the deadline.
                degrade_all = True
            for flight in list(self._flights.values()):
                if flight.done:
                    continue
                if flight.deadline is not None and now >= flight.deadline:
                    flight.done = True
                    self._flights.pop(flight.flight_id, None)
                    for batch_id in list(flight.dispatches):
                        self._by_batch.pop(batch_id, None)
                    try:
                        self._ready.remove(flight)
                    except ValueError:
                        pass
                    expired.append(flight)
                    continue
                if (
                    self.hedge_seconds is not None
                    and not flight.hedged
                    and flight.dispatches
                    and now - flight.created_at >= self.hedge_seconds
                ):
                    slot = self._idle_live_slot_locked()
                    if slot is not None:
                        flight.hedged = True
                        self._pool_counters["hedges"] += 1
                        self.metrics.counter("pool_hedges_total").inc()
                        self._dispatch_locked(flight, slot)
            hopeless: list[_Flight] = []
            if degrade_all:
                while self._ready:
                    flight = self._ready.popleft()
                    if flight.done:
                        continue
                    flight.done = True
                    self._flights.pop(flight.flight_id, None)
                    hopeless.append(flight)
                    self._pool_counters["degraded_batches"] += 1
            self._pool_counters["deadline_expired"] += len(expired)
            self._maybe_retire_locked()
        for flight in expired:
            self.metrics.counter("pool_deadline_expired_total").inc()
            for request in flight.requests:
                if not request.future.done():
                    self._complete_degraded(request, "deadline expired")
        for flight in hopeless:
            for request in flight.requests:
                if not request.future.done():
                    self._complete_degraded(request, "no workers available")

    def _all_slots_hopeless_locked(self) -> bool:
        from repro.serving.supervisor import SLOT_PARKED

        return all(
            self.supervisor.state(slot) == SLOT_PARKED
            for slot in range(self.workers)
        )

    def _handle_worker_exit(self, handle: _WorkerHandle) -> None:
        if handle.reaped:
            return
        handle.reaped = True
        # Messages sent before death are still in the pipe — a worker
        # SIGKILLed *after* sending its result must not lose the batch.
        self._drain_result_pipe(handle)
        handle.process.join(timeout=1.0)
        exitcode = handle.process.exitcode
        self.supervisor.observe_exit(handle.slot, exitcode=exitcode)
        with self._pool_lock:
            self._pool_counters["worker_exits"] += 1
            self.metrics.counter(
                "pool_worker_exits_total", exitcode=str(exitcode)
            ).inc()
            stranded = None
            lost_batch = handle.busy
            handle.busy = None
            if lost_batch is not None and lost_batch != -1:
                entry = self._by_batch.pop(lost_batch, None)
                if entry is not None:
                    flight, _slot = entry
                    flight.dispatches.pop(lost_batch, None)
                    if not flight.done and not flight.dispatches:
                        stranded = flight
            if stranded is not None:
                if stranded.attempts <= self.max_retries:
                    # Retry-on-another-worker: front of the queue so the
                    # oldest work keeps its latency budget.
                    self._pool_counters["retries"] += 1
                    self.metrics.counter("pool_retries_total").inc()
                    self._ready.appendleft(stranded)
                else:
                    stranded.done = True
                    self._flights.pop(stranded.flight_id, None)
            self._pump_locked()
        self._update_liveness_gauge()
        if stranded is not None and stranded.done:
            with self._pool_lock:
                self._pool_counters["degraded_batches"] += 1
            for request in stranded.requests:
                if not request.future.done():
                    self._complete_degraded(
                        request, "retry budget exhausted after worker loss"
                    )

    def _has_open_flights(self) -> bool:
        with self._pool_lock:
            return any(not flight.done for flight in self._flights.values())

    def _maybe_retire_locked(self) -> None:
        """Unlink old epoch segments once no live worker still uses them."""
        current = self._current_epoch
        if current is None:
            return
        live_epochs = {
            handle.epoch
            for handle in self._handles.values()
            if handle.process.is_alive()
        }
        for epoch in list(self.shared.epochs()):
            if epoch == current.epoch:
                continue
            if epoch in live_epochs:
                continue
            self.shared.retire(epoch)
            # Keep the token map: results from that epoch may still be
            # in a pipe; tokens are tiny and cleared on drain.

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        counters = super().stats()
        with self._pool_lock:
            pool = dict(self._pool_counters)
            pool["workers"] = self.workers
            pool["live_workers"] = len(self.supervisor.live_slots())
            pool["current_epoch"] = (
                self._current_epoch.epoch if self._current_epoch else None
            )
            pool["inflight_flights"] = sum(
                1 for flight in self._flights.values() if not flight.done
            )
            pool["supervisor"] = self.supervisor.snapshot()
            pool["draining"] = self._draining
            pool["drain_was_clean"] = self._drain_clean
            pool["collector_failed"] = self._collector_failed
        counters["pool"] = pool
        return counters


__all__ = [
    "EXIT_ATTACH_FAILED",
    "EXIT_OK",
    "PoolServer",
]
