"""Progressive (anytime) range answers with verified confidence intervals.

The engine's synopses ship a frozen builder error model
(:class:`repro.core.builders.ErrorPrediction`), yet the serve path has
always been all-or-nothing: synopsis-fast or exact-slow.  This module
adds the middle ground in the style of ProReveal's ``Approximator`` and
the Structure-Aware Sampling line of work — answer *immediately* with
an estimate plus an honest confidence interval, then keep tightening
the interval in the background until the answer is exact:

``synopsis``
    The stage-0 answer: the synopsis estimate plus an exact delta over
    rows appended since the build, with a distribution-free
    Chebyshev/Markov half-width derived from the frozen SSE-per-query
    model (for a :class:`~repro.engine.sharding.ShardedSynopsis`, only
    the at-most-two partially covered boundary shards contribute error,
    so the interval is already tight on shard-aligned ranges).
``boundary``
    Boundary shards are resolved *exactly* from the build-time snapshot
    (one unit per refinement step, streaming a tighter interval after
    each); fully covered interiors keep their frozen exact totals.
``interior``
    The whole clipped range is recomputed from the snapshot's prefix
    sums, guarding against corrupted frozen totals.
``exact``
    A live base-table scan via
    :meth:`~repro.engine.engine.ApproximateQueryEngine.execute_exact`,
    published bitwise.

Two invariants hold by construction:

* **Nesting** — every stage's interval is intersect-clamped into its
  predecessor, so the published chain is monotonically nested no matter
  what the per-stage statistics say (the *coverage* guarantee comes
  from the conservative multiplier; the *nesting* guarantee comes from
  here).
* **Consistency** — a session captures the catalog's answer token
  (:meth:`repro.serving.catalog.CatalogView.answer_token`) at creation
  and re-validates it before every stage; any append / rebuild /
  staleness transition raises
  :class:`~repro.errors.RefinementInvalidatedError` instead of
  publishing an interval about a table state that no longer exists.
"""

from __future__ import annotations

import math
import queue
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.core.builders import interval_halfwidth
from repro.engine.engine import AggregateQuery, QueryResult
from repro.engine.sharding import ShardedSynopsis
from repro.errors import (
    InvalidParameterError,
    InvalidQueryError,
    RefinementInvalidatedError,
    ServerClosedError,
)

#: Refinement stages, coarsest to exact.  A session may legitimately
#: skip interior stages (e.g. shard-aligned ranges have no boundary
#: units) but published stage ranks never decrease.
STAGES = ("synopsis", "boundary", "interior", "exact")

#: Stage name -> position on the ladder (higher = more refined).
STAGE_RANK = {name: rank for rank, name in enumerate(STAGES)}

#: Relative float slack applied to snapshot-derived interval widths.
#: Snapshot stages compute values via prefix-sum differences while the
#: exact scan sums a masked array; the two orders of float addition can
#: disagree by a few ulps, which must not count as a coverage miss.
_FLOAT_SLACK = 1e-9


def _slack(value: float) -> float:
    return _FLOAT_SLACK * max(1.0, abs(value))


@dataclass(frozen=True)
class IntervalAnswer:
    """One published refinement stage: estimate plus claimed interval.

    ``[lo, hi]`` contains the live exact answer with probability at
    least ``confidence`` (over the builder's sampled query workload);
    ``stage`` names the ladder rung that produced it and ``token`` is
    the catalog consistency token the answer is certified against.
    """

    query: AggregateQuery
    estimate: float
    lo: float
    hi: float
    confidence: float
    stage: str
    token: tuple | None = None
    synopsis_name: str = ""
    synopsis_words: int = 0

    def __post_init__(self) -> None:
        if self.stage not in STAGE_RANK:
            raise InvalidParameterError(
                f"stage must be one of {STAGES}, got {self.stage!r}"
            )
        if self.lo > self.hi:
            raise InvalidParameterError(
                f"interval is inverted: lo={self.lo} > hi={self.hi}"
            )

    @property
    def width(self) -> float:
        return self.hi - self.lo

    @property
    def stage_rank(self) -> int:
        return STAGE_RANK[self.stage]

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def as_result(self, exact: float | None = None) -> QueryResult:
        """Adapt to the engine's :class:`QueryResult` envelope."""
        return QueryResult(
            query=self.query,
            estimate=self.estimate,
            exact=exact,
            synopsis_name=self.synopsis_name,
            synopsis_words=self.synopsis_words,
            degradation="progressive",
            interval=(self.lo, self.hi),
            confidence=self.confidence,
        )


class RefinementSession:
    """Synchronous refinement state machine for one query.

    The session is deliberately single-threaded — :meth:`step` advances
    exactly one stage and returns the stage's :class:`IntervalAnswer`
    (or ``None`` when exhausted) — so lifecycle tests can interleave
    catalog mutations between stages deterministically.  The background
    :class:`Refiner` is a thin thread around this machine.
    """

    def __init__(
        self,
        engine,
        query: AggregateQuery,
        *,
        confidence: float = 0.95,
        catalog=None,
    ) -> None:
        if not 0.0 < confidence < 1.0:
            raise InvalidParameterError(
                f"confidence must be in (0, 1), got {confidence}"
            )
        from repro.serving.catalog import CatalogView

        self.engine = engine
        self.query = query
        self.confidence = float(confidence)
        self.catalog = catalog if catalog is not None else CatalogView(engine)
        key = (query.table, query.column)
        entry = engine._synopses.get(key)
        if entry is None:
            raise InvalidQueryError(
                f"no synopsis built for {query.table}.{query.column}; "
                "the progressive rung needs one to derive its interval"
            )
        self._key = key
        self._entry = entry
        self._stats = entry.statistics
        self.token = self.catalog.answer_token(*key)
        self._clipped = self._stats.clip_range(query.low, query.high)
        self._snapshot_rows = int(self._stats.row_count)
        self._delta: tuple[float, float] | None = None
        self._resolved: set[int] = set()
        self._lo: float | None = None
        self._hi: float | None = None
        self._history: list[IntervalAnswer] = []
        self._plan = self._build_plan()
        self._cursor = 0

    # -- planning ------------------------------------------------------
    def _build_plan(self) -> list[tuple[str, int | None]]:
        """The stage schedule: boundary units first, then interior, exact.

        Shard-aligned ranges (and empty clipped ranges) have no boundary
        units to resolve; the plan simply skips ahead — stage ranks in
        the published chain stay non-decreasing either way.
        """
        steps: list[tuple[str, int | None]] = [("synopsis", None)]
        if self._clipped is not None:
            estimator = self._entry.count_estimator
            if isinstance(estimator, ShardedSynopsis):
                low, high = self._clipped
                for shard in estimator.partial_shards(low, high):
                    steps.append(("boundary", shard))
            else:
                # Monolithic synopsis: the whole clipped range is one
                # boundary unit (there is no exact interior to keep).
                steps.append(("boundary", -1))
            steps.append(("interior", None))
        steps.append(("exact", None))
        return steps

    # -- consistency ---------------------------------------------------
    def invalidated(self) -> bool:
        """Has the catalog mutated since this session started?"""
        return self.catalog.answer_token(*self._key) != self.token

    def _check_token(self) -> None:
        current = self.catalog.answer_token(*self._key)
        if current != self.token:
            raise RefinementInvalidatedError(
                f"refinement for {self.query.table}.{self.query.column} "
                f"invalidated: token {self.token} is now {current}"
            )

    # -- append delta --------------------------------------------------
    def _append_delta(self) -> tuple[float, float]:
        """Exact (count, sum) contribution of rows appended post-build.

        ``Table.with_appended`` concatenates new rows after the existing
        ones, so the build-time snapshot is exactly the first
        ``row_count`` values; the suffix is scanned exactly (it is the
        part the synopsis knows nothing about), making every stage's
        estimate track the *live* table even while the entry is stale.
        """
        if self._delta is not None:
            return self._delta
        values = self.engine.table(self.query.table).column(self.query.column)
        suffix = np.asarray(values)[self._snapshot_rows :]
        if suffix.size == 0:
            self._delta = (0.0, 0.0)
            return self._delta
        mask = np.ones(suffix.shape, dtype=bool)
        if self.query.low is not None:
            mask &= suffix >= self.query.low
        if self.query.high is not None:
            mask &= suffix <= self.query.high
        selected = suffix[mask]
        self._delta = (float(mask.sum()), float(selected.sum()))
        return self._delta

    # -- per-stage component values ------------------------------------
    def _estimator(self, kind: str):
        return (
            self._entry.count_estimator
            if kind == "count"
            else self._entry.sum_estimator
        )

    def _model_sse(self, kind: str) -> float:
        prediction = self.engine._predicted_for(self._key, kind)
        return float(prediction.sse_per_query) if prediction is not None else 0.0

    def _synopsis_component(self, kind: str) -> tuple[float, float]:
        """Stage-0 snapshot estimate and half-width for count or sum."""
        if self._clipped is None:
            return 0.0, 0.0
        low, high = self._clipped
        estimator = self._estimator(kind)
        value = float(estimator.estimate(low, high))
        sse = None
        if isinstance(estimator, ShardedSynopsis):
            sse = estimator.boundary_sse(low, high)
        if sse is None:
            sse = self._model_sse(kind)
        return value, interval_halfwidth(sse, self.confidence)

    def _boundary_component(self, kind: str) -> tuple[float, float]:
        """Mixed exact/estimated snapshot value mid-boundary-resolution.

        Fully covered shards contribute their frozen exact totals,
        resolved boundary shards an exact prefix-sum scan of the
        snapshot, and still-unresolved boundary shards their shard
        estimator's estimate plus that shard's SSE model.
        """
        low, high = self._clipped
        estimator = self._estimator(kind)
        if not isinstance(estimator, ShardedSynopsis):
            # Monolithic: the single boundary unit resolves the whole
            # clipped range exactly from the snapshot.
            return float(self._stats.range_totals(kind, low, high)), 0.0
        starts = estimator.starts
        left = int(np.searchsorted(starts, low, side="right") - 1)
        right = int(np.searchsorted(starts, high, side="right") - 1)
        value = 0.0
        sse = 0.0
        for shard in range(left, right + 1):
            first = int(starts[shard])
            last = int(starts[shard + 1]) - 1
            a = max(low, first)
            b = min(high, last)
            if a == first and b == last:
                value += float(estimator.totals[shard])
            elif shard in self._resolved:
                value += float(self._stats.range_totals(kind, a, b))
            else:
                value += float(estimator.estimate(a, b))
                predictions = estimator.shard_predictions
                prediction = (
                    predictions[shard] if predictions is not None else None
                )
                if prediction is not None:
                    sse += float(prediction.sse_per_query)
                else:
                    sse += self._model_sse(kind)
        return value, interval_halfwidth(sse, self.confidence)

    def _interior_component(self, kind: str) -> tuple[float, float]:
        low, high = self._clipped
        return float(self._stats.range_totals(kind, low, high)), 0.0

    # -- interval assembly ---------------------------------------------
    @staticmethod
    def _avg_interval(
        count_lo: float,
        count_hi: float,
        sum_lo: float,
        sum_hi: float,
    ) -> tuple[float, float]:
        """Corner hull of SUM/COUNT over the joint interval box.

        Counts are integers, so the admissible divisors are the integer
        points of ``[count_lo, count_hi]`` clamped to >= 1; a possible
        zero count contributes the engine's defined-empty answer 0.0.
        ``s / c`` is monotone in each variable over a fixed-sign box, so
        the hull is attained at the corners.
        """
        count_lo = max(count_lo, 0.0)
        high_count = math.floor(count_hi + 1e-9)
        low_count = math.ceil(count_lo - 1e-9)
        candidates: list[float] = []
        if high_count >= 1:
            for divisor in {max(1, low_count), high_count}:
                candidates.append(sum_lo / divisor)
                candidates.append(sum_hi / divisor)
        if low_count <= 0:
            candidates.append(0.0)
        if not candidates:
            candidates.append(0.0)
        return min(candidates), max(candidates)

    def _nest(self, lo: float, hi: float) -> tuple[float, float]:
        """Intersect-clamp ``[lo, hi]`` into the previous interval.

        Guarantees nesting and ``lo <= hi`` unconditionally: a later
        stage can *narrow* the chain but never escape it, which is the
        structural property the Hypothesis suite pins.
        """
        if self._lo is None or self._hi is None:
            self._lo, self._hi = lo, hi
        else:
            clamped_lo = min(max(self._lo, lo), self._hi)
            clamped_hi = max(min(self._hi, hi), self._lo)
            self._lo, self._hi = clamped_lo, max(clamped_lo, clamped_hi)
        return self._lo, self._hi

    def _compose(self, stage: str, kind_component) -> IntervalAnswer:
        """Build one stage's answer from its count/sum component function."""
        aggregate = self.query.aggregate
        delta_count, delta_sum = self._append_delta()
        count_point, count_halfwidth = kind_component("count")
        sum_point, sum_halfwidth = kind_component("sum")
        count_point += delta_count
        sum_point += delta_sum
        count_halfwidth += _slack(count_point)
        sum_halfwidth += _slack(sum_point)
        count_lo = max(0.0, count_point - count_halfwidth)
        count_hi = count_point + count_halfwidth
        if aggregate == "count":
            estimate = count_point
            lo, hi = count_lo, count_hi
        elif aggregate == "sum":
            estimate = sum_point
            lo, hi = sum_point - sum_halfwidth, sum_point + sum_halfwidth
        else:  # avg
            estimate = sum_point / count_point if count_point > 0 else 0.0
            lo, hi = self._avg_interval(
                count_lo, count_hi, sum_point - sum_halfwidth, sum_point + sum_halfwidth
            )
            pad = _slack(estimate)
            lo, hi = lo - pad, hi + pad
        lo, hi = self._nest(lo, hi)
        estimate = min(max(estimate, lo), hi)
        return self._answer(stage, estimate, lo, hi)

    def _answer(
        self, stage: str, estimate: float, lo: float, hi: float
    ) -> IntervalAnswer:
        entry = self._entry
        return IntervalAnswer(
            query=self.query,
            estimate=float(estimate),
            lo=float(lo),
            hi=float(hi),
            confidence=self.confidence,
            stage=stage,
            token=self.token,
            synopsis_name=entry.count_estimator.name,
            synopsis_words=entry.count_estimator.storage_words()
            + entry.sum_estimator.storage_words(),
        )

    # -- the machine ---------------------------------------------------
    @property
    def done(self) -> bool:
        return self._cursor >= len(self._plan)

    def history(self) -> list[IntervalAnswer]:
        return list(self._history)

    def current(self) -> IntervalAnswer | None:
        return self._history[-1] if self._history else None

    def initial(self) -> IntervalAnswer:
        """The stage-0 answer (computing it on first call)."""
        if not self._history:
            answer = self.step()
            assert answer is not None  # plan always starts with synopsis
            return answer
        return self._history[0]

    def step(self) -> IntervalAnswer | None:
        """Advance one stage; ``None`` once the chain is exhausted.

        Re-validates the consistency token first — a catalog mutation
        between stages raises
        :class:`~repro.errors.RefinementInvalidatedError` and freezes
        the session (subsequent calls keep raising).
        """
        if self.done:
            return None
        self._check_token()
        stage, unit = self._plan[self._cursor]
        if stage == "synopsis":
            answer = self._compose(stage, self._synopsis_component)
        elif stage == "boundary":
            if unit is not None and unit >= 0:
                self._resolved.add(unit)
            answer = self._compose(stage, self._boundary_component)
        elif stage == "interior":
            answer = self._compose(stage, self._interior_component)
        else:  # exact
            exact = float(self.engine.execute_exact(self.query))
            lo, hi = self._nest(exact, exact)
            answer = self._answer("exact", exact, lo, hi)
        self._cursor += 1
        self._history.append(answer)
        return answer

    def run_to_exact(self) -> list[IntervalAnswer]:
        """Drive the machine to completion; returns the full chain."""
        while self.step() is not None:
            pass
        return self.history()


def initial_answer(
    engine, query: AggregateQuery, *, confidence: float = 0.95
) -> IntervalAnswer:
    """One-shot stage-0 answer — the engine's ``progressive`` rung."""
    return RefinementSession(engine, query, confidence=confidence).initial()


class ProgressiveHandle:
    """Thread-safe view of one in-flight refinement.

    The submitting thread reads (:meth:`current`, :meth:`result`,
    :meth:`wait_for_stage`) while the :class:`Refiner` worker publishes;
    the history only ever grows and stage ranks never decrease.
    """

    def __init__(self, query: AggregateQuery) -> None:
        self.query = query
        self._condition = threading.Condition()
        self._history: list[IntervalAnswer] = []
        self._done = False
        self._error: Exception | None = None

    # -- publisher side (Refiner worker) -------------------------------
    def publish(self, answer: IntervalAnswer) -> None:
        with self._condition:
            self._history.append(answer)
            self._condition.notify_all()

    def finish(self, error: Exception | None = None) -> None:
        with self._condition:
            self._done = True
            self._error = error
            self._condition.notify_all()

    # -- consumer side -------------------------------------------------
    @property
    def done(self) -> bool:
        with self._condition:
            return self._done

    @property
    def invalidated(self) -> bool:
        with self._condition:
            return isinstance(self._error, RefinementInvalidatedError)

    def current(self) -> IntervalAnswer | None:
        with self._condition:
            return self._history[-1] if self._history else None

    def history(self) -> list[IntervalAnswer]:
        with self._condition:
            return list(self._history)

    def result(self, timeout: float | None = None) -> IntervalAnswer:
        """Block until refinement finishes; returns the final answer.

        Raises the session's error (typically
        :class:`~repro.errors.RefinementInvalidatedError`) if the
        refinement could not complete, and :class:`TimeoutError` if the
        deadline passes first.
        """
        with self._condition:
            if not self._condition.wait_for(lambda: self._done, timeout):
                raise TimeoutError(
                    f"refinement of {self.query} did not finish within {timeout}s"
                )
            if self._error is not None:
                raise self._error
            return self._history[-1]

    def wait_for_stage(
        self, stage: str, timeout: float | None = None
    ) -> IntervalAnswer:
        """Block until an answer at ``stage`` (or beyond) is published."""
        rank = STAGE_RANK[stage]

        def _reached():
            return self._done or (
                self._history and self._history[-1].stage_rank >= rank
            )

        with self._condition:
            if not self._condition.wait_for(_reached, timeout):
                raise TimeoutError(
                    f"refinement of {self.query} did not reach stage "
                    f"{stage!r} within {timeout}s"
                )
            if self._history and self._history[-1].stage_rank >= rank:
                return self._history[-1]
            if self._error is not None:
                raise self._error
            raise RefinementInvalidatedError(
                f"refinement of {self.query} finished before reaching "
                f"stage {stage!r}"
            )


class Refiner:
    """Background worker that drives refinement sessions to exact.

    ``submit`` computes the stage-0 answer inline (the caller always
    gets an immediate interval) and enqueues the session; the worker
    thread streams the remaining stages into the returned
    :class:`ProgressiveHandle`, the stage-aware answer cache, and the
    observability layer (``progressive_stage_seconds`` /
    ``progressive_interval_width`` histograms, a ``refine`` span per
    query).
    """

    def __init__(
        self,
        engine,
        *,
        cache=None,
        catalog=None,
        confidence: float = 0.95,
        max_queue: int = 1024,
    ) -> None:
        from repro.serving.catalog import CatalogView

        if max_queue < 1:
            raise InvalidParameterError(f"max_queue must be >= 1, got {max_queue}")
        self.engine = engine
        self.catalog = catalog if catalog is not None else CatalogView(engine)
        self.cache = cache
        self.confidence = float(confidence)
        self.metrics = self.catalog.metrics
        self.tracer = self.catalog.tracer
        self._queue: queue.Queue = queue.Queue(maxsize=max_queue)
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._lock = threading.Lock()
        self.counters = {
            "sessions": 0,
            "stages": 0,
            "completed": 0,
            "invalidated": 0,
            "failed": 0,
        }

    # -- lifecycle -----------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "Refiner":
        if self.running:
            return self
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._worker, name="progressive-refiner", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the worker; queued-but-unstarted sessions are finished
        with a :class:`~repro.errors.ServerClosedError`."""
        self._stop_event.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
        self._thread = None
        while True:
            try:
                _, handle = self._queue.get_nowait()
            except queue.Empty:
                break
            handle.finish(ServerClosedError("refiner stopped before refinement"))

    # -- submission ----------------------------------------------------
    def submit(
        self, query: AggregateQuery, *, confidence: float | None = None
    ) -> ProgressiveHandle:
        """Stage-0 inline, remaining stages in the background."""
        session = RefinementSession(
            self.engine,
            query,
            confidence=self.confidence if confidence is None else confidence,
            catalog=self.catalog,
        )
        handle = ProgressiveHandle(query)
        first = session.initial()
        self._bump("sessions")
        self._bump("stages")
        self._observe(first, 0.0)
        handle.publish(first)
        self._publish_cache(first)
        if not self.running:
            self.start()
        try:
            self._queue.put_nowait((session, handle))
        except queue.Full:
            # Back-pressure: finish the refinement on the caller's
            # thread rather than dropping it or blocking the queue.
            self._refine(session, handle)
        return handle

    # -- worker --------------------------------------------------------
    def _worker(self) -> None:
        while not self._stop_event.is_set():
            try:
                session, handle = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            self._refine(session, handle)

    def _refine(self, session: RefinementSession, handle: ProgressiveHandle) -> None:
        query = session.query
        with self.tracer.span(
            "refine",
            table=query.table,
            column=query.column,
            aggregate=query.aggregate,
        ) as span:
            error: Exception | None = None
            while True:
                started = time.perf_counter()
                try:
                    answer = session.step()
                except RefinementInvalidatedError as invalidated:
                    error = invalidated
                    self._bump("invalidated")
                    self.metrics.counter("progressive_invalidated_total").inc()
                    break
                except Exception as failure:  # pragma: no cover - defensive
                    error = failure
                    self._bump("failed")
                    break
                if answer is None:
                    self._bump("completed")
                    break
                self._bump("stages")
                self._observe(answer, time.perf_counter() - started)
                handle.publish(answer)
                self._publish_cache(answer)
            final = handle.current()
            span.set(
                stages=len(handle.history()),
                final_stage=final.stage if final is not None else "none",
                invalidated=isinstance(error, RefinementInvalidatedError),
            )
            handle.finish(error)

    # -- plumbing ------------------------------------------------------
    def _bump(self, counter: str) -> None:
        with self._lock:
            self.counters[counter] += 1

    def _observe(self, answer: IntervalAnswer, seconds: float) -> None:
        self.metrics.counter(
            "progressive_stages_total", stage=answer.stage
        ).inc()
        self.metrics.histogram(
            "progressive_stage_seconds", stage=answer.stage
        ).observe(seconds)
        self.metrics.histogram(
            "progressive_interval_width", stage=answer.stage
        ).observe(answer.width)

    def _publish_cache(self, answer: IntervalAnswer) -> None:
        if self.cache is None:
            return
        from repro.serving.answer_cache import cache_key

        self.cache.put(
            cache_key(answer.query),
            answer.token,
            answer.as_result(),
            stage_rank=answer.stage_rank,
        )

    def stats(self) -> dict:
        with self._lock:
            snapshot = dict(self.counters)
        snapshot["queued"] = self._queue.qsize()
        snapshot["running"] = self.running
        return snapshot
