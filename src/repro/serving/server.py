"""The concurrent query server — the system's serve plane.

Storyboard-style systems treat precomputed summaries as something you
*serve*, not just call: a front end admits requests, batches them, and
degrades deliberately under pressure.  :class:`QueryServer` is that
front end for the engine's range-aggregate synopses:

* **Coalescing** — concurrent ``submit`` calls accumulate in a
  :class:`~repro.serving.coalescer.RequestCoalescer` and one worker
  thread flushes them through ``execute_batch``, so every flush rides
  the vectorised ``estimate_many`` path instead of paying per-query
  python overhead.  Batches release on size (``max_batch``) or age
  (``max_delay_ms``), group-commit style.
* **Answer caching** — results are cached under a consistency token
  read *before* the answer is computed
  (:meth:`~repro.serving.catalog.CatalogView.answer_token`), so a
  cached answer validates only while no ``append_rows`` /
  ``register_table`` / rebuild / staleness transition has happened
  since.  The cache can therefore never serve a pre-append answer
  after an append — even when the append races the flush.
* **Admission control** — when ``max_pending`` requests are already
  queued, new arrivals are *shed* down the
  :class:`~repro.engine.resilience.DegradationPolicy` ladder instead
  of queueing unboundedly: a cached answer re-tagged ``stale`` (if the
  policy admits stale), else the O(1) uniform-model ``fallback`` rung,
  else a stage-0 ``progressive`` interval answer (if the policy admits
  it), else :class:`~repro.errors.ServerOverloadedError`.  A request
  arriving when the queue is *exactly* at ``max_pending`` takes this
  ladder too — the boundary sheds, it never raises past an admissible
  rung.  The ``exact`` rung is never used for shedding — a base-table
  scan under overload would dig the hole deeper.
* **Progressive answers** — :meth:`QueryServer.submit_progressive`
  returns a :class:`~repro.serving.progressive.ProgressiveHandle`
  immediately (stage-0 interval inline) and a background
  :class:`~repro.serving.progressive.Refiner` streams monotonically
  tightening intervals until exact, upgrading the stage-aware answer
  cache as it goes.

Threading contract: all engine access from the serve path happens on
the single worker thread (plus read-only catalog peeks from submitting
threads); the engine's counters and metrics are lock-protected, so
serving may run concurrently with direct engine queries.  Catalog
*mutations* (builds, appends) remain the build plane's business and are
safe to interleave — the consistency tokens absorb them — but are not
themselves made concurrent by this module.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace

from repro.engine.engine import AggregateQuery, QueryResult
from repro.engine.resilience import SERVE_ANYTHING, as_degradation_policy
from repro.errors import (
    InvalidParameterError,
    InvalidQueryError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.internal.faults import fault_point
from repro.serving.answer_cache import AnswerCache, cache_key
from repro.serving.catalog import CatalogView
from repro.serving.coalescer import PendingRequest, RequestCoalescer, ServeFuture

#: Histogram buckets for coalesced batch sizes (queries per flush).
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


def _stage_rank_of(result: QueryResult) -> int | None:
    """The cache stage rank of a flushed answer.

    Progressive answers from the batch path are stage-0 intervals; they
    must enter the cache *ranked* so a background refinement that
    already published a finer stage for the same token is not clobbered
    by a slower flush.  Every other answer is unranked and overwrites.
    """
    return 0 if result.degradation == "progressive" else None


class QueryServer:
    """Coalescing, caching, load-shedding front end over one engine.

    Use as a context manager (``with QueryServer(engine) as server:``)
    or call :meth:`start` / :meth:`stop` explicitly.  ``submit`` returns
    a :class:`concurrent.futures.Future`; :meth:`execute` is the
    blocking convenience wrapper.
    """

    def __init__(
        self,
        engine,
        *,
        max_batch: int = 512,
        max_delay_ms: float = 2.0,
        max_pending: int = 8192,
        cache_capacity: int = 4096,
        degradation="serve_anything",
        on_stale: str = "serve",
        audit_rate: float = 0.0,
        confidence: float = 0.95,
    ) -> None:
        if max_pending < 1:
            raise InvalidParameterError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if max_delay_ms < 0:
            raise InvalidParameterError(
                f"max_delay_ms must be >= 0, got {max_delay_ms}"
            )
        self.engine = engine
        self.catalog = CatalogView(engine)
        self.cache = AnswerCache(cache_capacity)
        self.coalescer = RequestCoalescer(
            max_batch=max_batch, max_delay_seconds=max_delay_ms / 1000.0
        )
        self.max_pending = int(max_pending)
        self.policy = as_degradation_policy(degradation) or SERVE_ANYTHING
        self.on_stale = on_stale
        self.audit_rate = float(audit_rate)
        self.confidence = float(confidence)
        self.metrics = engine.metrics
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._refiner = None
        self._lock = threading.Lock()
        self._counters = {
            "submitted": 0,
            "cache_hits": 0,
            "enqueued": 0,
            "batches": 0,
            "served": 0,
            "shed_stale": 0,
            "shed_fallback": 0,
            "shed_progressive": 0,
            "rejected": 0,
            "flush_errors": 0,
            "progressive_sessions": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "QueryServer":
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._worker_loop, name="repro-serve-worker", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Drain every pending request, then stop the worker.

        Requests already admitted are answered before the worker exits;
        new submissions raise :class:`~repro.errors.ServerClosedError`.
        """
        if self._refiner is not None:
            self._refiner.stop()
            self._refiner = None
        if self._thread is None:
            return
        self._stop.set()
        self.coalescer.wake()
        self._thread.join()
        self._thread = None
        # Safety net: anything that slipped in between the stop flag and
        # the final drain must not leave a caller blocked forever.
        for request in self.coalescer.drain_all():
            if not request.future.done():
                request.future.set_exception(
                    ServerClosedError("server stopped before answering")
                )

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, query: AggregateQuery) -> ServeFuture:
        """Admit one query; resolves to a :class:`QueryResult`.

        Resolution order: answer cache (token-validated) -> coalesced
        batch -> under overload, the shed ladder.  The returned future
        may already be resolved (cache hit or shed answer).
        """
        return self._admit([query])[0]

    def submit_many(self, queries) -> list[ServeFuture]:
        """Admit many queries under one queue-lock acquisition."""
        return self._admit(list(queries))

    def submit_progressive(self, query: AggregateQuery, *, confidence=None):
        """Anytime answering: an immediate interval, then refinement.

        Returns a :class:`~repro.serving.progressive.ProgressiveHandle`
        whose first answer (stage-0, computed inline before this method
        returns) is the synopsis estimate with a claimed-``confidence``
        interval; the background refiner streams monotonically nested,
        tightening intervals into the handle and the stage-aware answer
        cache until the answer is exact.  A catalog mutation mid-flight
        invalidates the refinement instead of publishing a stale stage.
        """
        if not self.running:
            raise ServerClosedError(
                "server is not running; use 'with QueryServer(engine):' or start()"
            )
        if not isinstance(query, AggregateQuery):
            raise InvalidQueryError(
                "the server answers AggregateQuery range aggregates, "
                f"got {type(query).__name__}"
            )
        handle = self.refiner.submit(query, confidence=confidence)
        with self._lock:
            self._counters["progressive_sessions"] += 1
        self.metrics.counter("serve_progressive_sessions_total").inc()
        return handle

    @property
    def refiner(self):
        """The lazily created background refiner (started on first use)."""
        if self._refiner is None:
            from repro.serving.progressive import Refiner

            self._refiner = Refiner(
                self.engine,
                cache=self.cache,
                catalog=self.catalog,
                confidence=self.confidence,
            ).start()
        return self._refiner

    def execute(self, query: AggregateQuery, timeout: float | None = None) -> QueryResult:
        """Blocking wrapper: submit one query and wait for its answer."""
        return self.submit(query).result(timeout)

    def execute_many(self, queries, timeout: float | None = None) -> list[QueryResult]:
        futures = self.submit_many(queries)
        return [future.result(timeout) for future in futures]

    def _admit(self, queries: list) -> list[ServeFuture]:
        if not self.running:
            raise ServerClosedError(
                "server is not running; use 'with QueryServer(engine):' or start()"
            )
        for query in queries:
            if not isinstance(query, AggregateQuery):
                raise InvalidQueryError(
                    "the server answers AggregateQuery range aggregates, "
                    f"got {type(query).__name__}"
                )
        # Tokens BEFORE answering: if a mutation lands between here and
        # the flush, the stored token is already outdated and the cached
        # answer will never validate.  One token per distinct column
        # covers every query on it in this admission.
        tokens_by_column: dict[tuple, tuple] = {}
        keys = []
        tokens = []
        for query in queries:
            keys.append(cache_key(query))
            column = (query.table, query.column)
            token = tokens_by_column.get(column)
            if token is None:
                token = tokens_by_column[column] = self.catalog.answer_token(*column)
            tokens.append(token)
        cached_answers = self.cache.get_many(keys, tokens)

        futures: list[ServeFuture] = []
        to_enqueue: list[PendingRequest] = []
        cache_hits = 0
        # Admission budget is computed once per call; concurrent
        # submitters make max_pending approximate, which is fine — it
        # bounds the queue, it is not a strict semaphore.
        budget = self.max_pending - len(self.coalescer)
        for query, key, token, cached in zip(queries, keys, tokens, cached_answers):
            if cached is not None:
                futures.append(ServeFuture.resolved(cached))
                cache_hits += 1
                continue
            if budget <= 0:
                futures.append(self._shed(query, key))
                continue
            budget -= 1
            request = PendingRequest(query=query, token=token, cache_key=key)
            to_enqueue.append(request)
            futures.append(request.future)
        depth = self.coalescer.add_many(to_enqueue) if to_enqueue else len(self.coalescer)
        with self._lock:
            self._counters["submitted"] += len(queries)
            self._counters["cache_hits"] += cache_hits
            self._counters["enqueued"] += len(to_enqueue)
        self.metrics.counter("serve_requests_total").inc(len(queries))
        if cache_hits:
            self.metrics.counter("serve_cache_hits_total").inc(cache_hits)
        self.metrics.gauge("serve_queue_depth").set(depth)
        return futures

    def _shed(self, query: AggregateQuery, key: tuple) -> ServeFuture:
        """Answer (or refuse) one query without queueing it."""
        future = ServeFuture()
        outcome, rung = self._shed_resolution(query, key)
        if isinstance(outcome, BaseException):
            future.set_exception(outcome)
        else:
            future.set_result(outcome)
        return future

    def retry_after_ms(self) -> float:
        """Backoff hint for refused requests (milliseconds).

        The oldest queued batch must flush within the coalescer's delay
        window, and a drained queue is what reopens admission — so the
        time left in that window bounds how soon retrying is useful.
        """
        window = self.coalescer.max_delay_seconds
        return max(0.0, window - self.coalescer.oldest_age_seconds()) * 1000.0

    def _shed_resolution(
        self, query: AggregateQuery, key: tuple
    ) -> tuple[QueryResult | BaseException, str]:
        """Descend the shed ladder once; returns ``(outcome, rung)``.

        ``outcome`` is a :class:`QueryResult` on an admitted rung and an
        exception (to set on the future) otherwise.  Shared by overload
        shedding and by the process pool's degraded completion path, so
        both account sheds identically.
        """
        if self.policy.allow_stale:
            cached = self.cache.get_even_stale(key)
            if cached is not None:
                with self._lock:
                    self._counters["shed_stale"] += 1
                self.metrics.counter("serve_shed_total", level="stale").inc()
                return replace(cached, degradation="stale"), "stale"
        if self.policy.allow_fallback:
            try:
                estimate = self.catalog.fallback_estimate(query)
            except InvalidQueryError as error:
                return error, "error"
            with self._lock:
                self._counters["shed_fallback"] += 1
            self.metrics.counter("serve_shed_total", level="fallback").inc()
            return (
                QueryResult(
                    query=query,
                    estimate=estimate,
                    exact=None,
                    synopsis_name="fallback-uniform",
                    synopsis_words=4,
                    degradation="fallback",
                ),
                "fallback",
            )
        if self.policy.allow_progressive:
            # Anytime rung: a stage-0 interval answer costs O(1) in the
            # synopsis (plus the appended-suffix delta) — cheap enough
            # to compute on the submitting thread even under overload,
            # and honest about its uncertainty where the stale and
            # fallback rungs silently guess.
            from repro.serving.progressive import initial_answer

            try:
                answer = initial_answer(
                    self.engine, query, confidence=self.confidence
                )
            except InvalidQueryError as error:
                return error, "error"
            with self._lock:
                self._counters["shed_progressive"] += 1
            self.metrics.counter("serve_shed_total", level="progressive").inc()
            return answer.as_result(), "progressive"
        with self._lock:
            self._counters["rejected"] += 1
        self.metrics.counter("serve_shed_total", level="rejected").inc()
        return (
            ServerOverloadedError(
                f"{len(self.coalescer)} requests pending (max_pending="
                f"{self.max_pending}) and the degradation policy admits "
                "no shed rung",
                retry_after_ms=self.retry_after_ms(),
            ),
            "rejected",
        )

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            batch = self.coalescer.next_batch(self._stop)
            if batch:
                self._flush(batch)
                continue
            if self._stop.is_set():
                return

    def _flush(self, batch: list[PendingRequest]) -> None:
        """Answer one coalesced batch and resolve its futures."""
        now = time.monotonic()
        with self.catalog.tracer.span("serve_batch", size=len(batch)):
            try:
                fault_point("serve_flush", size=len(batch))
                results = self.engine.execute_batch(
                    [request.query for request in batch],
                    on_stale=self.on_stale,
                    audit_rate=self.audit_rate,
                    degradation=self.policy,
                )
            except Exception:  # noqa: BLE001 — isolate per query below
                with self._lock:
                    self._counters["flush_errors"] += 1
                self.metrics.counter("serve_flush_errors_total").inc()
                self._flush_individually(batch)
                return
        self.cache.put_many(
            [
                (request.cache_key, request.token, result, _stage_rank_of(result))
                for request, result in zip(batch, results)
            ]
        )
        ServeFuture.resolve_batch(
            [(request.future, result) for request, result in zip(batch, results)]
        )
        self.metrics.histogram("serve_latency_seconds").observe_many(
            [max(now - request.enqueued_at, 0.0) for request in batch]
        )
        with self._lock:
            self._counters["batches"] += 1
            self._counters["served"] += len(batch)
        self.metrics.counter("serve_batches_total").inc()
        self.metrics.counter("serve_coalesced_total").inc(len(batch))
        self.metrics.histogram(
            "serve_batch_size", buckets=BATCH_SIZE_BUCKETS
        ).observe(len(batch))

    def _flush_individually(self, batch: list[PendingRequest]) -> None:
        """Fallback when a whole-batch call raises: answer one by one.

        One malformed query (unknown table, say) must fail *its own*
        future, not poison the other requests that happened to share
        its flush.
        """
        served = 0
        for request in batch:
            try:
                result = self.engine.execute(
                    request.query,
                    on_stale=self.on_stale,
                    degradation=self.policy,
                )
            except Exception as error:  # noqa: BLE001 — per-query isolation
                request.future.set_exception(error)
                continue
            self.cache.put(
                request.cache_key,
                request.token,
                result,
                stage_rank=_stage_rank_of(result),
            )
            request.future.set_result(result)
            served += 1
        with self._lock:
            self._counters["served"] += served

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-ready snapshot of the server's own counters."""
        with self._lock:
            counters = dict(self._counters)
        # Per-rung shed tally in one place, so operators read the whole
        # ladder at a glance instead of four scattered flat keys.
        counters["shed"] = {
            "stale": counters["shed_stale"],
            "fallback": counters["shed_fallback"],
            "progressive": counters["shed_progressive"],
            "rejected": counters["rejected"],
        }
        counters["retry_after_ms"] = self.retry_after_ms()
        counters["cache"] = self.cache.stats()
        counters["pending"] = len(self.coalescer)
        counters["running"] = self.running
        counters["max_batch"] = self.coalescer.max_batch
        counters["max_delay_ms"] = self.coalescer.max_delay_seconds * 1000.0
        counters["max_pending"] = self.max_pending
        if self._refiner is not None:
            counters["refiner"] = self._refiner.stats()
        return counters
