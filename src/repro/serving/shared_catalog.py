"""Shared-memory catalog snapshots for the multi-process serving tier.

The pool's workers must answer against *one* catalog copy without ever
pickling the engine (which is unpicklable by construction — it holds
locks and thread-local tracer state).  The persistence layer already
speaks bytes (:func:`repro.engine.persistence.serialize_catalog` /
:func:`deserialize_catalog`), so sharing a catalog is publishing those
bytes once into a ``multiprocessing.shared_memory`` segment:

* :class:`SharedCatalog` (parent side) — serialises the engine's
  synopses into a new segment per *epoch*, framed by a small header
  (magic, format, length, CRC-32, epoch) so a worker can detect a torn
  or half-written segment before trusting a single byte.  Each publish
  also freezes the per-column :meth:`~repro.serving.catalog.CatalogView.
  answer_token` map — the parent uses it to revalidate worker answers,
  which is what guarantees no pre-swap answer is ever served post-swap.
* :func:`attach_catalog` (worker side) — opens the segment by name,
  verifies the frame, and decodes the blob into a fresh in-process
  engine holding only synopses (no tables: workers serve the
  fresh/stale rungs; degraded rungs stay in the parent, which has the
  data).  ``np.load(allow_pickle=False)`` under the hood means the
  decode provably never unpickles anything.

Epoch lifecycle: ``publish`` creates a segment, workers roll over on
command, ``retire`` unlinks the old segment once no worker references
it.  Segments are owned by the parent; workers unregister their attach
from the resource tracker so a crashed worker never reaps a live
segment.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

from repro.engine.persistence import deserialize_catalog, serialize_catalog
from repro.errors import SerializationError
from repro.internal.faults import fault_point, transform_bytes

_MAGIC = b"RPSC"
_FRAME_FORMAT = 1
#: magic, frame format, payload length, payload CRC-32, epoch.
_HEADER = struct.Struct("<4sIQIQ")


@dataclass(frozen=True)
class CatalogEpoch:
    """One published snapshot: where it lives and what it certifies."""

    epoch: int
    segment_name: str
    payload_bytes: int
    #: Per-column answer tokens frozen at publish time; an answer
    #: computed by a worker on this epoch is valid exactly while the
    #: live token still equals the one frozen here.
    tokens: dict = field(default_factory=dict)
    #: Columns stale at publish time, frozen with the tokens.  The
    #: persistence format deliberately drops *monolithic* staleness (a
    #: session property), so an attaching worker must be told which
    #: columns were stale or it would serve them tagged ``fresh``.
    stale_keys: tuple = ()

    def token(self, table_name: str, column_name: str):
        return self.tokens.get((table_name, column_name))


class SharedCatalog:
    """Parent-side publisher of catalog epochs into shared memory."""

    def __init__(self) -> None:
        self._segments: dict[int, shared_memory.SharedMemory] = {}
        self._epochs: dict[int, CatalogEpoch] = {}
        self._next_epoch = 1
        self._current: CatalogEpoch | None = None

    # -- publishing ----------------------------------------------------
    def publish(self, engine) -> CatalogEpoch:
        """Serialise ``engine``'s synopses into a fresh epoch segment.

        Returns the new :class:`CatalogEpoch`; the previous epoch stays
        mapped (workers may still be answering on it) until
        :meth:`retire` is called.
        """
        from repro.serving.catalog import CatalogView

        view = CatalogView(engine)
        # Tokens BEFORE the payload, mirroring admission's token-before-
        # answer order.  If a mutation (append, rebuild) lands between
        # the two reads, the frozen tokens predate the payload, so every
        # post-mutation admission token-mismatches this epoch's answers
        # and recomputes on the parent — safe.  The reverse order would
        # freeze post-mutation tokens over a pre-mutation snapshot and
        # certify stale worker answers as fresh.  The key list is
        # snapshotted once so a concurrent build cannot mutate the dict
        # mid-iteration.
        keys = list(engine._synopses)
        tokens = {key: view.answer_token(key[0], key[1]) for key in keys}
        stale_keys = tuple(sorted(key for key in keys if key in engine._stale))
        payload = serialize_catalog(engine)
        epoch = self._next_epoch
        self._next_epoch += 1
        segment = shared_memory.SharedMemory(
            create=True, size=_HEADER.size + len(payload)
        )
        header = _HEADER.pack(
            _MAGIC, _FRAME_FORMAT, len(payload), zlib.crc32(payload), epoch
        )
        segment.buf[: _HEADER.size] = header
        segment.buf[_HEADER.size : _HEADER.size + len(payload)] = payload
        self._segments[epoch] = segment
        published = CatalogEpoch(
            epoch=epoch,
            segment_name=segment.name,
            payload_bytes=len(payload),
            tokens=tokens,
            stale_keys=stale_keys,
        )
        self._epochs[epoch] = published
        self._current = published
        return published

    # -- inspection ----------------------------------------------------
    @property
    def current(self) -> CatalogEpoch | None:
        return self._current

    def epochs(self) -> list[int]:
        return sorted(self._segments)

    # -- teardown ------------------------------------------------------
    def retire(self, epoch: int) -> None:
        """Unlink one epoch's segment (no-op for unknown epochs)."""
        segment = self._segments.pop(epoch, None)
        self._epochs.pop(epoch, None)
        if segment is None:
            return
        segment.close()
        # Re-register before unlinking: a forked worker's post-attach
        # unregister acts on the tracker *shared* with this process, so
        # without this the unlink's own unregister would complain about
        # an unknown name.  Registration is an idempotent set-add.
        resource_tracker.register(segment._name, "shared_memory")  # noqa: SLF001
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already reaped
            pass

    def close(self) -> None:
        """Retire every epoch still mapped."""
        for epoch in list(self._segments):
            self.retire(epoch)
        self._current = None

    def __enter__(self) -> "SharedCatalog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass(frozen=True)
class AttachedCatalog:
    """Worker-side result of :func:`attach_catalog`."""

    engine: object
    epoch: int
    restored: int
    payload_bytes: int


def read_segment(segment_name: str, **fault_attrs) -> tuple[bytes, int]:
    """Read and verify one epoch segment; returns ``(payload, epoch)``.

    Raises :class:`~repro.errors.SerializationError` on any framing
    damage — wrong magic (attached to something that is not a catalog),
    unknown frame format, truncated payload, or CRC mismatch (torn
    write).  The ``shared_attach`` fault site fires before the segment
    is opened and its ``transform_bytes`` hook can corrupt the payload
    in flight, which is how chaos tests simulate torn attaches;
    ``fault_attrs`` (e.g. the pool worker's ``worker``/``generation``)
    let chaos rules target a specific attach.
    """
    fault_point("shared_attach", segment=segment_name, **fault_attrs)
    try:
        segment = shared_memory.SharedMemory(name=segment_name)
    except FileNotFoundError as error:
        raise SerializationError(
            f"shared catalog segment {segment_name!r} does not exist"
        ) from error
    # The parent owns segment lifecycle; without this, the attaching
    # process's resource tracker would unlink the segment when *it*
    # exits, tearing the catalog out from under every sibling worker.
    resource_tracker.unregister(segment._name, "shared_memory")  # noqa: SLF001
    try:
        if len(segment.buf) < _HEADER.size:
            raise SerializationError(
                f"shared catalog segment {segment_name!r} is too small "
                f"({len(segment.buf)} bytes) to hold a frame header"
            )
        magic, frame_format, length, crc, epoch = _HEADER.unpack(
            bytes(segment.buf[: _HEADER.size])
        )
        if magic != _MAGIC:
            raise SerializationError(
                f"segment {segment_name!r} is not a shared catalog "
                f"(bad magic {magic!r})"
            )
        if frame_format != _FRAME_FORMAT:
            raise SerializationError(
                f"segment {segment_name!r} has unknown frame format "
                f"{frame_format} (this build reads {_FRAME_FORMAT})"
            )
        if _HEADER.size + length > len(segment.buf):
            raise SerializationError(
                f"segment {segment_name!r} is torn: header claims {length} "
                f"payload bytes, segment holds {len(segment.buf) - _HEADER.size}"
            )
        payload = bytes(segment.buf[_HEADER.size : _HEADER.size + length])
    finally:
        segment.close()
    payload = transform_bytes(
        "shared_attach", payload, segment=segment_name, **fault_attrs
    )
    if zlib.crc32(payload) != crc:
        raise SerializationError(
            f"segment {segment_name!r} failed its CRC-32 check "
            "(torn or corrupted publish)"
        )
    return payload, int(epoch)


def attach_catalog(segment_name: str, *, engine=None, **fault_attrs) -> AttachedCatalog:
    """Attach one epoch segment and decode it into a serving engine.

    ``engine`` defaults to a fresh
    :class:`~repro.engine.engine.ApproximateQueryEngine`; pass one to
    reuse an existing instance across epoch rollovers (its synopses are
    replaced, its metrics survive).  The decode path never unpickles:
    the blob is a ``np.savez`` archive loaded with
    ``allow_pickle=False``.
    """
    payload, epoch = read_segment(segment_name, **fault_attrs)
    if engine is None:
        from repro.engine.engine import ApproximateQueryEngine

        engine = ApproximateQueryEngine()
    restored = deserialize_catalog(
        engine, payload, source=f"shm:{segment_name}"
    )
    return AttachedCatalog(
        engine=engine,
        epoch=epoch,
        restored=restored,
        payload_bytes=len(payload),
    )


def catalog_digest(engine) -> dict:
    """Cheap structural summary used by tests to compare catalogs."""
    digest = {}
    for (table, column), entry in sorted(engine._synopses.items()):
        digest[f"{table}.{column}"] = {
            "method": entry.method,
            "budget_words": int(entry.budget_words),
            "shards": int(getattr(entry, "shards", 1)),
            "stale": (table, column) in engine._stale,
            "quarantined": (table, column) in engine._quarantined,
        }
    return digest


__all__ = [
    "AttachedCatalog",
    "CatalogEpoch",
    "SharedCatalog",
    "attach_catalog",
    "catalog_digest",
    "read_segment",
]
