"""Worker liveness supervision for the multi-process serving pool.

:class:`WorkerSupervisor` is a *pure* state machine: it never spawns,
signals, or waits on processes itself.  The pool feeds it observations
(``observe_spawn`` / ``observe_heartbeat`` / ``observe_exit``) and
periodically calls :meth:`tick`, which returns the actions the pool
must carry out — spawn a replacement, kill a wedged worker.  Keeping
the policy side-effect free makes every liveness transition unit
testable with a fake clock, which is the only way to test "worker went
silent for 3 seconds" without sleeping for 3 seconds.

Per-slot lifecycle::

    (empty) --spawn_requested--> STARTING --heartbeat--> LIVE
    LIVE --heartbeat gap > heartbeat_timeout--> SUSPECT
    SUSPECT --heartbeat--> LIVE          (it was just slow)
    SUSPECT --gap > hang_timeout--> action: kill  (wedged; exit follows)
    any --observe_exit--> BACKOFF --backoff elapsed--> action: spawn
    BACKOFF --breaker open--> PARKED     (crash-looping; cool down)

Restart backoff is jittered exponential
(:func:`repro.engine.resilience.jittered_backoff` — deterministic
schedules would re-synchronise a fleet of crash-looping workers), and
each slot carries a :class:`repro.engine.resilience.CircuitBreaker`:
``breaker_threshold`` consecutive failed generations park the slot for
``breaker_cooldown_seconds`` instead of burning CPU on a hopeless
restart loop.  A generation that lives long enough to heartbeat counts
as a breaker success.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.engine.resilience import CircuitBreaker, jittered_backoff
from repro.errors import InvalidParameterError

#: Slot states (see module docstring for the transition diagram).
SLOT_EMPTY = "empty"
SLOT_STARTING = "starting"
SLOT_LIVE = "live"
SLOT_SUSPECT = "suspect"
SLOT_BACKOFF = "backoff"
SLOT_PARKED = "parked"

#: Actions a tick can demand of the pool.
ACTION_SPAWN = "spawn"
ACTION_KILL = "kill"


@dataclass(frozen=True)
class SupervisorAction:
    """One side effect the pool must perform for a slot."""

    kind: str
    slot: int
    generation: int
    reason: str = ""


@dataclass
class _SlotState:
    state: str = SLOT_EMPTY
    generation: int = -1
    pid: int | None = None
    last_heartbeat: float | None = None
    started_at: float | None = None
    backoff_until: float | None = None
    restarts: int = 0
    kills: int = 0
    exits: int = 0
    last_exitcode: int | None = None
    heartbeats: int = 0
    #: Set once per generation on the first heartbeat: the breaker
    #: records a success only when the generation proved viable.
    generation_confirmed: bool = False
    #: A kill was already demanded for this generation (SIGKILL is
    #: idempotent but the counter should not inflate every tick).
    kill_demanded: bool = False
    breaker: CircuitBreaker = field(default=None)  # type: ignore[assignment]


class WorkerSupervisor:
    """Liveness policy for ``slots`` worker slots (pure, clock-injected)."""

    def __init__(
        self,
        slots: int,
        *,
        heartbeat_timeout_seconds: float = 1.0,
        hang_timeout_seconds: float = 3.0,
        restart_backoff_seconds: float = 0.05,
        restart_backoff_max_seconds: float = 2.0,
        backoff_jitter: float = 0.5,
        breaker_threshold: int = 5,
        breaker_cooldown_seconds: float = 30.0,
        clock=None,
        rng: random.Random | None = None,
    ) -> None:
        if slots < 1:
            raise InvalidParameterError(f"slots must be >= 1, got {slots}")
        if heartbeat_timeout_seconds <= 0:
            raise InvalidParameterError(
                f"heartbeat_timeout_seconds must be > 0, "
                f"got {heartbeat_timeout_seconds}"
            )
        if hang_timeout_seconds <= heartbeat_timeout_seconds:
            raise InvalidParameterError(
                "hang_timeout_seconds must exceed heartbeat_timeout_seconds "
                f"({hang_timeout_seconds} <= {heartbeat_timeout_seconds})"
            )
        if restart_backoff_seconds < 0:
            raise InvalidParameterError(
                f"restart_backoff_seconds must be >= 0, "
                f"got {restart_backoff_seconds}"
            )
        self.heartbeat_timeout_seconds = float(heartbeat_timeout_seconds)
        self.hang_timeout_seconds = float(hang_timeout_seconds)
        self.restart_backoff_seconds = float(restart_backoff_seconds)
        self.restart_backoff_max_seconds = float(restart_backoff_max_seconds)
        self.backoff_jitter = float(backoff_jitter)
        self._clock = clock
        self._rng = rng if rng is not None else random.Random()
        self._slots = {
            slot: _SlotState(
                breaker=CircuitBreaker(
                    failure_threshold=breaker_threshold,
                    cooldown_seconds=breaker_cooldown_seconds,
                    clock=clock,
                )
            )
            for slot in range(slots)
        }

    def _now(self) -> float:
        return time.monotonic() if self._clock is None else self._clock.now()

    # -- observations (fed by the pool) --------------------------------
    def observe_spawn(self, slot: int, pid: int | None = None) -> int:
        """A worker process was started for ``slot``; returns its generation."""
        state = self._slots[slot]
        state.generation += 1
        state.state = SLOT_STARTING
        state.pid = pid
        state.started_at = self._now()
        state.last_heartbeat = state.started_at
        state.backoff_until = None
        state.generation_confirmed = False
        state.kill_demanded = False
        return state.generation

    def observe_heartbeat(self, slot: int) -> None:
        state = self._slots[slot]
        if state.state in (SLOT_EMPTY, SLOT_BACKOFF, SLOT_PARKED):
            # A heartbeat that raced the exit notification; the worker
            # is already gone, nothing to refresh.
            return
        state.last_heartbeat = self._now()
        state.heartbeats += 1
        if state.state in (SLOT_STARTING, SLOT_SUSPECT):
            state.state = SLOT_LIVE
        if not state.generation_confirmed:
            state.generation_confirmed = True
            state.breaker.record_success()

    def observe_exit(self, slot: int, exitcode: int | None = None) -> None:
        """The slot's worker process is gone (crash, kill, or clean exit)."""
        state = self._slots[slot]
        if state.state in (SLOT_EMPTY, SLOT_BACKOFF, SLOT_PARKED):
            return
        state.exits += 1
        state.last_exitcode = exitcode
        opened = state.breaker.record_failure()
        if opened or not state.breaker.allow():
            state.state = SLOT_PARKED
            state.backoff_until = None
            return
        delay = min(
            jittered_backoff(
                self.restart_backoff_seconds,
                min(state.breaker.consecutive_failures - 1, 8),
                rng=self._rng,
                jitter=self.backoff_jitter,
            ),
            self.restart_backoff_max_seconds,
        )
        state.state = SLOT_BACKOFF
        state.backoff_until = self._now() + delay

    # -- policy --------------------------------------------------------
    def tick(self) -> list[SupervisorAction]:
        """Advance time; returns the actions the pool must perform now.

        Idempotent between observations: a demanded ``kill`` is only
        re-demanded while the slot is still SUSPECT (the pool's kill
        leads to ``observe_exit``, which moves it on), and a ``spawn``
        is demanded exactly once per backoff expiry (the pool's spawn
        calls ``observe_spawn``).
        """
        now = self._now()
        actions: list[SupervisorAction] = []
        for slot, state in self._slots.items():
            if state.state == SLOT_EMPTY:
                actions.append(
                    SupervisorAction(
                        ACTION_SPAWN, slot, state.generation + 1, "initial"
                    )
                )
            elif state.state in (SLOT_LIVE, SLOT_STARTING, SLOT_SUSPECT):
                last = (
                    state.last_heartbeat
                    if state.last_heartbeat is not None
                    else now
                )
                gap = now - last
                if gap > self.hang_timeout_seconds:
                    state.state = SLOT_SUSPECT
                    if not state.kill_demanded:
                        state.kill_demanded = True
                        state.kills += 1
                        actions.append(
                            SupervisorAction(
                                ACTION_KILL,
                                slot,
                                state.generation,
                                f"no heartbeat for {gap:.3f}s (wedged)",
                            )
                        )
                elif gap > self.heartbeat_timeout_seconds:
                    if state.state != SLOT_SUSPECT:
                        state.state = SLOT_SUSPECT
            elif state.state == SLOT_BACKOFF:
                if state.backoff_until is not None and now >= state.backoff_until:
                    state.restarts += 1
                    actions.append(
                        SupervisorAction(
                            ACTION_SPAWN,
                            slot,
                            state.generation + 1,
                            "backoff elapsed",
                        )
                    )
            elif state.state == SLOT_PARKED:
                if state.breaker.allow():
                    # Cool-down elapsed: half-open probe generation.
                    state.restarts += 1
                    actions.append(
                        SupervisorAction(
                            ACTION_SPAWN,
                            slot,
                            state.generation + 1,
                            "breaker half-open probe",
                        )
                    )
        return actions

    # -- queries -------------------------------------------------------
    def state(self, slot: int) -> str:
        return self._slots[slot].state

    def generation(self, slot: int) -> int:
        return self._slots[slot].generation

    def live_slots(self) -> list[int]:
        """Slots currently able to take work (heartbeating or fresh)."""
        return [
            slot
            for slot, state in self._slots.items()
            if state.state in (SLOT_LIVE, SLOT_STARTING)
        ]

    def snapshot(self) -> dict:
        """Full per-slot status for stats()/artifact export."""
        return {
            slot: {
                "state": state.state,
                "generation": state.generation,
                "pid": state.pid,
                "restarts": state.restarts,
                "exits": state.exits,
                "kills": state.kills,
                "heartbeats": state.heartbeats,
                "last_exitcode": state.last_exitcode,
                "breaker": state.breaker.snapshot(),
            }
            for slot, state in self._slots.items()
        }


__all__ = [
    "ACTION_KILL",
    "ACTION_SPAWN",
    "SLOT_BACKOFF",
    "SLOT_EMPTY",
    "SLOT_LIVE",
    "SLOT_PARKED",
    "SLOT_STARTING",
    "SLOT_SUSPECT",
    "SupervisorAction",
    "WorkerSupervisor",
]
