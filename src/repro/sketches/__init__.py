"""Sketch-based summary statistics.

Histograms and wavelets are the paper's two synopsis families; sketches
are the third classic one, included for completeness of comparison and
for their streaming strengths.  :class:`CountMinSketch` answers point
queries with one-sided error; :class:`DyadicCountMin` stacks one sketch
per dyadic level so any range decomposes into O(log n) sketch lookups —
the standard dyadic trick.  Both support O(depth)-per-update streaming
maintenance, the regime where they beat the offline-optimal histograms.
"""

from repro.sketches.countmin import CountMinSketch
from repro.sketches.dyadic import DyadicCountMin, build_sketch

__all__ = ["CountMinSketch", "DyadicCountMin", "build_sketch"]
