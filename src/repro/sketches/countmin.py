"""The Count-Min sketch (Cormode & Muthukrishnan).

``depth`` pairwise-independent hash rows of ``width`` counters; an
update adds to one counter per row, a point query takes the minimum
over the rows.  With non-negative updates the estimate never
undercounts, and overcounts by more than ``e * total / width`` with
probability at most ``e^-depth`` — the classic guarantee, verified
statistically in the test suite.

Hashing is the standard 2-universal scheme ``((a*x + b) mod p) mod
width`` with the Mersenne prime ``p = 2^31 - 1`` and per-row random
``(a, b)`` from a seeded generator — products of two sub-``2^31``
values fit comfortably in int64, so hashing stays fully vectorised.
Sketches are reproducible and mergeable (same seed/geometry => same
hash functions).
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError

_MERSENNE = (1 << 31) - 1


class CountMinSketch:
    """A ``depth x width`` Count-Min sketch over integer keys."""

    def __init__(self, width: int, depth: int = 4, seed: int = 0) -> None:
        if width < 1 or depth < 1:
            raise InvalidParameterError(
                f"width and depth must be >= 1, got {width} x {depth}"
            )
        self.width = int(width)
        self.depth = int(depth)
        self.seed = int(seed)
        rng = np.random.default_rng(seed)
        self._a = rng.integers(1, _MERSENNE, size=depth, dtype=np.int64)
        self._b = rng.integers(0, _MERSENNE, size=depth, dtype=np.int64)
        self.table = np.zeros((depth, width), dtype=np.float64)
        self.total = 0.0

    def _rows_and_columns(self, keys: np.ndarray) -> np.ndarray:
        """Hash ``keys`` to one column per row: shape ``(depth, len(keys))``."""
        keys = np.asarray(keys, dtype=np.int64) % _MERSENNE
        hashed = (self._a[:, None] * keys[None, :] + self._b[:, None]) % _MERSENNE
        return hashed % self.width

    def update(self, key: int, delta: float = 1.0) -> None:
        """Add ``delta`` to ``key``'s counters (O(depth))."""
        columns = self._rows_and_columns(np.asarray([key]))[:, 0]
        self.table[np.arange(self.depth), columns] += delta
        self.total += delta

    def update_many(self, keys, deltas) -> None:
        """Batched updates (vectorised per row)."""
        keys = np.asarray(keys, dtype=np.int64)
        deltas = np.asarray(deltas, dtype=np.float64)
        columns = self._rows_and_columns(keys)
        for row in range(self.depth):
            np.add.at(self.table[row], columns[row], deltas)
        self.total += float(deltas.sum())

    def estimate(self, key: int) -> float:
        """Point estimate: minimum counter across rows."""
        return float(self.estimate_many(np.asarray([key]))[0])

    def estimate_many(self, keys) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.int64)
        columns = self._rows_and_columns(keys)
        rows = np.arange(self.depth)[:, None]
        return self.table[rows, columns].min(axis=0)

    def storage_words(self) -> int:
        """Counters plus one (a, b) hash pair per row."""
        return self.depth * self.width + 2 * self.depth

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Combine two sketches of identical geometry and seed."""
        if (self.width, self.depth, self.seed) != (other.width, other.depth, other.seed):
            raise InvalidParameterError(
                "can only merge sketches with identical width/depth/seed"
            )
        merged = CountMinSketch(self.width, self.depth, self.seed)
        merged.table = self.table + other.table
        merged.total = self.total + other.total
        return merged
