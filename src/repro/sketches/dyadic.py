"""Range sums from Count-Min sketches via dyadic decomposition.

Any range ``[l, r]`` over a power-of-two domain decomposes canonically
into at most ``2 log2(N)`` dyadic blocks; keeping one Count-Min sketch
per dyadic level turns a range-sum query into O(log N) point lookups.
With non-negative data each lookup overcounts only, so so does the
range estimate — a one-sided guarantee histograms and wavelets lack.

Sketches shine in the streaming regime: a point update touches one
dyadic block per level (O(depth * log N) counter increments, no
rebuild), and two sketches over disjoint streams merge by addition.
Their weakness, shown by ``benchmarks/test_ablations.py``'s A8, is raw
accuracy per word against the offline-optimal histograms — which is the
right mental model: sketches buy updatability and mergeability with
space.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError, InvalidQueryError
from repro.internal.validation import as_frequency_vector
from repro.queries.estimators import RangeSumEstimator
from repro.sketches.countmin import CountMinSketch
from repro.wavelets.haar import next_power_of_two


def dyadic_decompose(low: int, high: int, levels: int) -> list[tuple[int, int]]:
    """Canonical dyadic cover of ``[low, high]``: list of (level, block).

    Level 0 blocks are single positions; level ``k`` blocks have length
    ``2^k``.  At most 2 blocks per level.
    """
    cover: list[tuple[int, int]] = []
    lo, hi = int(low), int(high) + 1  # half-open [lo, hi)
    level = 0
    while lo < hi and level < levels:
        if lo & (1 << level):
            cover.append((level, lo >> level))
            lo += 1 << level
        if hi & (1 << level):
            hi -= 1 << level
            cover.append((level, hi >> level))
        level += 1
    while lo < hi:  # top-level blocks
        cover.append((levels, lo >> levels))
        lo += 1 << levels
    return cover


class DyadicCountMin(RangeSumEstimator):
    """Range-sum estimator: one Count-Min sketch per dyadic level.

    Parameters
    ----------
    data:
        Initial frequency vector (may be all zeros for pure streaming).
    total_budget_words:
        Word budget split evenly across the ``log2(N) + 1`` levels.
    depth:
        Hash rows per sketch (error probability decays as ``e^-depth``).
    seed:
        Base seed; level ``k`` uses ``seed + k``.
    """

    def __init__(self, data, total_budget_words: int, depth: int = 4, seed: int = 0) -> None:
        data = as_frequency_vector(data)
        self.n = int(data.size)
        self.padded_n = next_power_of_two(self.n)
        self.levels = int(np.log2(self.padded_n))
        per_level_words = total_budget_words // (self.levels + 1)
        width = max((per_level_words - 2 * depth) // depth, 1)
        if width < 4:
            raise InvalidParameterError(
                f"budget {total_budget_words} words is too small for "
                f"{self.levels + 1} dyadic levels at depth {depth}"
            )
        self.sketches = [
            CountMinSketch(width, depth, seed=seed + level)
            for level in range(self.levels + 1)
        ]
        nonzero = np.nonzero(data)[0]
        if nonzero.size:
            self._ingest(nonzero, data[nonzero])

    def _ingest(self, positions: np.ndarray, deltas: np.ndarray) -> None:
        for level, sketch in enumerate(self.sketches):
            sketch.update_many(positions >> level, deltas)

    # ------------------------------------------------------------------
    # Streaming maintenance
    # ------------------------------------------------------------------
    def update(self, index: int, delta: float = 1.0) -> None:
        """Apply ``data[index] += delta`` in O(depth * log N)."""
        if not 0 <= index < self.n:
            raise InvalidQueryError(f"update index {index} out of range [0, {self.n})")
        for level, sketch in enumerate(self.sketches):
            sketch.update(index >> level, delta)

    def merge(self, other: "DyadicCountMin") -> "DyadicCountMin":
        """Combine with a sketch of identical geometry over another stream."""
        if self.n != other.n or len(self.sketches) != len(other.sketches):
            raise InvalidParameterError("can only merge identical dyadic geometries")
        merged = DyadicCountMin.__new__(DyadicCountMin)
        merged.n = self.n
        merged.padded_n = self.padded_n
        merged.levels = self.levels
        merged.sketches = [
            mine.merge(theirs) for mine, theirs in zip(self.sketches, other.sketches)
        ]
        return merged

    # ------------------------------------------------------------------
    # Estimator protocol
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return "SKETCH-CM"

    def storage_words(self) -> int:
        return sum(sketch.storage_words() for sketch in self.sketches)

    def estimate_many(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        result = np.empty(lows.shape, dtype=np.float64)
        for position, (low, high) in enumerate(zip(lows.tolist(), highs.tolist())):
            total = 0.0
            for level, block in dyadic_decompose(low, high, self.levels):
                total += self.sketches[level].estimate(block)
            result[position] = total
        return result


def build_sketch(data, total_budget_words: int, depth: int = 4, seed: int = 0) -> DyadicCountMin:
    """Budget-driven construction of the dyadic Count-Min estimator."""
    return DyadicCountMin(data, total_budget_words, depth=depth, seed=seed)
