"""Wavelet-based summary statistics (Section 3 of the paper).

``haar``          orthonormal Haar transform, inverse, basis evaluation
``point_topb``    classic largest-B-coefficients synopsis (TOPBB)
``range_optimal`` Theorem 9: coefficients optimal for range queries via
                  the structured 2-D transform of the virtual range-sum
                  matrix ``AA[i, j] = s[i, j]``
"""

from repro.wavelets.haar import (
    basis_prefix,
    basis_value,
    haar_transform,
    inverse_haar_transform,
    next_power_of_two,
)
from repro.wavelets.dynamic import DynamicPointWavelet
from repro.wavelets.point_topb import PointTopBWavelet, build_wavelet_point
from repro.wavelets.range_optimal import (
    RangeOptimalWavelet,
    aa_tensor_coefficients,
    build_wavelet_range,
)

__all__ = [
    "haar_transform",
    "inverse_haar_transform",
    "basis_value",
    "basis_prefix",
    "next_power_of_two",
    "PointTopBWavelet",
    "DynamicPointWavelet",
    "build_wavelet_point",
    "RangeOptimalWavelet",
    "aa_tensor_coefficients",
    "build_wavelet_range",
]
