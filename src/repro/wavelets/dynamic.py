"""Dynamically-maintained Haar synopsis under point updates.

The paper's companion line of work [11] maintains wavelet summaries as
the underlying relation changes.  A point update ``A[i] += delta``
touches exactly one basis vector per level — the ``log2(N) + 1``
coefficients whose support contains ``i`` — so the *full* spectrum can
be maintained in O(log N) per update.  The synopsis view (the top-B
coefficients by magnitude) is re-selected lazily at the next query,
which keeps updates cheap under bursts.

This maintains the exact spectrum (Theta(N) internal state, like the
histogram builders' inputs); the *synopsis* — what an engine would ship
to its optimiser — remains the ``2B``-word top-B view, available as a
frozen :class:`~repro.wavelets.point_topb.PointTopBWavelet` snapshot.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError, InvalidQueryError
from repro.internal.validation import as_frequency_vector, check_bucket_count
from repro.queries.estimators import RangeSumEstimator
from repro.wavelets.haar import basis_prefix, haar_transform, next_power_of_two
from repro.wavelets.point_topb import PointTopBWavelet


class DynamicPointWavelet(RangeSumEstimator):
    """Top-B Haar synopsis with O(log N) point updates.

    Parameters
    ----------
    data:
        Initial frequency vector.
    n_coefficients:
        Size of the synopsis view (the B of top-B).
    """

    def __init__(self, data, n_coefficients: int) -> None:
        data = as_frequency_vector(data)
        self.n = int(data.size)
        self.n_coefficients = check_bucket_count(
            n_coefficients, self.n, name="n_coefficients"
        )
        self.padded_n = next_power_of_two(self.n)
        self._levels = int(np.log2(self.padded_n))
        padded = np.zeros(self.padded_n, dtype=np.float64)
        padded[: self.n] = data
        self._spectrum = haar_transform(padded)
        self._dirty = True
        self._indices = np.empty(0, dtype=np.int64)
        self._values = np.empty(0, dtype=np.float64)
        self.update_count = 0

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def touched_coefficients(self, index: int) -> list[int]:
        """The O(log N) coefficient indices whose support contains ``index``."""
        touched = [0]
        for level in range(self._levels):
            touched.append((1 << level) + (index >> (self._levels - level)))
        return touched

    def update(self, index: int, delta: float) -> None:
        """Apply ``A[index] += delta`` in O(log N)."""
        if not 0 <= index < self.n:
            raise InvalidQueryError(f"update index {index} out of range [0, {self.n})")
        delta = float(delta)
        n = self.padded_n
        # Scaling coefficient: psi_0(index) = 1/sqrt(N).
        self._spectrum[0] += delta / np.sqrt(n)
        for level in range(self._levels):
            support = n >> level
            coefficient = (1 << level) + (index >> (self._levels - level))
            within = index & (support - 1)
            sign = 1.0 if within < support // 2 else -1.0
            self._spectrum[coefficient] += sign * delta / np.sqrt(support)
        self._dirty = True
        self.update_count += 1

    def apply_batch(self, indices, deltas) -> None:
        """Apply many point updates (simple loop; updates are O(log N))."""
        for index, delta in zip(np.asarray(indices).tolist(), np.asarray(deltas).tolist()):
            self.update(int(index), float(delta))

    def _refresh(self) -> None:
        if not self._dirty:
            return
        order = np.argsort(-np.abs(self._spectrum), kind="stable")
        kept = np.sort(order[: self.n_coefficients])
        self._indices = kept.astype(np.int64)
        self._values = self._spectrum[kept]
        self._dirty = False

    # ------------------------------------------------------------------
    # Estimator protocol
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return "TOPBB-DYNAMIC"

    def storage_words(self) -> int:
        """The shipped synopsis view: index + value per coefficient."""
        self._refresh()
        return 2 * int(self._indices.size)

    def estimate_many(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        self._refresh()
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        result = np.zeros(lows.shape, dtype=np.float64)
        for index, value in zip(self._indices.tolist(), self._values.tolist()):
            upper = basis_prefix(index, highs, self.padded_n)
            lower = basis_prefix(index, lows - 1, self.padded_n)
            result += value * (upper - lower)
        return result

    def snapshot(self) -> PointTopBWavelet:
        """Freeze the current top-B view as an immutable synopsis."""
        self._refresh()
        frozen = PointTopBWavelet.__new__(PointTopBWavelet)
        frozen.n = self.n
        frozen.padded_n = self.padded_n
        frozen.indices = self._indices.copy()
        frozen.coefficients = self._values.copy()
        return frozen
