"""Orthonormal Haar wavelet transform and basis evaluation.

Coefficient indexing (for a length-``N = 2^J`` signal):

* index 0 — the scaling coefficient, basis vector ``1/sqrt(N)`` everywhere;
* index ``i`` with ``2^j <= i < 2^(j+1)`` — the level-``j`` detail whose
  support is the block of length ``N / 2^j`` starting at
  ``(i - 2^j) * N / 2^j``, valued ``+1/sqrt(s)`` on the first half and
  ``-1/sqrt(s)`` on the second (``s`` the support length).

The basis is orthonormal, so Parseval holds: picking the ``B`` largest
coefficients by absolute value minimises the point-reconstruction SSE
over all size-``B`` subsets — the classical wavelet synopsis the paper's
Figure 1 labels TOPBB.  :func:`basis_value` and :func:`basis_prefix`
evaluate single basis vectors (and their running sums) in O(1) per
position, which lets synopses answer point and range queries without
materialising any length-``N`` vector.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError

_SQRT2 = float(np.sqrt(2.0))


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= ``n``."""
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    return 1 << (int(n) - 1).bit_length()


def _check_power_of_two(n: int) -> None:
    if n & (n - 1):
        raise InvalidParameterError(f"length must be a power of two, got {n}")


def haar_transform(values) -> np.ndarray:
    """Orthonormal Haar transform of a power-of-two-length signal."""
    work = np.asarray(values, dtype=np.float64).copy()
    n = work.size
    _check_power_of_two(n)
    out = np.empty(n, dtype=np.float64)
    length = n
    while length > 1:
        half = length // 2
        even = work[0:length:2]
        odd = work[1:length:2]
        out[half:length] = (even - odd) / _SQRT2
        work[:half] = (even + odd) / _SQRT2
        length = half
    out[0] = work[0]
    return out


def inverse_haar_transform(coefficients) -> np.ndarray:
    """Inverse of :func:`haar_transform`."""
    coefficients = np.asarray(coefficients, dtype=np.float64)
    n = coefficients.size
    _check_power_of_two(n)
    work = np.empty(n, dtype=np.float64)
    work[0] = coefficients[0]
    length = 1
    while length < n:
        double = length * 2
        smooth = work[:length].copy()
        detail = coefficients[length:double]
        work[0:double:2] = (smooth + detail) / _SQRT2
        work[1:double:2] = (smooth - detail) / _SQRT2
        length = double
    return work


def _coefficient_geometry(index: int, n: int) -> tuple[int, int]:
    """``(support_start, support_length)`` of detail coefficient ``index >= 1``."""
    level = index.bit_length() - 1  # index in [2^level, 2^(level+1))
    support = n >> level
    start = (index - (1 << level)) * support
    return start, support


def basis_value(index: int, positions, n: int) -> np.ndarray:
    """Value of orthonormal Haar basis vector ``index`` at ``positions``.

    ``positions`` may be any integer array with entries in ``[0, n)``.
    """
    positions = np.asarray(positions, dtype=np.int64)
    if index == 0:
        return np.full(positions.shape, 1.0 / np.sqrt(n))
    start, support = _coefficient_geometry(index, n)
    half = support // 2
    height = 1.0 / np.sqrt(support)
    rel = positions - start
    values = np.zeros(positions.shape, dtype=np.float64)
    first = (rel >= 0) & (rel < half)
    second = (rel >= half) & (rel < support)
    values[first] = height
    values[second] = -height
    return values


def basis_prefix(index: int, positions, n: int) -> np.ndarray:
    """Running sum ``sum_{u <= t} psi_index(u)`` at each ``t`` in ``positions``.

    Positions may include ``-1`` (empty prefix, value 0).  For a detail
    vector this is the classic "tent": rising over the first half of the
    support, falling back to zero over the second.
    """
    positions = np.asarray(positions, dtype=np.int64)
    if index == 0:
        return (positions + 1) / np.sqrt(n)
    start, support = _coefficient_geometry(index, n)
    half = support // 2
    height = 1.0 / np.sqrt(support)
    rel = np.clip(positions - start + 1, 0, support)
    return height * np.minimum(rel, support - rel)
