"""The classic point-wise top-B Haar synopsis (Figure 1's TOPBB).

Keep the ``B`` coefficients of largest absolute value in the orthonormal
Haar transform of the data — optimal for *point* reconstruction SSE by
Parseval, which is how prior wavelet work [11, 17] selected summaries.
Range queries are answered by summing the reconstruction over the range
via the closed-form basis prefix integrals (O(B) per query, no length-n
reconstruction).  The paper's point: this selection is *not* optimal for
range queries — see :mod:`repro.wavelets.range_optimal`.
"""

from __future__ import annotations

import numpy as np

from repro.internal.validation import as_frequency_vector, check_bucket_count
from repro.queries.estimators import RangeSumEstimator
from repro.wavelets.haar import basis_prefix, haar_transform, next_power_of_two


class PointTopBWavelet(RangeSumEstimator):
    """Haar synopsis retaining the ``B`` largest-magnitude coefficients.

    Parameters
    ----------
    data:
        Frequency vector; zero-padded internally to a power of two.
    n_coefficients:
        Number of retained coefficients (ties broken by index).
    """

    def __init__(self, data, n_coefficients: int) -> None:
        data = as_frequency_vector(data)
        self.n = int(data.size)
        n_coefficients = check_bucket_count(
            n_coefficients, self.n, name="n_coefficients"
        )
        self.padded_n = next_power_of_two(self.n)
        padded = np.zeros(self.padded_n, dtype=np.float64)
        padded[: self.n] = data
        spectrum = haar_transform(padded)
        order = np.argsort(-np.abs(spectrum), kind="stable")
        kept = np.sort(order[:n_coefficients])
        self.indices = kept.astype(np.int64)
        self.coefficients = spectrum[kept]

    @property
    def name(self) -> str:
        return "TOPBB"

    def storage_words(self) -> int:
        """Two words per retained coefficient: index and value."""
        return 2 * int(self.indices.size)

    def estimate_many(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        result = np.zeros(lows.shape, dtype=np.float64)
        for index, coefficient in zip(self.indices.tolist(), self.coefficients.tolist()):
            upper = basis_prefix(index, highs, self.padded_n)
            lower = basis_prefix(index, lows - 1, self.padded_n)
            result += coefficient * (upper - lower)
        return result


def build_wavelet_point(data, n_coefficients: int) -> PointTopBWavelet:
    """Build the TOPBB point-optimal wavelet synopsis."""
    return PointTopBWavelet(data, n_coefficients)
