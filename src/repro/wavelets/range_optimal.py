"""Range-optimal wavelet synopses via the virtual ``AA`` matrix (Theorem 9).

The paper's construction: consider the (never materialised) matrix
``AA[i, j] = s[i, j]`` of all range sums and choose the ``B`` two-dimensional
Haar coefficients that are point-wise optimal *for AA* — i.e. optimal for
range queries.  A dense 2-D transform would cost ``Omega(N^2)``, but
``AA[u, v] = P[v] - Q[u]`` (with ``P`` and ``Q`` shifted prefix-sum
vectors), and for the tensor Haar basis ``psi_c (x) psi_c'``:

    <AA, psi_c (x) psi_c'> = (sum psi_c) * <psi_c', P> - <psi_c, Q> * (sum psi_c')

Every detail vector sums to zero, so the coefficient vanishes unless
``c = 0`` or ``c' = 0``: only ``2N - 1`` of the ``N^2`` coefficients are
nonzero, all computable from two 1-D transforms — the near-linear
algorithm of Theorem 9.  Because the tensor basis is orthonormal,
keeping the ``B`` largest of these minimises the SSE of reconstructing
``AA`` over all size-``B`` coefficient subsets, and a query ``(a, b)``
is simply the reconstruction of entry ``AA[a, b]``, evaluated in O(B).

Following the paper, the optimisation domain is the full matrix (all
ordered pairs ``(u, v)``, i.e. every range endpoint combination); the
benchmark in ``benchmarks/test_ablations.py`` measures how this compares
to TOPBB on the triangle ``a <= b`` the SSE metric sums over.
"""

from __future__ import annotations

import numpy as np

from repro.internal.validation import as_frequency_vector, check_bucket_count
from repro.queries.estimators import RangeSumEstimator
from repro.wavelets.haar import basis_value, haar_transform, next_power_of_two


def aa_tensor_coefficients(data) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All nonzero 2-D Haar coefficients of the virtual ``AA`` matrix.

    Returns ``(row_indices, col_indices, values)`` of the ``2N - 1``
    potentially-nonzero tensor coefficients, where a tensor coefficient
    ``(c, c')`` multiplies ``psi_c(a) * psi_c'(b)`` when reconstructing
    the answer to range query ``(a, b)``.  ``N`` is the padded length.
    """
    data = as_frequency_vector(data)
    n = int(data.size)
    padded_n = next_power_of_two(n)
    padded = np.zeros(padded_n, dtype=np.float64)
    padded[:n] = data
    prefix = np.concatenate(([0.0], np.cumsum(padded)))
    # AA[u, v] = prefix[v + 1] - prefix[u] for 0-indexed u, v.
    col_vector = prefix[1:]  # P[v] = prefix[v + 1]
    row_vector = prefix[:-1]  # Q[u] = prefix[u]
    g = haar_transform(col_vector)  # <psi_c', P>
    h = haar_transform(row_vector)  # <psi_c, Q>
    sqrt_n = np.sqrt(padded_n)

    rows = [np.asarray([0]), np.zeros(padded_n - 1, dtype=np.int64), np.arange(1, padded_n)]
    cols = [np.asarray([0]), np.arange(1, padded_n), np.zeros(padded_n - 1, dtype=np.int64)]
    values = [
        np.asarray([sqrt_n * (g[0] - h[0])]),
        sqrt_n * g[1:],
        -sqrt_n * h[1:],
    ]
    return (
        np.concatenate(rows).astype(np.int64),
        np.concatenate(cols).astype(np.int64),
        np.concatenate(values),
    )


class RangeOptimalWavelet(RangeSumEstimator):
    """Wavelet synopsis whose coefficients are range-query optimal.

    Keeps the ``B`` largest (in magnitude) of the nonzero 2-D Haar
    coefficients of ``AA`` — optimal, by orthonormality, for the SSE of
    reconstructing the full range-sum matrix.
    """

    def __init__(self, data, n_coefficients: int) -> None:
        data = as_frequency_vector(data)
        self.n = int(data.size)
        n_coefficients = check_bucket_count(
            n_coefficients, 2 * self.n, name="n_coefficients"
        )
        self.padded_n = next_power_of_two(self.n)
        rows, cols, values = aa_tensor_coefficients(data)
        order = np.argsort(-np.abs(values), kind="stable")
        kept = order[:n_coefficients]
        self.row_indices = rows[kept]
        self.col_indices = cols[kept]
        self.coefficients = values[kept]

    @property
    def name(self) -> str:
        return "WAVE-RANGE"

    def storage_words(self) -> int:
        """Two words per coefficient: a packed (row, col) index and a value."""
        return 2 * int(self.coefficients.size)

    def estimate_many(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        result = np.zeros(lows.shape, dtype=np.float64)
        for row, col, coefficient in zip(
            self.row_indices.tolist(),
            self.col_indices.tolist(),
            self.coefficients.tolist(),
        ):
            row_term = basis_value(row, lows, self.padded_n)
            col_term = basis_value(col, highs, self.padded_n)
            result += coefficient * row_term * col_term
        return result


def build_wavelet_range(data, n_coefficients: int) -> RangeOptimalWavelet:
    """Build the Theorem 9 range-optimal wavelet synopsis."""
    return RangeOptimalWavelet(data, n_coefficients)
