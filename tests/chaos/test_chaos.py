"""Fault-injected end-to-end scenarios (the ``chaos`` marker).

Every test seeds its :class:`FaultInjector` from the ``CHAOS_SEED``
environment variable (default 0) so CI can sweep seeds while any single
run stays fully deterministic.  When ``CHAOS_ARTIFACT_DIR`` is set, each
test appends a JSON artifact (metrics snapshot + injector event counts)
for upload.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.engine import ApproximateQueryEngine, Table, load_catalog, save_catalog
from repro.engine.engine import AggregateQuery
from repro.engine.resilience import SERVE_ANYTHING, FaultInjector
from repro.errors import BuildFailedError, FaultInjectedError, ReproError

pytestmark = pytest.mark.chaos

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))


def _injector(**kwargs) -> FaultInjector:
    return FaultInjector(seed=CHAOS_SEED, **kwargs)


def _export_artifact(name: str, engine: ApproximateQueryEngine, injector) -> None:
    directory = os.environ.get("CHAOS_ARTIFACT_DIR")
    if not directory:
        return
    Path(directory).mkdir(parents=True, exist_ok=True)
    artifact = {
        "seed": CHAOS_SEED,
        "scenario": name,
        "fault_events": injector.event_counts(),
        "stats": engine.stats(),
        "metrics": engine.metrics.snapshot(),
    }
    path = Path(directory) / f"{name}-seed{CHAOS_SEED}.json"
    path.write_text(json.dumps(artifact, indent=2, default=str))


def _engine(columns=2, rows=400) -> ApproximateQueryEngine:
    rng = np.random.default_rng(CHAOS_SEED)
    data = {
        f"c{i}": rng.integers(0, 64, rows) for i in range(columns)
    }
    engine = ApproximateQueryEngine()
    engine.register_table(Table("chaos", data))
    return engine


class TestBuildUnderFaults:
    def test_build_all_completes_via_fallback_chain(self):
        # Acceptance: the primary builder fails every time, yet the
        # whole catalog comes up through the chain.
        engine = _engine(columns=3)
        injector = _injector()
        injector.fail("builder", method="sap1")
        with injector:
            engine.build_all_synopses(
                method="sap1", total_budget_words=180, fallback="a0,naive"
            )
        assert len(engine._synopses) == 3
        assert all(e.method == "a0" for e in engine._synopses.values())
        counters = engine.metrics.snapshot()["counters"]
        assert counters["fallback_builds_total"]['{method="a0"}'] == 3
        assert counters["build_failures_total"]['{method="sap1"}'] == 3
        # Every fallback left a span trail.
        build_spans = engine.tracer.spans("build")
        assert all(
            span.attributes.get("rung") == 1 for span in build_spans
        )
        _export_artifact("build-all-fallback", engine, injector)

    def test_intermittent_faults_retry_to_completion(self):
        engine = _engine(columns=2)
        engine._sleep = lambda seconds: None  # don't really back off in CI
        injector = _injector()
        injector.fail("builder", probability=0.5)
        from repro.engine.resilience import FallbackChain, FallbackStage

        chain = FallbackChain(
            [FallbackStage("a0", retries=4), FallbackStage("naive", retries=4)]
        )
        with injector:
            try:
                engine.build_all_synopses(
                    method="sap1", total_budget_words=120, fallback=chain
                )
            except BuildFailedError:
                # Statistically possible at hostile seeds; the invariant
                # is isolation, not success.
                pass
        # Whatever failed, whatever succeeded is installed and usable.
        for key in engine._synopses:
            engine.execute(AggregateQuery("chaos", key[1], "count", 0, 63))
        _export_artifact("build-intermittent", engine, injector)

    def test_slow_builder_hits_deadline(self):
        engine = _engine(columns=1)
        injector = _injector()
        injector.slow("builder", seconds=5.0, method="sap1")
        with injector:
            engine.build_synopsis(
                "chaos",
                "c0",
                method="sap1",
                budget_words=40,
                deadline_ms=100,
                fallback="naive",
            )
        assert engine._synopses[("chaos", "c0")].method == "naive"
        counters = engine.metrics.snapshot()["counters"]
        assert counters["build_timeouts_total"]['{method="sap1"}'] == 1
        assert counters["fallback_builds_total"]['{method="naive"}'] == 1
        _export_artifact("build-slow-deadline", engine, injector)


class TestServeUnderFaults:
    def test_execute_never_raises_for_registered_columns(self):
        # Acceptance: under serve_anything, a random workload against a
        # half-broken catalog never raises.
        engine = _engine(columns=3)
        injector = _injector()
        injector.fail("builder", method="sap1")
        with injector:
            try:
                engine.build_all_synopses(method="sap1", total_budget_words=180)
            except BuildFailedError:
                pass  # no chain this time: catalog is simply missing
        engine.append_rows("chaos", {"c0": [1], "c1": [2], "c2": [3]})
        rng = np.random.default_rng(CHAOS_SEED)
        levels = set()
        for _ in range(200):
            column = f"c{rng.integers(0, 3)}"
            low, high = sorted(rng.integers(0, 64, 2).tolist())
            aggregate = ("count", "sum", "avg")[int(rng.integers(0, 3))]
            result = engine.execute(
                AggregateQuery("chaos", column, aggregate, low, high),
                degradation=SERVE_ANYTHING,
            )
            levels.add(result.degradation)
            assert np.isfinite(result.estimate)
        assert "fallback" in levels  # the broken columns degraded
        counters = engine.metrics.snapshot()["counters"]
        degraded = counters.get("degraded_serves_total", {})
        assert sum(degraded.values()) > 0
        # Span trail records each degradation level that served.
        span_levels = {
            span.attributes.get("degradation")
            for span in engine.tracer.spans("query")
        }
        assert span_levels == levels
        _export_artifact("serve-never-raises", engine, injector)

    def test_batch_workload_under_faults(self):
        engine = _engine(columns=2)
        injector = _injector()
        injector.fail("builder", method="sap1", times=1)
        with injector:
            try:
                engine.build_all_synopses(method="sap1", total_budget_words=120)
            except BuildFailedError:
                pass
        rng = np.random.default_rng(CHAOS_SEED + 1)
        queries = []
        for _ in range(50):
            column = f"c{rng.integers(0, 2)}"
            low, high = sorted(rng.integers(0, 64, 2).tolist())
            queries.append(AggregateQuery("chaos", column, "count", low, high))
        results = engine.execute_batch(queries, degradation=SERVE_ANYTHING)
        assert len(results) == len(queries)
        assert {r.degradation for r in results} == {"fresh", "fallback"}
        _export_artifact("serve-batch", engine, injector)


class TestRefreshUnderFaults:
    def test_shard_rebuild_fault_keeps_serving_stale(self):
        engine = _engine(columns=1, rows=2000)
        engine.build_synopsis(
            "chaos", "c0", method="a0", budget_words=64, shards=8
        )
        engine.append_rows("chaos", {"c0": [10, 11, 12]})
        injector = _injector()
        injector.fail("shard_rebuild")
        with injector:
            with pytest.raises(FaultInjectedError):
                engine.refresh_stale()
        # Entry survived the failed refresh and keeps serving stale.
        key = ("chaos", "c0")
        assert key in engine._synopses
        assert key in engine._stale
        result = engine.execute(AggregateQuery("chaos", "c0", "count", 0, 63))
        assert result.degradation == "stale"
        # Fault gone: the next refresh completes and freshens the entry.
        assert engine.refresh_stale() == 1
        assert key not in engine._stale
        _export_artifact("refresh-shard-fault", engine, injector)


class TestCompactionUnderFaults:
    def test_compaction_fault_aborts_without_damage(self):
        # A fault mid-compaction must leave the pre-compaction synopsis
        # serving bit-identically: the merged twin is built off to the
        # side and only swapped in on success.
        engine = _engine(columns=1, rows=2000)
        engine.build_synopsis(
            "chaos", "c0", method="a0", budget_words=256, shards=8
        )
        queries = [
            AggregateQuery("chaos", "c0", "count", low, low + 15)
            for low in range(0, 48, 3)
        ]
        before = [engine.execute(query).estimate for query in queries]
        build_id = engine._build_meta[("chaos", "c0")]["build_id"]
        injector = _injector()
        injector.fail("shard_compact")
        with injector:
            with pytest.raises(FaultInjectedError):
                engine.compact_shards("chaos", "c0", runs=[(0, 3)])
        # Old synopsis intact: same answers, same build id (cached
        # answers stay valid — nothing was swapped).
        assert [engine.execute(q).estimate for q in queries] == before
        assert engine._build_meta[("chaos", "c0")]["build_id"] == build_id
        # Fault gone: the same compaction completes and still answers
        # identically (a0 re-summarises the same frozen snapshot).
        report = engine.compact_shards("chaos", "c0", runs=[(0, 3)])
        assert report is not None and report["shards_after"] == 5
        _export_artifact("compaction-abort", engine, injector)


class TestPersistenceUnderFaults:
    def test_catalog_save_load_cycle_under_faults(self, tmp_path):
        engine = _engine(columns=2)
        engine.build_all_synopses(method="a0", total_budget_words=120)
        path = tmp_path / "catalog.npz"
        save_catalog(engine, path)

        injector = _injector()
        injector.fail("persistence_write")
        with injector:
            with pytest.raises(FaultInjectedError):
                save_catalog(engine, path)
        # The earlier catalog is intact.
        restored = ApproximateQueryEngine()
        assert load_catalog(restored, path) == 2

        corruptor = _injector()
        corruptor.corrupt("persistence_read")
        with corruptor:
            try:
                load_catalog(ApproximateQueryEngine(), path)
            except ReproError:
                pass  # normalised error is the only acceptable failure
        _export_artifact("persistence-cycle", engine, injector)
