"""Process-level chaos for the multi-process serving pool.

The contract under every injected fault is the same: an admitted query
either receives the bit-identical answer the single-process engine
would give for the same catalog state, or an answer explicitly tagged
with its degradation rung — never a silently wrong answer, and never a
hang (every wait below carries a timeout; a hang fails the test).

Faults are armed *before* the pool starts so the fork-inherited
injector copy is live inside every worker; rules match on the worker's
``generation`` so gen-0 dies and its supervised replacement survives.
Seeded via ``CHAOS_SEED`` like the rest of the chaos suite; artifacts
(supervisor snapshots + pool counters) export to ``CHAOS_ARTIFACT_DIR``.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.engine import ApproximateQueryEngine, Table
from repro.engine.engine import AggregateQuery
from repro.engine.resilience import FaultInjector
from repro.serving import PoolServer

pytestmark = pytest.mark.chaos

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))

#: Degradation tags that are acceptable *instead of* a fresh answer.
EXPLICIT_RUNGS = {"stale", "fallback", "progressive"}

QUERY_TIMEOUT = 30.0


def _injector() -> FaultInjector:
    return FaultInjector(seed=CHAOS_SEED)


def _engine() -> ApproximateQueryEngine:
    rng = np.random.default_rng(CHAOS_SEED)
    engine = ApproximateQueryEngine()
    engine.register_table(
        Table(
            "chaos",
            {
                "v": rng.integers(0, 128, 2500),
                "w": rng.integers(0, 64, 2500),
            },
        )
    )
    engine.build_synopsis("chaos", "v", method="sap1", budget_words=80)
    engine.build_synopsis("chaos", "w", method="a0", budget_words=48)
    return engine


def _queries(n=30):
    return [
        AggregateQuery("chaos", "v", "sum", low, low + 24)
        for low in range(0, 4 * n, 4)[:n]
    ]


def _pool(engine, **kwargs):
    defaults = dict(
        workers=2,
        max_delay_ms=1.0,
        cache_capacity=1,
        heartbeat_interval_ms=25.0,
        heartbeat_timeout_ms=250.0,
        hang_timeout_ms=600.0,
        restart_backoff_ms=20.0,
        restart_backoff_max_ms=500.0,
        deadline_ms=15000.0,
        supervisor_seed=CHAOS_SEED,
    )
    defaults.update(kwargs)
    return PoolServer(engine, **defaults)


def _wait_live(server, count, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        snapshot = server.supervisor.snapshot()
        if sum(1 for slot in snapshot.values() if slot["heartbeats"] >= 1) >= count:
            return
        time.sleep(0.01)
    raise AssertionError(f"workers never came up: {server.supervisor.snapshot()}")


def _check_answers(results, expected):
    """Every answer is bit-identical or explicitly degraded."""
    identical = degraded = 0
    for result, want in zip(results, expected):
        if result.degradation in EXPLICIT_RUNGS:
            degraded += 1
        else:
            assert result.estimate == want, (
                f"undegraded answer diverged: {result.estimate} != {want} "
                f"(tag {result.degradation!r})"
            )
            identical += 1
    return identical, degraded


def _export_artifact(name: str, server, injector, extra=None) -> None:
    directory = os.environ.get("CHAOS_ARTIFACT_DIR")
    if not directory:
        return
    Path(directory).mkdir(parents=True, exist_ok=True)
    artifact = {
        "seed": CHAOS_SEED,
        "scenario": name,
        # Worker-site faults fire inside forked children; the parent
        # copy only sees parent-side firings.  The supervisor snapshot
        # is the authoritative worker-lifecycle record.
        "parent_fault_events": injector.event_counts(),
        "supervisor": server.supervisor.snapshot(),
        "pool": server.stats()["pool"],
    }
    if extra:
        artifact.update(extra)
    path = Path(directory) / f"{name}-seed{CHAOS_SEED}.json"
    path.write_text(json.dumps(artifact, indent=2, default=str))


class TestWorkerKill:
    def test_sigkill_mid_batch_retries_and_recovers(self):
        # Acceptance: a worker SIGKILLed mid-batch loses nothing — its
        # in-flight batch is retried on a surviving worker and the
        # supervisor restarts the slot within its backoff budget.
        engine = _engine()
        queries = _queries()
        expected = [engine.execute(query).estimate for query in queries]
        injector = _injector()
        injector.kill("worker_batch", times=1, generation=0)
        with injector:
            server = _pool(engine)
            with server:
                _wait_live(server, 2)
                results = server.execute_many(queries, timeout=QUERY_TIMEOUT)
                identical, degraded = _check_answers(results, expected)
                assert identical + degraded == len(queries)
                stats = server.stats()["pool"]
                assert stats["worker_exits"] >= 1
                assert stats["retries"] >= 1
                # Restart within the backoff budget: both slots serving
                # replacement generations shortly after the kill.
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    snapshot = server.supervisor.snapshot()
                    if all(
                        slot["state"] in ("live", "starting")
                        for slot in snapshot.values()
                    ):
                        break
                    time.sleep(0.02)
                else:
                    raise AssertionError(
                        f"slot never restarted: {server.supervisor.snapshot()}"
                    )
                # Post-recovery queries are answered fresh again.
                after = server.execute_many(queries, timeout=QUERY_TIMEOUT)
                assert [result.estimate for result in after] == expected
                _export_artifact("pool-kill-mid-batch", server, injector)
        assert server.stats()["pool"]["spawns"] >= 3

    def test_injected_kill_exitcode_is_distinguishable(self):
        engine = _engine()
        injector = _injector()
        injector.kill("worker_batch", times=1, generation=0)
        with injector:
            server = _pool(engine)
            with server:
                _wait_live(server, 2)
                server.execute_many(_queries(5), timeout=QUERY_TIMEOUT)
                deadline = time.monotonic() + 10.0
                exitcodes = set()
                while time.monotonic() < deadline and not exitcodes:
                    snapshot = server.supervisor.snapshot()
                    exitcodes = {
                        slot["last_exitcode"]
                        for slot in snapshot.values()
                        if slot["last_exitcode"] is not None
                    }
                    time.sleep(0.02)
        # 77 is the injector's kill sentinel — not a real crash (<0),
        # not a clean exit (0), not an attach failure (3).
        assert 77 in exitcodes


class TestHeartbeatSilence:
    def test_silent_worker_is_killed_and_replaced(self):
        # The gen-0 workers answer fine but never heartbeat: the
        # supervisor must declare them wedged, kill them, and bring up
        # replacements — while queries keep being answered.
        engine = _engine()
        queries = _queries()
        expected = [engine.execute(query).estimate for query in queries]
        injector = _injector()
        injector.fail("worker_heartbeat", generation=0)
        with injector:
            server = _pool(engine)
            with server:
                deadline = time.monotonic() + 20.0
                while time.monotonic() < deadline:
                    if server.stats()["pool"]["kills"] >= 1:
                        break
                    results = server.execute_many(
                        queries[:5], timeout=QUERY_TIMEOUT
                    )
                    _check_answers(results, expected[:5])
                    time.sleep(0.05)
                else:
                    raise AssertionError(
                        f"wedged worker never killed: {server.supervisor.snapshot()}"
                    )
                _wait_live(server, 2)
                results = server.execute_many(queries, timeout=QUERY_TIMEOUT)
                identical, degraded = _check_answers(results, expected)
                assert identical + degraded == len(queries)
                _export_artifact("pool-heartbeat-silence", server, injector)
        assert server.stats()["pool"]["kills"] >= 1


class TestWedgedWorker:
    def test_hung_batch_is_killed_and_retried(self):
        # A worker that wedges mid-batch (sleep far past the hang
        # timeout) is SIGKILLed by the supervisor and its batch is
        # retried elsewhere.
        engine = _engine()
        queries = _queries()
        expected = [engine.execute(query).estimate for query in queries]
        injector = _injector()
        injector.slow("worker_batch", 30.0, times=1, generation=0)
        with injector:
            server = _pool(engine)
            with server:
                _wait_live(server, 2)
                results = server.execute_many(queries, timeout=QUERY_TIMEOUT)
                identical, degraded = _check_answers(results, expected)
                assert identical + degraded == len(queries)
                stats = server.stats()["pool"]
                assert stats["kills"] >= 1
                assert stats["retries"] >= 1
                _export_artifact("pool-wedged-worker", server, injector)


class TestTornAttach:
    def test_gen0_torn_attach_recovers_via_respawn(self):
        # Both gen-0 workers read a corrupted snapshot, detect it via
        # the CRC frame (never serving from torn bytes), and die; the
        # replacements attach cleanly and serve fresh answers.
        engine = _engine()
        queries = _queries()
        expected = [engine.execute(query).estimate for query in queries]
        injector = _injector()
        injector.corrupt("shared_attach", generation=0)
        with injector:
            server = _pool(engine)
            with server:
                _wait_live(server, 2)  # replacements (gen >= 1)
                results = server.execute_many(queries, timeout=QUERY_TIMEOUT)
                assert [result.estimate for result in results] == expected
                stats = server.stats()["pool"]
                assert stats["worker_exits"] >= 2
                assert stats["spawns"] >= 4
                snapshot = server.supervisor.snapshot()
                assert all(slot["generation"] >= 1 for slot in snapshot.values())
                _export_artifact("pool-torn-attach", server, injector)

    def test_unrecoverable_attach_parks_and_degrades(self):
        # Every generation tears its attach: the breaker parks both
        # slots and queued queries degrade through the ladder instead
        # of waiting forever.
        engine = _engine()
        queries = _queries(10)
        injector = _injector()
        injector.corrupt("shared_attach")
        with injector:
            server = _pool(
                engine,
                worker_breaker_threshold=2,
                worker_breaker_cooldown_ms=120000.0,
                max_retries=1,
            )
            with server:
                results = server.execute_many(queries, timeout=QUERY_TIMEOUT)
                for result in results:
                    assert result.degradation in EXPLICIT_RUNGS
                _export_artifact(
                    "pool-attach-parked",
                    server,
                    injector,
                    extra={
                        "degradations": sorted(
                            {result.degradation for result in results}
                        )
                    },
                )


class TestRetryExhaustion:
    def test_every_batch_killed_degrades_explicitly(self):
        # kill matches every generation: each dispatch dies mid-batch.
        # After max_retries the flight must complete through the shed
        # ladder — explicitly tagged, never hung, never wrong.
        engine = _engine()
        queries = _queries(8)
        injector = _injector()
        injector.kill("worker_batch")
        with injector:
            server = _pool(engine, max_retries=2)
            with server:
                _wait_live(server, 2)
                results = server.execute_many(queries, timeout=QUERY_TIMEOUT)
                for result in results:
                    assert result.degradation in EXPLICIT_RUNGS
                stats = server.stats()["pool"]
                assert stats["degraded_batches"] >= 1
                assert stats["worker_exits"] >= 3
                _export_artifact("pool-retry-exhaustion", server, injector)


class TestDrainUnderChaos:
    def test_drain_with_dying_workers_answers_or_fails_explicitly(self):
        engine = _engine()
        queries = _queries()
        expected = [engine.execute(query).estimate for query in queries]
        injector = _injector()
        injector.kill("worker_batch", times=1, generation=0)
        with injector:
            server = _pool(engine)
            server.start()
            _wait_live(server, 2)
            futures = server.submit_many(queries)
            server.drain(timeout_ms=20000.0)
            answered = 0
            for future, want in zip(futures, expected):
                # Every future must be resolved — result or exception —
                # with no waiting left to do.
                error = future.exception(timeout=0.1)
                if error is None:
                    result = future.result(timeout=0.1)
                    if result.degradation not in EXPLICIT_RUNGS:
                        assert result.estimate == want
                    answered += 1
            assert answered >= 1
