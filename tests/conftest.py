"""Shared fixtures and Hypothesis profiles for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

try:
    from hypothesis import HealthCheck, settings

    # "ci" — deterministic and patient: derandomised example selection
    # (a CI failure must reproduce locally from the printed seed) and no
    # per-example deadline, because shared CI runners pause arbitrarily
    # and a deadline there reports phantom flakes.  Selected by
    # exporting HYPOTHESIS_PROFILE=ci (the CI workflow does).
    settings.register_profile(
        "ci",
        derandomize=True,
        deadline=None,
        suppress_health_check=(HealthCheck.too_slow,),
    )
    # "dev" — the default local profile: Hypothesis defaults, but no
    # deadline either (property suites drive full engine builds, whose
    # first-call costs trip the 200 ms default on cold caches).
    settings.register_profile("dev", deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
except ImportError:  # pragma: no cover - hypothesis always in the image
    pass


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_data(rng):
    """A length-12 integral frequency vector with varied structure."""
    return np.asarray([4, 4, 4, 9, 1, 0, 7, 7, 2, 30, 0, 5], dtype=np.float64)


@pytest.fixture
def medium_data(rng):
    """Length-64 mixed Zipf-ish vector for moderate-size checks."""
    from repro.data import zipf_frequencies

    return zipf_frequencies(64, alpha=1.5, scale=300, seed=7, permute=True)


@pytest.fixture
def tiny_data():
    """The paper's running example array (Section 2.1.1)."""
    return np.asarray([1, 3, 5, 11, 12, 13], dtype=np.float64)
