"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_data(rng):
    """A length-12 integral frequency vector with varied structure."""
    return np.asarray([4, 4, 4, 9, 1, 0, 7, 7, 2, 30, 0, 5], dtype=np.float64)


@pytest.fixture
def medium_data(rng):
    """Length-64 mixed Zipf-ish vector for moderate-size checks."""
    from repro.data import zipf_frequencies

    return zipf_frequencies(64, alpha=1.5, scale=300, seed=7, permute=True)


@pytest.fixture
def tiny_data():
    """The paper's running example array (Section 2.1.1)."""
    return np.asarray([1, 3, 5, 11, 12, 13], dtype=np.float64)
