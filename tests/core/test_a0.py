"""Tests for the A0 heuristic and its documented cross-term gap."""

import numpy as np
import pytest

from repro.core.a0 import a0_objective_rows, build_a0
from repro.core.opt_a import opt_a_search
from repro.internal.prefix import PrefixAlgebra
from repro.queries.evaluation import sse
from tests.helpers import ReferenceAverageHistogram, brute_sse


def a0_objective(data, lefts):
    algebra = PrefixAlgebra(data)
    n = data.size
    total = 0.0
    for index, a in enumerate(lefts):
        b = (lefts[index + 1] - 1) if index + 1 < len(lefts) else n - 1
        row = a0_objective_rows(algebra, a)
        total += float(row[b - a])
    return total


def cross_terms(data, lefts):
    """The inter-bucket cross terms A0's DP ignores: 2 * S1(P) * P1(Q)."""
    algebra = PrefixAlgebra(data)
    n = data.size
    rights = [*[left - 1 for left in lefts[1:]], n - 1]
    s1 = [float(algebra.suffix_error_moments(a, b)[0]) for a, b in zip(lefts, rights)]
    p1 = [float(algebra.prefix_error_moments(a, b)[0]) for a, b in zip(lefts, rights)]
    total = 0.0
    for p in range(len(lefts)):
        for q in range(p + 1, len(lefts)):
            total += 2.0 * s1[p] * p1[q]
    return total


class TestA0ObjectiveGap:
    def test_objective_plus_cross_terms_is_true_sse(self, small_data):
        """The documented identity: A0's additive objective differs from
        the un-rounded true SSE by exactly the ignored cross terms."""
        for lefts in ([0], [0, 4], [0, 3, 8], [0, 2, 5, 9]):
            hist = ReferenceAverageHistogram(small_data, lefts, rounding="none")
            true_sse = brute_sse(hist, small_data)
            objective = a0_objective(small_data, lefts)
            assert objective + cross_terms(small_data, lefts) == pytest.approx(
                true_sse, rel=1e-9, abs=1e-6
            ), lefts


class TestA0Builder:
    def test_never_better_than_opt_a(self, small_data):
        for buckets in (2, 3, 4):
            a0_sse = sse(build_a0(small_data, buckets, rounding="per_piece"), small_data)
            optimal = opt_a_search(small_data, buckets).objective
            assert a0_sse >= optimal - 1e-6

    def test_close_to_opt_a_on_zipf(self, medium_data):
        """Section 4's empirical finding: A0 is a strong heuristic."""
        buckets = 6
        a0_sse = sse(build_a0(medium_data, buckets), medium_data)
        optimal = opt_a_search(medium_data, buckets).objective
        assert a0_sse <= 5.0 * optimal + 1e-6

    def test_label_storage_and_rounding(self, small_data):
        hist = build_a0(small_data, 3)
        assert hist.name == "A0"
        assert hist.storage_words() == 2 * hist.bucket_count  # Theorem 10
        assert hist.rounding == "per_piece"

    def test_monotone_in_buckets(self, medium_data):
        errors = [sse(build_a0(medium_data, k), medium_data) for k in (1, 2, 4, 8)]
        # Heuristic, so only require no catastrophic reversals.
        assert errors[-1] <= errors[0]

    def test_flat_data_zero_error(self):
        data = np.full(8, 3.0)
        assert sse(build_a0(data, 2), data) == 0.0
